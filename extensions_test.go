package amber

import (
	"sort"
	"testing"
)

// TestDistinctSemantics: without DISTINCT, the projection of a wider
// embedding set may repeat rows; DISTINCT collapses them.
func TestDistinctSemantics(t *testing.T) {
	db := openDB(t)
	// ?who has two wasBornIn/diedIn... project only the city of birth of
	// people who lived somewhere: Nolan→England, Amy→US, Blake→US gives
	// two distinct ?b values.
	plain, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?b WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 3 {
		t.Fatalf("plain rows = %d, want 3", len(plain))
	}
	distinct, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?b WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(distinct) != 2 {
		t.Fatalf("distinct rows = %d, want 2 (England, United_States)", len(distinct))
	}
}

func TestUnionSemantics(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p WHERE {
  { ?p y:wasBornIn ?c } UNION { ?p y:diedIn ?c }
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// wasBornIn: Nolan, Amy; diedIn: Amy → 3 rows (bag semantics).
	if len(rows) != 3 {
		t.Fatalf("union rows = %d, want 3", len(rows))
	}
	// With DISTINCT on ?p: Nolan, Amy.
	rows, err = db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?p WHERE {
  { ?p y:wasBornIn ?c } UNION { ?p y:diedIn ?c }
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("distinct union rows = %d, want 2", len(rows))
	}
}

func TestUnionUnboundVariables(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p ?band WHERE {
  { ?p y:wasMarriedTo ?x } UNION { ?p y:wasPartOf ?band }
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	sawUnbound := false
	for _, r := range rows {
		if r["band"] == "" {
			sawUnbound = true
		}
	}
	if !sawUnbound {
		t.Error("expected ?band unbound (empty) in the first branch's row")
	}
}

func TestFilterEqAndNe(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE {
  ?a y:livedIn ?b .
  FILTER (?b = <http://dbpedia.org/resource/United_States>)
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("eq-filtered rows = %d, want 2", len(rows))
	}
	rows, err = db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE {
  ?a y:livedIn ?b .
  FILTER (?b != <http://dbpedia.org/resource/United_States>)
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("ne-filtered rows = %d, want 1 (Nolan→England)", len(rows))
	}
}

func TestFilterVarToVar(t *testing.T) {
	db := openDB(t)
	// Pairs living in the same place, excluding self-pairs.
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE {
  ?a y:livedIn ?c .
  ?b y:livedIn ?c .
  FILTER (?a != ?b)
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Amy and Blake both lived in the US: (Amy,Blake) and (Blake,Amy).
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestFilterRegexAndStrStarts(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a WHERE {
  ?a y:livedIn ?b .
  FILTER regex(?a, "Winehouse")
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("regex rows = %d, want 1", len(rows))
	}
	rows, err = db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a WHERE {
  ?a y:wasBornIn ?b .
  FILTER strstarts(str(?a), "http://dbpedia.org/resource/C")
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["a"] != "http://dbpedia.org/resource/Christopher_Nolan" {
		t.Fatalf("strstarts rows = %v", rows)
	}
}

func TestOffsetPagination(t *testing.T) {
	db := openDB(t)
	q := `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`
	all, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pages []Row
	for off := 0; off < len(all); off++ {
		page, err := db.Query(q+" OFFSET "+itoa(off)+" LIMIT 1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) != 1 {
			t.Fatalf("page at offset %d = %d rows", off, len(page))
		}
		pages = append(pages, page[0])
	}
	// Pagination must cover exactly the full result set.
	key := func(r Row) string { return r["a"] + "|" + r["b"] }
	var wantKeys, gotKeys []string
	for _, r := range all {
		wantKeys = append(wantKeys, key(r))
	}
	for _, r := range pages {
		gotKeys = append(gotKeys, key(r))
	}
	sort.Strings(wantKeys)
	sort.Strings(gotKeys)
	for i := range wantKeys {
		if wantKeys[i] != gotKeys[i] {
			t.Fatalf("pagination mismatch: %v vs %v", wantKeys, gotKeys)
		}
	}
	// Offset beyond the result set yields nothing.
	page, err := db.Query(q+" OFFSET 99", nil)
	if err != nil || len(page) != 0 {
		t.Errorf("beyond-end page = %v, %v", page, err)
	}
}

func TestCountWithExtensions(t *testing.T) {
	db := openDB(t)
	n, err := db.Count(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?b WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil || n != 2 {
		t.Errorf("distinct count = %d, %v; want 2", n, err)
	}
	n, err = db.Count(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p WHERE { { ?p y:wasBornIn ?c } UNION { ?p y:diedIn ?c } }`, nil)
	if err != nil || n != 3 {
		t.Errorf("union count = %d, %v; want 3", n, err)
	}
}

func TestExtensionTimeout(t *testing.T) {
	db := openDB(t)
	_, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?b WHERE { ?a y:livedIn ?b }`, &QueryOptions{Timeout: -1})
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Social-network example: the "entity graph" scenario from the paper's
// introduction. Builds a synthetic follow/like/membership graph with
// profile attributes and answers the star- and path-shaped questions a
// social search engine issues, demonstrating how AMbER's satellite
// factorization makes counting star results cheap.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro"
)

const (
	nUsers  = 400
	nGroups = 25
	nPosts  = 1200
)

func buildData() string {
	rng := rand.New(rand.NewSource(99))
	var b strings.Builder
	b.WriteString("@prefix sn: <http://social.example.org/ontology/> .\n")
	b.WriteString("@prefix u: <http://social.example.org/user/> .\n")
	b.WriteString("@prefix g: <http://social.example.org/group/> .\n")
	b.WriteString("@prefix p: <http://social.example.org/post/> .\n")

	cities := []string{"London", "Paris", "Berlin", "Madrid", "Rome"}
	for i := 0; i < nUsers; i++ {
		fmt.Fprintf(&b, "u:user%d sn:livesIn \"%s\" .\n", i, cities[rng.Intn(len(cities))])
		fmt.Fprintf(&b, "u:user%d sn:joinedIn \"%d\" .\n", i, 2010+rng.Intn(10))
		// Follows: preferential attachment towards low ids (celebrities).
		for f := 0; f < 3+rng.Intn(5); f++ {
			target := rng.Intn(1 + i)
			if target != i {
				fmt.Fprintf(&b, "u:user%d sn:follows u:user%d .\n", i, target)
			}
		}
		if rng.Intn(3) > 0 {
			fmt.Fprintf(&b, "u:user%d sn:memberOf g:group%d .\n", i, rng.Intn(nGroups))
		}
	}
	for i := 0; i < nPosts; i++ {
		author := rng.Intn(nUsers)
		fmt.Fprintf(&b, "p:post%d sn:postedBy u:user%d .\n", i, author)
		for l := 0; l < rng.Intn(6); l++ {
			fmt.Fprintf(&b, "u:user%d sn:likes p:post%d .\n", rng.Intn(nUsers), i)
		}
	}
	return b.String()
}

func main() {
	db, err := amber.OpenString(buildData())
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("social graph: %d triples, %d vertices, %d edge types\n\n",
		st.Triples, st.Vertices, st.EdgeTypes)

	// A star query: engaged Londoners — they follow someone, like a post,
	// belong to a group, and live in London. The satellite factorization
	// counts the follower×like×group combinations without enumerating.
	star := `
PREFIX sn: <http://social.example.org/ontology/>
SELECT * WHERE {
  ?u sn:follows ?someone .
  ?u sn:likes ?post .
  ?u sn:memberOf ?grp .
  ?u sn:livesIn "London" .
}`
	start := time.Now()
	n, err := db.Count(star, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star query: %d follower×like×group combinations for Londoners, counted in %s\n",
		n, time.Since(start).Round(time.Microsecond))

	// The same count enumerated row by row, for comparison.
	start = time.Now()
	enumerated := 0
	if err := db.QueryIter(star, nil, func(amber.Row) bool {
		enumerated++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("            enumeration of the same %d rows took %s\n\n",
		enumerated, time.Since(start).Round(time.Microsecond))

	// A path query: influence chains — u follows v, v follows w, and w's
	// post was liked by u.
	path := `
PREFIX sn: <http://social.example.org/ontology/>
SELECT ?u ?v ?w WHERE {
  ?u sn:follows ?v .
  ?v sn:follows ?w .
  ?post sn:postedBy ?w .
  ?u sn:likes ?post .
} LIMIT 5`
	rows, err := db.Query(path, &amber.QueryOptions{Timeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("influence chains (first 5):")
	for _, r := range rows {
		fmt.Printf("  %s → %s → %s\n", short(r["u"]), short(r["v"]), short(r["w"]))
	}
}

func short(iri string) string {
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

// Quickstart: load the paper's running example (Figure 1) and answer the
// kind of SPARQL queries Section 2 walks through.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// data is the RDF tripleset of the paper's Figure 1a.
const data = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func main() {
	db, err := amber.OpenString(data)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("loaded %d triples → %d vertices, %d edge types, %d attributes\n\n",
		st.Triples, st.Vertices, st.EdgeTypes, st.Attributes)

	// Who was born in and died in the same place?
	fmt.Println("Q1: born and died in the same city")
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?city WHERE {
  ?who y:wasBornIn ?city .
  ?who y:diedIn ?city .
}`, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %s — %s\n", r["who"], r["city"])
	}

	// The paper's Figure 2 query (with its typos corrected to match the
	// data): a complex 13-triplet pattern around London.
	fmt.Println("\nQ2: the paper's Figure 2 query")
	rows, err = db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X3 ?X5 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}`, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  X0=%s X3=%s X5=%s\n", r["X0"], r["X3"], r["X5"])
	}

	// Counting without enumerating.
	n, err := db.Count(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3: %d livedIn facts\n", n)

	// Typed literal bindings: the band's name is a literal attribute in
	// the multigraph model, and a single-occurrence object variable binds
	// it as a typed term through the cursor API.
	fmt.Println("\nQ4: literal bindings via the typed cursor")
	cur, err := db.QueryContext(context.Background(), `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?band ?name WHERE { ?band y:hasName ?name }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
		var band, name amber.Term
		if err := cur.Scan(&band, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s is named %s (a %s term)\n", band.Value, name, name.Kind)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}

	// ASK: existence without enumeration.
	yes, err := db.Ask(`
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
ASK { x:Music_Band y:foundedIn "1994" }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ5: founded in 1994? %v\n", yes)
}

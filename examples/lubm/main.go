// LUBM example: generate a LUBM-like university corpus in-process, load it
// into AMbER and run the classic academic-graph queries (advisor chains,
// co-enrolment stars, department rosters) with per-query timing.
//
//	go run ./examples/lubm
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	triples := datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7})
	var sb strings.Builder
	enc := rdf.NewEncoder(&sb)
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	db, err := amber.OpenString(sb.String())
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("LUBM(2): %d triples, %d vertices, %d edge types — loaded in %s\n\n",
		st.Triples, st.Vertices, st.EdgeTypes, time.Since(start).Round(time.Millisecond))

	queries := []struct {
		name string
		text string
	}{
		{
			"students advised by a professor of their own department",
			`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?student ?prof ?dept WHERE {
  ?student ub:advisor ?prof .
  ?student ub:memberOf ?dept .
  ?prof ub:worksFor ?dept .
} LIMIT 5`,
		},
		{
			"co-enrolled pairs in a course taught by the head of department",
			`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?a ?b ?course WHERE {
  ?a ub:takesCourse ?course .
  ?b ub:takesCourse ?course .
  ?prof ub:teacherOf ?course .
  ?prof ub:headOf ?dept .
} LIMIT 5`,
		},
		{
			"professors with a publication who teach and advise (star)",
			`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?prof WHERE {
  ?pub ub:publicationAuthor ?prof .
  ?prof ub:teacherOf ?course .
  ?student ub:advisor ?prof .
  ?prof ub:worksFor ?dept .
} LIMIT 5`,
		},
	}

	for _, q := range queries {
		fmt.Println("Q:", q.name)
		qStart := time.Now()
		n, err := db.Count(q.text, &amber.QueryOptions{Timeout: 10 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		countTime := time.Since(qStart)
		rows, err := db.Query(q.text, &amber.QueryOptions{Timeout: 10 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d total solutions (counted in %s); first %d:\n",
			n, countTime.Round(time.Microsecond), len(rows))
		for _, r := range rows {
			fmt.Printf("    %s\n", shorten(r))
		}
		fmt.Println()
	}
}

// shorten strips the long LUBM namespace for readable output.
func shorten(r amber.Row) string {
	parts := make([]string, 0, len(r))
	for k, v := range r {
		v = strings.TrimPrefix(v, "http://www.univ-bench.example.org/")
		parts = append(parts, fmt.Sprintf("?%s=%s", k, v))
	}
	return strings.Join(parts, " ")
}

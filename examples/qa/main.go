// Question-answering example: the scenario the paper's introduction
// motivates — a QA system (like QAKiS) translates natural-language
// questions into machine-generated SPARQL queries over an encyclopedic
// knowledge graph, and the engine must answer them whatever their size and
// structure. This example ships a small curated knowledge base and a set
// of canned question→SPARQL translations.
//
//	go run ./examples/qa
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

const kb = `
@prefix r: <http://kb.example.org/resource/> .
@prefix o: <http://kb.example.org/ontology/> .

r:Inception o:directedBy r:Christopher_Nolan .
r:Inception o:starring r:Leonardo_DiCaprio .
r:Inception o:releasedIn "2010" .
r:Interstellar o:directedBy r:Christopher_Nolan .
r:Interstellar o:starring r:Matthew_McConaughey .
r:Interstellar o:releasedIn "2014" .
r:The_Dark_Knight o:directedBy r:Christopher_Nolan .
r:The_Dark_Knight o:starring r:Christian_Bale .
r:The_Dark_Knight o:releasedIn "2008" .
r:Titanic o:directedBy r:James_Cameron .
r:Titanic o:starring r:Leonardo_DiCaprio .
r:Titanic o:releasedIn "1997" .
r:Avatar o:directedBy r:James_Cameron .
r:Avatar o:releasedIn "2009" .

r:Christopher_Nolan o:bornIn r:London .
r:Christopher_Nolan o:citizenOf r:United_Kingdom .
r:James_Cameron o:bornIn r:Kapuskasing .
r:James_Cameron o:citizenOf r:Canada .
r:Leonardo_DiCaprio o:bornIn r:Los_Angeles .
r:Christian_Bale o:bornIn r:Haverfordwest .

r:London o:capitalOf r:United_Kingdom .
r:London o:population "8900000" .
r:Los_Angeles o:locatedIn r:California .
r:California o:locatedIn r:United_States .
r:Kapuskasing o:locatedIn r:Ontario .
r:Ontario o:locatedIn r:Canada .
`

type question struct {
	text   string
	sparql string
}

var questions = []question{
	{
		"Which Nolan films star an actor born in Los Angeles?",
		`PREFIX r: <http://kb.example.org/resource/>
PREFIX o: <http://kb.example.org/ontology/>
SELECT ?film WHERE {
  ?film o:directedBy r:Christopher_Nolan .
  ?film o:starring ?actor .
  ?actor o:bornIn r:Los_Angeles .
}`,
	},
	{
		"Who directed a film released in 2010 and was born in the capital of the UK?",
		`PREFIX r: <http://kb.example.org/resource/>
PREFIX o: <http://kb.example.org/ontology/>
SELECT ?director ?film WHERE {
  ?film o:directedBy ?director .
  ?film o:releasedIn "2010" .
  ?director o:bornIn ?city .
  ?city o:capitalOf r:United_Kingdom .
}`,
	},
	{
		"Which actors appear in films by two different directors?",
		`PREFIX o: <http://kb.example.org/ontology/>
SELECT ?actor ?d1 ?d2 WHERE {
  ?f1 o:starring ?actor .
  ?f2 o:starring ?actor .
  ?f1 o:directedBy ?d1 .
  ?f2 o:directedBy ?d2 .
}`,
	},
	{
		"Directors whose birthplace transitively lies in Canada?",
		`PREFIX r: <http://kb.example.org/resource/>
PREFIX o: <http://kb.example.org/ontology/>
SELECT ?director WHERE {
  ?film o:directedBy ?director .
  ?director o:bornIn ?town .
  ?town o:locatedIn ?region .
  ?region o:locatedIn r:Canada .
}`,
	},
}

func main() {
	db, err := amber.OpenString(kb)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("knowledge base: %d facts, %d entities\n\n", st.Triples, st.Vertices)

	for _, q := range questions {
		fmt.Println("Q:", q.text)
		start := time.Now()
		rows, err := db.Query(q.sparql, &amber.QueryOptions{Timeout: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		// Deduplicate projected answers (question 3 yields symmetric rows).
		seen := map[string]bool{}
		for _, r := range rows {
			parts := make([]string, 0, len(r))
			for k, v := range r {
				parts = append(parts, fmt.Sprintf("%s=%s", k, short(v)))
			}
			line := strings.Join(parts, ", ")
			if !seen[line] {
				seen[line] = true
				fmt.Printf("  A: %s\n", line)
			}
		}
		if len(rows) == 0 {
			fmt.Println("  A: (no answer)")
		}
		fmt.Printf("  [%d rows in %s]\n\n", len(rows), time.Since(start).Round(time.Microsecond))
	}
}

func short(iri string) string {
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

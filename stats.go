package amber

import "time"

// Stats describes a database's contents and offline-stage construction
// cost (the quantities of the paper's Tables 4 and 5).
type Stats struct {
	// Triples is the number of source RDF statements ingested.
	Triples int
	// Vertices is |V|: distinct subject/object IRIs.
	Vertices int
	// Edges is the number of distinct directed vertex pairs with at least
	// one predicate between them (multi-edges collapse).
	Edges int
	// EdgeTypes is |T|: distinct predicates connecting IRIs.
	EdgeTypes int
	// Attributes is |A|: distinct <predicate, literal> tuples.
	Attributes int

	// DatabaseBuildTime and IndexBuildTime are the offline-stage timings.
	DatabaseBuildTime time.Duration
	IndexBuildTime    time.Duration
	// DatabaseBytes and IndexBytes are analytic size estimates of the
	// multigraph and the index ensemble I = {A, S, N}.
	DatabaseBytes int64
	IndexBytes    int64
}

// Stats reports the database's statistics.
func (db *DB) Stats() Stats {
	g := db.store.Graph
	return Stats{
		Triples:           g.NumTriples(),
		Vertices:          g.NumVertices(),
		Edges:             g.NumEdges(),
		EdgeTypes:         g.NumEdgeTypes(),
		Attributes:        g.NumAttrs(),
		DatabaseBuildTime: db.store.Stats.DatabaseTime,
		IndexBuildTime:    db.store.Stats.IndexTime,
		DatabaseBytes:     db.store.Stats.DatabaseBytes,
		IndexBytes:        db.store.Stats.IndexBytes,
	}
}

// Explain renders the engine's execution view of a query: core/satellite
// decomposition, matching order, constraints, and initial candidate set
// size. The format is human-oriented and not stable.
func (db *DB) Explain(sparqlText string) (string, error) {
	return db.store.Explain(sparqlText)
}

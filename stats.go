package amber

import (
	"context"
	"errors"
	"strconv"
	"time"

	"repro/internal/plan"
)

// Stats describes a database's contents and offline-stage construction
// cost (the quantities of the paper's Tables 4 and 5).
type Stats struct {
	// Triples is the number of source RDF statements ingested.
	Triples int
	// Vertices is |V|: distinct subject/object IRIs.
	Vertices int
	// Edges is the number of distinct directed vertex pairs with at least
	// one predicate between them (multi-edges collapse).
	Edges int
	// EdgeTypes is |T|: distinct predicates connecting IRIs.
	EdgeTypes int
	// Attributes is |A|: distinct <predicate, literal> tuples.
	Attributes int

	// DatabaseBuildTime and IndexBuildTime are the offline-stage timings.
	DatabaseBuildTime time.Duration
	IndexBuildTime    time.Duration
	// DatabaseBytes and IndexBytes are analytic size estimates of the
	// multigraph and the index ensemble I = {A, S, N}.
	DatabaseBytes int64
	IndexBytes    int64
}

// Stats reports the database's statistics for the merged live view
// (base generation plus any uncompacted delta overlay). The build
// timings and byte estimates describe the base generation.
func (db *DB) Stats() Stats {
	sn := db.store.Snapshot()
	v := sn.Delta
	return Stats{
		Triples:           v.NumTriples(),
		Vertices:          v.NumVertices(),
		Edges:             v.NumEdges(),
		EdgeTypes:         v.NumEdgeTypes(),
		Attributes:        v.NumAttrs(),
		DatabaseBuildTime: sn.Build.DatabaseTime,
		IndexBuildTime:    sn.Build.IndexTime,
		DatabaseBytes:     sn.Build.DatabaseBytes,
		IndexBytes:        sn.Build.IndexBytes,
	}
}

// Explain renders the planner's execution view of a query: core/satellite
// decomposition, the chosen matching order, per-vertex constraints, and
// estimated vs. actual candidate-set sizes for every core vertex, under
// the default cost-based planner. The format is human-oriented and not
// stable.
func (db *DB) Explain(sparqlText string) (string, error) {
	return db.ExplainPlanner(sparqlText, "")
}

// ExplainPlanner is Explain with an explicit planner: "cost" (the
// default) or "heuristic" (the paper's static Section 5.3 ordering).
func (db *DB) ExplainPlanner(sparqlText, planner string) (string, error) {
	pl, ok := plan.ByName(planner)
	if !ok {
		return "", errors.New("amber: unknown planner " + strconv.Quote(planner))
	}
	pq, err := db.parse(sparqlText)
	if err != nil {
		return "", err
	}
	return db.store.ExplainQuery(pl, pq)
}

// ExplainAnalyze executes the query and renders, per core-vertex
// matching level, the planner's estimated candidate-set size against
// the frontier the engine actually enumerated, plus the engine's effort
// counters — EXPLAIN's estimates validated by a real run. opts bounds
// the execution exactly as in QueryContext (a timed-out run returns
// ErrTimeout and no report). The format is human-oriented and not
// stable.
func (db *DB) ExplainAnalyze(sparqlText string, opts *QueryOptions) (string, error) {
	return db.ExplainAnalyzeContext(context.Background(), sparqlText, "", opts)
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation and an
// explicit planner name ("" = cost-based).
func (db *DB) ExplainAnalyzeContext(ctx context.Context, sparqlText, planner string, opts *QueryOptions) (string, error) {
	pl, ok := plan.ByName(planner)
	if !ok {
		return "", errors.New("amber: unknown planner " + strconv.Quote(planner))
	}
	pq, err := db.parse(sparqlText)
	if err != nil {
		return "", err
	}
	out, err := db.store.ExplainAnalyze(pl, pq, opts.engineOptions(ctx, 0))
	return out, mapExecErr(err)
}

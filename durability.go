package amber

import (
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// ErrDurability marks update failures caused by the write-ahead log —
// disk full, fsync failure, or the log being closed (e.g. during a
// server reload) — rather than by the request itself. Match it with
// errors.Is: such failures are server-side and retryable, unlike parse
// or validation errors.
var ErrDurability = core.ErrDurability

// DurabilityOptions configure a durable database directory. The zero
// value (or a nil pointer) selects fsync=always with default segment
// sizing and no bootstrap source.
type DurabilityOptions struct {
	// Fsync is the WAL fsync policy, in flag syntax: "always" (the
	// default — no acknowledged update is ever lost), "never" (the OS
	// page cache decides; an OS crash may lose recent updates), or
	// "interval=<duration>" (background fsync; a crash loses at most the
	// last interval of updates).
	Fsync string
	// SegmentBytes rotates WAL segments past this size (0 = 16 MiB).
	SegmentBytes int64
	// CheckpointOnCompact checkpoints automatically after every completed
	// compaction, so the WAL stays bounded by roughly the compaction
	// threshold instead of growing forever.
	CheckpointOnCompact bool
	// SourcePath is an RDF file (N-Triples / prefixed Turtle) that seeds
	// the database when the directory holds no checkpointed snapshot.
	// Bootstrap, when set, takes precedence.
	SourcePath string
	// Bootstrap loads the initial database when the directory holds no
	// checkpointed snapshot (e.g. from a binary snapshot elsewhere). WAL
	// records always replay on top of whichever base is loaded.
	Bootstrap func() (*DB, error)
	// CompressSegments gzips sealed WAL segments in the background;
	// replay and replication reads handle the archives transparently.
	CompressSegments bool
	// WrapWALFile is a fault-injection hook wrapping each active WAL
	// segment file (see wal.Options.WrapFile); nil in production.
	WrapWALFile func(*os.File) wal.SegmentFile
}

// OpenDurable opens a crash-safe database rooted at dir: the directory
// holds a checkpointed base snapshot (once DB.Checkpoint has run) plus
// the write-ahead log segments. Opening loads the snapshot — or the
// bootstrap source, or an empty store — and then replays every update
// logged since the last checkpoint, so acknowledged writes survive a
// crash or restart without an explicit Save.
//
// Precedence: a checkpointed snapshot in dir supersedes the bootstrap
// source (it is strictly newer — it folded the source plus logged
// updates at checkpoint time).
func OpenDurable(dir string, opts *DurabilityOptions) (*DB, error) {
	var o DurabilityOptions
	if opts != nil {
		o = *opts
	}
	policy, interval, err := wal.ParseSyncPolicy(o.Fsync)
	if err != nil {
		return nil, err
	}

	var db *DB
	snapPath := core.CheckpointSnapshotPath(dir)
	if _, serr := os.Stat(snapPath); serr == nil {
		db, err = OpenSnapshotFile(snapPath)
	} else if !os.IsNotExist(serr) {
		// A checkpoint may exist but be unreadable (EACCES, EIO): falling
		// back to the bootstrap source would silently resurrect the
		// pre-checkpoint state, so refuse instead.
		return nil, serr
	} else if o.Bootstrap != nil {
		db, err = o.Bootstrap()
	} else if o.SourcePath != "" {
		db, err = OpenFile(o.SourcePath)
	} else {
		st, nerr := core.NewStore(nil)
		db, err = &DB{store: st}, nerr
	}
	if err != nil {
		return nil, err
	}

	// Before replay, the store holds exactly the base. A non-empty base is
	// state the WAL cannot reconstruct — recorded so the replication
	// primary makes fresh followers bootstrap from a snapshot.
	baseLoaded := db.Stats().Triples > 0

	if _, err := db.store.AttachWAL(dir, core.WALOptions{
		Policy:              policy,
		Interval:            interval,
		SegmentBytes:        o.SegmentBytes,
		CheckpointOnCompact: o.CheckpointOnCompact,
		Compress:            o.CompressSegments,
		WrapFile:            o.WrapWALFile,
		BaseLoaded:          baseLoaded,
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// Sync forces the write-ahead log to stable storage, whatever the fsync
// policy — the explicit durability barrier for fsync=never or
// fsync=interval databases. A database without a WAL returns nil.
func (db *DB) Sync() error {
	return db.store.SyncWAL()
}

// Checkpoint writes the merged state as the directory's base snapshot
// (atomically, via rename) and truncates the WAL segments it covers.
// The next OpenDurable loads the snapshot and replays only updates
// logged after the checkpoint. Returns core.ErrNotDurable when the
// database was not opened durably.
func (db *DB) Checkpoint() error {
	return db.store.Checkpoint()
}

// Close syncs and closes the write-ahead log. The database stays
// readable, but further updates fail — a durable database never
// acknowledges a write it cannot log. Databases without a WAL return
// nil and remain writable.
func (db *DB) Close() error {
	return db.store.CloseWAL()
}

// DurabilityStats describes the database's write-ahead durability state.
type DurabilityStats struct {
	// Enabled reports whether the database was opened durably; the other
	// fields are zero when it is false.
	Enabled bool
	// Dir is the durable directory; Policy the fsync policy in flag
	// syntax ("always", "never", "interval=<d>").
	Dir    string
	Policy string
	// WALBytes and Segments size the live log.
	WALBytes int64
	Segments int
	// LastSeq is the newest logged record's sequence number;
	// CheckpointSeq the sequence through which the log is truncated.
	LastSeq       uint64
	CheckpointSeq uint64
	// Appends and Fsyncs count log operations since open; Replayed is
	// how many records replayed when the database was opened.
	Appends  uint64
	Fsyncs   uint64
	Replayed int
	// Checkpoints counts checkpoints since open; LastCheckpoint is when
	// the most recent finished (zero time if none).
	Checkpoints    uint64
	LastCheckpoint time.Time
	// LastCheckpointError reports the most recent automatic checkpoint
	// failure ("" when none, or once one succeeds again).
	LastCheckpointError string
	// BaseLoaded reports that opening loaded a non-empty base (checkpoint
	// snapshot or bootstrap source) — state the WAL alone cannot
	// reconstruct, so replication followers must bootstrap from a
	// snapshot rather than stream from sequence zero.
	BaseLoaded bool
}

// Durability snapshots the durability counters.
func (db *DB) Durability() DurabilityStats {
	di := db.store.DurabilityInfo()
	return DurabilityStats{
		Enabled:             di.Enabled,
		Dir:                 di.Dir,
		Policy:              di.Policy,
		WALBytes:            di.WALBytes,
		Segments:            di.Segments,
		LastSeq:             di.LastSeq,
		CheckpointSeq:       di.CheckpointSeq,
		Appends:             di.Appends,
		Fsyncs:              di.Fsyncs,
		Replayed:            di.Replayed,
		Checkpoints:         di.Checkpoints,
		LastCheckpoint:      di.LastCheckpoint,
		LastCheckpointError: di.LastCheckpointError,
		BaseLoaded:          di.BaseLoaded,
	}
}

package amber

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/core"
)

// Rows is a pull-based cursor over a query's solutions, in the style of
// database/sql: Next advances, Binding/Scan read the current row, Err
// reports what ended the iteration, Close releases resources. A Rows is
// not safe for concurrent use.
//
//	rows, err := db.QueryContext(ctx, query, nil)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var who Term
//		if err := rows.Scan(&who); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Execution runs in a background goroutine that the cursor pulls from;
// Close cancels it, so abandoning a large result set does not leak work.
type Rows struct {
	shape  *bindingShape
	parent context.Context // the caller's context, for Close's error triage
	cancel context.CancelFunc
	ch     chan Binding
	errc   chan error

	cur      Binding
	started  bool
	err      error
	finished bool
	closed   bool
}

// queryRows starts the producer goroutine for one execution.
func queryRows(ctx context.Context, p *Prepared, opts *QueryOptions) *Rows {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	r := &Rows{
		shape:  p.shape,
		parent: parent,
		cancel: cancel,
		ch:     make(chan Binding),
		errc:   make(chan error, 1),
	}
	go func() {
		qerr := p.each(ctx, opts, func(b Binding) bool {
			select {
			case r.ch <- b:
				return true
			case <-ctx.Done():
				return false
			}
		})
		r.errc <- qerr
		close(r.ch)
	}()
	return r
}

// Vars returns the projected variable names in SELECT order.
func (r *Rows) Vars() []string { return r.shape.vars }

// Next advances to the next row, reporting false at the end of the
// result set or on error (consult Err to distinguish).
func (r *Rows) Next() bool {
	if r.finished || r.closed {
		return false
	}
	b, ok := <-r.ch
	if !ok {
		r.finish()
		return false
	}
	r.cur, r.started = b, true
	return true
}

// finish collects the producer's verdict; called once at end of stream.
func (r *Rows) finish() {
	if r.finished {
		return
	}
	r.finished = true
	r.err = <-r.errc
}

// Binding returns the current row. It is only valid after a true Next.
func (r *Rows) Binding() Binding { return r.cur }

// Scan copies the current row into dest, one target per projected
// variable in SELECT order. Supported targets: *Term (the full typed
// term; zero Term when unbound), *string (the term's text — IRI, blank
// label or lexical form; empty when unbound), *any (Term or nil), and
// nil to skip a column.
func (r *Rows) Scan(dest ...any) error {
	if !r.started {
		return errors.New("amber: Scan called before Next")
	}
	if len(dest) != len(r.shape.vars) {
		return fmt.Errorf("amber: Scan expected %d destinations, got %d", len(r.shape.vars), len(dest))
	}
	for i, d := range dest {
		t, bound := r.cur.At(i)
		switch d := d.(type) {
		case nil:
		case *Term:
			*d = t
		case *string:
			*d = t.Value
		case *any:
			if bound {
				*d = t
			} else {
				*d = nil
			}
		default:
			return fmt.Errorf("amber: unsupported Scan destination %T for ?%s", d, r.shape.vars[i])
		}
	}
	return nil
}

// Err returns the error that ended iteration, if any. Close-induced
// cancellation is not an error; a parent-context cancellation is.
func (r *Rows) Err() error { return r.err }

// Close cancels the execution and releases the cursor. It is idempotent
// and safe to call at any point; rows already read remain valid.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cancel()
	// Drain so the producer's send never blocks, then collect its verdict.
	for range r.ch {
	}
	r.finish()
	// The cancellation this Close just triggered is not a query failure —
	// but a cancellation of the caller's own context is, and must survive
	// Close (the caller may check Err or Close's return to decide whether
	// the rows it read were the complete result set).
	if errors.Is(r.err, context.Canceled) && r.parent.Err() == nil {
		r.err = nil
	}
	return r.err
}

// ---- context-first query API -------------------------------------------

// QueryContext runs a SPARQL SELECT query and returns a cursor over its
// solutions. The context cancels in-flight execution: when it is done,
// the engine aborts within its polling interval and the cursor's Err
// reports ctx.Err(). opts may be nil; a non-zero opts.Timeout applies in
// addition to any context deadline (the tighter bound wins) and maps to
// ErrTimeout.
func (db *DB) QueryContext(ctx context.Context, sparqlText string, opts *QueryOptions) (*Rows, error) {
	p, err := db.PrepareContext(ctx, sparqlText)
	if err != nil {
		return nil, err
	}
	return p.QueryContext(ctx, opts)
}

// PrepareContext parses and prepares a query for repeated execution; see
// Prepare. The context only gates preparation (parsing and planning are
// CPU-bound and quick); pass the per-execution context to QueryContext.
func (db *DB) PrepareContext(ctx context.Context, sparqlText string) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return db.Prepare(sparqlText)
}

// QueryContext executes the prepared query and returns a cursor; see
// DB.QueryContext.
func (p *Prepared) QueryContext(ctx context.Context, opts *QueryOptions) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return queryRows(ctx, p, opts), nil
}

// All returns the query's solutions as a Go 1.23 range-over-func
// sequence of (Binding, error) pairs:
//
//	for b, err := range prepared.All(ctx, nil) {
//		if err != nil { ... }
//		name, _ := b.Get("name")
//	}
//
// A non-nil error is yielded at most once, as the final element. Breaking
// out of the loop stops execution immediately — no goroutine or cursor
// needs closing.
func (p *Prepared) All(ctx context.Context, opts *QueryOptions) iter.Seq2[Binding, error] {
	return func(yield func(Binding, error) bool) {
		stopped := false
		err := p.each(ctx, opts, func(b Binding) bool {
			if !yield(b, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Binding{}, err)
		}
	}
}

// All is the range-over-func form of QueryContext; see Prepared.All.
func (db *DB) All(ctx context.Context, sparqlText string, opts *QueryOptions) iter.Seq2[Binding, error] {
	p, err := db.PrepareContext(ctx, sparqlText)
	if err != nil {
		return func(yield func(Binding, error) bool) {
			yield(Binding{}, err)
		}
	}
	return p.All(ctx, opts)
}

// each streams typed rows to fn, stopping early when fn returns false.
// It is the common core of every execution surface.
func (p *Prepared) each(ctx context.Context, opts *QueryOptions, fn func(Binding) bool) error {
	err := p.cp.Execute(opts.engineOptions(ctx, 0), func(sol core.Solution) bool {
		return fn(p.shape.row(sol))
	})
	return mapExecErr(err)
}

// QueryIterContext streams typed rows to fn, stopping early when fn
// returns false — the zero-allocation-per-row path the HTTP server uses.
func (p *Prepared) QueryIterContext(ctx context.Context, opts *QueryOptions, fn func(Binding) bool) error {
	return p.each(ctx, opts, fn)
}

// ---- ASK ----------------------------------------------------------------

// IsAsk reports whether the prepared query is an ASK query. Execution
// entry points still work on one (it behaves as a SELECT with an empty
// projection); Ask is the intended way to run it.
func (p *Prepared) IsAsk() bool { return p.cp.Query().Ask }

// Ask reports whether the query has at least one solution. The engine
// short-circuits after the first match (a count with limit one), so ASK
// on a huge result set is cheap. Any query form is accepted, not only
// ASK syntax.
func (p *Prepared) Ask(opts *QueryOptions) (bool, error) {
	return p.AskContext(context.Background(), opts)
}

// AskContext is Ask with cancellation; see QueryContext for context
// semantics.
func (p *Prepared) AskContext(ctx context.Context, opts *QueryOptions) (bool, error) {
	ok, err := p.cp.Ask(opts.engineOptions(ctx, 0))
	return ok, mapExecErr(err)
}

// Ask parses and runs a query as an existence check; see Prepared.Ask.
func (db *DB) Ask(sparqlText string, opts *QueryOptions) (bool, error) {
	return db.AskContext(context.Background(), sparqlText, opts)
}

// AskContext is Ask with cancellation.
func (db *DB) AskContext(ctx context.Context, sparqlText string, opts *QueryOptions) (bool, error) {
	p, err := db.PrepareContext(ctx, sparqlText)
	if err != nil {
		return false, err
	}
	return p.AskContext(ctx, opts)
}

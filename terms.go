package amber

import (
	"repro/internal/core"
	"repro/internal/rdf"
)

// Term is one RDF term of a query solution: an IRI, a blank node, or a
// typed literal. Kind discriminates; Value holds the IRI text, the blank
// label (with its "_:" prefix), or the literal's lexical form; Datatype
// and Lang carry a literal's type annotation (at most one is non-empty —
// a plain literal has neither and denotes an xsd:string).
//
// Term is an alias of the engine's internal term type, so terms returned
// by queries can be passed straight back into Mutate via Triple.
type Term = rdf.Term

// Triple is one RDF statement, as accepted by DB.Mutate.
type Triple = rdf.Triple

// TermKind discriminates the kinds of Term.
type TermKind = rdf.TermKind

// Term kinds.
const (
	// IRI is an Internationalized Resource Identifier.
	IRI = rdf.IRI
	// Literal is a typed literal.
	Literal = rdf.Literal
	// Blank is a blank node.
	Blank = rdf.Blank
)

// Term constructors, re-exported for building triples and comparing
// query results.
var (
	// NewIRI returns an IRI term.
	NewIRI = rdf.NewIRI
	// NewLiteral returns a plain (xsd:string) literal term.
	NewLiteral = rdf.NewLiteral
	// NewTypedLiteral returns a literal with an explicit datatype IRI.
	NewTypedLiteral = rdf.NewTypedLiteral
	// NewLangLiteral returns a language-tagged literal.
	NewLangLiteral = rdf.NewLangLiteral
	// NewBlank returns a blank-node term.
	NewBlank = rdf.NewBlank
)

// Binding is one solution row: the projected variables in SELECT order,
// each bound to a Term or explicitly unbound (a variable that does not
// occur in the matched UNION branch). The zero value is an empty row.
//
// A Binding is immutable and remains valid after the query finishes.
type Binding struct {
	vars  []string       // projection, shared across rows
	index map[string]int // name → position, shared across rows
	terms []Term         // parallel to vars; zero Term = unbound
}

// Vars returns the projected variable names in SELECT order. The slice
// is shared — callers must not modify it.
func (b Binding) Vars() []string { return b.vars }

// Len returns the number of projected variables.
func (b Binding) Len() int { return len(b.vars) }

// Get returns the term bound to the named variable. ok is false when the
// variable is unbound in this row (or not projected at all) — unlike the
// legacy Row map, an unbound variable is distinguishable from a literal
// whose lexical form is empty.
func (b Binding) Get(name string) (t Term, ok bool) {
	i, found := b.index[name]
	if !found {
		return Term{}, false
	}
	return b.At(i)
}

// Bound reports whether the named variable is bound in this row.
func (b Binding) Bound(name string) bool {
	_, ok := b.Get(name)
	return ok
}

// At returns the term at projection position i; ok is false when the
// variable is unbound in this row.
func (b Binding) At(i int) (t Term, ok bool) {
	if i < 0 || i >= len(b.terms) {
		return Term{}, false
	}
	t = b.terms[i]
	return t, !t.IsZero()
}

// Map materializes the row as a name → Term map, omitting unbound
// variables. Each call allocates a fresh map.
func (b Binding) Map() map[string]Term {
	m := make(map[string]Term, len(b.vars))
	for i, v := range b.vars {
		if t := b.terms[i]; !t.IsZero() {
			m[v] = t
		}
	}
	return m
}

// bindingShape is the per-execution shared part of every Binding.
type bindingShape struct {
	vars  []string
	index map[string]int
}

func newBindingShape(vars []string) *bindingShape {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return &bindingShape{vars: vars, index: idx}
}

// row builds one Binding from an engine solution.
func (s *bindingShape) row(sol core.Solution) Binding {
	terms := make([]Term, len(s.vars))
	for i, v := range s.vars {
		terms[i] = sol[v] // zero Term when absent (unbound)
	}
	return Binding{vars: s.vars, index: s.index, terms: terms}
}

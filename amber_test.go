package amber

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := OpenString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenAndStats(t *testing.T) {
	db := openDB(t)
	st := db.Stats()
	if st.Triples != 16 || st.Vertices != 9 || st.Edges != 12 || st.EdgeTypes != 9 || st.Attributes != 3 {
		t.Errorf("Stats = %+v", st)
	}
	if st.DatabaseBytes <= 0 || st.IndexBytes <= 0 {
		t.Error("size estimates missing")
	}
}

func TestOpenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.nt")
	if err := os.WriteFile(path, []byte(figure1), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Triples != 16 {
		t.Error("file load incomplete")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.nt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := OpenString("this is not RDF\n"); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestQuery(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?where WHERE {
  ?who y:wasBornIn ?where .
  ?who y:diedIn ?where .
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0]["who"] != "http://dbpedia.org/resource/Amy_Winehouse" {
		t.Errorf("who = %q", rows[0]["who"])
	}
	if rows[0]["where"] != "http://dbpedia.org/resource/London" {
		t.Errorf("where = %q", rows[0]["where"])
	}
}

func TestQueryIterEarlyStop(t *testing.T) {
	db := openDB(t)
	n := 0
	err := db.QueryIter(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, nil, func(Row) bool {
		n++
		return false
	})
	if err != nil || n != 1 {
		t.Errorf("n = %d, err = %v", n, err)
	}
}

func TestCount(t *testing.T) {
	db := openDB(t)
	n, err := db.Count(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestLimits(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, &QueryOptions{Limit: 2})
	if err != nil || len(rows) != 2 {
		t.Errorf("rows = %d, %v", len(rows), err)
	}
	rows, err = db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b } LIMIT 1`, &QueryOptions{Limit: 5})
	if err != nil || len(rows) != 1 {
		t.Errorf("query LIMIT rows = %d, %v", len(rows), err)
	}
}

func TestTimeout(t *testing.T) {
	db := openDB(t)
	_, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, &QueryOptions{Timeout: -time.Second})
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestQueryParseError(t *testing.T) {
	db := openDB(t)
	if _, err := db.Query(`SELEKT nonsense`, nil); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := db.Count(`SELEKT nonsense`, nil); err == nil {
		t.Error("parse error not surfaced by Count")
	}
}

func TestNoResults(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?who WHERE { ?who y:wasBornIn x:United_States }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v, want none", rows)
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := openDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := db.Query(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, nil)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCountParallelFacade(t *testing.T) {
	db := openDB(t)
	q := `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:livedIn ?b }`
	n, err := db.CountParallel(q, nil, 4)
	if err != nil || n != 3 {
		t.Errorf("CountParallel = %d, %v; want 3", n, err)
	}
	// Extension query falls back to the sequential path.
	n, err = db.CountParallel(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?b WHERE { ?a y:livedIn ?b }`, nil, 4)
	if err != nil || n != 2 {
		t.Errorf("CountParallel distinct = %d, %v; want 2", n, err)
	}
	if _, err := db.CountParallel(`SELEKT`, nil, 2); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestWithPrefixes(t *testing.T) {
	db := openDB(t).WithPrefixes(map[string]string{
		"y": "http://dbpedia.org/ontology/",
		"x": "http://dbpedia.org/resource/",
	})
	// No PREFIX declarations needed.
	rows, err := db.Query(`SELECT ?who WHERE { ?who y:livedIn x:United_States }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rows))
	}
	// In-query declarations override defaults.
	rows, err = db.Query(`
PREFIX y: <http://nowhere.example/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("override rows = %d, want 0 (unknown namespace)", len(rows))
	}
	// The original handle is unaffected.
	orig := openDB(t)
	if _, err := orig.Query(`SELECT ?who WHERE { ?who y:livedIn x:United_States }`, nil); err == nil {
		t.Error("unbound prefix accepted on original handle")
	}
}

func TestPrepared(t *testing.T) {
	db := openDB(t)
	p, err := db.Prepare(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?where WHERE {
  ?who y:wasBornIn ?where .
  ?who y:diedIn ?where .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if proj := p.Projection(); len(proj) != 2 || proj[0] != "who" || proj[1] != "where" {
		t.Errorf("Projection = %v", proj)
	}
	// Executing the same plan repeatedly with different options yields
	// consistent results.
	for i := 0; i < 3; i++ {
		rows, err := p.Query(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0]["who"] != "http://dbpedia.org/resource/Amy_Winehouse" {
			t.Errorf("run %d: rows = %v", i, rows)
		}
	}
	n, err := p.Count(nil)
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
	if _, err := p.Query(&QueryOptions{Timeout: -time.Second}); err != ErrTimeout {
		t.Errorf("timeout err = %v, want ErrTimeout", err)
	}
}

func TestPreparedLimitAndParallelCount(t *testing.T) {
	db := openDB(t)
	p, err := db.Prepare(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	// The query's LIMIT and the options' limit compose: tighter wins.
	rows, err := p.Query(&QueryOptions{Limit: 5})
	if err != nil || len(rows) != 2 {
		t.Errorf("rows = %d, %v; want 2", len(rows), err)
	}
	rows, err = p.Query(&QueryOptions{Limit: 1})
	if err != nil || len(rows) != 1 {
		t.Errorf("rows = %d, %v; want 1", len(rows), err)
	}
	n, err := p.Count(nil)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v; want 2", n, err)
	}
	for _, workers := range []int{1, 4} {
		n, err := p.CountParallel(nil, workers)
		if err != nil || n != 2 {
			t.Errorf("CountParallel(%d) = %d, %v; want 2", workers, n, err)
		}
	}
}

func TestPreparedConcurrent(t *testing.T) {
	db := openDB(t)
	p, err := db.Prepare(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := p.Query(nil)
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != 3 {
				errs <- fmt.Errorf("rows = %d, want 3", len(rows))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package amber

import (
	"io"
	"os"

	"repro/internal/core"
)

// Save writes a binary snapshot of the database's multigraph to w —
// the merged live view, including every update applied so far, whether
// or not compaction has folded it into the base generation yet.
// Snapshots load much faster than re-parsing N-Triples; the index
// ensemble is rebuilt deterministically on load.
func (db *DB) Save(w io.Writer) error {
	return db.store.Save(w)
}

// SaveFile writes a snapshot to a file.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenSnapshot loads a database from a snapshot produced by Save.
func OpenSnapshot(r io.Reader) (*DB, error) {
	st, err := core.LoadStore(r)
	if err != nil {
		return nil, err
	}
	return &DB{store: st}, nil
}

// OpenSnapshotFile loads a database from a snapshot file.
func OpenSnapshotFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenSnapshot(f)
}

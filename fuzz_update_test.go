package amber

import (
	"testing"
)

// FuzzUpdate is the parse→apply→count smoke for the live-update
// subsystem: any byte string either fails to parse as SPARQL Update or
// applies cleanly, after which the store must still answer queries and
// survive a compaction. Invariant violations are panics/data races, not
// output comparisons.
func FuzzUpdate(f *testing.F) {
	seeds := []string{
		`INSERT DATA { <http://s> <http://p> <http://o> . }`,
		`DELETE DATA { <http://s> <http://p> <http://o> . }`,
		`PREFIX y: <http://dbpedia.org/ontology/>
		 PREFIX x: <http://dbpedia.org/resource/>
		 INSERT DATA { x:London y:hasStadium x:NewStadium . } ;
		 DELETE DATA { x:London y:isPartOf x:England . }`,
		`INSERT DATA { <http://s> <http://p> "literal" ; <http://q> <http://o> . }`,
		`CLEAR ALL`,
		`CLEAR DEFAULT ; INSERT DATA { <http://a> <http://b> <http://c> . }`,
		`INSERT DATA { ?x <http://p> <http://o> . }`,
		`INSERT DATA { <http://s> <http://p> <http://o> `,
		`LOAD <file:///dev/null>`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	query := `SELECT ?s ?o WHERE { ?s <http://p> ?o . }`
	f.Fuzz(func(t *testing.T, src string) {
		db, err := OpenString(figure1)
		if err != nil {
			t.Fatal(err)
		}
		db.SetCompactThreshold(-1)
		if err := db.Update(src); err != nil {
			return // rejected input is fine; crashing is not
		}
		n1, err := db.Count(query, nil)
		if err != nil {
			t.Fatalf("count after update: %v", err)
		}
		if err := db.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		n2, err := db.Count(query, nil)
		if err != nil {
			t.Fatalf("count after compaction: %v", err)
		}
		if n1 != n2 {
			t.Fatalf("compaction changed count: %d → %d (update %q)", n1, n2, src)
		}
	})
}

package amber

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

// typedFixture holds an IRI-valued edge, a typed literal, a language-
// tagged literal, a plain literal, and a predicate with both IRI and
// literal objects.
const typedFixture = `
<http://x/alice> <http://p/knows> <http://x/bob> .
<http://x/alice> <http://p/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://p/greet> "hi"@en .
<http://x/alice> <http://p/name> "Alice" .
<http://x/bob> <http://p/name> "Bob" .
<http://x/bob> <http://p/mixed> <http://x/alice> .
<http://x/bob> <http://p/mixed> "both"@fr .
`

func openTyped(t *testing.T) *DB {
	t.Helper()
	db, err := OpenString(typedFixture)
	if err != nil {
		t.Fatalf("OpenString: %v", err)
	}
	return db
}

func TestLiteralBindings(t *testing.T) {
	db := openTyped(t)

	get := func(query string) Term {
		t.Helper()
		var got []Term
		for b, err := range db.All(context.Background(), query, nil) {
			if err != nil {
				t.Fatalf("%s: %v", query, err)
			}
			if v, ok := b.Get("v"); ok {
				got = append(got, v)
			}
		}
		if len(got) != 1 {
			t.Fatalf("%s: got %d bindings, want 1: %v", query, len(got), got)
		}
		return got[0]
	}

	if got, want := get(`SELECT ?v WHERE { <http://x/alice> <http://p/age> ?v }`),
		NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"); got != want {
		t.Errorf("typed literal = %v, want %v", got, want)
	}
	if got, want := get(`SELECT ?v WHERE { <http://x/alice> <http://p/greet> ?v }`),
		NewLangLiteral("hi", "en"); got != want {
		t.Errorf("lang literal = %v, want %v", got, want)
	}
	if got, want := get(`SELECT ?v WHERE { ?s <http://p/age> ?v }`),
		NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"); got != want {
		t.Errorf("var-subject literal = %v, want %v", got, want)
	}
	if got, want := get(`SELECT ?v WHERE { <http://x/alice> <http://p/knows> ?v }`),
		NewIRI("http://x/bob"); got != want {
		t.Errorf("IRI binding = %v, want %v", got, want)
	}
}

// TestMixedPredicate checks that a predicate carrying both IRI and
// literal objects binds both through one variable.
func TestMixedPredicate(t *testing.T) {
	db := openTyped(t)
	rows, err := db.Query(`SELECT ?v WHERE { <http://x/bob> <http://p/mixed> ?v }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("mixed predicate rows = %d, want 2: %v", len(rows), rows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r["v"]] = true
	}
	if !seen["http://x/alice"] || !seen["both"] {
		t.Errorf("mixed bindings = %v", seen)
	}
}

// TestLiteralJoinVariablesStayVertices: a variable that joins across
// patterns binds vertices only — the literal extension must not leak
// into core matching.
func TestLiteralJoinVariablesStayVertices(t *testing.T) {
	db := openTyped(t)
	rows, err := db.Query(`SELECT ?v WHERE {
		<http://x/bob> <http://p/mixed> ?v .
		?v <http://p/knows> <http://x/bob> .
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["v"] != "http://x/alice" {
		t.Errorf("join rows = %v", rows)
	}
}

func TestUnboundIsExplicit(t *testing.T) {
	db := openTyped(t)
	q := `SELECT ?s ?v WHERE {
		{ ?s <http://p/knows> <http://x/bob> } UNION { ?s <http://p/knows> ?v }
	}`
	var sawUnbound bool
	for b, err := range db.All(context.Background(), q, nil) {
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get("v"); !ok {
			sawUnbound = true
			if b.Bound("v") {
				t.Error("Bound disagrees with Get")
			}
		}
	}
	if !sawUnbound {
		t.Error("no unbound binding observed across UNION branches")
	}
}

func TestRowsCursor(t *testing.T) {
	db := openTyped(t)
	rows, err := db.QueryContext(context.Background(),
		`SELECT ?s ?n WHERE { ?s <http://p/name> ?n }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Vars(); len(got) != 2 || got[0] != "s" || got[1] != "n" {
		t.Fatalf("Vars = %v", got)
	}
	names := map[string]string{}
	for rows.Next() {
		var s, n Term
		if err := rows.Scan(&s, &n); err != nil {
			t.Fatal(err)
		}
		if s.Kind != IRI || n.Kind != Literal {
			t.Errorf("kinds = %v %v", s.Kind, n.Kind)
		}
		names[s.Value] = n.Value
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names["http://x/alice"] != "Alice" || names["http://x/bob"] != "Bob" {
		t.Errorf("names = %v", names)
	}
	if err := rows.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestRowsEarlyClose(t *testing.T) {
	db := openTyped(t)
	rows, err := db.QueryContext(context.Background(),
		`SELECT ?s ?o WHERE { ?s <http://p/name> ?o }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("Next = false, err %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Errorf("Close after partial read = %v", err)
	}
	if rows.Next() {
		t.Error("Next after Close = true")
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after Close = %v", err)
	}
}

func TestRowsScanString(t *testing.T) {
	db := openTyped(t)
	rows, err := db.QueryContext(context.Background(),
		`SELECT ?v WHERE { <http://x/alice> <http://p/age> ?v }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("Next = false, err %v", rows.Err())
	}
	var s string
	if err := rows.Scan(&s); err != nil {
		t.Fatal(err)
	}
	if s != "42" {
		t.Errorf("string scan = %q (lexical form expected)", s)
	}
	if err := rows.Scan(new(int)); err == nil {
		t.Error("Scan into *int did not error")
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db := openTyped(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, `SELECT ?s WHERE { ?s <http://p/name> ?o }`, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled QueryContext err = %v", err)
	}
	var count int
	for _, err := range db.All(ctx, `SELECT ?s WHERE { ?s <http://p/name> ?o }`, nil) {
		if err == nil {
			count++
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("All err = %v", err)
		}
	}
	if count != 0 {
		t.Errorf("cancelled All yielded %d rows", count)
	}
}

func TestContextDeadlineMapsToTimeout(t *testing.T) {
	db := openTyped(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := db.QueryContext(ctx, `SELECT ?s WHERE { ?s <http://p/name> ?o }`, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired-deadline QueryContext err = %v", err)
	}
}

func TestAsk(t *testing.T) {
	db := openTyped(t)
	cases := []struct {
		query string
		want  bool
	}{
		{`ASK { <http://x/alice> <http://p/knows> <http://x/bob> }`, true},
		{`ASK WHERE { <http://x/bob> <http://p/knows> <http://x/alice> }`, false},
		{`ASK { ?s <http://p/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> }`, true},
		{`ASK { ?s <http://p/age> "42" }`, false}, // plain "42" is a different term
		{`ASK { ?s <http://p/greet> "hi"@en }`, true},
		{`ASK { ?s <http://p/greet> "hi" }`, false},
	}
	for _, c := range cases {
		got, err := db.Ask(c.query, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		if got != c.want {
			t.Errorf("Ask(%s) = %v, want %v", c.query, got, c.want)
		}
	}
	p, err := db.Prepare(`ASK { ?s <http://p/name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsAsk() {
		t.Error("IsAsk = false for ASK query")
	}
	if ok, err := p.Ask(nil); err != nil || !ok {
		t.Errorf("prepared Ask = %v, %v", ok, err)
	}
}

// TestLegacyRowFlattening: the old Row surface keeps working, flattening
// typed literals to their lexical form and unbound variables to "".
func TestLegacyRowFlattening(t *testing.T) {
	db := openTyped(t)
	rows, err := db.Query(`SELECT ?v WHERE { <http://x/alice> <http://p/age> ?v }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["v"] != "42" {
		t.Errorf("legacy rows = %v", rows)
	}
}

// TestTypedTermsSurviveSnapshot: save → load keeps datatypes and tags.
func TestTypedTermsSurviveSnapshot(t *testing.T) {
	db := openTyped(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Ask(`ASK { ?s <http://p/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> }`, nil)
	if err != nil || !got {
		t.Errorf("typed ask after snapshot round trip = %v, %v", got, err)
	}
	rows, err := loaded.QueryContext(context.Background(),
		`SELECT ?v WHERE { <http://x/alice> <http://p/greet> ?v }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row, err %v", rows.Err())
	}
	var v Term
	if err := rows.Scan(&v); err != nil {
		t.Fatal(err)
	}
	if want := NewLangLiteral("hi", "en"); v != want {
		t.Errorf("lang literal after snapshot = %v, want %v", v, want)
	}
}

// TestTypedTermsThroughUpdate: live-inserted typed literals are queryable
// and keep their types through compaction.
func TestTypedTermsThroughUpdate(t *testing.T) {
	db := openTyped(t)
	err := db.Update(`INSERT DATA {
		<http://x/carol> <http://p/age> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
		<http://x/carol> <http://p/greet> "hej"@sv .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want := NewTypedLiteral("7", "http://www.w3.org/2001/XMLSchema#integer")
	check := func(stage string) {
		t.Helper()
		var got []Term
		for b, err := range db.All(context.Background(),
			`SELECT ?v WHERE { <http://x/carol> <http://p/age> ?v }`, nil) {
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			if v, ok := b.Get("v"); ok {
				got = append(got, v)
			}
		}
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s: bindings = %v, want [%v]", stage, got, want)
		}
	}
	check("overlay")
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	check("compacted")
}

// TestFilterEqualityAcrossPredicates: FILTER (?a = ?b) over literal
// bindings compares terms, not interned ids — the same literal reached
// through two predicates must compare equal (review regression).
func TestFilterEqualityAcrossPredicates(t *testing.T) {
	db, err := OpenString(`
<http://x/s> <http://p/a> "42" .
<http://x/t> <http://p/b> "42" .
<http://x/t> <http://p/b> "43" .
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT ?o ?u WHERE {
		<http://x/s> <http://p/a> ?o .
		<http://x/t> <http://p/b> ?u .
		FILTER (?o = ?u)
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["o"] != "42" || rows[0]["u"] != "42" {
		t.Errorf("cross-predicate equality rows = %v, want one 42/42 row", rows)
	}
	ne, err := db.Query(`SELECT ?o ?u WHERE {
		<http://x/s> <http://p/a> ?o .
		<http://x/t> <http://p/b> ?u .
		FILTER (?o != ?u)
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ne) != 1 || ne[0]["u"] != "43" {
		t.Errorf("cross-predicate inequality rows = %v, want one 42/43 row", ne)
	}
}

// TestMutateRejectsMalformedLiteral: a literal carrying both a datatype
// and a language tag violates the term invariant and must be rejected at
// the mutation boundary — otherwise Save would write a snapshot the same
// build refuses to reopen (review regression).
func TestMutateRejectsMalformedLiteral(t *testing.T) {
	db := openTyped(t)
	bad := Triple{
		S: NewIRI("http://x/s"), P: NewIRI("http://p/q"),
		O: Term{Kind: Literal, Value: "x", Datatype: "http://ex/dt", Lang: "en"},
	}
	if err := db.Mutate([]Triple{bad}, nil); err == nil {
		t.Fatal("Mutate accepted a literal with both datatype and language tag")
	}
}

// TestExplicitXSDStringNormalizes: Term{Datatype: xsd:string} interns
// identically to the plain literal, live and across WAL replay.
func TestExplicitXSDStringNormalizes(t *testing.T) {
	db := openTyped(t)
	explicit := Triple{
		S: NewIRI("http://x/s2"), P: NewIRI("http://p/q"),
		O: Term{Kind: Literal, Value: "v", Datatype: "http://www.w3.org/2001/XMLSchema#string"},
	}
	if err := db.Mutate([]Triple{explicit}, nil); err != nil {
		t.Fatal(err)
	}
	ok, err := db.Ask(`ASK { <http://x/s2> <http://p/q> "v" }`, nil)
	if err != nil || !ok {
		t.Errorf("explicit xsd:string not found as plain literal: %v, %v", ok, err)
	}
}

// TestAskShortCircuits: ASK stops the engine at the first embedding even
// on the plain-query path (review regression: the factorized count used
// to tally everything before capping).
func TestAskShortCircuits(t *testing.T) {
	var sb bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<http://v/%d> <http://p/t> <http://v/%d> .\n", i, (i+1)%500)
	}
	db, err := OpenString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	// Plain single-pattern query with 500 solutions.
	yes, err := db.Ask(`ASK { ?a <http://p/t> ?b }`, nil)
	if err != nil || !yes {
		t.Fatalf("Ask = %v, %v", yes, err)
	}
	// The short-circuit is observable through the engine counters: Ask
	// must stop after the first embedding instead of visiting all 500
	// initial candidates the way the factorized count would.
	p, err := db.Prepare(`ASK { ?a <http://p/t> ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Stats
	ok, err := p.cp.Ask(engine.Options{Stats: &st})
	if err != nil || !ok {
		t.Fatalf("core Ask = %v, %v", ok, err)
	}
	if st.Embeddings > 1 {
		t.Errorf("Ask yielded %d embeddings, want at most 1", st.Embeddings)
	}
	if st.Recursions > 5 {
		t.Errorf("Ask recursed %d times over 500 candidates — not short-circuiting", st.Recursions)
	}
	sel, err := db.Prepare(`SELECT ?a WHERE { ?a <http://p/t> ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sel.Count(nil)
	if err != nil || n != 500 {
		t.Fatalf("Count = %d, %v; want 500", n, err)
	}
}

// TestRowsCloseKeepsParentCancellation: Close suppresses only its own
// cancellation; a cancellation of the caller's context survives it.
func TestRowsCloseKeepsParentCancellation(t *testing.T) {
	db := openTyped(t)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `SELECT ?s WHERE { ?s <http://p/name> ?o }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the caller's own context dies before/while iterating
	for rows.Next() {
	}
	if err := rows.Close(); !errors.Is(err, context.Canceled) && rows.Err() == nil {
		// Either Close or Err must surface the parent cancellation —
		// unless the tiny result set was fully drained before the engine
		// ever observed the cancelled context.
		t.Logf("note: result set drained before cancellation was observed (err=%v)", err)
	}
	if e := rows.Err(); e != nil && !errors.Is(e, context.Canceled) {
		t.Errorf("Err = %v, want nil or context.Canceled", e)
	}
}

package amber

import (
	"io"

	"repro/internal/core"
	"repro/internal/wal"
)

// Replication accessors: the thin pass-through surface internal/repl
// builds on. A primary serves its WAL as the replication stream; a
// follower applies received records through the same consumer path
// startup replay uses (see core.ApplyReplicated).

// WAL exposes the database's write-ahead log, or nil when the database
// was not opened durably. The replication primary reads segment views,
// subscribes to appends, and installs its retention hook through it.
func (db *DB) WAL() *wal.Log {
	return db.store.WAL()
}

// ApplyReplicated appends records carrying the primary's sequence
// numbers to the local WAL and applies them to the store atomically with
// respect to checkpointing — the follower's write path. See
// core.Store.ApplyReplicated.
func (db *DB) ApplyReplicated(recs []wal.Record) error {
	return db.store.ApplyReplicated(recs)
}

// SaveReplica streams the merged state to w and returns the WAL sequence
// number and epoch the snapshot covers, captured atomically. The
// replication primary serves follower bootstraps with it.
func (db *DB) SaveReplica(w io.Writer) (seq, epoch uint64, err error) {
	return db.store.SaveReplica(w)
}

// ErrNotDurable is returned by replication operations on a database that
// has no write-ahead log attached.
var ErrNotDurable = core.ErrNotDurable

package amber_test

import (
	"context"
	"fmt"
	"log"

	amber "repro"
)

const exampleData = `
<http://x/alice> <http://p/name> "Alice" .
<http://x/alice> <http://p/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://p/knows> <http://x/bob> .
<http://x/bob> <http://p/name> "Bob" .
`

// The cursor form: database/sql-style iteration with Scan.
func ExampleDB_QueryContext() {
	db, err := amber.OpenString(exampleData)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := db.QueryContext(context.Background(),
		`SELECT ?who WHERE { <http://x/alice> <http://p/knows> ?who }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var who amber.Term
		if err := rows.Scan(&who); err != nil {
			log.Fatal(err)
		}
		fmt.Println(who.Kind, who.Value)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	// Output: IRI http://x/bob
}

// The range-over-func form: typed bindings without cursor bookkeeping.
func ExamplePrepared_All() {
	db, err := amber.OpenString(exampleData)
	if err != nil {
		log.Fatal(err)
	}
	p, err := db.Prepare(`SELECT ?age WHERE { <http://x/alice> <http://p/age> ?age }`)
	if err != nil {
		log.Fatal(err)
	}
	for b, err := range p.All(context.Background(), nil) {
		if err != nil {
			log.Fatal(err)
		}
		if age, ok := b.Get("age"); ok {
			fmt.Printf("%s (datatype %s)\n", age.Value, age.Datatype)
		}
	}
	// Output: 42 (datatype http://www.w3.org/2001/XMLSchema#integer)
}

// ASK: existence checks short-circuit after the first match.
func ExampleDB_Ask() {
	db, err := amber.OpenString(exampleData)
	if err != nil {
		log.Fatal(err)
	}
	yes, err := db.Ask(`ASK { ?s <http://p/name> "Alice" }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	no, err := db.Ask(`ASK { ?s <http://p/name> "Alice"@en }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(yes, no)
	// Output: true false
}

// Command datagen emits one of the three synthetic benchmark corpora
// (DESIGN.md §5) as N-Triples on stdout or to a file.
//
// Usage:
//
//	datagen -dataset lubm -universities 10 > lubm10.nt
//	datagen -dataset dbpedia -scale 2 -out dbpedia.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	var (
		dataset      = flag.String("dataset", "lubm", "corpus: lubm | dbpedia | yago")
		scale        = flag.Int("scale", 1, "scale factor for dbpedia/yago")
		universities = flag.Int("universities", 1, "LUBM scale factor")
		seed         = flag.Int64("seed", 2016, "generation seed")
		out          = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *universities, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale, universities int, seed int64, out string) error {
	var triples []rdf.Triple
	switch dataset {
	case "lubm":
		triples = datagen.LUBM(datagen.LUBMConfig{Universities: universities, Seed: seed})
	case "dbpedia":
		triples = datagen.DBpediaLike(scale, seed)
	case "yago":
		triples = datagen.YAGOLike(scale, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want lubm, dbpedia or yago)", dataset)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := rdf.NewEncoder(bw)
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples\n", len(triples))
	return nil
}

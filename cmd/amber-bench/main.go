// Command amber-bench regenerates every table and figure of the paper's
// evaluation (Section 7) at a configurable scale, comparing AMbER against
// the two baseline architectures (permutation-index triple store and
// filter-and-refine graph matcher).
//
// Usage:
//
//	amber-bench -exp all
//	amber-bench -exp fig6 -scale 2 -queries 50 -timeout 1s
//	amber-bench -exp table1
//
// Experiments: table1, table4, table5, fig6 (star/DBPEDIA), fig7
// (complex/DBPEDIA), fig8 (star/YAGO), fig9 (complex/YAGO), fig10
// (star/LUBM), fig11 (complex/LUBM), all. Beyond the paper, `churn`
// measures query latency under a mixed read/write workload
// (-writeratio) with live updates and background compaction enabled;
// add -fsync=always|never|interval=<d> to attach a write-ahead log and
// measure the write-latency cost of each durability policy.
//
// With -json, the command instead emits a machine-readable amber-bench/v1
// report (load rates, latency percentiles by query shape, churn write
// latency per fsync policy, cost-vs-heuristic planner win ratio) — the
// format committed as BENCH_NNNN.json files; -quick shrinks the run to
// CI smoke-test scale and -validate checks an existing report file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/wal"
	"repro/internal/workload"
)

type figureSpec struct {
	id      string
	dataset string
	kind    workload.Kind
	caption string
}

var figures = []figureSpec{
	{"fig6", "DBPEDIA", workload.Star, "Figure 6: star-shaped queries on DBPEDIA"},
	{"fig7", "DBPEDIA", workload.Complex, "Figure 7: complex-shaped queries on DBPEDIA"},
	{"fig8", "YAGO", workload.Star, "Figure 8: star-shaped queries on YAGO"},
	{"fig9", "YAGO", workload.Complex, "Figure 9: complex-shaped queries on YAGO"},
	{"fig10", "LUBM", workload.Star, "Figure 10: star-shaped queries on LUBM"},
	{"fig11", "LUBM", workload.Complex, "Figure 11: complex-shaped queries on LUBM"},
}

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment id (table1, table4, table5, fig6..fig11, all)")
		scale        = flag.Int("scale", 1, "dataset scale factor (dbpedia/yago)")
		universities = flag.Int("universities", 3, "LUBM scale factor")
		queries      = flag.Int("queries", 25, "queries per point (paper: 200)")
		timeout      = flag.Duration("timeout", 500*time.Millisecond, "per-query time constraint (paper: 60s)")
		seed         = flag.Int64("seed", 2016, "generation seed")
		sizes        = flag.String("sizes", "10,20,30,40,50", "query sizes (triple patterns)")
		planner      = flag.String("planner", "cost", "AMbER matching-order planner: cost (statistics-driven) or heuristic (paper §5.3)")
		writeRatio   = flag.Float64("writeratio", 0.2, "write fraction for -exp churn (0..1)")
		writeBatch   = flag.Int("writebatch", 64, "triples per write batch for -exp churn")
		fsync        = flag.String("fsync", "", "attach a write-ahead log to -exp churn with this policy (always, never, interval=<duration>; empty = no WAL)")
		writers      = flag.Int("writers", 8, "concurrent writer goroutines for -exp churn (1 = interleaved single-writer loop)")
		jsonOut      = flag.Bool("json", false, "emit a machine-readable benchmark report (amber-bench/v1 JSON) instead of the paper tables")
		quick        = flag.Bool("quick", false, "with -json: CI smoke-test scale (small LUBM corpus, one workload point)")
		validate     = flag.String("validate", "", "validate an amber-bench/v1 JSON report file and exit")
		compare      = flag.Bool("compare", false, "compare two amber-bench/v1 JSON report files (old new): exit non-zero on schema drift or a >2x regression in any shared metric")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err == nil {
			err = experiments.ValidateReport(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "amber-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *validate, experiments.ReportSchema)
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "amber-bench: -compare needs exactly two report files (old new)")
			os.Exit(1)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "amber-bench:", err)
			os.Exit(1)
		}
		return
	}

	// Fail on a bad planner name before any (expensive) dataset build.
	if _, ok := plan.ByName(*planner); !ok {
		fmt.Fprintf(os.Stderr, "amber-bench: unknown planner %q (use cost or heuristic)\n", *planner)
		os.Exit(1)
	}
	// Likewise a bad fsync policy.
	if *fsync != "" {
		if _, _, err := wal.ParseSyncPolicy(*fsync); err != nil {
			fmt.Fprintln(os.Stderr, "amber-bench:", err)
			os.Exit(1)
		}
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Universities = *universities
	cfg.QueriesPerPoint = *queries
	cfg.Timeout = *timeout
	cfg.Seed = *seed
	cfg.Planner = *planner
	cfg.WriteRatio = *writeRatio
	cfg.WriteBatch = *writeBatch
	cfg.Fsync = *fsync
	cfg.Writers = *writers
	cfg.Sizes = nil
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "amber-bench: bad size %q\n", s)
			os.Exit(1)
		}
		cfg.Sizes = append(cfg.Sizes, n)
	}

	if *jsonOut {
		// -json -exp churn emits the churn-focused report: the CI
		// write-throughput smoke shape.
		cfg.ChurnOnly = *exp == "churn"
		if err := runReport(cfg, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "amber-bench:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "amber-bench:", err)
		os.Exit(1)
	}
}

// runCompare gates the benchmark trajectory: schema drift in either
// report or a >2x regression in any shared metric fails the run.
// Comparisons the gate declines (disk-bound metrics across mismatched
// storage fingerprints) are printed as notes, never skipped silently.
func runCompare(oldPath, newPath string) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	regs, notes, err := experiments.CompareReports(oldData, newData)
	if err != nil {
		return err
	}
	for _, n := range notes {
		fmt.Printf("note: %s\n", n)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d regression(s) between %s and %s", len(regs), oldPath, newPath)
	}
	fmt.Printf("%s -> %s: no regressions in shared metrics\n", oldPath, newPath)
	return nil
}

// runReport writes the machine-readable benchmark report to stdout.
func runReport(cfg experiments.Config, quick bool) error {
	rep, err := experiments.RunBenchReport(cfg, quick)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func run(exp string, cfg experiments.Config) error {
	fmt.Printf("# amber-bench: scale=%d universities=%d queries/point=%d timeout=%s seed=%d planner=%s\n",
		cfg.Scale, cfg.Universities, cfg.QueriesPerPoint, cfg.Timeout, cfg.Seed, cfg.Planner)
	fmt.Printf("# engines: AMbER (this paper), PermStore (x-RDF-3X/Virtuoso class), GraphMatch (gStore/TurboHom++ class)\n\n")

	datasets := map[string]*experiments.Dataset{}
	getDS := func(name string) (*experiments.Dataset, error) {
		if d, ok := datasets[name]; ok {
			return d, nil
		}
		fmt.Fprintf(os.Stderr, "building %s...\n", name)
		d, err := experiments.BuildDataset(name, cfg)
		if err != nil {
			return nil, err
		}
		datasets[name] = d
		return d, nil
	}

	want := func(id string) bool { return exp == "all" || exp == id }
	ran := false

	if want("table4") || want("table5") {
		var all []*experiments.Dataset
		for _, name := range []string{"DBPEDIA", "YAGO", "LUBM"} {
			d, err := getDS(name)
			if err != nil {
				return err
			}
			all = append(all, d)
		}
		if want("table4") {
			fmt.Println(experiments.FormatTable4(experiments.Table4(all)))
			ran = true
		}
		if want("table5") {
			fmt.Println(experiments.FormatTable5(experiments.Table5(all)))
			ran = true
		}
	}

	if want("table1") {
		d, err := getDS("DBPEDIA")
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(experiments.RunTable1(d, cfg)))
		ran = true
	}

	for _, f := range figures {
		if !want(f.id) {
			continue
		}
		d, err := getDS(f.dataset)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", f.id)
		points := experiments.RunFigure(d, f.kind, cfg)
		fmt.Println(experiments.FormatFigure(f.caption, points))
		ran = true
	}

	if want("churn") {
		d, err := getDS("DBPEDIA")
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "running churn...")
		fmt.Println(experiments.FormatChurn(experiments.RunChurn(d, workload.Star, cfg)))
		ran = true
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

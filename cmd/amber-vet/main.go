// Command amber-vet is the project's static-analysis multichecker: it
// runs the internal/analysis suite — the engine's concurrency and
// durability invariants as compile-time checks — over Go packages.
//
// Two modes share the analyzers:
//
// Standalone (the default, what `make vet` and the meta-tests use):
//
//	amber-vet [packages]
//
// loads the named packages (default ./...) with `go list -export`,
// runs every analyzer including the cross-package Global hooks, prints
// diagnostics to stderr and exits 1 when there are findings.
//
// Vettool (what CI uses, so findings interleave with cmd/vet's own):
//
//	go vet -vettool=$(pwd)/bin/amber-vet ./...
//
// implements the cmd/go unit-checker protocol: -V=full prints a
// content-hashed version for the build cache, -flags advertises no
// extra flags, and each per-package invocation receives a vet.cfg whose
// export-data map replaces the `go list` load. Per-unit runs skip the
// Global hooks (a unit sees one package); the standalone mode in the
// meta-test covers those.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// suiteAnalyzers is the full analyzer set, shared with the meta-tests.
var suiteAnalyzers = suite.Analyzers

func main() {
	args := os.Args[1:]

	// cmd/go protocol probes come first and exit.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		}
	}

	// A single .cfg argument means cmd/go is driving us per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}

	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: amber-vet [packages]   (default ./...)\n")
	fmt.Fprintf(os.Stderr, "   or: go vet -vettool=/path/to/amber-vet ./...\n\nanalyzers:\n")
	for _, a := range suiteAnalyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-17s %s\n", a.Name, doc)
	}
}

// printVersion implements -V=full: cmd/go hashes the output into the
// build cache key, so it must change whenever the binary does. Hashing
// our own executable gives exactly that.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", os.Args[0], h.Sum(nil))
}

// ---- standalone mode ---------------------------------------------------

func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := analysis.Run(pkgs, suiteAnalyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// ---- vettool mode ------------------------------------------------------

// vetConfig is the subset of cmd/go's per-unit vet.cfg this checker
// consumes (field names fixed by the protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amber-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "amber-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The protocol requires the vetx ("facts") output to exist even
	// though this suite exchanges none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "amber-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test files are out of scope for the whole suite (they violate the
	// invariants on purpose to exercise runtime panics); the [test]
	// variant units re-list the production files, which we re-check.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0 // external-test unit: nothing in scope
	}

	fset := token.NewFileSet()
	var astFiles []*ast.File
	for _, fp := range files {
		if !filepath.IsAbs(fp) {
			fp = filepath.Join(cfg.Dir, fp)
		}
		f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailure(&cfg, err)
		}
		astFiles = append(astFiles, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, astFiles, info)
	if err != nil {
		return typecheckFailure(&cfg, err)
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}
	// Per-unit runs see one package, so the cross-package Global hooks
	// cannot fire here; analysis.Run still applies every per-package
	// rule and the directive check.
	diags, err := analysis.Run([]*analysis.Package{pkg}, suiteAnalyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amber-vet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckFailure honours SucceedOnTypecheckFailure, which cmd/go sets
// so that vet does not re-report what the compiler already will.
func typecheckFailure(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "amber-vet: %s: %v\n", cfg.ImportPath, err)
	return 1
}

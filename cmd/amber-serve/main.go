// Command amber-serve exposes an AMbER database as a SPARQL 1.1 Protocol
// HTTP endpoint.
//
// Usage:
//
//	amber-serve -data data.nt -addr :8080
//	amber-serve -snapshot db.snap -cache 1024 -max-concurrent 32 -timeout 30s
//	amber-serve -data data.nt -wal-dir ./wal -fsync always
//
// Query it with any SPARQL-over-HTTP client:
//
//	curl 'http://localhost:8080/sparql' --data-urlencode \
//	    'query=SELECT ?s WHERE { ?s <http://p> <http://o> . }'
//
// Mutate it with SPARQL 1.1 Update (INSERT DATA, DELETE DATA, CLEAR,
// LOAD); queries keep running and never see partial updates:
//
//	curl 'http://localhost:8080/sparql' --data-urlencode \
//	    'update=INSERT DATA { <http://s> <http://p> <http://o2> . }'
//
// Durability: without -wal-dir, updates live only in memory and vanish on
// restart. With -wal-dir, every update batch is written to a write-ahead
// log (fsynced per -fsync) before it is acknowledged; starting or
// reloading replays the log, so acknowledged updates survive crashes.
// Once the database checkpoints (after compaction, or via DB.Checkpoint),
// the checkpointed snapshot in -wal-dir supersedes -data/-snapshot as the
// base.
//
// Signals: SIGINT/SIGTERM drain in-flight requests and exit; SIGHUP
// reloads the data file or snapshot and hot-swaps it in without dropping
// in-flight queries (with -wal-dir, logged live updates are replayed on
// top; without it they are discarded with a warning).
//
// Observability: /metrics serves Prometheus text exposition, /stats a
// JSON summary, /debug/traces the most recent request traces, and
// /debug/queries the in-flight query table with live resource counters.
// -slow-query logs slow requests as JSON lines (rotated at
// -slow-query-log-max-bytes), and -debug-addr starts a separate
// pprof-only listener (keep it off the public address).
//
// Governance: POST /admin/queries/{id}/cancel kills an in-flight query.
// On the public listener it requires -admin-token; -admin-addr starts a
// private listener where it is ungated. -max-query-visits caps any
// single query's engine work. /readyz reports 503 while a SIGHUP reload
// is swapping databases, for load-balancer draining; /healthz stays
// pure liveness.
//
// Replication: with -wal-dir, the server is automatically a replication
// primary — followers pull its WAL from /repl/stream and their acks gate
// checkpoint truncation (bounded by -repl-retain-seqs). Start a follower
// with -follow=<primary-url> plus its own -wal-dir: it bootstraps
// (snapshot resync if needed), tails the primary's WAL, and serves reads
// at an observable staleness (X-Epoch on every read; X-Min-Epoch waits
// up to -min-epoch-wait for read-your-writes). Followers answer updates
// with 421 pointing at the primary and ignore SIGHUP (their state is
// defined by the stream, not a source file).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	amber "repro"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
)

// pprofMux serves the net/http/pprof handlers on an explicit mux, so the
// debug listener exposes profiling and nothing else (in particular not
// whatever third parties registered on http.DefaultServeMux).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataPath = flag.String("data", "", "RDF data file (N-Triples, prefixed names allowed)")
		snapshot = flag.String("snapshot", "", "binary snapshot to load instead of -data")

		cacheSize = flag.Int("cache", 256, "result cache entries (-1 disables)")
		cacheRows = flag.Int("cache-rows", 10000, "max rows per cached result")
		planCache = flag.Int("plan-cache", 1024, "prepared-plan cache entries (-1 disables)")
		maxConc   = flag.Int("max-concurrent", 0, "max concurrent query executions (0 = 2×GOMAXPROCS)")
		queueWait = flag.Duration("queue-wait", 100*time.Millisecond, "how long a request may wait for an execution slot")
		timeout   = flag.Duration("timeout", 60*time.Second, "default per-query time constraint")
		maxTime   = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")

		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "how long to drain connections on shutdown")

		compactAt = flag.Int("compact-threshold", 0, "delta entries (adds+tombstones) that trigger background compaction (0 = default 8192, negative disables)")
		allowLoad = flag.Bool("allow-load", false, "permit LOAD <file> in update requests (reads server-local files)")

		walDir      = flag.String("wal-dir", "", "write-ahead log directory: log updates before acknowledging and replay them on start/reload (empty = in-memory updates)")
		fsync       = flag.String("fsync", "always", "WAL fsync policy: always, never, or interval=<duration> (with -wal-dir)")
		walCompress = flag.Bool("wal-compress", false, "gzip sealed WAL segments in the background (with -wal-dir)")

		follow       = flag.String("follow", "", "run as a read-only replication follower of this primary base URL (requires -wal-dir for the local replica state)")
		followerID   = flag.String("follower-id", "", "follower identity in the primary's ack registry (default hostname:waldir)")
		replRetain   = flag.Uint64("repl-retain-seqs", 1<<20, "max WAL records a lagging follower may pin against checkpoint truncation (primary side)")
		minEpochWait = flag.Duration("min-epoch-wait", 2*time.Second, "max wait for an X-Min-Epoch read to reach the requested freshness")

		slowQuery    = flag.Duration("slow-query", 0, "log queries at least this slow as JSON lines (0 disables)")
		slowQueryLog = flag.String("slow-query-log", "", "slow-query log file (default stderr; appended)")
		slowQueryMax = flag.Int64("slow-query-log-max-bytes", 0, "rotate the slow-query log file to .1 past this size (0 = never)")
		traceBuffer  = flag.Int("trace-buffer", 128, "recent request traces kept for /debug/traces (-1 disables)")
		debugAddr    = flag.String("debug-addr", "", "separate listen address for net/http/pprof (keep it private; empty disables)")

		adminAddr  = flag.String("admin-addr", "", "separate private listen address for the governance surface: /debug/queries plus ungated query cancellation (empty disables)")
		adminToken = flag.String("admin-token", "", "token enabling POST /admin/queries/{id}/cancel on the public listener (X-Admin-Token or bearer auth)")
		maxVisits  = flag.Uint64("max-query-visits", 0, "cancel any query whose match loop visits more than this many vertices (0 = unlimited)")
	)
	flag.Parse()

	cfg := server.Config{
		CacheSize:      *cacheSize,
		MaxCacheRows:   *cacheRows,
		PlanCacheSize:  *planCache,
		MaxConcurrent:  *maxConc,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTime,
		AllowLoad:      *allowLoad,
		SlowQuery:      *slowQuery,
		TraceBuffer:    *traceBuffer,
		AdminToken:     *adminToken,
		MaxQueryVisits: *maxVisits,
		MinEpochWait:   *minEpochWait,
	}
	if *slowQuery > 0 && *slowQueryLog != "" {
		f, err := obs.OpenRotatingFile(*slowQueryLog, *slowQueryMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amber-serve: opening slow-query log:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SlowQueryOut = f
	}

	src := source{data: *dataPath, snapshot: *snapshot, walDir: *walDir, fsync: *fsync, compress: *walCompress}
	rep := replConfig{follow: *follow, followerID: *followerID, retainSeqs: *replRetain}
	if err := run(*addr, *debugAddr, *adminAddr, src, *compactAt, cfg, *shutdownGrace, rep); err != nil {
		fmt.Fprintln(os.Stderr, "amber-serve:", err)
		os.Exit(1)
	}
}

// source is where the served database comes from: the RDF file or binary
// snapshot base, plus the optional write-ahead log layered on top.
type source struct {
	data     string
	snapshot string
	walDir   string
	fsync    string
	compress bool
}

// replConfig is the replication role selection: follow set = follower;
// otherwise a -wal-dir server is a primary.
type replConfig struct {
	follow     string
	followerID string
	retainSeqs uint64
}

// loadBase opens the database from whichever base was configured, without
// any WAL attachment.
func (s source) loadBase() (*amber.DB, error) {
	switch {
	case s.snapshot != "":
		return amber.OpenSnapshotFile(s.snapshot)
	case s.data != "":
		return amber.OpenFile(s.data)
	default:
		return nil, fmt.Errorf("missing -data or -snapshot")
	}
}

// open loads the database: durable (base + WAL replay) when -wal-dir is
// set, plain in-memory otherwise.
func (s source) open() (*amber.DB, error) {
	if s.walDir == "" {
		return s.loadBase()
	}
	db, err := amber.OpenDurable(s.walDir, &amber.DurabilityOptions{
		Fsync:               s.fsync,
		CheckpointOnCompact: true,
		CompressSegments:    s.compress,
		Bootstrap:           s.loadBase,
	})
	if err != nil {
		return nil, err
	}
	if d := db.Durability(); d.Replayed > 0 {
		log.Printf("replayed %d WAL record(s) from %s", d.Replayed, s.walDir)
	}
	return db, nil
}

func run(addr, debugAddr, adminAddr string, src source, compactAt int, cfg server.Config, grace time.Duration, rep replConfig) error {
	start := time.Now()
	var (
		db       *amber.DB
		err      error
		follower *repl.Follower
		// srvRef late-binds the follower's swap hook: the follower exists
		// before the server that must hot-swap on its resyncs.
		srvRef atomic.Pointer[server.Server]
	)
	if rep.follow != "" {
		if src.walDir == "" {
			return fmt.Errorf("-follow requires -wal-dir for the local replica state")
		}
		follower, err = repl.NewFollower(repl.FollowerOptions{
			Dir:                 src.walDir,
			Primary:             rep.follow,
			ID:                  rep.followerID,
			Fsync:               src.fsync,
			CheckpointOnCompact: true,
			CompressSegments:    src.compress,
			OnSwap: func(db *amber.DB) {
				if s := srvRef.Load(); s != nil {
					s.Swap(db)
				}
			},
			Logf: log.Printf,
		})
		if err != nil {
			return err
		}
		db = follower.DB()
		cfg.Follower = follower
		log.Printf("following %s as %q from cursor %d", rep.follow, follower.ID(), follower.Cursor())
	} else {
		db, err = src.open()
		if err != nil {
			return err
		}
		if src.walDir != "" {
			primary, perr := repl.NewPrimary(db, repl.PrimaryOptions{RetainSeqs: rep.retainSeqs})
			if perr != nil {
				return perr
			}
			cfg.Replication = primary
			log.Printf("replication primary enabled (stream at /repl/stream, retain %d seqs past min ack)", rep.retainSeqs)
		}
	}
	if compactAt != 0 {
		db.SetCompactThreshold(compactAt)
	}
	st := db.Stats()
	log.Printf("loaded %d triples (%d vertices, %d edges) in %s",
		st.Triples, st.Vertices, st.Edges, time.Since(start).Round(time.Millisecond))

	srv := server.New(db, cfg)
	srvRef.Store(srv)

	if follower != nil {
		fctx, fcancel := context.WithCancel(context.Background())
		defer fcancel()
		go func() {
			if rerr := follower.Run(fctx); rerr != nil && fctx.Err() == nil {
				log.Printf("replication follower stopped: %v", rerr)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving SPARQL on %s (endpoints: /sparql /stats /metrics /debug/traces /debug/queries /healthz /readyz)", addr)
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			errc <- err
		}
	}()

	if adminAddr != "" {
		// The governance surface on its own listener skips the token gate;
		// bind it to localhost or a private network.
		adm := &http.Server{
			Addr:              adminAddr,
			Handler:           srv.AdminHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("serving governance on %s (endpoints: /debug/queries /admin/queries/{id}/cancel /healthz /readyz)", adminAddr)
			if err := adm.ListenAndServe(); err != http.ErrServerClosed {
				errc <- fmt.Errorf("admin listener: %w", err)
			}
		}()
		defer adm.Close() //nolint:errcheck // best-effort teardown on exit
	}

	if debugAddr != "" {
		// pprof stays on its own listener so profiling never rides the
		// public SPARQL address; bind it to localhost or a private net.
		dbg := &http.Server{
			Addr:              debugAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("serving pprof on %s/debug/pprof/", debugAddr)
			if err := dbg.ListenAndServe(); err != http.ErrServerClosed {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
		defer dbg.Close() //nolint:errcheck // best-effort teardown on exit
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				switch {
				case follower != nil:
					// A follower's state is defined by the primary's WAL, not
					// a local source; nothing sensible to reload.
					log.Printf("SIGHUP ignored in follower mode")
				case cfg.Replication != nil:
					// A reload would swap in a database whose log the primary
					// wrapper no longer tracks, silently breaking the stream.
					log.Printf("SIGHUP ignored while serving as a replication primary")
				default:
					reload(srv, src, compactAt)
				}
				continue
			}
			log.Printf("%s received, draining for up to %s", sig, grace)
			ctx, cancel := context.WithTimeout(context.Background(), grace)
			err := httpSrv.Shutdown(ctx)
			cancel()
			srv.DB().Close() //nolint:errcheck // final WAL sync; nothing to do on error
			return err
		}
	}
}

// reload rebuilds the database from its source and hot-swaps it in.
// In-flight queries finish against the generation they started on.
//
// With -wal-dir, live updates applied over HTTP are in the WAL: the old
// log is closed (briefly failing concurrent updates rather than losing
// them) and the reload replays it on top of the fresh base. Without
// -wal-dir the updates exist nowhere but memory and are discarded —
// reload warns when that happens (Save the merged view first to keep
// them).
func reload(srv *server.Server, src source, compactAt int) {
	// Drop readiness for the duration: /readyz answers 503 so a load
	// balancer drains this instance while the replacement loads.
	srv.SetReady(false)
	defer srv.SetReady(true)
	start := time.Now()
	old := srv.DB()
	if src.walDir != "" {
		// Stop the old generation from appending so the reload owns the
		// log. From here until the swap, updates shed with 503 (retryable);
		// reads are unaffected.
		if err := old.Close(); err != nil {
			log.Printf("reload: closing WAL: %v", err)
		}
	} else if g := old.Generation(); g.Updates > 0 {
		log.Printf("reload: discarding %d live update batch(es) (delta %d adds / %d tombstones) not present in the source",
			g.Updates, g.DeltaAdds, g.DeltaTombstones)
	}
	db, err := src.open()
	if err != nil {
		if src.walDir != "" {
			log.Printf("reload failed, keeping current database WITH ITS WAL CLOSED (updates will fail until a successful reload): %v", err)
		} else {
			log.Printf("reload failed, keeping current database: %v", err)
		}
		return
	}
	if compactAt != 0 {
		db.SetCompactThreshold(compactAt)
	}
	gen := srv.Swap(db)
	st := db.Stats()
	log.Printf("hot-swapped to generation %d: %d triples in %s",
		gen, st.Triples, time.Since(start).Round(time.Millisecond))
}

// Command amber loads an RDF dataset and answers SPARQL SELECT and ASK
// queries with the AMbER engine. Results print as typed terms in
// N-Triples syntax (literals keep their datatype and language tag);
// Ctrl-C cancels an in-flight query through the engine's context
// support.
//
// Usage:
//
//	amber -data data.nt -query 'SELECT ?x WHERE { ... }'
//	amber -data data.nt -queryfile q.rq -limit 10 -timeout 60s
//	amber -data data.nt -query 'ASK { ... }'
//	amber -data data.nt -stats
//	amber -data data.nt -verbose -query '...'   # structured trace on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "RDF data file (N-Triples, prefixed names allowed)")
		snapshot  = flag.String("snapshot", "", "binary snapshot to load instead of -data")
		saveSnap  = flag.String("save-snapshot", "", "write a binary snapshot after loading and exit")
		queryText = flag.String("query", "", "SPARQL SELECT query text")
		queryFile = flag.String("queryfile", "", "file holding the SPARQL query ('-' for stdin)")
		limit     = flag.Int("limit", 0, "maximum result rows (0 = all)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-query time constraint")
		countOnly = flag.Bool("count", false, "print only the number of solutions")
		workers   = flag.Int("workers", 1, "worker goroutines for -count (parallel engine)")
		stats     = flag.Bool("stats", false, "print database statistics and exit")
		verbose   = flag.Bool("verbose", false, "log load/query progress and a per-query execution trace to stderr")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if err := run(logger, *dataPath, *snapshot, *saveSnap, *queryText, *queryFile, *limit, *timeout, *countOnly, *workers, *stats, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "amber:", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, dataPath, snapshot, saveSnap, queryText, queryFile string, limit int, timeout time.Duration, countOnly bool, workers int, stats, verbose bool) error {
	var (
		db  *amber.DB
		err error
	)
	start := time.Now()
	switch {
	case snapshot != "":
		db, err = amber.OpenSnapshotFile(snapshot)
	case dataPath != "":
		db, err = amber.OpenFile(dataPath)
	default:
		return fmt.Errorf("missing -data or -snapshot")
	}
	if err != nil {
		return err
	}
	if saveSnap != "" {
		if err := db.SaveFile(saveSnap); err != nil {
			return err
		}
		logger.Info("snapshot written", "path", saveSnap)
		return nil
	}
	st := db.Stats()
	logger.Info("loaded",
		"triples", st.Triples, "vertices", st.Vertices, "edge_types", st.EdgeTypes,
		"duration", time.Since(start).Round(time.Millisecond))

	if stats {
		fmt.Printf("triples:     %d\n", st.Triples)
		fmt.Printf("vertices:    %d\n", st.Vertices)
		fmt.Printf("edges:       %d\n", st.Edges)
		fmt.Printf("edge types:  %d\n", st.EdgeTypes)
		fmt.Printf("attributes:  %d\n", st.Attributes)
		fmt.Printf("db build:    %s (%d bytes)\n", st.DatabaseBuildTime.Round(time.Microsecond), st.DatabaseBytes)
		fmt.Printf("index build: %s (%d bytes)\n", st.IndexBuildTime.Round(time.Microsecond), st.IndexBytes)
		return nil
	}

	if queryFile != "" {
		var data []byte
		if queryFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(queryFile)
		}
		if err != nil {
			return err
		}
		queryText = string(data)
	}
	if queryText == "" {
		return fmt.Errorf("missing -query or -queryfile")
	}

	opts := &amber.QueryOptions{Limit: limit, Timeout: timeout}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -verbose, thread a trace through the context so the execution
	// layer records plan shape, engine effort, and per-level frontiers —
	// the same record the server's slow-query log emits.
	var tr *obs.Trace
	if verbose {
		tr = obs.NewTrace(queryText)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	logTrace := func(status string, rows uint64) {
		if tr == nil {
			return
		}
		tr.Finish(status, rows)
		logger.LogAttrs(ctx, slog.LevelDebug, "query trace", tr.SlogAttrs()...)
	}

	prep, err := db.PrepareContext(ctx, queryText)
	if err != nil {
		return err
	}
	qStart := time.Now()
	if prep.IsAsk() {
		yes, err := prep.AskContext(ctx, opts)
		if err != nil {
			logTrace("error", 0)
			return err
		}
		logTrace("ok", 0)
		fmt.Printf("%v (%s)\n", yes, time.Since(qStart).Round(time.Microsecond))
		return nil
	}
	if countOnly {
		var n uint64
		if workers > 1 {
			n, err = prep.CountParallel(opts, workers)
		} else {
			n, err = prep.Count(opts)
		}
		if err != nil {
			logTrace("error", 0)
			return err
		}
		logTrace("ok", n)
		fmt.Printf("%d solutions in %s\n", n, time.Since(qStart).Round(time.Microsecond))
		return nil
	}
	nRows := 0
	for b, err := range prep.All(ctx, opts) {
		if err != nil {
			logTrace("error", uint64(nRows))
			return err
		}
		nRows++
		for i, v := range b.Vars() {
			if i > 0 {
				fmt.Print("\t")
			}
			if t, ok := b.At(i); ok {
				fmt.Printf("?%s=%s", v, t)
			} else {
				fmt.Printf("?%s=UNBOUND", v)
			}
		}
		fmt.Println()
	}
	logTrace("ok", uint64(nRows))
	logger.Info("done", "rows", nRows, "duration", time.Since(qStart).Round(time.Microsecond))
	return nil
}

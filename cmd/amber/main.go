// Command amber loads an RDF dataset and answers SPARQL SELECT queries
// with the AMbER engine.
//
// Usage:
//
//	amber -data data.nt -query 'SELECT ?x WHERE { ... }'
//	amber -data data.nt -queryfile q.rq -limit 10 -timeout 60s
//	amber -data data.nt -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "RDF data file (N-Triples, prefixed names allowed)")
		snapshot  = flag.String("snapshot", "", "binary snapshot to load instead of -data")
		saveSnap  = flag.String("save-snapshot", "", "write a binary snapshot after loading and exit")
		queryText = flag.String("query", "", "SPARQL SELECT query text")
		queryFile = flag.String("queryfile", "", "file holding the SPARQL query ('-' for stdin)")
		limit     = flag.Int("limit", 0, "maximum result rows (0 = all)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-query time constraint")
		countOnly = flag.Bool("count", false, "print only the number of solutions")
		workers   = flag.Int("workers", 1, "worker goroutines for -count (parallel engine)")
		stats     = flag.Bool("stats", false, "print database statistics and exit")
	)
	flag.Parse()
	if err := run(*dataPath, *snapshot, *saveSnap, *queryText, *queryFile, *limit, *timeout, *countOnly, *workers, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "amber:", err)
		os.Exit(1)
	}
}

func run(dataPath, snapshot, saveSnap, queryText, queryFile string, limit int, timeout time.Duration, countOnly bool, workers int, stats bool) error {
	var (
		db  *amber.DB
		err error
	)
	start := time.Now()
	switch {
	case snapshot != "":
		db, err = amber.OpenSnapshotFile(snapshot)
	case dataPath != "":
		db, err = amber.OpenFile(dataPath)
	default:
		return fmt.Errorf("missing -data or -snapshot")
	}
	if err != nil {
		return err
	}
	if saveSnap != "" {
		if err := db.SaveFile(saveSnap); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", saveSnap)
		return nil
	}
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d triples (%d vertices, %d edge types) in %s\n",
		st.Triples, st.Vertices, st.EdgeTypes, time.Since(start).Round(time.Millisecond))

	if stats {
		fmt.Printf("triples:     %d\n", st.Triples)
		fmt.Printf("vertices:    %d\n", st.Vertices)
		fmt.Printf("edges:       %d\n", st.Edges)
		fmt.Printf("edge types:  %d\n", st.EdgeTypes)
		fmt.Printf("attributes:  %d\n", st.Attributes)
		fmt.Printf("db build:    %s (%d bytes)\n", st.DatabaseBuildTime.Round(time.Microsecond), st.DatabaseBytes)
		fmt.Printf("index build: %s (%d bytes)\n", st.IndexBuildTime.Round(time.Microsecond), st.IndexBytes)
		return nil
	}

	if queryFile != "" {
		var data []byte
		if queryFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(queryFile)
		}
		if err != nil {
			return err
		}
		queryText = string(data)
	}
	if queryText == "" {
		return fmt.Errorf("missing -query or -queryfile")
	}

	opts := &amber.QueryOptions{Limit: limit, Timeout: timeout}
	qStart := time.Now()
	if countOnly {
		var n uint64
		if workers > 1 {
			n, err = db.CountParallel(queryText, opts, workers)
		} else {
			n, err = db.Count(queryText, opts)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%d solutions in %s\n", n, time.Since(qStart).Round(time.Microsecond))
		return nil
	}
	nRows := 0
	err = db.QueryIter(queryText, opts, func(row amber.Row) bool {
		nRows++
		vars := make([]string, 0, len(row))
		for v := range row {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for i, v := range vars {
			if i > 0 {
				fmt.Print("\t")
			}
			fmt.Printf("?%s=<%s>", v, row[v])
		}
		fmt.Println()
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d rows in %s\n", nRows, time.Since(qStart).Round(time.Microsecond))
	return nil
}

package amber

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// countQ counts rows of a query, failing the test on error.
func countQ(t *testing.T, db *DB, q string) int {
	t.Helper()
	rows, err := db.Query(q, nil)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return len(rows)
}

func TestUpdateInsertDelete(t *testing.T) {
	db := openDB(t)
	q := `SELECT ?w WHERE { ?w <http://dbpedia.org/ontology/livedIn> <http://dbpedia.org/resource/United_States> . }`
	if n := countQ(t, db, q); n != 2 {
		t.Fatalf("baseline = %d, want 2", n)
	}
	err := db.Update(`PREFIX y: <http://dbpedia.org/ontology/>
		PREFIX x: <http://dbpedia.org/resource/>
		INSERT DATA { x:Christopher_Nolan y:livedIn x:United_States . }`)
	if err != nil {
		t.Fatal(err)
	}
	// Read-your-writes: visible immediately after Update returns.
	if n := countQ(t, db, q); n != 3 {
		t.Fatalf("after insert = %d, want 3", n)
	}
	if ep := db.Epoch(); ep == 0 {
		t.Error("epoch did not advance")
	}
	err = db.Update(`PREFIX y: <http://dbpedia.org/ontology/>
		PREFIX x: <http://dbpedia.org/resource/>
		DELETE DATA {
			x:Christopher_Nolan y:livedIn x:United_States .
			x:Amy_Winehouse y:livedIn x:United_States .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if n := countQ(t, db, q); n != 1 {
		t.Fatalf("after delete = %d, want 1", n)
	}
	gen := db.Generation()
	if gen.DeltaAdds == 0 && gen.DeltaTombstones == 0 {
		t.Errorf("generation shows no delta: %+v", gen)
	}
	if gen.Updates != 2 {
		t.Errorf("updates = %d, want 2", gen.Updates)
	}
}

func TestUpdateNewEntities(t *testing.T) {
	db := openDB(t)
	err := db.Update(`INSERT DATA {
		<http://new/p1> <http://new/follows> <http://new/p2> .
		<http://new/p2> <http://new/follows> <http://new/p3> .
		<http://new/p1> <http://new/name> "uno" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-hop query entirely over overlay-new vertices and predicates.
	rows, err := db.Query(`SELECT ?a ?c WHERE {
		?a <http://new/follows> ?b .
		?b <http://new/follows> ?c .
	}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["a"] != "http://new/p1" || rows[0]["c"] != "http://new/p3" {
		t.Fatalf("rows = %v", rows)
	}
	// Attribute on a new vertex via the overlay A index.
	if n := countQ(t, db, `SELECT ?x WHERE { ?x <http://new/name> "uno" . }`); n != 1 {
		t.Fatalf("attr query = %d, want 1", n)
	}
}

func TestUpdateClearAndLoad(t *testing.T) {
	db := openDB(t)
	if err := db.Update(`CLEAR ALL`); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Triples != 0 || st.Vertices != 0 {
		t.Fatalf("after CLEAR: %+v", st)
	}
	path := filepath.Join(t.TempDir(), "data.nt")
	if err := os.WriteFile(path, []byte(figure1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(fmt.Sprintf("LOAD <file://%s>", path)); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Triples != 16 {
		t.Fatalf("after LOAD: triples = %d, want 16", st.Triples)
	}
	if err := db.Update(`LOAD <file:///no/such/file.nt>`); err == nil {
		t.Error("LOAD of missing file succeeded")
	}
	if err := db.Update(`LOAD SILENT <file:///no/such/file.nt>`); err != nil {
		t.Errorf("LOAD SILENT surfaced error: %v", err)
	}
}

func TestMutateAndPreparedRevalidation(t *testing.T) {
	db := openDB(t)
	q := `SELECT ?w WHERE { ?w <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> . }`
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query(nil)
	if err != nil || len(rows) != 2 {
		t.Fatalf("prepared baseline = %d rows, err %v", len(rows), err)
	}
	// Mutate after preparation: the prepared handle must see the change.
	err = db.Mutate([]rdf.Triple{{
		S: rdf.NewIRI("http://x/NewPerson"),
		P: rdf.NewIRI("http://dbpedia.org/ontology/wasBornIn"),
		O: rdf.NewIRI("http://dbpedia.org/resource/London"),
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = p.Query(nil)
	if err != nil || len(rows) != 3 {
		t.Fatalf("prepared after mutate = %d rows, err %v", len(rows), err)
	}
	n, err := p.Count(nil)
	if err != nil || n != 3 {
		t.Fatalf("prepared count = %d, err %v", n, err)
	}
}

func TestCompactionPreservesAnswers(t *testing.T) {
	db := openDB(t)
	db.SetCompactThreshold(-1) // manual compaction only
	if err := db.Update(`INSERT DATA {
		<http://x/n1> <http://p/e> <http://x/n2> .
		<http://x/n2> <http://p/e> <http://x/n3> .
	}`); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(`PREFIX y: <http://dbpedia.org/ontology/>
		PREFIX x: <http://dbpedia.org/resource/>
		DELETE DATA { x:Amy_Winehouse y:wasBornIn x:London . }`); err != nil {
		t.Fatal(err)
	}
	q1 := `SELECT ?a ?b WHERE { ?a <http://p/e> ?b . }`
	q2 := `SELECT ?w WHERE { ?w <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> . }`
	before1, before2 := countQ(t, db, q1), countQ(t, db, q2)
	genBefore := db.Generation()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	genAfter := db.Generation()
	if genAfter.Generation != genBefore.Generation+1 {
		t.Errorf("generation = %d, want %d", genAfter.Generation, genBefore.Generation+1)
	}
	if genAfter.DeltaAdds != 0 || genAfter.DeltaTombstones != 0 {
		t.Errorf("delta not folded: %+v", genAfter)
	}
	if genAfter.Compactions != genBefore.Compactions+1 || genAfter.LastCompaction <= 0 {
		t.Errorf("compaction counters: %+v", genAfter)
	}
	if after1, after2 := countQ(t, db, q1), countQ(t, db, q2); after1 != before1 || after2 != before2 {
		t.Errorf("answers changed across compaction: (%d,%d) vs (%d,%d)", after1, after2, before1, before2)
	}
}

// TestPlannerStatsRefreshOnCompaction checks the acceptance criterion:
// after updates skew the data, compaction refreshes index.Cardinalities
// so Explain's estimates reflect the new generation.
func TestPlannerStatsRefreshOnCompaction(t *testing.T) {
	db := openDB(t)
	db.SetCompactThreshold(-1)
	// Insert a hub: 200 edges of a brand-new predicate.
	var b strings.Builder
	b.WriteString("INSERT DATA {\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "<http://skew/s%d> <http://skew/p> <http://skew/hub> .\n", i)
	}
	b.WriteString("}")
	if err := db.Update(b.String()); err != nil {
		t.Fatal(err)
	}
	q := `SELECT ?s WHERE { ?s <http://skew/p> <http://skew/hub> . }`
	// Pre-compaction: the base statistics know nothing about the new
	// predicate; correctness must hold regardless.
	if n := countQ(t, db, q); n != 200 {
		t.Fatalf("pre-compaction rows = %d, want 200", n)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := countQ(t, db, q); n != 200 {
		t.Fatalf("post-compaction rows = %d, want 200", n)
	}
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	// The cost planner's standalone estimate for ?s is the new
	// generation's per-type vertex count: exactly 200.
	if !strings.Contains(out, "est=200") {
		t.Errorf("explain estimate does not reflect refreshed statistics:\n%s", out)
	}
	if !strings.Contains(out, "actual=200") {
		t.Errorf("explain actual missing:\n%s", out)
	}
}

// TestSnapshotRoundTripUnderMutation is the satellite property test:
// Save after a random update sequence must persist the merged view, and
// OpenSnapshot of it must answer identically to the live store.
func TestSnapshotRoundTripUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	uri := func(k string, n int) string { return fmt.Sprintf("http://%s/%d", k, n) }
	probe := func(db *DB, p string) []string {
		rows, err := db.Query(
			fmt.Sprintf(`SELECT ?a ?b WHERE { ?a <%s> ?b . }`, p), nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, r["a"]+"→"+r["b"])
		}
		sort.Strings(out)
		return out
	}
	for trial := 0; trial < 10; trial++ {
		db := openDB(t)
		db.SetCompactThreshold(64) // force compactions mid-sequence
		for batch := 0; batch < 8; batch++ {
			var adds, dels []rdf.Triple
			for i := 0; i < 30; i++ {
				tr := rdf.Triple{
					S: rdf.NewIRI(uri("v", rng.Intn(12))),
					P: rdf.NewIRI(uri("p", rng.Intn(3))),
					O: rdf.NewIRI(uri("v", rng.Intn(12))),
				}
				if rng.Intn(3) == 0 {
					tr.O = rdf.NewLiteral(fmt.Sprint(rng.Intn(5)))
				}
				if rng.Intn(3) == 0 {
					dels = append(dels, tr)
				} else {
					adds = append(adds, tr)
				}
			}
			if err := db.Mutate(adds, dels); err != nil {
				t.Fatal(err)
			}
		}
		db.WaitCompaction()

		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := OpenSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ls, ds := loaded.Stats(), db.Stats(); ls.Triples != ds.Triples || ls.Vertices != ds.Vertices {
			t.Fatalf("trial %d: snapshot stats %+v != live %+v", trial, ls, ds)
		}
		for pi := 0; pi < 3; pi++ {
			p := uri("p", pi)
			if live, snap := probe(db, p), probe(loaded, p); !reflect.DeepEqual(live, snap) {
				t.Fatalf("trial %d: predicate %s: live %v != snapshot %v", trial, p, live, snap)
			}
		}
	}
}

// TestConcurrentTorture is the acceptance torture test: reader
// goroutines stream queries while writers apply INSERT/DELETE DATA and
// compaction fires; every reader must observe a consistent snapshot, and
// the post-quiesce counts must equal a from-scratch rebuild of the same
// triple set. Run it under -race.
func TestConcurrentTorture(t *testing.T) {
	db := openDB(t)
	db.SetCompactThreshold(200) // small threshold so compaction fires mid-run

	const (
		writers          = 4
		readers          = 6
		batchesPerWriter = 25
		batchSize        = 10
	)
	// Each writer owns a disjoint key space: inserts a chain batch, then
	// deletes every second batch it wrote — so the final state is exactly
	// reproducible.
	finalTriples := make([][]rdf.Triple, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var kept []rdf.Triple
			for bi := 0; bi < batchesPerWriter; bi++ {
				batch := make([]rdf.Triple, 0, batchSize)
				for i := 0; i < batchSize; i++ {
					batch = append(batch, rdf.Triple{
						S: rdf.NewIRI(fmt.Sprintf("http://t/w%d-b%d-s%d", w, bi, i)),
						P: rdf.NewIRI("http://t/edge"),
						O: rdf.NewIRI(fmt.Sprintf("http://t/w%d-b%d-o%d", w, bi, i)),
					})
				}
				if err := db.Mutate(batch, nil); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if bi%2 == 1 {
					if err := db.Mutate(nil, batch); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
				} else {
					kept = append(kept, batch...)
				}
			}
			finalTriples[w] = kept
		}(w)
	}

	// Readers: the chain query joins subjects to objects through the
	// shared predicate; a torn batch would surface as a partial count
	// (counts must always be a multiple of batchSize since batches land
	// atomically).
	stop := make(chan struct{})
	var rg sync.WaitGroup
	q := `SELECT ?s ?o WHERE { ?s <http://t/edge> ?o . }`
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query(q, nil)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(rows)%batchSize != 0 {
					t.Errorf("reader %d: observed torn batch: %d rows", r, len(rows))
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	db.WaitCompaction()

	if db.Generation().Compactions == 0 {
		t.Error("no compaction fired during the torture run")
	}

	// Post-quiesce: counts equal a from-scratch rebuild of figure1 plus
	// every kept batch.
	var rebuilt []rdf.Triple
	base, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt = append(rebuilt, base...)
	for _, kept := range finalTriples {
		rebuilt = append(rebuilt, kept...)
	}
	fresh, err := Open(strings.NewReader(triplesToNT(rebuilt)))
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{
		q,
		`SELECT ?w WHERE { ?w <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> . }`,
	} {
		liveN, err := db.Count(query, nil)
		if err != nil {
			t.Fatal(err)
		}
		freshN, err := fresh.Count(query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if liveN != freshN {
			t.Errorf("count(%s): live %d != rebuilt %d", query, liveN, freshN)
		}
	}
	if ls, fs := db.Stats(), fresh.Stats(); ls.Triples != fs.Triples {
		t.Errorf("triples: live %d != rebuilt %d", ls.Triples, fs.Triples)
	}
}

// triplesToNT renders triples as N-Triples text.
func triplesToNT(ts []rdf.Triple) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package amber

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Update parses and executes a SPARQL 1.1 Update request against the
// database. The supported fragment is INSERT DATA, DELETE DATA, CLEAR
// [DEFAULT|ALL] and LOAD <file>; operations separated by ';' run in
// order, each atomically visible. The handle's default prefixes apply,
// as for queries.
//
// Consistency model: when Update returns, every subsequently started
// query on any handle sharing this database sees the new state
// (read-your-writes); queries already running finish against the
// snapshot they started on (snapshot isolation). Writers serialize
// internally and never block readers.
func (db *DB) Update(updateText string) error {
	return db.UpdateOpts(updateText, nil)
}

// UpdateOptions restrict what an update request may do.
type UpdateOptions struct {
	// AllowLoad permits LOAD operations, which read local files. Leave
	// false when the update text comes from an untrusted source (the
	// HTTP server does, unless started with -allow-load).
	AllowLoad bool
}

// UpdateOpts is Update with explicit restrictions. A nil opts allows
// everything (trusted, programmatic use).
func (db *DB) UpdateOpts(updateText string, opts *UpdateOptions) error {
	u, err := sparql.ParseUpdateWith(updateText, db.prefixes)
	if err != nil {
		return err
	}
	if opts != nil && !opts.AllowLoad {
		for _, op := range u.Ops {
			if op.Kind == sparql.UpLoad {
				return errors.New("amber: LOAD is disabled for this update source")
			}
		}
	}
	return db.store.ApplyUpdate(u)
}

// Mutate applies one programmatic write batch: dels are removed first,
// then adds are inserted, as a single atomically visible change.
// Deleting an absent triple or inserting a present one is a no-op. See
// Update for the consistency model.
func (db *DB) Mutate(adds, dels []rdf.Triple) error {
	return db.store.Mutate(adds, dels)
}

// Epoch returns the database's data version. It increases on every
// mutation, compaction and clear; equal epochs guarantee identical query
// answers, which is what result caches should key on.
func (db *DB) Epoch() uint64 {
	return db.store.Epoch()
}

// Compact synchronously rebuilds the base generation plus the delta
// overlay into a fresh frozen generation (graph, index ensemble and
// planner statistics) and swaps it in. Mutations normally trigger this
// in the background past the compaction threshold; Compact forces it.
func (db *DB) Compact() error {
	return db.store.Compact()
}

// WaitCompaction blocks until no background compaction is running —
// useful for tests and orderly shutdown.
func (db *DB) WaitCompaction() {
	db.store.WaitCompaction()
}

// SetCompactThreshold tunes when background compaction fires: once the
// delta overlay holds at least n entries (added triples + tombstones).
// n <= 0 disables automatic compaction; Compact still works. The default
// is core.DefaultCompactThreshold (8192).
func (db *DB) SetCompactThreshold(n int) {
	db.store.SetCompactThreshold(n)
}

// GenerationStats describes the live-update state of the database.
type GenerationStats struct {
	// Epoch is the data version (see DB.Epoch).
	Epoch uint64
	// Generation counts base-generation rebuilds (compactions, clears).
	Generation uint64
	// DeltaAdds and DeltaTombstones size the uncompacted overlay.
	DeltaAdds       int
	DeltaTombstones int
	// Updates counts mutation batches applied since the DB opened.
	Updates uint64
	// Compactions counts completed compactions; LastCompaction is the
	// duration of the most recent one (zero if none ran yet).
	Compactions    uint64
	LastCompaction time.Duration
}

// Generation snapshots the live-update counters.
func (db *DB) Generation() GenerationStats {
	gi := db.store.GenerationInfo()
	return GenerationStats{
		Epoch:           gi.Epoch,
		Generation:      gi.Generation,
		DeltaAdds:       gi.DeltaAdds,
		DeltaTombstones: gi.DeltaTombstones,
		Updates:         gi.Updates,
		Compactions:     gi.Compactions,
		LastCompaction:  gi.LastCompaction,
	}
}

// WriteStats describes the write path's group-commit and overlay
// copy-on-write behaviour.
type WriteStats struct {
	// Batches counts mutation batches committed through the write path;
	// Groups counts commit groups (one WAL append span, one fsync under
	// fsync=always, one published snapshot per group). Batches/Groups is
	// the mean group size; DurabilityStats.Fsyncs / Batches is the
	// per-batch fsync cost the grouping amortized.
	Batches uint64
	Groups  uint64
	// MaxGroupSize is the largest commit group since the database opened.
	MaxGroupSize uint64
	// GroupSizeBounds and GroupSizeBuckets form a histogram of commit
	// group sizes: bucket i counts groups of ≤ GroupSizeBounds[i] batches,
	// with one final overflow bucket.
	GroupSizeBounds  []uint64
	GroupSizeBuckets []uint64
	// OverlayEntriesCopied and OverlayBytesCopied measure the overlay's
	// cumulative copy-on-write effort; the per-batch increment is
	// O(batch), independent of overlay size. OverlayVersions counts the
	// live overlay's retained bucket versions.
	OverlayEntriesCopied uint64
	OverlayBytesCopied   uint64
	OverlayVersions      uint64
}

// WriteStats snapshots the write-path counters.
func (db *DB) WriteStats() WriteStats {
	wi := db.store.WriteInfo()
	ws := WriteStats{
		Batches:              wi.Batches,
		Groups:               wi.Groups,
		MaxGroupSize:         wi.MaxGroupSize,
		GroupSizeBounds:      append([]uint64(nil), core.GroupSizeBounds[:]...),
		GroupSizeBuckets:     append([]uint64(nil), wi.GroupSizeBuckets[:]...),
		OverlayEntriesCopied: wi.OverlayEntriesCopied,
		OverlayBytesCopied:   wi.OverlayBytesCopied,
		OverlayVersions:      wi.OverlayVersions,
	}
	return ws
}

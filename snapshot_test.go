package amber

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := openDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats().Triples != db.Stats().Triples || db2.Stats().Vertices != db.Stats().Vertices {
		t.Fatalf("stats differ after snapshot: %+v vs %+v", db2.Stats(), db.Stats())
	}
	// Queries answer identically.
	q := `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?where WHERE {
  ?who y:wasBornIn ?where .
  ?who y:diedIn ?where .
}`
	a, err := db.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0]["who"] != b[0]["who"] {
		t.Errorf("query results differ: %v vs %v", a, b)
	}
}

func TestSnapshotFiles(t *testing.T) {
	db := openDB(t)
	path := filepath.Join(t.TempDir(), "db.ambg")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.Count(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:livedIn ?b }`, nil)
	if err != nil || n != 3 {
		t.Errorf("count after snapshot = %d, %v", n, err)
	}
	if _, err := OpenSnapshotFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing snapshot accepted")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := OpenSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestResourceMeterAccumulatesAndViews(t *testing.T) {
	m := NewResourceMeter()
	m.FlushEngine(10, 20, 5, 3)
	m.FlushEngine(1, 2, 0, 0)
	m.AddRows(4)
	m.AddBytes(512)
	m.SetProgress(2, 7)
	v := m.View()
	if v.Candidates != 11 || v.VerticesVisited != 22 || v.Intersections != 5 || v.OverlayProbes != 3 {
		t.Errorf("engine counters = %+v", v)
	}
	if v.RowsEmitted != 4 || v.BytesSerialized != 512 {
		t.Errorf("server counters = %+v", v)
	}
	if v.Level != 2 || v.TotalLevels != 7 {
		t.Errorf("progress = %d/%d, want 2/7", v.Level, v.TotalLevels)
	}
	if v.ResourceLimited {
		t.Error("limited without a cap")
	}
}

func TestResourceMeterNilSafe(t *testing.T) {
	var m *ResourceMeter
	m.FlushEngine(1, 1, 1, 1)
	m.AddRows(1)
	m.AddBytes(1)
	m.SetProgress(1, 1)
	m.SetVisitLimit(1, nil)
	if m.Limited() || m.Visits() != 0 {
		t.Error("nil meter not inert")
	}
	if v := m.View(); v != (MeterView{}) {
		t.Errorf("nil view = %+v", v)
	}
}

func TestVisitLimitCancelsOnce(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	m := NewResourceMeter()
	m.SetVisitLimit(100, cancel)

	m.FlushEngine(0, 99, 0, 0)
	if m.Limited() {
		t.Fatal("guard tripped below the cap")
	}
	m.FlushEngine(0, 2, 0, 0) // 101 > 100
	if !m.Limited() {
		t.Fatal("guard did not trip past the cap")
	}
	if !errors.Is(context.Cause(ctx), ErrResourceLimit) {
		t.Errorf("cause = %v, want ErrResourceLimit", context.Cause(ctx))
	}
	// Further flushes keep counting but must not re-fire the cancel.
	m.FlushEngine(0, 1000, 0, 0)
	if got := m.Visits(); got != 1101 {
		t.Errorf("visits = %d, want 1101", got)
	}
}

func TestInflightRegisterSnapshotRemove(t *testing.T) {
	f := NewInflight()
	_, c1 := context.WithCancelCause(context.Background())
	_, c2 := context.WithCancelCause(context.Background())
	m1 := NewResourceMeter()
	m1.AddRows(3)
	f.Register("q1", "SELECT 1", "query", "1.2.3.4:5", 7, m1, func() string { return "star" }, c1)
	time.Sleep(time.Millisecond) // distinct start times for deterministic order
	f.Register("q2", "SELECT 2", "update", "", 7, nil, nil, c2)

	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	views := f.Snapshot()
	if len(views) != 2 || views[0].ID != "q1" || views[1].ID != "q2" {
		t.Fatalf("snapshot order = %+v", views)
	}
	if views[0].Shape != "star" || views[0].Epoch != 7 || views[0].Client != "1.2.3.4:5" {
		t.Errorf("q1 view = %+v", views[0])
	}
	if views[0].Resources.RowsEmitted != 3 {
		t.Errorf("q1 resources = %+v", views[0].Resources)
	}
	if views[0].AgeMillis < 0 {
		t.Errorf("negative age %f", views[0].AgeMillis)
	}
	if views[1].Shape != "" || views[1].Kind != "update" {
		t.Errorf("q2 view = %+v", views[1])
	}

	f.Remove("q1")
	f.Remove("unknown") // no-op
	if f.Len() != 1 {
		t.Fatalf("Len after remove = %d", f.Len())
	}
}

func TestInflightCancelDeliversCause(t *testing.T) {
	f := NewInflight()
	ctx, cancel := context.WithCancelCause(context.Background())
	f.Register("q1", "SELECT 1", "query", "", 0, nil, nil, cancel)

	if f.Cancel("missing") {
		t.Error("cancelled an unknown id")
	}
	if !f.Cancel("q1") {
		t.Fatal("known id not cancelled")
	}
	if !errors.Is(context.Cause(ctx), ErrAdminCancelled) {
		t.Errorf("cause = %v, want ErrAdminCancelled", context.Cause(ctx))
	}
	if v := f.Snapshot(); len(v) != 1 || !v[0].Cancelled {
		t.Errorf("snapshot after cancel = %+v", v)
	}
}

func TestInflightTruncatesQuery(t *testing.T) {
	f := NewInflight()
	long := strings.Repeat("x", MaxTraceQuery+100)
	f.Register("q", long, "query", "", 0, nil, nil, nil)
	if got := len(f.Snapshot()[0].Query); got != MaxTraceQuery {
		t.Errorf("stored query length = %d, want %d", got, MaxTraceQuery)
	}
}

func TestInflightNilSafe(t *testing.T) {
	var f *Inflight
	if f.Register("q", "", "query", "", 0, nil, nil, nil) != nil {
		t.Error("nil registry returned an entry")
	}
	f.Remove("q")
	if f.Cancel("q") || f.Len() != 0 || f.Snapshot() != nil {
		t.Error("nil registry not inert")
	}
}

func TestInflightConcurrent(t *testing.T) {
	f := NewInflight()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := string(rune('a'+g)) + "-" + string(rune('0'+i%10))
				_, cancel := context.WithCancelCause(context.Background())
				f.Register(id, "SELECT", "query", "", 0, NewResourceMeter(), nil, cancel)
				f.Cancel(id)
				f.Snapshot()
				f.Len()
				f.Remove(id)
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 0 {
		t.Errorf("leaked %d entries", f.Len())
	}
}

package obs

import (
	"os"
	"sync"
)

// RotatingFile is an append-only log file with a size cap and a single
// ".1" rollover: when a write would push the file past the cap, the
// live file is renamed to path+".1" (replacing any previous rollover)
// and a fresh file is started, bounding total disk use at roughly twice
// the cap. Built for the slow-query log, whose JSON lines would
// otherwise grow without limit on a long-lived server. Safe for
// concurrent use; satisfies io.WriteCloser.
type RotatingFile struct {
	path string
	max  int64

	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenRotatingFile opens path for appending, rolling over at maxBytes.
// maxBytes <= 0 disables rotation — the file just grows.
func OpenRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck
		return nil, err
	}
	return &RotatingFile{path: path, max: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first when the write would exceed the cap.
// A single record larger than the cap is still written whole (to a
// fresh file): the cap bounds growth, it does not truncate records.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.max > 0 && r.size > 0 && r.size+int64(len(p)) > r.max {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked renames the live file to ".1" and reopens a fresh one.
// If the rename fails the old file is reopened and appending continues
// uncapped — degrading to an unrotated log beats dropping records.
func (r *RotatingFile) rotateLocked() error {
	r.f.Close() //nolint:errcheck // already flushed; nothing to do on error
	renameErr := os.Rename(r.path, r.path+".1")
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	r.f = f
	r.size = 0
	if renameErr != nil {
		if st, serr := f.Stat(); serr == nil {
			r.size = st.Size()
		}
	}
	return nil
}

// Close closes the live file.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Exact bucket counts: le=1 → 1, le=2 → 2, le=4 → 1, +Inf → 1.
	wantCounts := []uint64{1, 2, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	// Median rank 2.5 lands in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	// p99 lands in +Inf, clamped to the last finite bound.
	if q := h.Quantile(0.99); q != 4 {
		t.Errorf("p99 = %v, want 4 (clamped)", q)
	}
	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramObserveOnBoundary(t *testing.T) {
	// le is inclusive: an observation exactly at a bound belongs to it.
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation landed in bucket %v, want le=1", h.counts)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("amber_test_total", "A test counter.")
	c.Add(7)
	r.GaugeFunc("amber_test_gauge", "A func gauge.", func() float64 { return 2.5 })
	h := r.Histogram("amber_test_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("amber_test_by_shape_total", "A labeled counter.", "shape")
	v.With("star").Add(3)
	v.With(`we"ird`).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP amber_test_total A test counter.",
		"# TYPE amber_test_total counter",
		"amber_test_total 7",
		"amber_test_gauge 2.5",
		`amber_test_seconds_bucket{le="0.1"} 1`,
		`amber_test_seconds_bucket{le="1"} 2`,
		`amber_test_seconds_bucket{le="+Inf"} 3`,
		"amber_test_seconds_sum 5.55",
		"amber_test_seconds_count 3",
		`amber_test_by_shape_total{shape="star"} 3`,
		`amber_test_by_shape_total{shape="we\"ird"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value" with a parseable value.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := parseFloat(line[i+1:]); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

func parseFloat(s string) (float64, error) {
	var f float64
	err := json.Unmarshal([]byte(s), &f)
	return f, err
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Counter("dup", "")
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("sum = %v, want 8.0", h.Sum())
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := NewTrace(strings.Repeat("x", 2*MaxTraceQuery))
	if len(tr.Query) != MaxTraceQuery {
		t.Fatalf("query not truncated: %d bytes", len(tr.Query))
	}
	if tr.ID == "" {
		t.Fatal("empty request ID")
	}
	done := tr.Span("parse_plan")
	time.Sleep(time.Millisecond)
	done()
	tr.SetPlan("cost", "star", "1 component", 3)
	tr.AddEngine(EngineCounters{InitCandidates: 10, Recursions: 5, SatProbes: 2, Embeddings: 4})
	tr.AddEngine(EngineCounters{Recursions: 1})
	tr.AddLevels([]Level{{Branch: 0, Component: 0, Pos: 0, Var: "x", Est: 12, Candidates: 10, Visits: 1}})
	tr.Finish("ok", 4)
	tr.Finish("error", 0) // second Finish ignored

	v := tr.View()
	if v.Status != "ok" || v.Rows != 4 || v.Shape != "star" || v.Epoch != 3 {
		t.Fatalf("view = %+v", v)
	}
	if v.Engine.Recursions != 6 || v.Engine.InitCandidates != 10 {
		t.Fatalf("engine = %+v", v.Engine)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "parse_plan" || v.Spans[0].Duration <= 0 {
		t.Fatalf("spans = %+v", v.Spans)
	}
	ratio, ok := tr.EstActualRatio()
	if !ok {
		t.Fatal("EstActualRatio not ok")
	}
	if want := 13.0 / 11.0; math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("ratio = %v, want %v", ratio, want)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Span("x")()
	tr.AddSpan("y", time.Second)
	tr.SetPlan("", "", "", 0)
	tr.AddEngine(EngineCounters{})
	tr.AddLevels([]Level{{}})
	tr.Finish("ok", 0)
	if _, ok := tr.EstActualRatio(); ok {
		t.Fatal("nil trace should have no ratio")
	}
	if tr.Duration() != 0 || tr.Shape() != "" || len(tr.Levels()) != 0 {
		t.Fatal("nil trace accessors should be zero")
	}
}

func TestContextCarry(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTrace("q")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	for _, id := range []string{"a", "b", "c"} {
		r.Add(NewTraceID(id, "q"))
	}
	got := r.Snapshot()
	if len(got) != 2 || got[0].ID != "c" || got[1].ID != "b" {
		t.Fatalf("snapshot = %+v", got)
	}
	if NewTraceRing(0).Snapshot() != nil {
		t.Fatal("disabled ring should snapshot nil")
	}
	var nilRing *TraceRing
	nilRing.Add(NewTrace("q"))
	if nilRing.Snapshot() != nil {
		t.Fatal("nil ring should snapshot nil")
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(&buf, 10*time.Millisecond)
	fast := NewTraceID("fast-1", "quick")
	fast.Finish("ok", 1)
	sl.Observe(fast)
	slow := NewTraceID("slow-1", "sluggish")
	slow.Time = slow.Time.Add(-time.Second) // backdate so duration exceeds threshold
	slow.Finish("ok", 2)
	sl.Observe(slow)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d slow-log lines, want 1: %q", len(lines), buf.String())
	}
	var rec TraceView
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-log line is not JSON: %v", err)
	}
	if rec.ID != "slow-1" || rec.Query != "sluggish" {
		t.Fatalf("record = %+v", rec)
	}
	if NewSlowLog(nil, time.Second).Enabled() {
		t.Fatal("nil-writer slow log should be disabled")
	}
	var disabled *SlowLog
	disabled.Observe(slow) // must not panic
}

func TestPlanQuality(t *testing.T) {
	var pq PlanQuality
	pq.Observe(1, 2.0)
	pq.Observe(1, 4.0)
	gen, n, mean := pq.Summary()
	if gen != 1 || n != 2 || mean != 3.0 {
		t.Fatalf("summary = (%d, %d, %v), want (1, 2, 3)", gen, n, mean)
	}
	pq.Observe(2, 10.0) // generation change resets the window
	gen, n, mean = pq.Summary()
	if gen != 2 || n != 1 || mean != 10.0 {
		t.Fatalf("after reset = (%d, %d, %v), want (2, 1, 10)", gen, n, mean)
	}
	var nilPQ *PlanQuality
	nilPQ.Observe(1, 1)
	if _, n, _ := nilPQ.Summary(); n != 0 {
		t.Fatal("nil PlanQuality should be empty")
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in runtime metrics:\n%s", want, out)
		}
	}
	rs := ReadRuntimeStats()
	if rs.Goroutines < 1 || rs.HeapAlloc == 0 {
		t.Fatalf("implausible runtime stats: %+v", rs)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("request IDs not unique: %q %q", a, b)
	}
}

package obs

import "runtime"

// RuntimeStats is a point-in-time picture of the Go runtime, shared by
// /metrics and the /stats "runtime" section.
type RuntimeStats struct {
	Goroutines   int     `json:"goroutines"`
	HeapAlloc    uint64  `json:"heap_alloc_bytes"`
	HeapSys      uint64  `json:"heap_sys_bytes"`
	HeapObjects  uint64  `json:"heap_objects"`
	TotalAlloc   uint64  `json:"total_alloc_bytes"`
	NumGC        uint32  `json:"gc_cycles"`
	GCPauseTotal float64 `json:"gc_pause_total_seconds"`
	GCPauseLast  float64 `json:"gc_pause_last_seconds"`
}

// ReadRuntimeStats samples the runtime (one ReadMemStats pass).
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeStats{
		Goroutines:   runtime.NumGoroutine(),
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		HeapObjects:  ms.HeapObjects,
		TotalAlloc:   ms.TotalAlloc,
		NumGC:        ms.NumGC,
		GCPauseTotal: float64(ms.PauseTotalNs) / 1e9,
	}
	if ms.NumGC > 0 {
		rs.GCPauseLast = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	return rs
}

// RegisterRuntimeMetrics registers go_* gauges on the registry, filled
// by one runtime sample per scrape.
func RegisterRuntimeMetrics(reg *Registry) {
	goroutines := reg.Gauge("go_goroutines", "Number of goroutines that currently exist.")
	heapAlloc := reg.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := reg.Gauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	heapObjects := reg.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.")
	totalAlloc := reg.Gauge("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.")
	numGC := reg.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	pauseTotal := reg.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	reg.AddCollector(func() {
		rs := ReadRuntimeStats()
		goroutines.Set(float64(rs.Goroutines))
		heapAlloc.Set(float64(rs.HeapAlloc))
		heapSys.Set(float64(rs.HeapSys))
		heapObjects.Set(float64(rs.HeapObjects))
		totalAlloc.Set(float64(rs.TotalAlloc))
		numGC.Set(float64(rs.NumGC))
		pauseTotal.Set(rs.GCPauseTotal)
	})
}

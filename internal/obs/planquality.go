package obs

import "sync"

// PlanQuality accumulates planner-accuracy ratios (Trace.EstActualRatio)
// per database generation: observing under a new generation resets the
// window, so the reported mean always describes estimates made against
// the current base graph — compaction rebuilds the synopsis the planner
// estimates from, and stale ratios would mask a regression.
type PlanQuality struct {
	mu  sync.Mutex
	gen uint64
	sum float64
	n   uint64
}

// Observe records one query's est/actual ratio under the given
// generation.
func (p *PlanQuality) Observe(gen uint64, ratio float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if gen != p.gen {
		p.gen, p.sum, p.n = gen, 0, 0
	}
	p.sum += ratio
	p.n++
	p.mu.Unlock()
}

// Summary reports the current window: its generation, sample count, and
// mean est/actual frontier ratio (0 when empty).
func (p *PlanQuality) Summary() (gen uint64, samples uint64, mean float64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return p.gen, 0, 0
	}
	return p.gen, p.n, p.sum / float64(p.n)
}

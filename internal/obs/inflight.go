package obs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cancellation causes installed on a query's context by the governance
// layer. The engine aborts with context.Canceled either way; handlers
// recover the reason through context.Cause to tell an operator kill or a
// resource-guard trip apart from an ordinary client disconnect.
var (
	// ErrAdminCancelled is the cause installed by Inflight.Cancel — an
	// operator killed the query through the admin surface.
	ErrAdminCancelled = errors.New("obs: query cancelled by administrator")
	// ErrResourceLimit is the cause installed by a ResourceMeter whose
	// visit count exceeded its configured cap.
	ErrResourceLimit = errors.New("obs: query exceeded resource limit")
)

// ResourceMeter is one query's live resource account: atomic counters
// the engine flushes into from its match loop (worker-local accumulation,
// flushed at the deadline-poll cadence, so the hot loop never contends)
// plus the server-side row and byte tallies. A nil meter is a valid
// no-op receiver everywhere.
//
// The meter doubles as a resource guard: SetVisitLimit arms a cap on
// vertices visited, and the flush that crosses it cancels the query's
// context with ErrResourceLimit.
//
//amber:hot
type ResourceMeter struct {
	candidates    atomic.Uint64 // candidate-set entries generated
	visits        atomic.Uint64 // candidate vertices tried by the match loops
	intersections atomic.Uint64 // sorted-list intersections computed
	overlayProbes atomic.Uint64 // index probes served through a non-empty overlay
	rows          atomic.Uint64 // result rows emitted to the client
	bytes         atomic.Uint64 // response bytes serialized
	progress      atomic.Uint64 // current plan level << 32 | total levels

	maxVisits uint64
	cancel    context.CancelCauseFunc
	limited   atomic.Bool
}

// NewResourceMeter returns an empty meter with no visit cap.
func NewResourceMeter() *ResourceMeter { return &ResourceMeter{} }

// SetVisitLimit arms the resource guard: the engine flush that pushes
// the visit count past max cancels the query via cancel(ErrResourceLimit).
// Call before execution starts; max 0 disables the guard.
func (m *ResourceMeter) SetVisitLimit(max uint64, cancel context.CancelCauseFunc) {
	if m == nil {
		return
	}
	m.maxVisits = max
	m.cancel = cancel
}

// FlushEngine accumulates one engine-side batch of counters. The engine
// calls it from its throttled deadline-poll path (every few hundred
// steps) and once at search end, so counters are live while the query
// runs without an atomic op per match step.
func (m *ResourceMeter) FlushEngine(candidates, visits, intersections, overlayProbes uint64) {
	if m == nil {
		return
	}
	m.candidates.Add(candidates)
	v := m.visits.Add(visits)
	m.intersections.Add(intersections)
	m.overlayProbes.Add(overlayProbes)
	if m.maxVisits > 0 && v > m.maxVisits && m.cancel != nil &&
		m.limited.CompareAndSwap(false, true) {
		m.cancel(ErrResourceLimit)
	}
}

// AddRows counts result rows emitted to the client.
func (m *ResourceMeter) AddRows(n uint64) {
	if m != nil {
		m.rows.Add(n)
	}
}

// AddBytes counts response bytes serialized to the client.
func (m *ResourceMeter) AddBytes(n uint64) {
	if m != nil {
		m.bytes.Add(n)
	}
}

// SetProgress records the matching position: the plan level whose
// candidate set was computed most recently, out of the plan's total core
// levels (summed over components and, for UNION queries, reset per
// branch).
func (m *ResourceMeter) SetProgress(level, total int) {
	if m == nil {
		return
	}
	m.progress.Store(uint64(uint32(level))<<32 | uint64(uint32(total)))
}

// Limited reports whether the visit guard tripped.
func (m *ResourceMeter) Limited() bool { return m != nil && m.limited.Load() }

// Visits returns the live count of vertices visited.
func (m *ResourceMeter) Visits() uint64 {
	if m == nil {
		return 0
	}
	return m.visits.Load()
}

// MeterView is the JSON snapshot of a meter (/debug/queries, traces,
// slow-query records).
type MeterView struct {
	Candidates      uint64 `json:"candidates"`
	VerticesVisited uint64 `json:"vertices_visited"`
	Intersections   uint64 `json:"intersections"`
	OverlayProbes   uint64 `json:"overlay_probes"`
	RowsEmitted     uint64 `json:"rows_emitted"`
	BytesSerialized uint64 `json:"bytes_serialized"`
	Level           int    `json:"level"`
	TotalLevels     int    `json:"total_levels"`
	ResourceLimited bool   `json:"resource_limited,omitempty"`
}

// View snapshots the meter.
func (m *ResourceMeter) View() MeterView {
	if m == nil {
		return MeterView{}
	}
	p := m.progress.Load()
	return MeterView{
		Candidates:      m.candidates.Load(),
		VerticesVisited: m.visits.Load(),
		Intersections:   m.intersections.Load(),
		OverlayProbes:   m.overlayProbes.Load(),
		RowsEmitted:     m.rows.Load(),
		BytesSerialized: m.bytes.Load(),
		Level:           int(uint32(p >> 32)),
		TotalLevels:     int(uint32(p)),
		ResourceLimited: m.limited.Load(),
	}
}

// ---- in-flight registry -------------------------------------------------

// InflightEntry is one registered in-flight request. Entries are created
// by Inflight.Register on admission and removed when the request
// finishes; Cancel reaches the entry's context between those points.
type InflightEntry struct {
	id     string
	query  string
	kind   string // "query", "update", "explain"
	client string
	epoch  uint64
	start  time.Time
	meter  *ResourceMeter
	shape  func() string // nil when the request has no plan (updates)
	cancel context.CancelCauseFunc

	cancelled atomic.Bool // an admin cancel was delivered
}

// InflightView is the JSON form of a live entry (/debug/queries).
type InflightView struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Query     string    `json:"query"`
	Shape     string    `json:"shape,omitempty"`
	Epoch     uint64    `json:"epoch"`
	Client    string    `json:"client,omitempty"`
	Start     string    `json:"start"`
	AgeMillis float64   `json:"age_ms"`
	Cancelled bool      `json:"cancelled,omitempty"`
	Resources MeterView `json:"resources"`
}

func (e *InflightEntry) view(now time.Time) InflightView {
	v := InflightView{
		ID:        e.id,
		Kind:      e.kind,
		Query:     e.query,
		Epoch:     e.epoch,
		Client:    e.client,
		Start:     e.start.UTC().Format(time.RFC3339Nano),
		AgeMillis: float64(now.Sub(e.start)) / float64(time.Millisecond),
		Cancelled: e.cancelled.Load(),
		Resources: e.meter.View(),
	}
	if e.shape != nil {
		v.Shape = e.shape()
	}
	return v
}

// Inflight is the registry of requests currently holding an execution
// slot: the data behind GET /debug/queries and the dispatch table for
// POST /admin/queries/{id}/cancel. Safe for concurrent use.
type Inflight struct {
	mu sync.Mutex
	m  map[string]*InflightEntry
}

// NewInflight returns an empty registry.
func NewInflight() *Inflight {
	return &Inflight{m: make(map[string]*InflightEntry)}
}

// Register adds an entry for a request admitted to execution. query is
// truncated to MaxTraceQuery bytes; shape may be nil; cancel is the
// request context's cancel-with-cause hook (what an admin cancel
// invokes). The caller must Remove(id) when the request finishes.
func (f *Inflight) Register(id, query, kind, client string, epoch uint64,
	meter *ResourceMeter, shape func() string, cancel context.CancelCauseFunc) *InflightEntry {
	if f == nil {
		return nil
	}
	if len(query) > MaxTraceQuery {
		query = query[:MaxTraceQuery]
	}
	e := &InflightEntry{
		id: id, query: query, kind: kind, client: client,
		epoch: epoch, start: time.Now(), meter: meter, shape: shape, cancel: cancel,
	}
	f.mu.Lock()
	f.m[id] = e
	f.mu.Unlock()
	return e
}

// Remove drops the entry when its request finishes. Removing an unknown
// id is a no-op (a racing admin cancel may have observed the entry, but
// only the owning handler removes it).
func (f *Inflight) Remove(id string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.m, id)
	f.mu.Unlock()
}

// Cancel delivers an administrative cancellation to the identified
// request: its context is cancelled with ErrAdminCancelled, so the
// engine aborts at its next poll and the handler frees the admission
// slot through its normal error path. It reports whether the id was
// in flight.
func (f *Inflight) Cancel(id string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	e, ok := f.m[id]
	f.mu.Unlock()
	if !ok {
		return false
	}
	e.cancelled.Store(true)
	if e.cancel != nil {
		e.cancel(ErrAdminCancelled)
	}
	return true
}

// Len returns the number of in-flight entries (the amber_inflight_queries
// gauge).
func (f *Inflight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// Snapshot lists the in-flight entries, oldest first.
func (f *Inflight) Snapshot() []InflightView {
	if f == nil {
		return nil
	}
	now := time.Now()
	f.mu.Lock()
	views := make([]InflightView, 0, len(f.m))
	for _, e := range f.m {
		views = append(views, e.view(now))
	}
	f.mu.Unlock()
	sort.Slice(views, func(i, j int) bool {
		if views[i].Start != views[j].Start {
			return views[i].Start < views[j].Start
		}
		return views[i].ID < views[j].ID
	})
	return views
}

package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRotatingFileRollsOverOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	rf, err := OpenRotatingFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()

	line := bytes.Repeat([]byte("a"), 39)
	line = append(line, '\n') // 40 bytes per record
	for i := 0; i < 2; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	// Third write would reach 120 > 100: rotates first.
	if _, err := rf.Write(line); err != nil {
		t.Fatal(err)
	}

	rolled, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rollover file: %v", err)
	}
	if len(rolled) != 80 {
		t.Errorf("rolled size = %d, want 80", len(rolled))
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 40 {
		t.Errorf("live size = %d, want 40", len(live))
	}

	// A second rotation replaces the previous .1 (single rollover: disk
	// use stays bounded).
	for i := 0; i < 2; i++ {
		if _, err := rf.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	rolled, _ = os.ReadFile(path + ".1")
	if len(rolled) != 80 {
		t.Errorf("second rollover size = %d, want 80", len(rolled))
	}
}

func TestRotatingFileOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	rf, err := OpenRotatingFile(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	big := bytes.Repeat([]byte("b"), 50)
	if _, err := rf.Write(big); err != nil {
		t.Fatal(err)
	}
	live, _ := os.ReadFile(path)
	if len(live) != 50 {
		t.Errorf("oversized record truncated: %d bytes", len(live))
	}
}

func TestRotatingFileResumesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	if err := os.WriteFile(path, bytes.Repeat([]byte("c"), 90), 0o644); err != nil {
		t.Fatal(err)
	}
	rf, err := OpenRotatingFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	// 90 existing + 20 > 100: the pre-existing size must count.
	if _, err := rf.Write(bytes.Repeat([]byte("d"), 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("pre-existing bytes did not trigger rotation: %v", err)
	}
}

func TestRotatingFileUncapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	rf, err := OpenRotatingFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	for i := 0; i < 10; i++ {
		if _, err := rf.Write(bytes.Repeat([]byte("e"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		t.Error("uncapped file rotated")
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog writes a JSON-lines record for every trace whose duration
// meets a threshold. Records carry the truncated query text, plan
// summary, stage timings, engine counters, and snapshot epoch — enough
// to diagnose a hub-trap regression after the fact. A zero threshold
// disables it.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
}

// NewSlowLog builds a slow-query log writing to w. A nil writer or
// non-positive threshold yields a disabled log (Observe is a no-op).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, w: w}
}

// Enabled reports whether Observe can ever write.
func (s *SlowLog) Enabled() bool { return s != nil }

// Threshold returns the configured duration floor (0 when disabled).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Observe writes the trace as one JSON line if its sealed duration
// meets the threshold. Call after Trace.Finish.
func (s *SlowLog) Observe(t *Trace) {
	if s == nil || t == nil {
		return
	}
	if t.Duration() < s.threshold {
		return
	}
	line, err := json.Marshal(t.View())
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	s.w.Write(line)
	s.mu.Unlock()
}

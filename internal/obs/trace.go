package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// MaxTraceQuery bounds how much query text a trace (and thus the slow
// log and /debug/traces) retains.
const MaxTraceQuery = 1024

// reqPrefix is a per-process random prefix so request IDs from different
// server instances never collide in aggregated logs.
var reqPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}()

var reqSeq atomic.Uint64

// NewRequestID returns a process-unique request identifier
// ("<hex>-<seq>"), cheap enough to mint per request.
func NewRequestID() string {
	return fmt.Sprintf("%s-%d", reqPrefix, reqSeq.Add(1))
}

// Span is one timed stage of a request, offset-relative to the trace
// start.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_us"`
	Duration time.Duration `json:"duration_us"`
}

// EngineCounters aggregates the engine's search-effort counters over
// every branch of one execution (the quantities of engine.Stats).
type EngineCounters struct {
	InitCandidates int    `json:"init_candidates"`
	Recursions     int    `json:"recursions"`
	SatProbes      int    `json:"sat_probes"`
	Embeddings     uint64 `json:"embeddings"`
}

// Level is one core-vertex matching level of one branch: the planner's
// estimated candidate-set size against what the engine actually
// enumerated. Visits counts how many times the level's candidate set was
// computed (the per-level recursion count); Candidates sums the set
// sizes across those visits.
type Level struct {
	Branch     int     `json:"branch"`
	Component  int     `json:"component"`
	Pos        int     `json:"pos"`
	Var        string  `json:"var"`
	Est        float64 `json:"est"`
	Candidates uint64  `json:"candidates"`
	Visits     uint64  `json:"visits"`
}

// Mean returns the average candidate-set size per visit.
func (l Level) Mean() float64 {
	if l.Visits == 0 {
		return 0
	}
	return float64(l.Candidates) / float64(l.Visits)
}

// Trace is one request's record: identity, stage spans, and — when the
// execution layer sees it in the context — the engine's effort counters
// and per-level frontier sizes. A Trace is safe for concurrent use; all
// methods are nil-receiver-safe so call sites need no branching.
type Trace struct {
	ID    string
	Time  time.Time // wall-clock start
	Query string    // truncated to MaxTraceQuery

	mu          sync.Mutex
	shape       string
	planner     string
	planSummary string
	epoch       uint64
	spans       []Span
	engine      EngineCounters
	levels      []Level
	meter       *ResourceMeter
	status      string
	rows        uint64
	duration    time.Duration
	done        bool
}

// NewTrace starts a trace for the given query text with a fresh request
// ID. The text is truncated to MaxTraceQuery bytes.
func NewTrace(query string) *Trace {
	return NewTraceID(NewRequestID(), query)
}

// NewTraceID starts a trace under an already-minted request ID.
func NewTraceID(id, query string) *Trace {
	if len(query) > MaxTraceQuery {
		query = query[:MaxTraceQuery]
	}
	return &Trace{ID: id, Time: time.Now(), Query: query}
}

// Span records a stage span and returns the function that closes it.
//
//	defer tr.Span("parse_plan")()
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, time.Since(start)) }
}

// AddSpan records an already-measured stage duration (used for stages
// accumulated across many small steps, like per-row serialization).
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: time.Since(t.Time) - d, Duration: d})
	t.mu.Unlock()
}

// SetPlan records the execution plan's identity: planner name, shape
// class, a one-line plan summary, and the snapshot epoch the query ran
// against.
func (t *Trace) SetPlan(planner, shape, summary string, epoch uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.planner, t.shape, t.planSummary, t.epoch = planner, shape, summary, epoch
	t.mu.Unlock()
}

// AddEngine accumulates one branch's engine counters.
func (t *Trace) AddEngine(c EngineCounters) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.engine.InitCandidates += c.InitCandidates
	t.engine.Recursions += c.Recursions
	t.engine.SatProbes += c.SatProbes
	t.engine.Embeddings += c.Embeddings
	t.mu.Unlock()
}

// AddLevels appends one branch's per-level frontier records.
func (t *Trace) AddLevels(ls []Level) {
	if t == nil || len(ls) == 0 {
		return
	}
	t.mu.Lock()
	t.levels = append(t.levels, ls...)
	t.mu.Unlock()
}

// Finish seals the trace with its outcome ("ok", "hit", "timeout",
// "cancelled", "error", ...) and row count. Later Finish calls are
// ignored.
func (t *Trace) Finish(status string, rows uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.status = status
		t.rows = rows
		t.duration = time.Since(t.Time)
	}
	t.mu.Unlock()
}

// SetMeter attaches the request's resource meter, so the trace's sealed
// view — and thus /debug/traces and the slow-query log — carries the
// query's final resource bill.
func (t *Trace) SetMeter(m *ResourceMeter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meter = m
	t.mu.Unlock()
}

// Meter returns the attached resource meter (nil when none). The
// execution layer hands it to the engine alongside the trace.
func (t *Trace) Meter() *ResourceMeter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.meter
}

// Shape returns the recorded query-shape class ("" until SetPlan).
func (t *Trace) Shape() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shape
}

// Engine returns the accumulated engine counters.
func (t *Trace) Engine() EngineCounters {
	if t == nil {
		return EngineCounters{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.engine
}

// Levels returns a copy of the per-level frontier records.
func (t *Trace) Levels() []Level {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Level(nil), t.levels...)
}

// Duration returns the sealed duration (zero before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.duration
}

// EstActualRatio summarizes planner accuracy over the trace's levels:
// the arithmetic mean of (est+1)/(mean actual+1) across visited levels
// with finite estimates. ok is false when no level qualifies. A ratio
// above 1 means the planner overestimated frontiers, below 1 that it
// underestimated them.
func (t *Trace) EstActualRatio() (ratio float64, ok bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sum, n := 0.0, 0
	for _, l := range t.levels {
		if l.Visits == 0 || math.IsInf(l.Est, 0) || math.IsNaN(l.Est) {
			continue
		}
		sum += (l.Est + 1) / (l.Mean() + 1)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// TraceView is the JSON form of a sealed trace (/debug/traces, tests).
type TraceView struct {
	ID          string         `json:"id"`
	Time        string         `json:"time"`
	Query       string         `json:"query"`
	Shape       string         `json:"shape,omitempty"`
	Planner     string         `json:"planner,omitempty"`
	PlanSummary string         `json:"plan,omitempty"`
	Epoch       uint64         `json:"epoch"`
	Status      string         `json:"status"`
	Rows        uint64         `json:"rows"`
	DurationMS  float64        `json:"duration_ms"`
	Spans       []Span         `json:"spans,omitempty"`
	Engine      EngineCounters `json:"engine"`
	Levels      []Level        `json:"levels,omitempty"`
	Resources   *MeterView     `json:"resources,omitempty"`
}

// View snapshots the trace for serialization.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID:          t.ID,
		Time:        t.Time.UTC().Format(time.RFC3339Nano),
		Query:       t.Query,
		Shape:       t.shape,
		Planner:     t.planner,
		PlanSummary: t.planSummary,
		Epoch:       t.epoch,
		Status:      t.status,
		Rows:        t.rows,
		DurationMS:  float64(t.duration) / float64(time.Millisecond),
		Spans:       append([]Span(nil), t.spans...),
		Engine:      t.engine,
		Levels:      append([]Level(nil), t.levels...),
	}
	if t.meter != nil {
		mv := t.meter.View()
		v.Resources = &mv
	}
	return v
}

// SlogAttrs renders the trace as structured-log attributes, the shared
// formatting between the server's slow-query log and cmd/amber -verbose.
func (t *Trace) SlogAttrs() []slog.Attr {
	v := t.View()
	attrs := []slog.Attr{
		slog.String("request_id", v.ID),
		slog.String("status", v.Status),
		slog.Float64("duration_ms", v.DurationMS),
		slog.Uint64("rows", v.Rows),
		slog.Int("recursions", v.Engine.Recursions),
		slog.Int("init_candidates", v.Engine.InitCandidates),
		slog.Int("sat_probes", v.Engine.SatProbes),
	}
	if v.Shape != "" {
		attrs = append(attrs, slog.String("shape", v.Shape))
	}
	if v.PlanSummary != "" {
		attrs = append(attrs, slog.String("plan", v.PlanSummary))
	}
	for _, sp := range v.Spans {
		attrs = append(attrs, slog.Float64(sp.Name+"_ms", float64(sp.Duration)/float64(time.Millisecond)))
	}
	return attrs
}

// ---- context carry ------------------------------------------------------

type traceKey struct{}

// ContextWithTrace returns a context carrying the trace; the execution
// layer (core.PreparedQuery.Execute) picks it up and fills in engine
// counters and per-level frontiers.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ---- recent-trace ring --------------------------------------------------

// TraceRing retains the N most recent traces for /debug/traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewTraceRing builds a ring of the given capacity (≤0 disables it; Add
// becomes a no-op and Snapshot returns nil).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return &TraceRing{}
	}
	return &TraceRing{buf: make([]*Trace, capacity)}
}

// Add records a trace.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || len(r.buf) == 0 || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, most recent first.
func (r *TraceRing) Snapshot() []TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return nil
	}
	out := make([]TraceView, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx].View())
	}
	r.mu.Unlock()
	return out
}

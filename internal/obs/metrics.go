// Package obs is AMbER's zero-dependency observability layer: a
// Prometheus-text-format metrics registry (counters, gauges and fixed-
// bucket histograms, hand-rolled — no client library), lightweight
// per-request traces carried through context, a bounded ring of recent
// traces, a JSON-lines slow-query log, and a per-generation plan-quality
// accumulator. The server threads it through core and the engine so the
// paper's central quantities — per-level candidate frontier sizes,
// recursion counts, est-vs-actual planner accuracy — are visible on live
// traffic, not only in offline benchmarks.
//
// Everything here is stdlib-only and safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the fixed histogram bounds (seconds) used for all
// request-latency histograms: 100µs to 10s, roughly logarithmic. The
// final +Inf bucket is implicit.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition. Bounds are upper edges in ascending order; observations
// above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (0..1) from the bucket counts,
// interpolating linearly within the containing bucket. With no
// observations it returns 0; observations in the +Inf bucket clamp to
// the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.bounds) {
				lower = h.bounds[i]
			}
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper edge to interpolate toward.
				return lower
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// ---- registry ----------------------------------------------------------

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: scalar, func-backed, or a set of labeled
// children.
type family struct {
	name, help string
	kind       metricKind
	label      string // label name for vec families; "" = scalar

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // func-backed counter/gauge
	hist    *Histogram

	mu       sync.Mutex
	children map[string]any // label value -> *Counter | *Histogram
	order    []string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Register every family once, at construction.
type Registry struct {
	mu         sync.Mutex
	fams       []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("obs: duplicate metric " + f.name)
	}
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — used to expose an existing atomic counter without duplicating
// state (so /metrics and /stats can never disagree).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers and returns a histogram with the given bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, label: label, children: map[string]any{}}
	r.add(f)
	return &CounterVec{f: f}
}

// With returns the child counter for the given label value, creating it
// on first use. Label values must be low-cardinality (a shape enum, a
// stage name) — every distinct value becomes an exposition line.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.children[value] = c
	v.f.order = append(v.f.order, value)
	sort.Strings(v.f.order)
	return c
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram, label: label, children: map[string]any{}}
	r.add(f)
	return &HistogramVec{f: f, bounds: bounds}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.children[value]; ok {
		return h.(*Histogram)
	}
	h := NewHistogram(v.bounds)
	v.f.children[value] = h
	v.f.order = append(v.f.order, value)
	sort.Strings(v.f.order)
	return h
}

// AddCollector registers fn to run at the start of every scrape, before
// any family renders — the hook that refreshes sampled gauges (runtime
// memstats) with a single collection pass instead of one per metric.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	fams := append([]*family{}, r.fams...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.children != nil:
		f.mu.Lock()
		order := append([]string{}, f.order...)
		children := make(map[string]any, len(f.children))
		for k, v := range f.children {
			children[k] = v
		}
		f.mu.Unlock()
		for _, lv := range order {
			sel := f.label + `="` + escapeLabel(lv) + `"`
			switch m := children[lv].(type) {
			case *Counter:
				fmt.Fprintf(b, "%s{%s} %s\n", f.name, sel, fmtFloat(float64(m.Value())))
			case *Histogram:
				writeHistogram(b, f.name, sel, m)
			}
		}
	case f.hist != nil:
		writeHistogram(b, f.name, "", f.hist)
	case f.fn != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, fmtFloat(f.fn()))
	case f.counter != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, fmtFloat(float64(f.counter.Value())))
	case f.gauge != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, fmtFloat(f.gauge.Value()))
	}
}

// writeHistogram renders the cumulative bucket lines plus _sum and
// _count. extraSel is the vec label selector ("" for scalar families).
func writeHistogram(b *strings.Builder, name, extraSel string, h *Histogram) {
	join := func(le string) string {
		if extraSel == "" {
			return `le="` + le + `"`
		}
		return extraSel + `,le="` + le + `"`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, join(fmtFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, join("+Inf"), cum)
	sel := ""
	if extraSel != "" {
		sel = "{" + extraSel + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sel, fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sel, h.Count())
}

// fmtFloat renders a sample value the way Prometheus expects: integral
// values without an exponent or trailing zeros.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, `\"`+"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

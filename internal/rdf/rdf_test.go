package rdf

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewIRI("_:b0"), "_:b0"},
		{NewLiteral("hello"), `"hello"`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewLiteral("a\tb\nc"), `"a\tb\nc"`},
		{NewLiteral(`back\slash`), `"back\\slash"`},
	}
	for _, tc := range tests {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("Term%v.String() = %q, want %q", tc.term, got, tc.want)
		}
	}
}

func TestTermPredicates(t *testing.T) {
	iri := NewIRI("http://x/a")
	lit := NewLiteral("v")
	if !iri.IsIRI() || iri.IsLiteral() {
		t.Errorf("IRI kind predicates wrong: %+v", iri)
	}
	if !lit.IsLiteral() || lit.IsIRI() {
		t.Errorf("Literal kind predicates wrong: %+v", lit)
	}
	var zero Term
	if !zero.IsZero() {
		t.Error("zero Term not reported as zero")
	}
	if iri.IsZero() || lit.IsZero() {
		t.Error("non-zero terms reported as zero")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" {
		t.Errorf("kind names wrong: %s %s", IRI, Literal)
	}
	if got := TermKind(9).String(); got != "TermKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseBasicNTriples(t *testing.T) {
	src := `
# a comment
<http://x/London> <http://y/isPartOf> <http://x/England> .
<http://x/Wembley> <http://y/hasCapacityOf> "90000" .
_:b0 <http://y/knows> _:b1 .
`
	got, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d triples, want 3", len(got))
	}
	if got[0].S.Value != "http://x/London" || got[0].P.Value != "http://y/isPartOf" || got[0].O.Value != "http://x/England" {
		t.Errorf("triple 0 = %v", got[0])
	}
	if !got[1].O.IsLiteral() || got[1].O.Value != "90000" {
		t.Errorf("triple 1 object = %v", got[1].O)
	}
	if got[2].S.Value != "_:b0" || got[2].O.Value != "_:b1" {
		t.Errorf("blank nodes = %v", got[2])
	}
}

func TestParsePrefixedNames(t *testing.T) {
	src := `
@prefix x: <http://dbpedia.org/resource/> .
PREFIX y: <http://dbpedia.org/ontology/>
x:London y:isPartOf x:England .
x:Music_Band y:hasName "MCA_Band" .
`
	got, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2", len(got))
	}
	if got[0].S.Value != "http://dbpedia.org/resource/London" {
		t.Errorf("prefixed subject = %q", got[0].S.Value)
	}
	if got[0].P.Value != "http://dbpedia.org/ontology/isPartOf" {
		t.Errorf("prefixed predicate = %q", got[0].P.Value)
	}
	if got[1].O.Value != "MCA_Band" {
		t.Errorf("literal = %q", got[1].O.Value)
	}
}

func TestParseLiteralSuffixes(t *testing.T) {
	src := `<http://x/a> <http://y/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/a> <http://y/q> "bonjour"@fr .
`
	got, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if want := NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"); got[0].O != want {
		t.Errorf("datatype literal = %v, want %v", got[0].O, want)
	}
	if want := NewLangLiteral("bonjour", "fr"); got[1].O != want {
		t.Errorf("lang literal = %v, want %v", got[1].O, want)
	}
}

func TestParseEscapes(t *testing.T) {
	src := `<http://x/a> <http://y/p> "line1\nline2\t\"q\"\\ é \U0001F600" .` + "\n"
	got, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want := "line1\nline2\t\"q\"\\ é \U0001F600"
	if got[0].O.Value != want {
		t.Errorf("escaped literal = %q, want %q", got[0].O.Value, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"literal subject", `"lit" <http://y/p> <http://x/o> .`},
		{"literal predicate", `<http://x/s> "lit" <http://x/o> .`},
		{"missing dot", `<http://x/s> <http://y/p> <http://x/o>`},
		{"unterminated iri", `<http://x/s <http://y/p> <http://x/o> .`},
		{"unterminated literal", `<http://x/s> <http://y/p> "abc .`},
		{"unbound prefix", `foo:s <http://y/p> <http://x/o> .`},
		{"dangling escape", `<http://x/s> <http://y/p> "abc\` + `" .`},
		{"bad unicode escape", `<http://x/s> <http://y/p> "\uZZZZ" .`},
		{"empty iri", `<> <http://y/p> <http://x/o> .`},
		{"trailing garbage", `<http://x/s> <http://y/p> <http://x/o> . junk`},
		{"empty blank label", `_: <http://y/p> <http://x/o> .`},
		{"truncated line", `<http://x/s> <http://y/p>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src + "\n"); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseString("<http://x/a> <http://y/p> <http://x/b> .\nbroken line here\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("error text %q does not mention line", pe.Error())
	}
}

func TestDecoderEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader("# only a comment\n\n"))
	if _, err := d.Decode(); err != io.EOF {
		t.Errorf("Decode on empty input = %v, want io.EOF", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	triples := []Triple{
		{NewIRI("http://x/s"), NewIRI("http://y/p"), NewIRI("http://x/o")},
		{NewIRI("http://x/s"), NewIRI("http://y/p"), NewLiteral(`tricky "value"` + "\twith\ttabs")},
		{NewBlank("blank"), NewIRI("http://y/p"), NewLiteral("plain")},
	}
	var sb strings.Builder
	enc := NewEncoder(&sb)
	for _, tr := range triples {
		if err := enc.Encode(tr); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("round trip triple %d = %v, want %v", i, got[i], triples[i])
		}
	}
}

// TestLiteralRoundTripProperty checks, property-based, that any literal
// value survives encode→decode.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(val string) bool {
		// The line-based grammar cannot represent other control chars that
		// we do not escape; restrict to the escapable set plus printables.
		val = strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\n' && r != '\t' && r != '\r' {
				return 'x'
			}
			return r
		}, val)
		tr := Triple{NewIRI("http://x/s"), NewIRI("http://y/p"), NewLiteral(val)}
		got, err := ParseString(tr.String() + "\n")
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].O.Value == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrefixMap(t *testing.T) {
	var p PrefixMap
	p.Set("x", "http://dbpedia.org/resource/")
	p.Set("y", "http://dbpedia.org/ontology/")

	got, err := p.Expand("x:London")
	if err != nil || got != "http://dbpedia.org/resource/London" {
		t.Errorf("Expand = %q, %v", got, err)
	}
	if _, err := p.Expand("nope"); err == nil {
		t.Error("Expand without colon should fail")
	}
	if _, err := p.Expand("zz:a"); err == nil {
		t.Error("Expand with unbound prefix should fail")
	}

	if c, ok := p.Compact("http://dbpedia.org/ontology/isPartOf"); !ok || c != "y:isPartOf" {
		t.Errorf("Compact = %q, %v", c, ok)
	}
	if c, ok := p.Compact("http://other/thing"); ok || c != "http://other/thing" {
		t.Errorf("Compact miss = %q, %v", c, ok)
	}

	if ns, ok := p.Lookup("x"); !ok || ns != "http://dbpedia.org/resource/" {
		t.Errorf("Lookup = %q, %v", ns, ok)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if got := p.Prefixes(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Prefixes = %v", got)
	}

	c := p.Clone()
	c.Set("x", "http://elsewhere/")
	if ns, _ := p.Lookup("x"); ns != "http://dbpedia.org/resource/" {
		t.Error("Clone is not independent")
	}
}

func TestPrefixCompactLongestWins(t *testing.T) {
	var p PrefixMap
	p.Set("a", "http://x/")
	p.Set("b", "http://x/deep/")
	if c, ok := p.Compact("http://x/deep/item"); !ok || c != "b:item" {
		t.Errorf("Compact longest = %q, %v", c, ok)
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{NewIRI("http://x/s"), NewIRI("http://y/p"), NewLiteral("v")}
	want := `<http://x/s> <http://y/p> "v" .`
	if got := tr.String(); got != want {
		t.Errorf("Triple.String() = %q, want %q", got, want)
	}
}

package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps namespace prefixes (without the trailing colon) to IRI
// namespaces. It supports both expanding prefixed names to full IRIs and
// compacting full IRIs back to prefixed names for display.
//
// The zero value is ready to use.
type PrefixMap struct {
	byPrefix map[string]string
}

// Set binds prefix to namespace, replacing any previous binding.
func (p *PrefixMap) Set(prefix, namespace string) {
	if p.byPrefix == nil {
		p.byPrefix = make(map[string]string)
	}
	p.byPrefix[prefix] = namespace
}

// Lookup returns the namespace bound to prefix.
func (p *PrefixMap) Lookup(prefix string) (string, bool) {
	ns, ok := p.byPrefix[prefix]
	return ns, ok
}

// Len reports the number of bindings.
func (p *PrefixMap) Len() int { return len(p.byPrefix) }

// Expand resolves a prefixed name such as "dbo:isPartOf" to a full IRI.
// It returns an error if the name has no colon or the prefix is unbound.
func (p *PrefixMap) Expand(name string) (string, error) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", name)
	}
	ns, ok := p.byPrefix[name[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unbound prefix %q", name[:i])
	}
	return ns + name[i+1:], nil
}

// Compact rewrites iri using the longest matching namespace, returning the
// prefixed form; when no namespace matches it returns the IRI unchanged and
// false.
func (p *PrefixMap) Compact(iri string) (string, bool) {
	best, bestNS := "", ""
	for prefix, ns := range p.byPrefix {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = prefix, ns
		}
	}
	if bestNS == "" {
		return iri, false
	}
	return best + ":" + iri[len(bestNS):], true
}

// Prefixes returns the bound prefixes in sorted order.
func (p *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(p.byPrefix))
	for prefix := range p.byPrefix {
		out = append(out, prefix)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the map.
func (p *PrefixMap) Clone() *PrefixMap {
	c := &PrefixMap{byPrefix: make(map[string]string, len(p.byPrefix))}
	for k, v := range p.byPrefix {
		c.byPrefix[k] = v
	}
	return c
}

// Package rdf provides the RDF data model used throughout the repository:
// terms, triples, prefix handling, and a streaming parser/writer for
// N-Triples plus a small prefixed (Turtle-like) surface syntax.
//
// The model follows the W3C RDF 1.1 abstract syntax restricted to what the
// AMbER paper (EDBT 2016, Section 2.1) requires: a subject and a predicate
// are always IRIs (blank nodes are accepted as subjects and objects), an
// object is an IRI, a blank node or a literal. Literals are typed: the
// lexical form, the datatype IRI and the language tag are carried as
// separate fields end to end, so `"42"^^xsd:integer` and the plain string
// `"42^^…"` are distinct terms.
package rdf

import (
	"fmt"
	"strings"
)

// XSDString is the datatype IRI of plain string literals. Per RDF 1.1 a
// simple literal and one explicitly typed as xsd:string denote the same
// term, so the parser and constructors normalize the explicit form away:
// a Term with empty Datatype and Lang is an xsd:string literal.
const XSDString = "http://www.w3.org/2001/XMLSchema#string"

// LangString is the datatype IRI RDF 1.1 assigns to language-tagged
// literals. It is implied by a non-empty Lang and never stored in
// Term.Datatype.
const LangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

// TermKind discriminates the kinds of RDF terms the engine manipulates.
type TermKind uint8

const (
	// IRI is an Internationalized Resource Identifier.
	IRI TermKind = iota
	// Literal is an RDF literal: a lexical form plus an optional datatype
	// IRI or language tag.
	Literal
	// Blank is a blank node, identified by its _: label.
	Blank
)

// String reports the kind name, for diagnostics.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term: an IRI, a blank node or a literal.
//
// Value holds the IRI text, the blank label (including the "_:" prefix)
// or the literal's lexical form. Datatype and Lang are meaningful only
// for literals; at most one of them is non-empty.
//
// The zero value is an empty IRI, which is never produced by the parser
// and can therefore be used as a sentinel.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a plain (xsd:string) literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
// xsd:string is normalized to the plain form.
func NewTypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString || datatype == "" {
		return Term{Kind: Literal, Value: lexical}
	}
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang}
}

// NewBlank returns a blank-node term; label may be given with or without
// the "_:" prefix.
func NewBlank(label string) Term {
	if !strings.HasPrefix(label, "_:") {
		label = "_:" + label
	}
	return Term{Kind: Blank, Value: label}
}

// NewResource reconstructs an IRI or blank-node term from its dictionary
// key (the vertex dictionaries store blank labels in the "_:" namespace).
func NewResource(v string) Term {
	if strings.HasPrefix(v, "_:") {
		return Term{Kind: Blank, Value: v}
	}
	return Term{Kind: IRI, Value: v}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsResource reports whether the term can denote a graph vertex: an IRI
// or a blank node.
func (t Term) IsResource() bool { return t.Kind == IRI || t.Kind == Blank }

// IsZero reports whether the term is the zero Term.
func (t Term) IsZero() bool { return t == Term{} }

// DatatypeIRI returns the literal's effective datatype under RDF 1.1
// semantics: the explicit datatype, rdf:langString for language-tagged
// literals, xsd:string otherwise. It returns "" for non-literals.
func (t Term) DatatypeIRI() string {
	if t.Kind != Literal {
		return ""
	}
	if t.Lang != "" {
		return LangString
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		switch {
		case t.Lang != "":
			s += "@" + t.Lang
		case t.Datatype != "":
			s += "^^<" + t.Datatype + ">"
		}
		return s
	case Blank:
		if isBlankLabel(t.Value) {
			return t.Value
		}
		return "<" + t.Value + ">"
	default:
		if isBlankLabel(t.Value) {
			return t.Value
		}
		return "<" + t.Value + ">"
	}
}

// isBlankLabel reports whether v is a well-formed blank-node identifier
// (the only form the unbracketed rendering may be used for).
func isBlankLabel(v string) bool {
	if len(v) < 3 || v[0] != '_' || v[1] != ':' {
		return false
	}
	for i := 2; i < len(v); i++ {
		c := v[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '.') {
			return false
		}
	}
	return true
}

// escapeLiteral escapes the characters N-Triples requires escaping inside a
// quoted literal. It works byte-wise (every escaped character is a single
// byte) so that arbitrary — even invalid-UTF-8 — content survives a
// round trip unmangled.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Triple is one RDF statement <s, p, o>. S is an IRI or blank node, P is
// always an IRI; O is any term (enforced by the parser, not by the type).
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Package rdf provides the RDF data model used throughout the repository:
// terms, triples, prefix handling, and a streaming parser/writer for
// N-Triples plus a small prefixed (Turtle-like) surface syntax.
//
// The model follows the W3C RDF 1.1 abstract syntax restricted to what the
// AMbER paper (EDBT 2016, Section 2.1) requires: a subject and a predicate
// are always IRIs, an object is either an IRI or a literal. Blank nodes are
// accepted by the parser and treated as IRIs in a dedicated namespace so
// that downstream components need only two term kinds.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the two kinds of RDF terms the engine manipulates.
type TermKind uint8

const (
	// IRI is an Internationalized Resource Identifier (or a blank node
	// mapped into the _: namespace).
	IRI TermKind = iota
	// Literal is an RDF literal; only its lexical form is retained. The
	// paper treats literals opaquely as attribute values, so datatype and
	// language tags are folded into the lexical form when present.
	Literal
)

// String reports the kind name, for diagnostics.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term: an IRI or a literal.
//
// The zero value is an empty IRI, which is never produced by the parser and
// can therefore be used as a sentinel.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsZero reports whether the term is the zero Term.
func (t Term) IsZero() bool { return t.Kind == IRI && t.Value == "" }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == Literal {
		return `"` + escapeLiteral(t.Value) + `"`
	}
	if isBlankLabel(t.Value) {
		return t.Value
	}
	return "<" + t.Value + ">"
}

// isBlankLabel reports whether v is a well-formed blank-node identifier
// (the only form the unbracketed rendering may be used for).
func isBlankLabel(v string) bool {
	if len(v) < 3 || v[0] != '_' || v[1] != ':' {
		return false
	}
	for i := 2; i < len(v); i++ {
		c := v[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '.') {
			return false
		}
	}
	return true
}

// escapeLiteral escapes the characters N-Triples requires escaping inside a
// quoted literal. It works byte-wise (every escaped character is a single
// byte) so that arbitrary — even invalid-UTF-8 — content survives a
// round trip unmangled.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Triple is one RDF statement <s, p, o>. S and P are always IRIs; O is an
// IRI or a literal (enforced by the parser, not by the type).
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its position in the input.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Decoder reads RDF statements from a stream. It accepts the N-Triples
// grammar plus two pragmatic extensions that the repository's datasets and
// examples use:
//
//   - prefix directives: both Turtle style `@prefix p: <ns> .` and SPARQL
//     style `PREFIX p: <ns>`;
//   - prefixed names (`p:local`) wherever a full IRI may appear.
//
// Literal datatype (`^^<iri>`) and language (`@tag`) suffixes are parsed
// into the Term's Datatype and Lang fields, so typed literals survive the
// full parse → intern → decode → serialize path.
type Decoder struct {
	scan     *bufio.Scanner
	prefixes *PrefixMap
	line     int
	// current line state
	buf string
	pos int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Decoder{scan: sc, prefixes: &PrefixMap{}}
}

// Prefixes exposes the prefix bindings seen so far (and allows pre-binding).
func (d *Decoder) Prefixes() *PrefixMap { return d.prefixes }

// Decode returns the next triple, or io.EOF when the input is exhausted.
func (d *Decoder) Decode() (Triple, error) {
	for {
		if err := d.nextContentLine(); err != nil {
			return Triple{}, err
		}
		if d.tryDirective() {
			continue
		}
		return d.parseTriple()
	}
}

// DecodeAll reads every remaining triple.
func (d *Decoder) DecodeAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// nextContentLine advances to the next non-blank, non-comment line.
func (d *Decoder) nextContentLine() error {
	for {
		if !d.scan.Scan() {
			if err := d.scan.Err(); err != nil {
				return err
			}
			return io.EOF
		}
		d.line++
		d.buf = d.scan.Text()
		d.pos = 0
		d.skipSpace()
		if d.pos >= len(d.buf) || d.buf[d.pos] == '#' {
			continue
		}
		return nil
	}
}

func (d *Decoder) skipSpace() {
	for d.pos < len(d.buf) && (d.buf[d.pos] == ' ' || d.buf[d.pos] == '\t' || d.buf[d.pos] == '\r') {
		d.pos++
	}
}

func (d *Decoder) errf(format string, args ...any) error {
	return &ParseError{Line: d.line, Col: d.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// tryDirective consumes a prefix directive if the current line holds one.
func (d *Decoder) tryDirective() bool {
	rest := d.buf[d.pos:]
	var after string
	switch {
	case strings.HasPrefix(rest, "@prefix"):
		after = rest[len("@prefix"):]
	case strings.HasPrefix(rest, "PREFIX"), strings.HasPrefix(rest, "prefix"):
		after = rest[len("PREFIX"):]
	default:
		return false
	}
	// The keyword must end at a word boundary ("prefixx" is not a
	// directive).
	if after == "" || (after[0] != ' ' && after[0] != '\t') {
		return false
	}
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(after), "."))
	if len(fields) < 2 {
		return false
	}
	prefix := strings.TrimSuffix(fields[0], ":")
	ns := fields[1]
	if !strings.HasPrefix(ns, "<") || !strings.HasSuffix(ns, ">") {
		return false
	}
	ns = ns[1 : len(ns)-1]
	// A namespace containing the IRI terminator could expand to IRIs that
	// cannot be serialized; reject the directive.
	if strings.ContainsAny(ns, "<>\"") {
		return false
	}
	d.prefixes.Set(prefix, ns)
	return true
}

// parseTriple parses the current line as one triple terminated by '.'.
func (d *Decoder) parseTriple() (Triple, error) {
	s, err := d.parseTerm()
	if err != nil {
		return Triple{}, err
	}
	if !s.IsResource() {
		return Triple{}, d.errf("subject must be an IRI or blank node, got literal %q", s.Value)
	}
	d.skipSpace()
	p, err := d.parseTerm()
	if err != nil {
		return Triple{}, err
	}
	if !p.IsIRI() {
		return Triple{}, d.errf("predicate must be an IRI, got %v", p)
	}
	d.skipSpace()
	o, err := d.parseTerm()
	if err != nil {
		return Triple{}, err
	}
	d.skipSpace()
	if d.pos >= len(d.buf) || d.buf[d.pos] != '.' {
		return Triple{}, d.errf("expected terminating '.'")
	}
	d.pos++
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] != '#' {
		return Triple{}, d.errf("unexpected trailing input %q", d.buf[d.pos:])
	}
	return Triple{S: s, P: p, O: o}, nil
}

// parseTerm parses one term at the current position.
func (d *Decoder) parseTerm() (Term, error) {
	if d.pos >= len(d.buf) {
		return Term{}, d.errf("unexpected end of line, expected term")
	}
	switch c := d.buf[d.pos]; {
	case c == '<':
		return d.parseIRIRef()
	case c == '"':
		return d.parseLiteral()
	case c == '_':
		return d.parseBlank()
	default:
		return d.parsePrefixedName()
	}
}

func (d *Decoder) parseIRIRef() (Term, error) {
	end := strings.IndexByte(d.buf[d.pos:], '>')
	if end < 0 {
		return Term{}, d.errf("unterminated IRI")
	}
	iri := d.buf[d.pos+1 : d.pos+end]
	d.pos += end + 1
	if iri == "" {
		return Term{}, d.errf("empty IRI")
	}
	return NewIRI(iri), nil
}

func (d *Decoder) parseBlank() (Term, error) {
	start := d.pos
	if !strings.HasPrefix(d.buf[d.pos:], "_:") {
		return Term{}, d.errf("malformed blank node")
	}
	d.pos += 2
	for d.pos < len(d.buf) && isNameByte(d.buf[d.pos]) {
		d.pos++
	}
	if d.pos == start+2 {
		return Term{}, d.errf("blank node with empty label")
	}
	return NewBlank(d.buf[start:d.pos]), nil
}

func (d *Decoder) parsePrefixedName() (Term, error) {
	start := d.pos
	for d.pos < len(d.buf) && (isNameByte(d.buf[d.pos]) || d.buf[d.pos] == ':') {
		d.pos++
	}
	name := d.buf[start:d.pos]
	if name == "" {
		return Term{}, d.errf("expected term, found %q", d.buf[d.pos:])
	}
	iri, err := d.prefixes.Expand(name)
	if err != nil {
		return Term{}, d.errf("%v", err)
	}
	return NewIRI(iri), nil
}

// parseLiteral parses a quoted literal with escapes and optional datatype or
// language suffix.
func (d *Decoder) parseLiteral() (Term, error) {
	d.pos++ // opening quote
	var b strings.Builder
	for {
		if d.pos >= len(d.buf) {
			return Term{}, d.errf("unterminated literal")
		}
		c := d.buf[d.pos]
		if c == '"' {
			d.pos++
			break
		}
		if c != '\\' {
			b.WriteByte(c)
			d.pos++
			continue
		}
		// escape sequence
		if d.pos+1 >= len(d.buf) {
			return Term{}, d.errf("dangling escape")
		}
		d.pos++
		switch e := d.buf[d.pos]; e {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'u', 'U':
			n := 4
			if e == 'U' {
				n = 8
			}
			if d.pos+n >= len(d.buf) {
				return Term{}, d.errf("truncated \\%c escape", e)
			}
			v, err := strconv.ParseUint(d.buf[d.pos+1:d.pos+1+n], 16, 32)
			if err != nil {
				return Term{}, d.errf("bad \\%c escape: %v", e, err)
			}
			b.WriteRune(rune(v))
			d.pos += n
		default:
			return Term{}, d.errf("unknown escape \\%c", e)
		}
		d.pos++
	}
	val := b.String()
	// Optional datatype / language suffixes.
	if d.pos < len(d.buf) && d.buf[d.pos] == '@' {
		d.pos++
		start := d.pos
		for d.pos < len(d.buf) && (isNameByte(d.buf[d.pos]) || d.buf[d.pos] == '-') {
			d.pos++
		}
		if d.pos == start {
			return Term{}, d.errf("empty language tag")
		}
		return NewLangLiteral(val, d.buf[start:d.pos]), nil
	}
	if strings.HasPrefix(d.buf[d.pos:], "^^") {
		d.pos += 2
		dt, err := d.parseTerm()
		if err != nil {
			return Term{}, err
		}
		if !dt.IsIRI() {
			return Term{}, d.errf("datatype must be an IRI, got %v", dt)
		}
		return NewTypedLiteral(val, dt.Value), nil
	}
	return NewLiteral(val), nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '%' || c == '/' || c == '#'
}

// Encoder writes triples in N-Triples syntax.
type Encoder struct {
	w   *bufio.Writer
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: bufio.NewWriter(w)} }

// Encode writes one triple.
func (e *Encoder) Encode(t Triple) error {
	if e.err != nil {
		return e.err
	}
	_, e.err = e.w.WriteString(t.String() + "\n")
	return e.err
}

// Flush flushes buffered output.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// ParseString parses a complete document held in a string.
func ParseString(src string) ([]Triple, error) {
	return NewDecoder(strings.NewReader(src)).DecodeAll()
}

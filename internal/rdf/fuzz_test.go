package rdf

import "testing"

// FuzzDecode feeds arbitrary bytes to the N-Triples decoder; it must never
// panic, and anything it accepts must re-serialize to a form it accepts
// again with identical triples.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"<http://x/a> <http://y/p> <http://x/b> .",
		`<http://x/a> <http://y/p> "lit" .`,
		`<http://x/a> <http://y/p> "a\nbA" .`,
		"@prefix x: <http://x/> .\nx:a x:p x:b .",
		"PREFIX y: <http://y/>\ny:a y:p \"v\"@en .",
		`_:b0 <http://y/p> "42"^^<http://w3/int> .`,
		"# comment\n\n<http://x/a> <http://y/p> <http://x/b> . # trail",
		"<http://x/a <http://y/p> <http://x/b> .",
		`<http://x/a> <http://y/p> "unterminated .`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		triples, err := ParseString(src)
		if err != nil {
			return
		}
		// Round-trip property on accepted input.
		var out string
		for _, tr := range triples {
			out += tr.String() + "\n"
		}
		again, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse of serialized output failed: %v\n%q", err, out)
		}
		if len(again) != len(triples) {
			t.Fatalf("round trip count %d != %d", len(again), len(triples))
		}
		for i := range triples {
			if again[i] != triples[i] {
				t.Fatalf("round trip triple %d: %v != %v", i, again[i], triples[i])
			}
		}
	})
}

package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

const figure2 = `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}`

type fixture struct {
	g  *multigraph.Graph
	ix *index.Index
}

// rd adapts the fixture to the engine's probe surface.
func (f *fixture) rd() index.Reader { return index.NewReader(f.g, f.ix) }

func load(t *testing.T, src string) *fixture {
	t.Helper()
	triples, err := rdf.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, ix: index.Build(g)}
}

func (f *fixture) query(t *testing.T, src string) *plan.Plan {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := query.Build(pq, &f.g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	return plan.For(qg, f.rd())
}

// collect streams all embeddings as var-name → IRI maps.
func (f *fixture) collect(t *testing.T, p *plan.Plan, opts Options) []map[string]string {
	t.Helper()
	var out []map[string]string
	err := Stream(f.rd(), p, opts, func(asg []dict.VertexID) bool {
		m := make(map[string]string, len(asg))
		for u, v := range asg {
			m[p.Query.Vars[u].Name] = f.g.Dicts.VertexIRI(v)
		}
		out = append(out, m)
		return true
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return out
}

func TestFigure2Embeddings(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	got := f.collect(t, qg, Options{})
	if len(got) != 2 {
		t.Fatalf("embeddings = %d, want 2 (X0 ∈ {Nolan, Amy}):\n%v", len(got), got)
	}
	const res = "http://dbpedia.org/resource/"
	x0s := map[string]bool{}
	for _, emb := range got {
		x0s[emb["X0"]] = true
		if emb["X1"] != res+"London" {
			t.Errorf("X1 = %s, want London", emb["X1"])
		}
		if emb["X2"] != res+"England" {
			t.Errorf("X2 = %s, want England", emb["X2"])
		}
		if emb["X3"] != res+"Amy_Winehouse" {
			t.Errorf("X3 = %s, want Amy", emb["X3"])
		}
		if emb["X4"] != res+"WembleyStadium" {
			t.Errorf("X4 = %s", emb["X4"])
		}
		if emb["X5"] != res+"Music_Band" {
			t.Errorf("X5 = %s", emb["X5"])
		}
		if emb["X6"] != res+"Blake_Fielder-Civil" {
			t.Errorf("X6 = %s", emb["X6"])
		}
	}
	if !x0s[res+"Christopher_Nolan"] || !x0s[res+"Amy_Winehouse"] {
		t.Errorf("X0 bindings = %v", x0s)
	}
	// Count must agree.
	n, err := Count(f.rd(), qg, Options{})
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v; want 2", n, err)
	}
}

func TestStarQuery(t *testing.T) {
	f := load(t, figure1)
	// Star around ?who: born in London, died in London.
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?where WHERE {
  ?who y:wasBornIn ?where .
  ?who y:diedIn ?where .
}`)
	got := f.collect(t, qg, Options{})
	if len(got) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(got))
	}
	if got[0]["who"] != "http://dbpedia.org/resource/Amy_Winehouse" {
		t.Errorf("who = %s", got[0]["who"])
	}
}

func TestHomomorphismAllowsRepeatedDataVertices(t *testing.T) {
	f := load(t, `
<http://x/a> <http://y/knows> <http://x/b> .
<http://x/b> <http://y/knows> <http://x/a> .
`)
	// Path of length 2: a→b→a is a valid homomorphic embedding with
	// ?p = ?r = a (no injectivity).
	qg := f.query(t, `SELECT * WHERE { ?p <http://y/knows> ?q . ?q <http://y/knows> ?r . }`)
	got := f.collect(t, qg, Options{})
	if len(got) != 2 {
		t.Fatalf("embeddings = %d, want 2 (a→b→a and b→a→b)", len(got))
	}
	for _, emb := range got {
		if emb["p"] != emb["r"] {
			t.Errorf("homomorphism should bind p = r: %v", emb)
		}
	}
}

func TestGroundQueries(t *testing.T) {
	f := load(t, figure1)
	// True ground pattern: exactly one empty embedding.
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE { x:London y:isPartOf x:England . }`)
	got := f.collect(t, qg, Options{})
	if len(got) != 1 {
		t.Errorf("true ground query embeddings = %d, want 1", len(got))
	}
	n, err := Count(f.rd(), qg, Options{})
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}

	// False ground pattern (edge exists but not that type).
	qg = f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE { x:London y:hasCapital x:England . }`)
	if got := f.collect(t, qg, Options{}); len(got) != 0 {
		t.Errorf("false ground query embeddings = %d, want 0", len(got))
	}

	// Ground attribute that holds.
	qg = f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE { x:WembleyStadium y:hasCapacityOf "90000" . }`)
	if got := f.collect(t, qg, Options{}); len(got) != 1 {
		t.Errorf("ground attr embeddings = %d, want 1", len(got))
	}

	// Ground attribute on the wrong vertex.
	qg = f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE { x:London y:hasCapacityOf "90000" . }`)
	if got := f.collect(t, qg, Options{}); len(got) != 0 {
		t.Errorf("wrong ground attr embeddings ≠ 0")
	}
}

func TestUnsatQuery(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:isMarriedTo ?b }`)
	if !qg.Query.Unsat {
		t.Fatal("expected unsat")
	}
	if got := f.collect(t, qg, Options{}); len(got) != 0 {
		t.Errorf("unsat query returned %d embeddings", len(got))
	}
	if n, _ := Count(f.rd(), qg, Options{}); n != 0 {
		t.Errorf("unsat Count = %d", n)
	}
}

func TestLimit(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	// Three livedIn edges exist.
	if got := f.collect(t, qg, Options{}); len(got) != 3 {
		t.Fatalf("unlimited = %d, want 3", len(got))
	}
	if got := f.collect(t, qg, Options{Limit: 2}); len(got) != 2 {
		t.Errorf("limited = %d, want 2", len(got))
	}
	if n, _ := Count(f.rd(), qg, Options{Limit: 2}); n != 2 {
		t.Errorf("Count with limit = %d, want 2", n)
	}
}

func TestYieldAbort(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	calls := 0
	err := Stream(f.rd(), qg, Options{}, func([]dict.VertexID) bool {
		calls++
		return false
	})
	if err != nil || calls != 1 {
		t.Errorf("calls = %d, err = %v; want 1, nil", calls, err)
	}
}

func TestDeadline(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	opts := Options{Deadline: time.Now().Add(-time.Second)}
	err := Stream(f.rd(), qg, opts, func([]dict.VertexID) bool { return true })
	if err != ErrDeadlineExceeded {
		t.Errorf("Stream err = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := Count(f.rd(), qg, opts); err != ErrDeadlineExceeded {
		t.Errorf("Count err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestDisconnectedComponentsProduct(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE {
  ?a y:livedIn ?b .
  ?c y:wasBornIn ?d .
}`)
	// 3 livedIn × 2 wasBornIn = 6 combined embeddings.
	got := f.collect(t, qg, Options{})
	if len(got) != 6 {
		t.Fatalf("embeddings = %d, want 6", len(got))
	}
	if n, _ := Count(f.rd(), qg, Options{}); n != 6 {
		t.Errorf("Count = %d, want 6", n)
	}
}

func TestSelfLoopQuery(t *testing.T) {
	f := load(t, `
<http://x/a> <http://y/p> <http://x/a> .
<http://x/a> <http://y/p> <http://x/b> .
<http://x/b> <http://y/p> <http://x/c> .
`)
	qg := f.query(t, `SELECT ?v WHERE { ?v <http://y/p> ?v }`)
	got := f.collect(t, qg, Options{})
	if len(got) != 1 || got[0]["v"] != "http://x/a" {
		t.Errorf("self-loop embeddings = %v, want only a", got)
	}
}

func TestIRIAnchoredQuery(t *testing.T) {
	f := load(t, figure1)
	// The Section 5.1 example: candidates for a vertex whose livedIn edge
	// targets the constant United_States.
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?who WHERE { ?who y:livedIn x:United_States . }`)
	got := f.collect(t, qg, Options{})
	if len(got) != 2 {
		t.Fatalf("embeddings = %d, want 2 (Amy, Blake)", len(got))
	}
	// Reversed anchor: constant subject.
	qg = f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?place WHERE { x:Amy_Winehouse y:wasBornIn ?place . }`)
	got = f.collect(t, qg, Options{})
	if len(got) != 1 || got[0]["place"] != "http://dbpedia.org/resource/London" {
		t.Errorf("embeddings = %v", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	var st Stats
	if _, err := Count(f.rd(), qg, Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Recursions == 0 || st.InitCandidates == 0 || st.SatProbes == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.Embeddings != 2 {
		t.Errorf("stats embeddings = %d", st.Embeddings)
	}
}

// TestStatsLevels: a traced run records one level per core vertex, the
// visits at level 0 total one per component, and Stream and Count agree
// on the frontier sizes (they walk the same candidate sets).
func TestStatsLevels(t *testing.T) {
	f := load(t, figure1)
	p := f.query(t, figure2)
	var countSt Stats
	if _, err := Count(f.rd(), p, Options{Stats: &countSt}); err != nil {
		t.Fatal(err)
	}
	wantLevels := 0
	for ci := range p.Components {
		wantLevels += len(p.Components[ci].Core)
	}
	if len(countSt.Levels) != wantLevels {
		t.Fatalf("levels = %d, want %d", len(countSt.Levels), wantLevels)
	}
	for _, l := range countSt.Levels {
		if l.Pos == 0 && l.Visits != 1 {
			t.Errorf("component %d level 0 visits = %d, want 1", l.Component, l.Visits)
		}
		if l.Visits == 0 {
			t.Errorf("level %+v never visited", l)
		}
	}
	var streamSt Stats
	if err := Stream(f.rd(), p, Options{Stats: &streamSt}, func([]dict.VertexID) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(streamSt.Levels) != len(countSt.Levels) {
		t.Fatalf("stream levels = %d, count levels = %d", len(streamSt.Levels), len(countSt.Levels))
	}
	for i := range streamSt.Levels {
		s, c := streamSt.Levels[i], countSt.Levels[i]
		if s.Candidates != c.Candidates || s.Visits != c.Visits {
			t.Errorf("level %d: stream %+v != count %+v", i, s, c)
		}
	}
}

// ---- brute-force cross-check ------------------------------------------

// bruteForce enumerates homomorphic embeddings by unconstrained
// backtracking over all data vertices, checking every pattern directly.
// It is the ground truth for the property test.
func bruteForce(g *multigraph.Graph, qg *query.Graph) uint64 {
	if qg.Unsat {
		return 0
	}
	for _, ge := range qg.GroundEdges {
		if !g.HasEdgeTypes(ge.From, ge.To, ge.Types) {
			return 0
		}
	}
	for _, ga := range qg.GroundAttrs {
		if !g.HasAttrs(ga.V, ga.Attrs) {
			return 0
		}
	}
	n := len(qg.Vars)
	if n == 0 {
		return 1
	}
	asg := make([]dict.VertexID, n)
	var count uint64
	ok := func(u int) bool {
		uv := &qg.Vars[u]
		v := asg[u]
		if !g.HasAttrs(v, uv.Attrs) {
			return false
		}
		if len(uv.SelfTypes) > 0 && !g.HasEdgeTypes(v, v, uv.SelfTypes) {
			return false
		}
		for _, c := range uv.IRIs {
			if c.Dir == index.Incoming { // edge u → IRI
				if !g.HasEdgeTypes(v, c.DataVertex, c.Types) {
					return false
				}
			} else {
				if !g.HasEdgeTypes(c.DataVertex, v, c.Types) {
					return false
				}
			}
		}
		for _, e := range uv.Out {
			if int(e.To) < u && !g.HasEdgeTypes(v, asg[e.To], e.Types) {
				return false
			}
		}
		for _, e := range uv.In {
			if int(e.To) < u && !g.HasEdgeTypes(asg[e.To], v, e.Types) {
				return false
			}
		}
		return true
	}
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			count++
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			asg[u] = dict.VertexID(v)
			if ok(u) {
				rec(u + 1)
			}
		}
	}
	rec(0)
	return count
}

// randomDataset builds a small random RDF graph.
func randomDataset(rng *rand.Rand, nV, nP, nE, nLit int) []rdf.Triple {
	var ts []rdf.Triple
	for i := 0; i < nE; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV)))
		o := rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV)))
		p := rdf.NewIRI(fmt.Sprintf("http://y/p%d", rng.Intn(nP)))
		ts = append(ts, rdf.Triple{S: s, P: p, O: o})
	}
	for i := 0; i < nLit; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV)))
		p := rdf.NewIRI(fmt.Sprintf("http://y/a%d", rng.Intn(3)))
		o := rdf.NewLiteral(fmt.Sprintf("%d", rng.Intn(3)))
		ts = append(ts, rdf.Triple{S: s, P: p, O: o})
	}
	return ts
}

// randomQuery builds a random connected-ish query by sampling data triples
// (guaranteeing satisfiable structure) and variabilizing endpoints.
func randomQuery(rng *rand.Rand, ts []rdf.Triple, size int) *sparql.Query {
	q := &sparql.Query{Star: true, Prefixes: &rdf.PrefixMap{}}
	varOf := map[string]string{}
	nextVar := 0
	termFor := func(iri string) sparql.Term {
		// Constant with small probability, else variable per data entity
		// (re-used across patterns to create joins).
		if rng.Intn(6) == 0 {
			return sparql.Term{Kind: sparql.IRI, Value: iri}
		}
		name, ok := varOf[iri]
		if !ok {
			name = fmt.Sprintf("v%d", nextVar)
			nextVar++
			varOf[iri] = name
		}
		return sparql.Term{Kind: sparql.Var, Value: name}
	}
	for len(q.Patterns) < size {
		tr := ts[rng.Intn(len(ts))]
		var o sparql.Term
		if tr.O.IsLiteral() {
			o = sparql.Term{Kind: sparql.Literal, Value: tr.O.Value}
		} else {
			o = termFor(tr.O.Value)
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: termFor(tr.S.Value),
			P: sparql.Term{Kind: sparql.IRI, Value: tr.P.Value},
			O: o,
		})
	}
	return q
}

// TestEngineMatchesBruteForce is the central correctness property: on random
// graphs and random queries, the engine's embedding count equals the
// brute-force homomorphism count.
func TestEngineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 120; trial++ {
		ts := randomDataset(rng, 8, 4, 18, 6)
		g, err := multigraph.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(g)
		pq := randomQuery(rng, ts, 1+rng.Intn(5))
		qg, err := query.Build(pq, &g.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(g, qg)
		pl := plan.For(qg, index.NewReader(g, ix))
		got, err := Count(index.NewReader(g, ix), pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: Count = %d, brute force = %d\nquery:\n%s", trial, got, want, pq)
		}
		// Stream must agree with Count.
		var streamed uint64
		if err := Stream(index.NewReader(g, ix), pl, Options{}, func([]dict.VertexID) bool {
			streamed++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if streamed != want {
			t.Fatalf("trial %d: streamed = %d, want %d\nquery:\n%s", trial, streamed, want, pq)
		}
	}
}

// TestStreamedEmbeddingsAreValid verifies each streamed embedding satisfies
// every query constraint directly against the data graph.
func TestStreamedEmbeddingsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		ts := randomDataset(rng, 8, 4, 20, 5)
		g, err := multigraph.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(g)
		pq := randomQuery(rng, ts, 1+rng.Intn(4))
		qg, err := query.Build(pq, &g.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		err = Stream(index.NewReader(g, ix), plan.For(qg, index.NewReader(g, ix)), Options{Limit: 200}, func(asg []dict.VertexID) bool {
			for u := range qg.Vars {
				uv := &qg.Vars[u]
				if !g.HasAttrs(asg[u], uv.Attrs) {
					t.Errorf("attr violation at var %s", uv.Name)
				}
				for _, e := range uv.Out {
					if !g.HasEdgeTypes(asg[u], asg[e.To], e.Types) {
						t.Errorf("edge violation %s→%s", uv.Name, qg.Vars[e.To].Name)
					}
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	const max = ^uint64(0)
	if got := addSat(max-1, 5); got != max {
		t.Errorf("addSat overflow = %d", got)
	}
	if got := addSat(2, 3); got != 5 {
		t.Errorf("addSat = %d", got)
	}
	if got := mulSat(max/2, 3); got != max {
		t.Errorf("mulSat overflow = %d", got)
	}
	if got := mulSat(0, max); got != 0 {
		t.Errorf("mulSat zero = %d", got)
	}
	if got := mulSat(6, 7); got != 42 {
		t.Errorf("mulSat = %d", got)
	}
}

// TestMidRunDeadline exercises the periodic deadline check (not just the
// upfront one): a deadline slightly in the future must interrupt a search
// with a large embedding space.
func TestMidRunDeadline(t *testing.T) {
	// A dense bipartite graph: ?a p ?b . ?c p ?d gives |E|² embeddings.
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			fmt.Fprintf(&sb, "<http://x/l%d> <http://y/p> <http://x/r%d> .\n", i, j)
		}
	}
	f := load(t, sb.String())
	qg := f.query(t, `SELECT * WHERE {
  ?a <http://y/p> ?b . ?c <http://y/p> ?d . ?e <http://y/p> ?g .
}`)
	start := time.Now()
	err := Stream(f.rd(), qg, Options{Deadline: time.Now().Add(5 * time.Millisecond)},
		func([]dict.VertexID) bool { return true })
	elapsed := time.Since(start)
	if err != ErrDeadlineExceeded {
		t.Fatalf("err = %v, want mid-run deadline", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline far overshot: %s", elapsed)
	}
}

// TestLimitDuringSatelliteEnumeration: the limit must interrupt a large
// Cartesian product of satellite sets.
func TestLimitDuringSatelliteEnumeration(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "<http://x/hub> <http://y/p> <http://x/s%d> .\n", i)
		fmt.Fprintf(&sb, "<http://x/hub> <http://y/q> <http://x/t%d> .\n", i)
	}
	f := load(t, sb.String())
	qg := f.query(t, `SELECT * WHERE {
  ?hub <http://y/p> ?x .
  ?hub <http://y/q> ?y .
}`)
	// 40×40 = 1600 embeddings; limit 7 must stop inside the product.
	var got int
	if err := Stream(f.rd(), qg, Options{Limit: 7}, func([]dict.VertexID) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("limited stream = %d, want 7", got)
	}
	// Count must report the full product regardless.
	if n, _ := Count(f.rd(), qg, Options{}); n != 1600 {
		t.Errorf("Count = %d, want 1600", n)
	}
}

// TestParallelDeadlineMidRun: the parallel counter respects a deadline
// that expires while workers are active.
func TestParallelDeadlineMidRun(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 80; i++ {
		for j := 0; j < 80; j++ {
			fmt.Fprintf(&sb, "<http://x/l%d> <http://y/p> <http://x/r%d> .\n", i, j)
		}
	}
	f := load(t, sb.String())
	qg := f.query(t, `SELECT * WHERE {
  ?a <http://y/p> ?b . ?b2 <http://y/p> ?c . ?c2 <http://y/p> ?d .
}`)
	_, err := CountParallel(f.rd(), qg, Options{Deadline: time.Now().Add(3 * time.Millisecond)}, 4)
	if err != ErrDeadlineExceeded {
		// The search may legitimately finish if the machine is fast; only a
		// wrong error value is a failure.
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

// TestLiteralSatelliteStream: a single-occurrence object variable binds
// literal attributes (encoded bindings) and, for mixed predicates, the
// vertex neighbours too; Count factorizes over them like any satellite.
func TestLiteralSatelliteStream(t *testing.T) {
	f := load(t, `
<http://x/b> <http://p/mixed> <http://x/a> .
<http://x/b> <http://p/mixed> "both" .
<http://x/b> <http://p/name> "Bea" .
`)
	p := f.query(t, `SELECT ?v WHERE { ?s <http://p/mixed> ?v }`)
	var verts, lits int
	err := Stream(f.rd(), p, Options{}, func(asg []dict.VertexID) bool {
		u := p.Query.VarIndex["v"]
		if dict.IsAttrBinding(asg[u]) {
			a := f.g.Dicts.Attr(dict.AttrBinding(asg[u]))
			if a.Lexical != "both" {
				t.Errorf("literal binding = %+v", a)
			}
			lits++
		} else {
			verts++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if verts != 1 || lits != 1 {
		t.Errorf("mixed satellite: %d vertex + %d literal bindings, want 1+1", verts, lits)
	}
	n, err := Count(f.rd(), p, Options{})
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v; want 2", n, err)
	}
	np, err := CountParallel(f.rd(), p, Options{}, 4)
	if err != nil || np != n {
		t.Errorf("CountParallel = %d, %v; want %d", np, err, n)
	}
}

// TestContextCancellationAborts: cancelling Options.Ctx mid-search stops
// the enumeration within the polling interval and reports ctx.Err().
func TestContextCancellationAborts(t *testing.T) {
	// A 3-clique-ish dense graph with plenty of embeddings to enumerate.
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if i != j {
				fmt.Fprintf(&sb, "<http://v/%d> <http://p/t> <http://v/%d> .\n", i, j)
			}
		}
	}
	f := load(t, sb.String())
	p := f.query(t, `SELECT ?a ?b ?c WHERE {
		?a <http://p/t> ?b . ?b <http://p/t> ?c . ?c <http://p/t> ?a .
	}`)
	ctx, cancel := context.WithCancel(context.Background())
	var yielded int
	err := Stream(f.rd(), p, Options{Ctx: ctx}, func([]dict.VertexID) bool {
		yielded++
		if yielded == 1 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("Stream err = %v, want context.Canceled", err)
	}
	// The full result set is ~40·39·38 ≈ 59k embeddings; cancellation must
	// stop within one polling interval of the first yield.
	if yielded > 1000 {
		t.Errorf("yielded %d embeddings after cancellation", yielded)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Count(f.rd(), p, Options{Ctx: ctx2}); err != context.Canceled {
		t.Errorf("pre-cancelled Count err = %v", err)
	}
	if _, err := CountParallel(f.rd(), p, Options{Ctx: ctx2}, 4); err != context.Canceled {
		t.Errorf("pre-cancelled CountParallel err = %v", err)
	}
}

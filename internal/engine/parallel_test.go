package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
)

func TestCountParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 40; trial++ {
		ts := randomDataset(rng, 10, 4, 30, 8)
		g, err := multigraph.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(g)
		pq := randomQuery(rng, ts, 1+rng.Intn(5))
		qg, err := query.Build(pq, &g.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		pl := plan.For(qg, index.NewReader(g, ix))
		serial, err := Count(index.NewReader(g, ix), pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			par, err := CountParallel(index.NewReader(g, ix), pl, Options{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par != serial {
				t.Fatalf("trial %d workers %d: parallel = %d, serial = %d\n%s",
					trial, workers, par, serial, pq)
			}
		}
	}
}

func TestCountParallelFigure2(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	n, err := CountParallel(f.rd(), qg, Options{}, 4)
	if err != nil || n != 2 {
		t.Errorf("parallel count = %d, %v; want 2", n, err)
	}
}

func TestCountParallelEdgeCases(t *testing.T) {
	f := load(t, figure1)

	// Unsat query.
	qg := f.query(t, `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:isMarriedTo ?b }`)
	if n, err := CountParallel(f.rd(), qg, Options{}, 4); err != nil || n != 0 {
		t.Errorf("unsat parallel = %d, %v", n, err)
	}

	// Ground query (no variables).
	qg = f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE { x:London y:isPartOf x:England . }`)
	if n, err := CountParallel(f.rd(), qg, Options{}, 4); err != nil || n != 1 {
		t.Errorf("ground parallel = %d, %v", n, err)
	}

	// Limit cap.
	qg = f.query(t, `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	if n, err := CountParallel(f.rd(), qg, Options{Limit: 2}, 3); err != nil || n != 2 {
		t.Errorf("limited parallel = %d, %v", n, err)
	}

	// Expired deadline.
	if _, err := CountParallel(f.rd(), qg, Options{Deadline: time.Now().Add(-time.Second)}, 3); err != ErrDeadlineExceeded {
		t.Errorf("deadline err = %v", err)
	}

	// More workers than candidates.
	if n, err := CountParallel(f.rd(), qg, Options{}, 64); err != nil || n != 3 {
		t.Errorf("over-provisioned parallel = %d, %v", n, err)
	}
}

func TestCountParallelDisconnected(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE {
  ?a y:livedIn ?b .
  ?c y:wasBornIn ?d .
}`)
	if n, err := CountParallel(f.rd(), qg, Options{}, 3); err != nil || n != 6 {
		t.Errorf("disconnected parallel = %d, %v; want 6", n, err)
	}
}

// Package engine implements AMbER's online query-matching procedure
// (Section 5 of the paper): the recursive sub-multigraph homomorphism
// search over the core vertices of the query multigraph, with satellite
// vertices resolved in bulk at each step (Algorithms 1–4). The engine
// executes a plan.Plan — the matching order and the precomputed
// per-vertex candidate constraints are planning decisions made by
// internal/plan, not here.
//
// Two evaluation modes are offered. Stream enumerates embeddings one by
// one, generating the Cartesian product of satellite candidate sets
// lazily (GenEmb). Count returns the number of embeddings, exploiting the
// factorized representation: a solution with satellite candidate sets of
// sizes n1..nk contributes n1·…·nk embeddings without materializing them.
package engine

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/otil"
	"repro/internal/plan"
	"repro/internal/query"
)

// ErrDeadlineExceeded is returned when Options.Deadline passes before the
// search completes. Partial results already yielded remain valid.
var ErrDeadlineExceeded = errors.New("engine: deadline exceeded")

// Options control a matching run.
type Options struct {
	// Limit stops the enumeration after this many embeddings (0 = all).
	Limit int
	// Deadline aborts the search when passed (zero = none). The paper's
	// experiments use a 60-second per-query constraint.
	Deadline time.Time
	// Ctx, when non-nil, aborts the search when the context is done —
	// the engine polls ctx.Done() alongside the deadline, so a server
	// can cancel in-flight work when its client disconnects. The run
	// then returns ctx.Err().
	Ctx context.Context
	// Stats, when non-nil, is filled with search counters.
	Stats *Stats
	// Meter, when non-nil, receives live resource accounting: the match
	// loop accumulates into matcher-local plain counters and flushes
	// them into the meter's atomics at the deadline-poll cadence (and on
	// join), so concurrent /debug/queries scrapes see fresh numbers
	// without an atomic op per step. Unlike Stats, the meter IS shared
	// with parallel workers — each worker flushes its own deltas.
	Meter *obs.ResourceMeter
}

// Stats reports search effort counters.
type Stats struct {
	// InitCandidates is |CandInit| for each component's initial vertex,
	// summed over components.
	InitCandidates int
	// Recursions counts HomomorphicMatch invocations.
	Recursions int
	// SatProbes counts satellite candidate-set computations.
	SatProbes int
	// Embeddings counts embeddings yielded (Stream) or counted (Count).
	Embeddings uint64
	// Levels records the actual candidate frontier observed at every
	// core-vertex matching level of the plan — the measured counterpart of
	// the planner's estimates. Unlike the scalar counters, which
	// accumulate across runs, Levels is reset to the executed plan's shape
	// at the start of each run and so always describes the last run.
	Levels []LevelStats
}

// LevelStats is one core-vertex matching level: Visits counts how many
// times the level's candidate set was computed (the level's share of the
// recursion), Candidates sums the set sizes across those visits. The
// mean frontier size Candidates/Visits is directly comparable to the
// planner's per-level estimate (plan.ComponentPlan.Estimates).
type LevelStats struct {
	Component  int
	Pos        int
	Vertex     query.VertexID
	Candidates uint64
	Visits     uint64
}

// deadlineCheckMask throttles clock reads to one per this many steps.
const deadlineCheckMask = 255

//amber:hot
type matcher struct {
	r index.Reader
	p *plan.Plan
	q *query.Graph // p.Query, cached

	asg     []dict.VertexID   // current assignment, indexed by query vertex
	satSets [][]dict.VertexID // per-branch satellite candidate sets

	yield    func([]dict.VertexID) bool
	limit    int
	deadline time.Time
	done     <-chan struct{} // Ctx.Done(), nil without a context
	ctx      context.Context
	stats    *Stats
	levelIdx []int // per-component offsets; nil without stats and meter

	// Meter plumbing: the m* fields are this matcher's unflushed
	// resource deltas (flushed by flushMeter, reset to zero after).
	meter       *obs.ResourceMeter
	totalLevels int
	mCand       uint64 // candidate-set entries generated
	mVisits     uint64 // candidate vertices tried
	mInters     uint64 // sorted-list intersections
	mProbes     uint64 // overlay index probes

	steps    int
	yielded  uint64
	overlay  bool  // reader serves through a non-empty mutation overlay
	stopped  bool  // yield refused or limit reached
	expired  bool  // deadline passed or context done
	abortErr error // why the search aborted (expired only)
}

// flushMeter pushes the accumulated resource deltas into the shared
// atomic meter and resets them. Called from the throttled deadline-poll
// path and at search end, so the hot loop stays free of atomic traffic.
func (m *matcher) flushMeter() {
	if m.meter == nil {
		return
	}
	m.meter.FlushEngine(m.mCand, m.mVisits, m.mInters, m.mProbes)
	m.mCand, m.mVisits, m.mInters, m.mProbes = 0, 0, 0, 0
}

// countProbe tallies one index probe for the overlay-probe meter.
//
//amber:hotloop
func (m *matcher) countProbe() {
	if m.overlay {
		m.mProbes++
	}
}

// checkDeadline reports whether the search must abort: the deadline
// passed, or the run's context was cancelled. Clock reads and channel
// polls are throttled to one per deadlineCheckMask+1 steps.
//
//amber:hotloop poll
func (m *matcher) checkDeadline() bool {
	if m.expired {
		return true
	}
	m.steps++
	m.mVisits++
	if m.steps&deadlineCheckMask != 0 || (m.deadline.IsZero() && m.done == nil && m.meter == nil) {
		return false
	}
	m.flushMeter()
	if m.done != nil {
		select {
		case <-m.done:
			m.expired = true
			m.abortErr = m.ctx.Err()
			return true
		default:
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		m.expired = true
		m.abortErr = ErrDeadlineExceeded
	}
	return m.expired
}

// Stream enumerates the homomorphic embeddings of plan p in g, invoking
// yield with the assignment slice (indexed by query.VertexID; the slice is
// reused between calls — copy it to retain). Enumeration stops when yield
// returns false. It returns ErrDeadlineExceeded if the deadline passed.
func Stream(r index.Reader, p *plan.Plan, opts Options, yield func([]dict.VertexID) bool) error {
	m, ok := prepare(r, p, opts)
	m.yield = yield
	defer m.flushMeter()
	if m.expired {
		return m.abortErr
	}
	if !ok {
		return nil
	}
	if len(m.q.Vars) == 0 {
		// Fully ground query whose checks passed: one empty embedding.
		m.emit()
		return nil
	}
	m.matchComponent(0)
	if m.expired {
		return m.abortErr
	}
	return nil
}

// Count returns the number of embeddings of plan p in g, using the
// factorized satellite representation. When opts.Limit > 0 the returned
// count is capped at the limit.
func Count(r index.Reader, p *plan.Plan, opts Options) (uint64, error) {
	m, ok := prepare(r, p, opts)
	defer m.flushMeter()
	if m.expired {
		return 0, m.abortErr
	}
	if !ok {
		return 0, nil
	}
	if len(m.q.Vars) == 0 {
		if m.stats != nil {
			m.stats.Embeddings = 1
		}
		return 1, nil
	}
	total := uint64(1)
	for ci := range p.Components {
		c, err := m.countComponent(ci)
		if err != nil {
			return 0, err
		}
		total = mulSat(total, c)
		if total == 0 {
			break
		}
	}
	if opts.Limit > 0 && total > uint64(opts.Limit) {
		total = uint64(opts.Limit)
	}
	if m.stats != nil {
		m.stats.Embeddings = total
	}
	return total, nil
}

// prepare validates the plan's zero-result verdict and allocates the
// per-run state. The Algorithm 1 candidate sets and ground checks were
// already computed at plan time (internal/plan), so repeated executions of
// a cached plan skip them entirely. ok=false means zero results.
func prepare(r index.Reader, p *plan.Plan, opts Options) (*matcher, bool) {
	m := &matcher{
		r: r, p: p, q: p.Query,
		limit:    opts.Limit,
		deadline: opts.Deadline,
		stats:    opts.Stats,
		meter:    opts.Meter,
	}
	if m.meter != nil {
		// Overlay detection: the delta view's Reader exposes Empty; a
		// frozen GraphReader does not (every probe is a base probe).
		if ov, ok := r.(interface{ Empty() bool }); ok && !ov.Empty() {
			m.overlay = true
		}
	}
	if opts.Ctx != nil {
		m.ctx, m.done = opts.Ctx, opts.Ctx.Done()
		if err := m.ctx.Err(); err != nil {
			m.expired = true
			m.abortErr = err
			return m, false
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		m.expired = true
		m.abortErr = ErrDeadlineExceeded
		return m, false
	}
	if p.Empty {
		return m, false
	}
	if m.stats != nil || m.meter != nil {
		total := 0
		m.levelIdx = make([]int, len(p.Components))
		for ci := range p.Components {
			m.levelIdx[ci] = total
			total += len(p.Components[ci].Core)
		}
		m.totalLevels = total
		if m.stats != nil {
			levels := make([]LevelStats, total)
			for ci := range p.Components {
				for pos, u := range p.Components[ci].Core {
					levels[m.levelIdx[ci]+pos] = LevelStats{Component: ci, Pos: pos, Vertex: u}
				}
			}
			m.stats.Levels = levels
		}
		m.meter.SetProgress(0, total)
	}
	n := len(m.q.Vars)
	m.asg = make([]dict.VertexID, n)
	m.satSets = make([][]dict.VertexID, n)
	return m, true
}

// recordLevel accumulates one computation of a core level's candidate
// set into stats.Levels and the resource meter.
//
//amber:hotloop
func (m *matcher) recordLevel(ci, pos, n int) {
	if m.levelIdx == nil {
		return
	}
	if m.meter != nil {
		m.mCand += uint64(n)
		m.meter.SetProgress(m.levelIdx[ci]+pos+1, m.totalLevels)
	}
	if m.stats == nil {
		return
	}
	l := &m.stats.Levels[m.levelIdx[ci]+pos]
	l.Candidates += uint64(n)
	l.Visits++
}

// admissible applies the per-candidate constraints that are cheaper to
// check than to pre-intersect: self-loop edge types.
//
//amber:hotloop
func (m *matcher) admissible(u query.VertexID, v dict.VertexID) bool {
	st := m.q.Vars[u].SelfTypes
	if len(st) == 0 {
		return true
	}
	m.countProbe()
	return m.r.HasEdgeTypes(v, v, st)
}

// restrict intersects cand with u's fixed candidates (if any) and filters
// self-loops. cand must be sorted; the result is sorted.
//
//amber:hotloop
func (m *matcher) restrict(u query.VertexID, cand []dict.VertexID) []dict.VertexID {
	if m.p.IsFixed[int(u)] {
		cand = otil.IntersectSorted(cand, m.p.Fixed[int(u)])
		m.mInters++
	}
	if len(m.q.Vars[u].SelfTypes) == 0 {
		return cand
	}
	out := cand[:0:0]
	for _, v := range cand {
		if m.admissible(u, v) {
			out = append(out, v)
		}
	}
	return out
}

// initialCandidates computes CandInit for a component's first core vertex:
// the S index probe (QuerySynIndex) refined by ProcessVertex (Algorithm 3,
// lines 4–5). A literal satellite that forms its own component (constant
// subject) has its exact mixed vertex/literal candidate list precomputed
// at plan time; the signature index knows nothing about literals, so the
// probe is skipped.
//
//amber:hotloop
func (m *matcher) initialCandidates(u query.VertexID) []dict.VertexID {
	if m.q.Vars[u].Lit != nil {
		cand := m.p.Fixed[int(u)]
		if m.stats != nil {
			m.stats.InitCandidates += len(cand)
		}
		return cand
	}
	m.countProbe()
	cand := m.r.SignatureCandidates(m.q.Synopsis(u))
	cand = m.restrict(u, cand)
	if m.stats != nil {
		m.stats.InitCandidates += len(cand)
	}
	return cand
}

// satCandidates is Algorithm 2 for a single satellite us attached to core
// vertex uc matched at vc: neighbourhood probes for every direction of the
// multi-edge, refined by the fixed candidates. A literal satellite instead
// unions the vertex-side neighbourhood probe with vc's matching attributes
// (encoded literal bindings, which sort after every vertex id).
//
//amber:hotloop
func (m *matcher) satCandidates(uc, us query.VertexID, vc dict.VertexID) []dict.VertexID {
	if m.stats != nil {
		m.stats.SatProbes++
	}
	if lit := m.q.Vars[us].Lit; lit != nil {
		return m.litCandidates(lit, vc)
	}
	toSat, fromSat := m.q.EdgesBetween(uc, us)
	var cand []dict.VertexID
	have := false
	if len(toSat) > 0 { // edge uc → us: probe vc's outgoing side
		m.countProbe()
		cand = m.r.Neighbors(vc, index.Outgoing, toSat)
		have = true
	}
	if len(fromSat) > 0 { // edge us → uc: probe vc's incoming side
		m.countProbe()
		nb := m.r.Neighbors(vc, index.Incoming, fromSat)
		if have {
			cand = otil.IntersectSorted(cand, nb)
			m.mInters++
		} else {
			cand = nb
		}
	}
	return m.restrict(us, cand)
}

// litCandidates computes a literal satellite's candidate set under the
// subject match vc: p-edge neighbours (when p is an edge type) followed by
// vc's <p, ·> attributes as encoded literal bindings. Both halves are
// sorted and every encoded binding exceeds every vertex id, so the
// concatenation is sorted.
//
//amber:hotloop
func (m *matcher) litCandidates(lit *query.LitSat, vc dict.VertexID) []dict.VertexID {
	var verts []dict.VertexID
	if len(lit.Types) > 0 {
		m.countProbe()
		verts = m.r.Neighbors(vc, index.Outgoing, lit.Types)
	}
	m.countProbe()
	attrs := otil.IntersectSorted(m.r.VertexAttrs(vc), lit.Attrs)
	m.mInters++
	if len(attrs) == 0 {
		return verts
	}
	out := make([]dict.VertexID, 0, len(verts)+len(attrs))
	out = append(out, verts...)
	for _, a := range attrs {
		out = append(out, dict.EncodeAttrBinding(a))
	}
	return out
}

// matchSatellites is Algorithm 2: computes candidate sets for all
// satellites of core vertex uc under match vc, storing them in satSets.
// It reports false when some satellite has no candidates (vc invalid).
//
//amber:hotloop
func (m *matcher) matchSatellites(uc query.VertexID, vc dict.VertexID, sats []query.VertexID) bool {
	for _, us := range sats {
		cand := m.satCandidates(uc, us, vc)
		if len(cand) == 0 {
			return false
		}
		m.mCand += uint64(len(cand))
		m.satSets[us] = cand
	}
	return true
}

// coreCandidates computes Cand_unxt for a non-initial core vertex
// (Algorithm 4, lines 5–8): the intersection of neighbourhood probes from
// every already-matched neighbour, refined by ProcessVertex.
//
//amber:hotloop
func (m *matcher) coreCandidates(unxt query.VertexID, matched []bool) []dict.VertexID {
	var cand []dict.VertexID
	have := false
	add := func(nb []dict.VertexID) bool {
		if have {
			cand = otil.IntersectSorted(cand, nb)
			m.mInters++
		} else {
			cand, have = nb, true
		}
		return len(cand) > 0
	}
	v := &m.q.Vars[unxt]
	for _, e := range v.Out { // unxt → e.To
		if !matched[e.To] {
			continue
		}
		vn := m.asg[e.To]
		m.countProbe()
		if !add(m.r.Neighbors(vn, index.Incoming, e.Types)) {
			return nil
		}
	}
	for _, e := range v.In { // e.To → unxt
		if !matched[e.To] {
			continue
		}
		vn := m.asg[e.To]
		m.countProbe()
		if !add(m.r.Neighbors(vn, index.Outgoing, e.Types)) {
			return nil
		}
	}
	if !have {
		// Ordering guarantees connectivity to the matched prefix; reaching
		// here means a single-vertex component handled elsewhere.
		return nil
	}
	return m.restrict(unxt, cand)
}

// ---- Stream mode -----------------------------------------------------

// matchComponent runs AMbER-Algo (Algorithm 3) for component ci and, on
// completion of all components, emits embeddings.
//
//amber:hotloop
func (m *matcher) matchComponent(ci int) {
	if m.stopped || m.expired {
		return
	}
	if ci == len(m.p.Components) {
		m.emit()
		return
	}
	comp := &m.p.Components[ci]
	uinit := comp.Core[0]
	matched := make([]bool, len(m.q.Vars))
	cand := m.initialCandidates(uinit)
	m.recordLevel(ci, 0, len(cand))
	for _, vinit := range cand {
		if m.stopped || m.checkDeadline() {
			return
		}
		if !m.matchSatellites(uinit, vinit, comp.Satellites[uinit]) {
			continue
		}
		m.asg[uinit] = vinit
		matched[uinit] = true
		m.homomorphicMatch(ci, comp, 1, matched)
		matched[uinit] = false
	}
}

// homomorphicMatch is Algorithm 4 in stream mode: extend the match to core
// vertex comp.Core[pos].
//
//amber:hotloop
func (m *matcher) homomorphicMatch(ci int, comp *plan.ComponentPlan, pos int, matched []bool) {
	if m.stopped || m.checkDeadline() {
		return
	}
	if m.stats != nil {
		m.stats.Recursions++
	}
	if pos == len(comp.Core) {
		// All cores matched: expand this component's satellites, then move
		// to the next component.
		m.enumerateSatellites(ci, comp.AllSatellites(), 0)
		return
	}
	unxt := comp.Core[pos]
	cand := m.coreCandidates(unxt, matched)
	m.recordLevel(ci, pos, len(cand))
	for _, vnxt := range cand {
		if m.stopped || m.expired {
			return
		}
		if !m.matchSatellites(unxt, vnxt, comp.Satellites[unxt]) {
			continue
		}
		m.asg[unxt] = vnxt
		matched[unxt] = true
		m.homomorphicMatch(ci, comp, pos+1, matched)
		matched[unxt] = false
	}
}

// enumerateSatellites is GenEmb: lazy Cartesian product over the satellite
// candidate sets of component ci, then descent into the next component.
//
//amber:hotloop
func (m *matcher) enumerateSatellites(ci int, sats []query.VertexID, k int) {
	if m.stopped || m.expired {
		return
	}
	if k == len(sats) {
		m.matchComponent(ci + 1)
		return
	}
	us := sats[k]
	for _, v := range m.satSets[us] {
		if m.stopped || m.checkDeadline() {
			return
		}
		m.asg[us] = v
		m.enumerateSatellites(ci, sats, k+1)
	}
}

// emit yields the current assignment.
//
//amber:hotloop
func (m *matcher) emit() {
	m.yielded++
	if m.stats != nil {
		m.stats.Embeddings = m.yielded
	}
	if m.yield != nil && !m.yield(m.asg) {
		m.stopped = true
		return
	}
	if m.limit > 0 && m.yielded >= uint64(m.limit) {
		m.stopped = true
	}
}

// ---- Count mode ------------------------------------------------------

// countComponent counts the embeddings contributed by one component as the
// sum over core solutions of the product of satellite set sizes.
//
//amber:hotloop
func (m *matcher) countComponent(ci int) (uint64, error) {
	comp := &m.p.Components[ci]
	uinit := comp.Core[0]
	matched := make([]bool, len(m.q.Vars))
	total := uint64(0)
	cand := m.initialCandidates(uinit)
	m.recordLevel(ci, 0, len(cand))
	for _, vinit := range cand {
		if m.checkDeadline() {
			return 0, m.abortErr
		}
		if !m.matchSatellites(uinit, vinit, comp.Satellites[uinit]) {
			continue
		}
		m.asg[uinit] = vinit
		matched[uinit] = true
		sub, err := m.countMatch(ci, comp, 1, matched)
		matched[uinit] = false
		if err != nil {
			return 0, err
		}
		total = addSat(total, sub)
	}
	return total, nil
}

// countMatch mirrors homomorphicMatch in count mode.
//
//amber:hotloop
func (m *matcher) countMatch(ci int, comp *plan.ComponentPlan, pos int, matched []bool) (uint64, error) {
	if m.checkDeadline() {
		return 0, m.abortErr
	}
	if m.stats != nil {
		m.stats.Recursions++
	}
	if pos == len(comp.Core) {
		prod := uint64(1)
		for _, us := range comp.AllSatellites() {
			prod = mulSat(prod, uint64(len(m.satSets[us])))
		}
		return prod, nil
	}
	unxt := comp.Core[pos]
	total := uint64(0)
	cand := m.coreCandidates(unxt, matched)
	m.recordLevel(ci, pos, len(cand))
	for _, vnxt := range cand {
		if !m.matchSatellites(unxt, vnxt, comp.Satellites[unxt]) {
			continue
		}
		m.asg[unxt] = vnxt
		matched[unxt] = true
		sub, err := m.countMatch(ci, comp, pos+1, matched)
		matched[unxt] = false
		if err != nil {
			return 0, err
		}
		total = addSat(total, sub)
	}
	return total, nil
}

// addSat and mulSat are saturating uint64 arithmetic: embedding counts can
// genuinely overflow on Cartesian blow-ups.
func addSat(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func mulSat(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

package engine

import (
	"runtime"
	"sync"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/otil"
	"repro/internal/plan"
	"repro/internal/query"
)

// CountParallel counts embeddings like Count but fans the recursion out
// over worker goroutines — the "parallel processing version" the paper's
// conclusion sketches as future work. Parallelism is over the initial
// candidate set of each component: every CandInit vertex roots an
// independent recursion branch (branches never share matcher state), so
// the partition is embarrassingly parallel and the per-component counts
// sum exactly as in the serial algorithm. All workers share the plan's
// immutable candidate constraints.
//
// workers ≤ 1 falls back to the serial Count. The result is identical to
// Count for any worker count and any planner.
func CountParallel(r index.Reader, p *plan.Plan, opts Options, workers int) (uint64, error) {
	if workers <= 1 {
		return Count(r, p, opts)
	}
	if workers > runtime.GOMAXPROCS(0)*4 {
		workers = runtime.GOMAXPROCS(0) * 4
	}
	master, ok := prepare(r, p, opts)
	if master.expired {
		return 0, master.abortErr
	}
	defer master.flushMeter()
	if !ok {
		return 0, nil
	}
	if len(p.Query.Vars) == 0 {
		if master.stats != nil {
			master.stats.Embeddings = 1
		}
		return 1, nil
	}

	total := uint64(1)
	for ci := range p.Components {
		comp := &p.Components[ci]
		cands := master.initialCandidates(comp.Core[0])
		if len(cands) == 0 {
			return 0, nil
		}
		c, err := countComponentParallel(r, p, opts, ci, cands, workers)
		if err != nil {
			return 0, err
		}
		total = mulSat(total, c)
		if total == 0 {
			break
		}
	}
	if opts.Limit > 0 && total > uint64(opts.Limit) {
		total = uint64(opts.Limit)
	}
	if master.stats != nil {
		master.stats.Embeddings = total
	}
	return total, nil
}

// countComponentParallel distributes the initial candidates of component
// ci across workers, each running an independent matcher.
func countComponentParallel(r index.Reader, p *plan.Plan, opts Options, ci int, cands []dict.VertexID, workers int) (uint64, error) {
	if workers > len(cands) {
		workers = len(cands)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    uint64
		firstErr error
	)
	// Interleaved partition balances skewed candidate costs better than
	// contiguous chunks.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stats are not threaded into workers: per-worker counters
			// would race; the aggregate embedding count is set by the
			// caller. The meter, unlike Stats, is shared — its counters
			// are atomics and each worker flushes only its own local
			// deltas into it.
			workerOpts := opts
			workerOpts.Stats = nil
			m, ok := prepare(r, p, workerOpts)
			if !ok || m.expired {
				if m.expired {
					mu.Lock()
					if firstErr == nil {
						firstErr = m.abortErr
					}
					mu.Unlock()
				}
				return
			}
			defer m.flushMeter()
			var sub uint64
			for i := w; i < len(cands); i += workers {
				n, err := m.countFromInitial(ci, cands[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				sub = addSat(sub, n)
			}
			mu.Lock()
			total = addSat(total, sub)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// countFromInitial counts the embeddings of component ci rooted at one
// initial candidate vinit.
//
//amber:hotloop
func (m *matcher) countFromInitial(ci int, vinit dict.VertexID) (uint64, error) {
	comp := &m.p.Components[ci]
	uinit := comp.Core[0]
	if m.checkDeadline() {
		return 0, m.abortErr
	}
	if !m.admissible(uinit, vinit) || !m.inFixed(uinit, vinit) {
		return 0, nil
	}
	if !m.matchSatellites(uinit, vinit, comp.Satellites[uinit]) {
		return 0, nil
	}
	matched := make([]bool, len(m.q.Vars))
	m.asg[uinit] = vinit
	matched[uinit] = true
	return m.countMatch(ci, comp, 1, matched)
}

// inFixed reports whether v is within u's fixed candidate set (when one
// exists). Used when candidates were computed by a different matcher.
//
//amber:hotloop
func (m *matcher) inFixed(u query.VertexID, v dict.VertexID) bool {
	return !m.p.IsFixed[int(u)] || otil.ContainsSorted(m.p.Fixed[int(u)], v)
}

package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// skewedFixture builds a small power-law (DBpedia-like) corpus: heavy
// degree skew and Zipf predicate usage, exactly the regime where a
// data-aware matching order diverges from the structural heuristic.
func skewedFixture(tb testing.TB, seed int64) (*multigraph.Graph, *index.Index, []rdf.Triple) {
	tb.Helper()
	triples := datagen.PowerLaw(datagen.PowerLawConfig{
		EntityNS:          "http://pl.example.org/resource/",
		PredicateNS:       "http://pl.example.org/ontology/",
		Vertices:          1200,
		Predicates:        80,
		Edges:             6000,
		LiteralTriples:    2000,
		LiteralPredicates: 12,
		LiteralValues:     15,
		Seed:              seed,
	})
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		tb.Fatal(err)
	}
	return g, index.Build(g), triples
}

// TestPlannerEquivalence is the planner-correctness property: for
// generated workloads over a skewed power-law graph, the cost-based and
// heuristic matching orders must produce identical Count results — order
// affects speed, never answers. Serial and parallel counts must agree
// under both planners too.
func TestPlannerEquivalence(t *testing.T) {
	g, ix, triples := skewedFixture(t, 42)
	gen := workload.NewGenerator(triples, 7, workload.DefaultConfig())
	checked := 0
	for _, kind := range []workload.Kind{workload.Star, workload.Complex} {
		for _, size := range []int{3, 5, 8, 12} {
			for _, q := range gen.Workload(kind, size, 8) {
				qg, err := query.Build(q, &g.Dicts)
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{Deadline: time.Now().Add(5 * time.Second)}
				cost, err := Count(index.NewReader(g, ix), plan.CostBased().Plan(qg, index.NewReader(g, ix)), opts)
				if err != nil {
					continue // deadline on a pathological query: nothing to compare
				}
				heur, err := Count(index.NewReader(g, ix), plan.Heuristic().Plan(qg, index.NewReader(g, ix)), opts)
				if err != nil {
					continue
				}
				if cost != heur {
					t.Fatalf("%v size %d: cost-based count %d != heuristic count %d\nquery:\n%s",
						kind, size, cost, heur, q)
				}
				par, err := CountParallel(index.NewReader(g, ix), plan.CostBased().Plan(qg, index.NewReader(g, ix)), opts, 4)
				if err == nil && par != cost {
					t.Fatalf("%v size %d: parallel count %d != serial %d\nquery:\n%s",
						kind, size, par, cost, q)
				}
				checked++
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d queries compared; workload generation degenerate", checked)
	}
}

// TestPlannerEquivalenceStream: streamed embedding multisets (not just
// counts) must coincide across planners on a sample of queries.
func TestPlannerEquivalenceStream(t *testing.T) {
	g, ix, triples := skewedFixture(t, 99)
	gen := workload.NewGenerator(triples, 13, workload.DefaultConfig())
	for _, q := range gen.Workload(workload.Complex, 6, 5) {
		qg, err := query.Build(q, &g.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		sets := make([]map[string]int, 2)
		for i, pl := range []plan.Planner{plan.CostBased(), plan.Heuristic()} {
			seen := map[string]int{}
			err := Stream(index.NewReader(g, ix), pl.Plan(qg, index.NewReader(g, ix)), Options{}, func(asg []dict.VertexID) bool {
				key := make([]byte, 0, 4*len(asg))
				for _, v := range asg {
					key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				}
				seen[string(key)]++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			sets[i] = seen
		}
		if len(sets[0]) != len(sets[1]) {
			t.Fatalf("embedding sets differ in size: cost=%d heuristic=%d\nquery:\n%s",
				len(sets[0]), len(sets[1]), q)
		}
		for k, n := range sets[0] {
			if sets[1][k] != n {
				t.Fatalf("embedding multiplicity differs under planners\nquery:\n%s", q)
			}
		}
	}
}

// hubTrapFixture builds the skew pattern where a structure-only order is
// maximally wrong: every one of n hubs carries the three satellite-feeding
// common predicates (so the paper's r1 rank makes ?hub the first core
// vertex), but only k of the n chains continue over the rare predicate.
// A data-aware order starts from the k rare-edge endpoints instead of the
// n hubs.
func hubTrapFixture(tb testing.TB, n, k int) (*multigraph.Graph, *index.Index, *sparql.Query) {
	tb.Helper()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://sk/" + s) }
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		hub := iri(fmt.Sprintf("hub%d", i))
		ts = append(ts,
			rdf.Triple{S: hub, P: iri("p1"), O: iri(fmt.Sprintf("a%d", i%50))},
			rdf.Triple{S: hub, P: iri("p2"), O: iri(fmt.Sprintf("b%d", i%50))},
			rdf.Triple{S: hub, P: iri("p3"), O: iri(fmt.Sprintf("c%d", i%50))},
			rdf.Triple{S: hub, P: iri("p0"), O: iri(fmt.Sprintf("mid%d", i))},
		)
	}
	for i := 0; i < k; i++ {
		ts = append(ts,
			rdf.Triple{S: iri(fmt.Sprintf("mid%d", i)), P: iri("rare"), O: iri(fmt.Sprintf("t%d", i))},
			rdf.Triple{S: iri(fmt.Sprintf("t%d", i)), P: iri("p4"), O: iri(fmt.Sprintf("u%d", i))},
		)
	}
	g, err := multigraph.FromTriples(ts)
	if err != nil {
		tb.Fatal(err)
	}
	pq, err := sparql.Parse(`SELECT * WHERE {
  ?hub <http://sk/p1> ?s1 .
  ?hub <http://sk/p2> ?s2 .
  ?hub <http://sk/p3> ?s3 .
  ?hub <http://sk/p0> ?mid .
  ?mid <http://sk/rare> ?t .
  ?t <http://sk/p4> ?u .
}`)
	if err != nil {
		tb.Fatal(err)
	}
	return g, index.Build(g), pq
}

// TestCostBasedBeatsHeuristicOnSkew asserts the planner's payoff
// deterministically (search-effort counters rather than wall clock): on
// the hub-trap skew both planners agree on the answer, but the cost-based
// order explores far fewer initial candidates and recursions.
func TestCostBasedBeatsHeuristicOnSkew(t *testing.T) {
	g, ix, pq := hubTrapFixture(t, 2000, 5)
	qg, err := query.Build(pq, &g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	var costStats, heurStats Stats
	cost, err := Count(index.NewReader(g, ix), plan.CostBased().Plan(qg, index.NewReader(g, ix)), Options{Stats: &costStats})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Count(index.NewReader(g, ix), plan.Heuristic().Plan(qg, index.NewReader(g, ix)), Options{Stats: &heurStats})
	if err != nil {
		t.Fatal(err)
	}
	if cost != heur || cost != 5 {
		t.Fatalf("counts: cost=%d heuristic=%d, want 5", cost, heur)
	}
	if costStats.InitCandidates*10 > heurStats.InitCandidates {
		t.Errorf("cost-based init candidates %d not ≪ heuristic %d",
			costStats.InitCandidates, heurStats.InitCandidates)
	}
	if costStats.Recursions > heurStats.Recursions {
		t.Errorf("cost-based recursions %d > heuristic %d",
			costStats.Recursions, heurStats.Recursions)
	}
}

// BenchmarkPlannerSkewed times the same hub trap: the workload where the
// data-aware order must show a real wall-clock win.
func BenchmarkPlannerSkewed(b *testing.B) {
	g, ix, pq := hubTrapFixture(b, 2000, 5)
	qg, err := query.Build(pq, &g.Dicts)
	if err != nil {
		b.Fatal(err)
	}
	for _, pl := range []plan.Planner{plan.Heuristic(), plan.CostBased()} {
		p := pl.Plan(qg, index.NewReader(g, ix))
		b.Run("planner="+pl.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := Count(index.NewReader(g, ix), p, Options{})
				if err != nil || n != 5 {
					b.Fatalf("count = %d, %v", n, err)
				}
			}
		})
	}
}

// benchQueries picks satisfiable workload queries whose counts are
// bounded, so benchmark iterations measure search effort rather than
// result-set explosion.
func benchQueries(b *testing.B, g *multigraph.Graph, ix *index.Index, triples []rdf.Triple, kind workload.Kind, size, n int) []*sparql.Query {
	b.Helper()
	gen := workload.NewGenerator(triples, 23, workload.DefaultConfig())
	var out []*sparql.Query
	for _, q := range gen.Workload(kind, size, n*4) {
		qg, err := query.Build(q, &g.Dicts)
		if err != nil {
			continue
		}
		cnt, err := Count(index.NewReader(g, ix), plan.Heuristic().Plan(qg, index.NewReader(g, ix)), Options{Deadline: time.Now().Add(2 * time.Second)})
		if err != nil || cnt == 0 || cnt > 1_000_000 {
			continue
		}
		out = append(out, q)
		if len(out) == n {
			break
		}
	}
	if len(out) == 0 {
		b.Skip("no bounded satisfiable queries at this scale")
	}
	return out
}

// BenchmarkPlanner compares matching-order planners on a skewed power-law
// corpus. Sub-benchmark names are benchstat-friendly: run with
//
//	go test ./internal/engine -bench 'BenchmarkPlanner' -count 10 | benchstat -col /planner -
//
// to see heuristic vs cost side by side per shape.
func BenchmarkPlanner(b *testing.B) {
	g, ix, triples := skewedFixture(b, 2016)
	shapes := []struct {
		name string
		kind workload.Kind
		size int
	}{
		{"star8", workload.Star, 8},
		{"complex12", workload.Complex, 12},
	}
	planners := []plan.Planner{plan.Heuristic(), plan.CostBased()}
	for _, sh := range shapes {
		queries := benchQueries(b, g, ix, triples, sh.kind, sh.size, 10)
		for _, pl := range planners {
			plans := make([]*plan.Plan, len(queries))
			for i, q := range queries {
				qg, err := query.Build(q, &g.Dicts)
				if err != nil {
					b.Fatal(err)
				}
				plans[i] = pl.Plan(qg, index.NewReader(g, ix))
			}
			b.Run("shape="+sh.name+"/planner="+pl.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Count(index.NewReader(g, ix), plans[i%len(plans)], Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanning measures plan construction itself (both planners),
// since prepared queries amortize it but ad-hoc queries pay it per run.
func BenchmarkPlanning(b *testing.B) {
	g, ix, triples := skewedFixture(b, 2016)
	queries := benchQueries(b, g, ix, triples, workload.Complex, 12, 10)
	qgs := make([]*query.Graph, len(queries))
	for i, q := range queries {
		qg, err := query.Build(q, &g.Dicts)
		if err != nil {
			b.Fatal(err)
		}
		qgs[i] = qg
	}
	for _, pl := range []plan.Planner{plan.Heuristic(), plan.CostBased()} {
		b.Run("planner="+pl.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if p := pl.Plan(qgs[i%len(qgs)], index.NewReader(g, ix)); p == nil {
					b.Fatal("nil plan")
				}
			}
		})
	}
}

package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// PowerLawConfig parameterizes the generic encyclopedic-graph generator
// used for the DBpedia-like and YAGO-like corpora.
type PowerLawConfig struct {
	// Namespace prefixes for entities and predicates.
	EntityNS, PredicateNS string
	// Vertices is the number of distinct entities.
	Vertices int
	// Predicates is the number of distinct edge predicates (the paper's
	// "# Edge types": ≈676 for DBPEDIA, 44 for YAGO).
	Predicates int
	// Edges is the number of entity-to-entity triples to draw.
	Edges int
	// LiteralTriples is the number of literal-object triples to draw.
	LiteralTriples int
	// LiteralPredicates is the number of distinct datatype predicates.
	LiteralPredicates int
	// LiteralValues bounds the distinct literal lexical forms per
	// predicate (small values create shared attributes, as real infobox
	// data does).
	LiteralValues int
	// Seed makes generation deterministic.
	Seed int64
}

// PowerLaw generates a scale-free-ish multigraph: target vertices are
// drawn with preferential attachment (rich get richer), source vertices
// near-uniformly, and predicates by a Zipf-like rank distribution — the
// degree and predicate-usage skew observed in DBpedia/YAGO-class corpora.
func PowerLaw(cfg PowerLawConfig) []rdf.Triple {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]rdf.Triple, 0, cfg.Edges+cfg.LiteralTriples)

	ent := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sEntity%d", cfg.EntityNS, i)) }
	pred := func(i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%sproperty%d", cfg.PredicateNS, i))
	}

	// Zipf-like predicate choice: rank r with probability ∝ 1/(r+1).
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(cfg.Predicates-1))

	// Preferential attachment pool: every chosen target is appended, so
	// frequently-linked entities grow ever more likely.
	pool := make([]int, 0, cfg.Edges)
	pickTarget := func() int {
		if len(pool) > 0 && rng.Intn(4) != 0 {
			return pool[rng.Intn(len(pool))]
		}
		return rng.Intn(cfg.Vertices)
	}

	// Random draws can land on the same (s, p, o) twice; RDF graphs are
	// triple sets, so dedupe at emission. The rng draw sequence (and the
	// preferential-attachment pool) is untouched — only the duplicate
	// append is skipped — keeping corpora seed-stable across versions.
	seen := make(map[rdf.Triple]bool, cfg.Edges+cfg.LiteralTriples)
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for i := 0; i < cfg.Edges; i++ {
		s := rng.Intn(cfg.Vertices)
		o := pickTarget()
		if o == s {
			o = (o + 1) % cfg.Vertices
		}
		pool = append(pool, o)
		p := int(zipf.Uint64())
		add(rdf.Triple{S: ent(s), P: pred(p), O: ent(o)})
	}
	for i := 0; i < cfg.LiteralTriples; i++ {
		s := rng.Intn(cfg.Vertices)
		p := rng.Intn(cfg.LiteralPredicates)
		v := rng.Intn(cfg.LiteralValues)
		add(rdf.Triple{
			S: ent(s),
			P: rdf.NewIRI(fmt.Sprintf("%sattr%d", cfg.PredicateNS, p)),
			O: rdf.NewLiteral(fmt.Sprintf("value_%d_%d", p, v)),
		})
	}
	return out
}

// DBpediaLike generates a DBpedia-class corpus: high predicate diversity
// (676 edge types at full scale) and heavy degree skew. scale≈1 yields
// roughly 60k triples; the paper's corpus is 33M.
func DBpediaLike(scale int, seed int64) []rdf.Triple {
	if scale < 1 {
		scale = 1
	}
	return PowerLaw(PowerLawConfig{
		EntityNS:          "http://dbpedia.example.org/resource/",
		PredicateNS:       "http://dbpedia.example.org/ontology/",
		Vertices:          9000 * scale,
		Predicates:        676,
		Edges:             45000 * scale,
		LiteralTriples:    15000 * scale,
		LiteralPredicates: 60,
		LiteralValues:     40,
		Seed:              seed,
	})
}

// YAGOLike generates a YAGO-class corpus: few predicates (44), factual
// fan-out, literal attributes. scale≈1 yields roughly 55k triples; the
// paper's corpus is 35M.
func YAGOLike(scale int, seed int64) []rdf.Triple {
	if scale < 1 {
		scale = 1
	}
	return PowerLaw(PowerLawConfig{
		EntityNS:          "http://yago.example.org/resource/",
		PredicateNS:       "http://yago.example.org/",
		Vertices:          8000 * scale,
		Predicates:        44,
		Edges:             42000 * scale,
		LiteralTriples:    12000 * scale,
		LiteralPredicates: 20,
		LiteralValues:     50,
		Seed:              seed,
	})
}

// Package datagen synthesizes the three benchmark datasets of the paper's
// evaluation (Section 7.1) at configurable scale. The real corpora (33M+
// triples of DBPEDIA, YAGO, LUBM100) cannot ship with an offline
// repository, so each generator reproduces the structural parameters
// Table 4 identifies as the distinguishing ones: predicate diversity
// (≈676 / 44 / 13 edge types), literal attributes, and degree skew.
// All generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// LUBM namespace prefixes, matching the public benchmark's vocabulary.
const (
	ubOnt = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	ubRes = "http://www.univ-bench.example.org/"
)

// LUBM object predicates — the benchmark's 13 edge types (Table 4 reports
// exactly 13 distinct predicates between IRIs for LUBM100).
var lubmPredicates = []string{
	"worksFor", "memberOf", "subOrganizationOf", "undergraduateDegreeFrom",
	"mastersDegreeFrom", "doctoralDegreeFrom", "takesCourse", "teacherOf",
	"advisor", "publicationAuthor", "headOf", "teachingAssistantOf",
	"hasAlumnus",
}

// LUBMConfig controls the university generator.
type LUBMConfig struct {
	// Universities is the scale factor (the paper's LUBM100 has 100).
	Universities int
	// Seed makes generation deterministic.
	Seed int64
	// Compact shrinks per-university entity counts (for tests).
	Compact bool
}

// LUBM generates a deterministic LUBM-like tripleset: universities with
// departments, faculty, students, courses and publications, linked by the
// benchmark's 13 object predicates plus literal attributes (name, email,
// telephone).
func LUBM(cfg LUBMConfig) []rdf.Triple {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []rdf.Triple

	iri := func(format string, args ...any) rdf.Term {
		return rdf.NewIRI(ubRes + fmt.Sprintf(format, args...))
	}
	pred := func(name string) rdf.Term { return rdf.NewIRI(ubOnt + name) }
	// Random draws can repeat (a student taking the same course twice);
	// RDF graphs are triple sets, so dedupe at emission. The rng draw
	// sequence is untouched — only the duplicate append is skipped — so
	// generated corpora stay stable across versions for a given seed.
	seen := make(map[rdf.Triple]bool)
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	emit := func(s rdf.Term, p string, o rdf.Term) {
		add(rdf.Triple{S: s, P: pred(p), O: o})
	}
	lit := func(s rdf.Term, p, v string) {
		add(rdf.Triple{S: s, P: pred(p), O: rdf.NewLiteral(v)})
	}
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	deptLo, deptHi := 15, 25
	facLo, facHi := 20, 35
	ugradPerFac, gradPerFac := 8, 3
	if cfg.Compact {
		deptLo, deptHi = 2, 3
		facLo, facHi = 3, 5
		ugradPerFac, gradPerFac = 2, 1
	}

	for u := 0; u < cfg.Universities; u++ {
		univ := iri("University%d", u)
		lit(univ, "name", fmt.Sprintf("University%d", u))
		nDept := span(deptLo, deptHi)
		for d := 0; d < nDept; d++ {
			dept := iri("University%d/Department%d", u, d)
			emit(dept, "subOrganizationOf", univ)
			lit(dept, "name", fmt.Sprintf("Department%d", d))

			nFac := span(facLo, facHi)
			faculty := make([]rdf.Term, nFac)
			var courses []rdf.Term
			for f := 0; f < nFac; f++ {
				prof := iri("University%d/Department%d/Professor%d", u, d, f)
				faculty[f] = prof
				emit(prof, "worksFor", dept)
				lit(prof, "name", fmt.Sprintf("Professor%d", f))
				lit(prof, "emailAddress", fmt.Sprintf("prof%d@u%dd%d.edu", f, u, d))
				lit(prof, "telephone", fmt.Sprintf("+1-555-%04d", rng.Intn(10000)))
				// Degrees from random universities.
				emit(prof, "undergraduateDegreeFrom", iri("University%d", rng.Intn(cfg.Universities)))
				emit(prof, "mastersDegreeFrom", iri("University%d", rng.Intn(cfg.Universities)))
				emit(prof, "doctoralDegreeFrom", iri("University%d", rng.Intn(cfg.Universities)))
				// Courses taught.
				nCourses := span(1, 3)
				for c := 0; c < nCourses; c++ {
					course := iri("University%d/Department%d/Course%d_%d", u, d, f, c)
					courses = append(courses, course)
					emit(prof, "teacherOf", course)
					lit(course, "name", fmt.Sprintf("Course%d_%d", f, c))
				}
				// Publications.
				nPubs := span(1, 4)
				for pu := 0; pu < nPubs; pu++ {
					pub := iri("University%d/Department%d/Publication%d_%d", u, d, f, pu)
					emit(pub, "publicationAuthor", faculty[f])
					lit(pub, "name", fmt.Sprintf("Publication%d_%d", f, pu))
				}
			}
			// Head of department.
			emit(faculty[rng.Intn(nFac)], "headOf", dept)

			// Graduate students.
			nGrad := nFac * gradPerFac
			grads := make([]rdf.Term, nGrad)
			for s := 0; s < nGrad; s++ {
				grad := iri("University%d/Department%d/GradStudent%d", u, d, s)
				grads[s] = grad
				emit(grad, "memberOf", dept)
				lit(grad, "name", fmt.Sprintf("GradStudent%d", s))
				lit(grad, "emailAddress", fmt.Sprintf("grad%d@u%dd%d.edu", s, u, d))
				emit(grad, "advisor", faculty[rng.Intn(nFac)])
				emit(grad, "undergraduateDegreeFrom", iri("University%d", rng.Intn(cfg.Universities)))
				if len(courses) > 0 {
					for c := 0; c < span(1, 3); c++ {
						emit(grad, "takesCourse", courses[rng.Intn(len(courses))])
					}
					if rng.Intn(4) == 0 {
						emit(grad, "teachingAssistantOf", courses[rng.Intn(len(courses))])
					}
				}
			}
			// Undergraduates.
			nUgrad := nFac * ugradPerFac
			for s := 0; s < nUgrad; s++ {
				ug := iri("University%d/Department%d/UgradStudent%d", u, d, s)
				emit(ug, "memberOf", dept)
				lit(ug, "name", fmt.Sprintf("UgradStudent%d", s))
				if len(courses) > 0 {
					for c := 0; c < span(1, 4); c++ {
						emit(ug, "takesCourse", courses[rng.Intn(len(courses))])
					}
				}
				if rng.Intn(5) == 0 {
					emit(ug, "advisor", faculty[rng.Intn(nFac)])
				}
			}
			// Alumni links back to the university.
			if nGrad > 0 && rng.Intn(2) == 0 {
				emit(univ, "hasAlumnus", grads[rng.Intn(nGrad)])
			}
		}
	}
	return out
}

// LUBMPredicateIRIs returns the full IRIs of the 13 object predicates, for
// tests and workload tooling.
func LUBMPredicateIRIs() []string {
	out := make([]string, len(lubmPredicates))
	for i, p := range lubmPredicates {
		out[i] = ubOnt + p
	}
	return out
}

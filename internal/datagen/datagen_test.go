package datagen

import (
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/multigraph"
)

func TestLUBMDeterministic(t *testing.T) {
	a := LUBM(LUBMConfig{Universities: 2, Seed: 7, Compact: true})
	b := LUBM(LUBMConfig{Universities: 2, Seed: 7, Compact: true})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := LUBM(LUBMConfig{Universities: 2, Seed: 8, Compact: true})
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestLUBMEdgeTypeCount(t *testing.T) {
	ts := LUBM(LUBMConfig{Universities: 3, Seed: 1, Compact: true})
	g, err := multigraph.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: LUBM has exactly 13 distinct edge types (object predicates).
	if got := g.NumEdgeTypes(); got != 13 {
		t.Errorf("edge types = %d, want 13", got)
	}
	if g.NumAttrs() == 0 {
		t.Error("no literal attributes generated")
	}
	if g.NumTriples() != len(ts) {
		t.Errorf("triples = %d, want %d", g.NumTriples(), len(ts))
	}
}

func TestLUBMScales(t *testing.T) {
	small := LUBM(LUBMConfig{Universities: 1, Seed: 1, Compact: true})
	big := LUBM(LUBMConfig{Universities: 4, Seed: 1, Compact: true})
	if len(big) < 2*len(small) {
		t.Errorf("scaling too weak: 1 univ = %d triples, 4 univ = %d", len(small), len(big))
	}
}

func TestLUBMVocabulary(t *testing.T) {
	ts := LUBM(LUBMConfig{Universities: 1, Seed: 2, Compact: true})
	preds := map[string]bool{}
	for _, tr := range ts {
		preds[tr.P.Value] = true
	}
	for _, want := range []string{"worksFor", "takesCourse", "advisor", "publicationAuthor", "headOf"} {
		if !preds[ubOnt+want] {
			t.Errorf("predicate %s missing", want)
		}
	}
	if got := len(LUBMPredicateIRIs()); got != 13 {
		t.Errorf("LUBMPredicateIRIs = %d, want 13", got)
	}
	for _, p := range LUBMPredicateIRIs() {
		if !strings.HasPrefix(p, ubOnt) {
			t.Errorf("predicate %s not namespaced", p)
		}
	}
}

func TestDBpediaLikeShape(t *testing.T) {
	ts := DBpediaLike(1, 42)
	if len(ts) < 50000 {
		t.Fatalf("triples = %d, want ≥ 50000 at scale 1", len(ts))
	}
	g, err := multigraph.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	// High predicate diversity: most of the 676 should be used.
	if got := g.NumEdgeTypes(); got < 300 {
		t.Errorf("edge types = %d, want several hundred", got)
	}
	if g.NumAttrs() == 0 {
		t.Error("no attributes")
	}
	// Degree skew: the max in-degree should far exceed the average.
	maxIn, totalIn := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		d := len(g.In(dict.VertexID(v)))
		totalIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	avg := float64(totalIn) / float64(g.NumVertices())
	if float64(maxIn) < 20*avg {
		t.Errorf("degree skew too weak: max=%d avg=%.1f", maxIn, avg)
	}
}

func TestYAGOLikeShape(t *testing.T) {
	ts := YAGOLike(1, 42)
	g, err := multigraph.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumEdgeTypes(); got < 30 || got > 44 {
		t.Errorf("edge types = %d, want ≈44", got)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := DBpediaLike(1, 9)
	b := DBpediaLike(1, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestPowerLawNoSelfLoops(t *testing.T) {
	for _, tr := range PowerLaw(PowerLawConfig{
		EntityNS: "http://e/", PredicateNS: "http://p/",
		Vertices: 50, Predicates: 5, Edges: 2000,
		LiteralTriples: 0, LiteralPredicates: 1, LiteralValues: 1, Seed: 3,
	}) {
		if tr.S == tr.O {
			t.Fatalf("self loop generated: %v", tr)
		}
	}
}

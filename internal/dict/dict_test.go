package dict

import (
	"repro/internal/rdf"

	"fmt"
	"testing"
	"testing/quick"
)

func TestStringDictInternIsIdempotent(t *testing.T) {
	var d StringDict
	a := d.Intern("http://x/a")
	b := d.Intern("http://x/b")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if again := d.Intern("http://x/a"); again != a {
		t.Errorf("re-Intern = %d, want %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestStringDictDenseIDs(t *testing.T) {
	var d StringDict
	for i := 0; i < 100; i++ {
		id := d.Intern(fmt.Sprintf("s%d", i))
		if id != uint32(i) {
			t.Fatalf("Intern #%d = %d, want dense", i, id)
		}
	}
}

func TestStringDictLookup(t *testing.T) {
	var d StringDict
	d.Intern("present")
	if id, ok := d.Lookup("present"); !ok || id != 0 {
		t.Errorf("Lookup(present) = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("Lookup(absent) succeeded")
	}
}

func TestStringDictValuePanicsOutOfRange(t *testing.T) {
	var d StringDict
	d.Intern("only")
	defer func() {
		if recover() == nil {
			t.Error("Value(99) did not panic")
		}
	}()
	d.Value(99)
}

func TestAttrDict(t *testing.T) {
	var d AttrDict
	a0 := d.Intern(Attribute{Predicate: "y:hasCapacityOf", Lexical: "90000"})
	a1 := d.Intern(Attribute{Predicate: "y:wasFoundedIn", Lexical: "1994"})
	if a0 == a1 {
		t.Fatal("distinct attributes share id")
	}
	if again := d.Intern(Attribute{Predicate: "y:hasCapacityOf", Lexical: "90000"}); again != a0 {
		t.Errorf("re-Intern = %d, want %d", again, a0)
	}
	if got := d.Value(a1); got.Predicate != "y:wasFoundedIn" || got.Lexical != "1994" {
		t.Errorf("Value = %v", got)
	}
	if _, ok := d.Lookup(Attribute{Predicate: "y:hasName", Lexical: "MCA_Band"}); ok {
		t.Error("Lookup of absent attribute succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestAttrDictValuePanics(t *testing.T) {
	var d AttrDict
	defer func() {
		if recover() == nil {
			t.Error("Value on empty dict did not panic")
		}
	}()
	d.Value(0)
}

func TestAttributeString(t *testing.T) {
	a := Attribute{Predicate: "y:hasName", Lexical: "MCA_Band"}
	if got := a.String(); got != `<y:hasName, "MCA_Band">` {
		t.Errorf("String = %q", got)
	}
}

func TestDictionariesRoundTrip(t *testing.T) {
	var d Dictionaries
	v := d.InternVertex("http://x/London")
	e := d.InternEdgeType("http://y/isPartOf")
	a := d.InternAttr("http://y/hasCapacityOf", rdf.NewLiteral("90000"))

	if got := d.VertexIRI(v); got != "http://x/London" {
		t.Errorf("VertexIRI = %q", got)
	}
	if got := d.EdgeTypeIRI(e); got != "http://y/isPartOf" {
		t.Errorf("EdgeTypeIRI = %q", got)
	}
	if got := d.Attr(a); got.Lexical != "90000" {
		t.Errorf("Attr = %v", got)
	}

	if id, ok := d.LookupVertex("http://x/London"); !ok || id != v {
		t.Errorf("LookupVertex = %d, %v", id, ok)
	}
	if _, ok := d.LookupVertex("http://x/Paris"); ok {
		t.Error("LookupVertex(absent) succeeded")
	}
	if id, ok := d.LookupEdgeType("http://y/isPartOf"); !ok || id != e {
		t.Errorf("LookupEdgeType = %d, %v", id, ok)
	}
	if _, ok := d.LookupEdgeType("http://y/nope"); ok {
		t.Error("LookupEdgeType(absent) succeeded")
	}
	if id, ok := d.LookupAttr("http://y/hasCapacityOf", rdf.NewLiteral("90000")); !ok || id != a {
		t.Errorf("LookupAttr = %d, %v", id, ok)
	}
	if _, ok := d.LookupAttr("http://y/hasCapacityOf", rdf.NewLiteral("1")); ok {
		t.Error("LookupAttr(absent) succeeded")
	}
}

// TestInternRoundTripProperty: Value(Intern(s)) == s for arbitrary strings,
// and Intern is injective on distinct strings.
func TestInternRoundTripProperty(t *testing.T) {
	var d StringDict
	f := func(s string) bool {
		return d.Value(d.Intern(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInternInjectiveProperty(t *testing.T) {
	var d StringDict
	f := func(a, b string) bool {
		ia, ib := d.Intern(a), d.Intern(b)
		return (a == b) == (ia == ib)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

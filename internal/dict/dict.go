// Package dict implements the three dictionary look-up tables the AMbER
// paper (Section 2.1.1, Table 2) uses to transform an RDF tripleset into a
// data multigraph:
//
//   - the vertex dictionary Mv, mapping subject/object IRIs to vertex ids;
//   - the edge-type dictionary Me, mapping predicate IRIs to edge-type ids;
//   - the attribute dictionary Ma, mapping <predicate, object-literal>
//     tuples to attribute ids.
//
// All dictionaries are bidirectional: identifiers are dense and start at 0,
// so the inverse mapping is a plain slice lookup.
package dict

import "fmt"

// VertexID identifies a data (or query) vertex. Identifiers are dense.
type VertexID uint32

// EdgeType identifies a predicate (edge type). Identifiers are dense and,
// per the paper's synopsis features f3/f4, their numeric value is the
// "position of the sequenced alphabet" — i.e. insertion order.
type EdgeType uint32

// AttrID identifies a <predicate, literal> attribute tuple.
type AttrID uint32

// StringDict is a bidirectional string↔dense-id dictionary.
// The zero value is ready to use.
type StringDict struct {
	ids    map[string]uint32
	values []string
}

// Intern returns the id for s, assigning the next dense id on first sight.
func (d *StringDict) Intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[string]uint32)
	}
	id := uint32(len(d.values))
	d.ids[s] = id
	d.values = append(d.values, s)
	return id
}

// Lookup returns the id for s without interning.
func (d *StringDict) Lookup(s string) (uint32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// Value returns the string for id; it panics on out-of-range ids, which
// indicate a programming error rather than bad input.
func (d *StringDict) Value(id uint32) string {
	if int(id) >= len(d.values) {
		panic(fmt.Sprintf("dict: id %d out of range (len %d)", id, len(d.values)))
	}
	return d.values[id]
}

// Len reports the number of interned strings.
func (d *StringDict) Len() int { return len(d.values) }

// Attribute is the <predicate, object-literal> tuple that Ma maps to an
// attribute identifier (e.g. <y:hasCapacityOf, "90000"> ↦ a0).
type Attribute struct {
	Predicate string
	Literal   string
}

// String renders the tuple for diagnostics.
func (a Attribute) String() string {
	return "<" + a.Predicate + ", \"" + a.Literal + "\">"
}

// AttrDict is a bidirectional Attribute↔AttrID dictionary.
// The zero value is ready to use.
type AttrDict struct {
	ids    map[Attribute]AttrID
	values []Attribute
}

// Intern returns the id for a, assigning the next dense id on first sight.
func (d *AttrDict) Intern(a Attribute) AttrID {
	if id, ok := d.ids[a]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[Attribute]AttrID)
	}
	id := AttrID(len(d.values))
	d.ids[a] = id
	d.values = append(d.values, a)
	return id
}

// Lookup returns the id for a without interning.
func (d *AttrDict) Lookup(a Attribute) (AttrID, bool) {
	id, ok := d.ids[a]
	return id, ok
}

// Value returns the tuple for id; it panics on out-of-range ids.
func (d *AttrDict) Value(id AttrID) Attribute {
	if int(id) >= len(d.values) {
		panic(fmt.Sprintf("dict: attribute id %d out of range (len %d)", id, len(d.values)))
	}
	return d.values[id]
}

// Len reports the number of interned attributes.
func (d *AttrDict) Len() int { return len(d.values) }

// Resolver is the read-only lookup surface of the three dictionaries.
// *Dictionaries implements it over a frozen graph; a mutation overlay
// (internal/delta) implements it by layering its own interned entries on
// top of a base. Query translation and solution rendering depend only on
// this interface, so they work against either.
type Resolver interface {
	// LookupVertex resolves an IRI to its vertex id without interning.
	LookupVertex(iri string) (VertexID, bool)
	// LookupEdgeType resolves a predicate IRI without interning.
	LookupEdgeType(predicate string) (EdgeType, bool)
	// LookupAttr resolves a <predicate, literal> tuple without interning.
	LookupAttr(predicate, literal string) (AttrID, bool)
	// VertexIRI applies the inverse mapping Mv⁻¹.
	VertexIRI(v VertexID) string
}

// Dictionaries bundles the three mapping functions of Table 2.
// The zero value is ready to use.
type Dictionaries struct {
	Vertices  StringDict // Mv: subject/object IRI → VertexID
	EdgeTypes StringDict // Me: predicate IRI → EdgeType
	Attrs     AttrDict   // Ma: <predicate, literal> → AttrID
}

// InternVertex applies Mv.
func (d *Dictionaries) InternVertex(iri string) VertexID {
	return VertexID(d.Vertices.Intern(iri))
}

// InternEdgeType applies Me.
func (d *Dictionaries) InternEdgeType(predicate string) EdgeType {
	return EdgeType(d.EdgeTypes.Intern(predicate))
}

// InternAttr applies Ma.
func (d *Dictionaries) InternAttr(predicate, literal string) AttrID {
	return d.Attrs.Intern(Attribute{Predicate: predicate, Literal: literal})
}

// LookupVertex resolves an IRI without interning (used for query constants:
// an IRI that never occurs in the data has no binding).
func (d *Dictionaries) LookupVertex(iri string) (VertexID, bool) {
	id, ok := d.Vertices.Lookup(iri)
	return VertexID(id), ok
}

// LookupEdgeType resolves a predicate without interning.
func (d *Dictionaries) LookupEdgeType(predicate string) (EdgeType, bool) {
	id, ok := d.EdgeTypes.Lookup(predicate)
	return EdgeType(id), ok
}

// LookupAttr resolves an attribute tuple without interning.
func (d *Dictionaries) LookupAttr(predicate, literal string) (AttrID, bool) {
	return d.Attrs.Lookup(Attribute{Predicate: predicate, Literal: literal})
}

// VertexIRI applies the inverse mapping Mv⁻¹, used to translate embeddings
// back to RDF entities (paper Section 3).
func (d *Dictionaries) VertexIRI(v VertexID) string { return d.Vertices.Value(uint32(v)) }

// EdgeTypeIRI applies Me⁻¹.
func (d *Dictionaries) EdgeTypeIRI(t EdgeType) string { return d.EdgeTypes.Value(uint32(t)) }

// Attr applies Ma⁻¹.
func (d *Dictionaries) Attr(a AttrID) Attribute { return d.Attrs.Value(a) }

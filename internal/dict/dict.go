// Package dict implements the three dictionary look-up tables the AMbER
// paper (Section 2.1.1, Table 2) uses to transform an RDF tripleset into a
// data multigraph:
//
//   - the vertex dictionary Mv, mapping subject/object IRIs (and blank
//     labels, which live in the "_:" namespace) to vertex ids;
//   - the edge-type dictionary Me, mapping predicate IRIs to edge-type ids;
//   - the attribute dictionary Ma, mapping <predicate, object-literal>
//     tuples to attribute ids. The literal is interned as a full typed
//     term (lexical form, datatype IRI, language tag), not a folded
//     string, so `"42"^^xsd:integer` and the plain string "42" are
//     distinct attributes and decode back to distinct terms.
//
// All dictionaries are bidirectional: identifiers are dense and start at 0,
// so the inverse mapping is a plain slice lookup.
package dict

import (
	"fmt"

	"repro/internal/rdf"
)

// VertexID identifies a data (or query) vertex. Identifiers are dense.
type VertexID uint32

// EdgeType identifies a predicate (edge type). Identifiers are dense and,
// per the paper's synopsis features f3/f4, their numeric value is the
// "position of the sequenced alphabet" — i.e. insertion order.
type EdgeType uint32

// AttrID identifies a <predicate, literal> attribute tuple.
type AttrID uint32

// litBindingBit tags an engine binding slot as holding an attribute id
// (a literal binding) rather than a vertex id. Vertex ids stay below it
// in practice (2³¹ vertices), so encoded literal bindings sort after all
// vertex bindings, which keeps mixed candidate lists sorted.
const litBindingBit VertexID = 1 << 31

// EncodeAttrBinding packs an attribute id into the engine's vertex-id
// binding space. See LitSat in internal/query.
func EncodeAttrBinding(a AttrID) VertexID { return litBindingBit | VertexID(a) }

// IsAttrBinding reports whether a binding slot holds an encoded attribute.
func IsAttrBinding(v VertexID) bool { return v&litBindingBit != 0 }

// AttrBinding unpacks an encoded attribute binding.
func AttrBinding(v VertexID) AttrID { return AttrID(v &^ litBindingBit) }

// StringDict is a bidirectional string↔dense-id dictionary.
// The zero value is ready to use.
type StringDict struct {
	ids    map[string]uint32
	values []string
}

// Intern returns the id for s, assigning the next dense id on first sight.
func (d *StringDict) Intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[string]uint32)
	}
	id := uint32(len(d.values))
	d.ids[s] = id
	d.values = append(d.values, s)
	return id
}

// Lookup returns the id for s without interning.
func (d *StringDict) Lookup(s string) (uint32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// Value returns the string for id; it panics on out-of-range ids, which
// indicate a programming error rather than bad input.
func (d *StringDict) Value(id uint32) string {
	if int(id) >= len(d.values) {
		panic(fmt.Sprintf("dict: id %d out of range (len %d)", id, len(d.values)))
	}
	return d.values[id]
}

// Len reports the number of interned strings.
func (d *StringDict) Len() int { return len(d.values) }

// Attribute is the <predicate, object-literal> tuple that Ma maps to an
// attribute identifier (e.g. <y:hasCapacityOf, "90000"> ↦ a0). The
// literal is kept typed: Lexical is the lexical form, Datatype the
// explicit datatype IRI (empty for plain/xsd:string literals), Lang the
// language tag (empty unless language-tagged). At most one of Datatype
// and Lang is non-empty, mirroring rdf.Term.
type Attribute struct {
	Predicate string
	Lexical   string
	Datatype  string
	Lang      string
}

// AttributeOf builds the dictionary key for a predicate and a literal
// object term. The term's Kind is not inspected — callers pass literal
// objects only. An explicit xsd:string datatype is normalized to the
// plain form here, so a programmatically built Term{Datatype: xsd:string}
// interns identically to the parser's normalized terms (and to what WAL
// replay reconstructs).
func AttributeOf(predicate string, o rdf.Term) Attribute {
	dt := o.Datatype
	if dt == rdf.XSDString {
		dt = ""
	}
	return Attribute{Predicate: predicate, Lexical: o.Value, Datatype: dt, Lang: o.Lang}
}

// Literal reconstructs the attribute's object as a typed literal term.
func (a Attribute) Literal() rdf.Term {
	return rdf.Term{Kind: rdf.Literal, Value: a.Lexical, Datatype: a.Datatype, Lang: a.Lang}
}

// String renders the tuple for diagnostics.
func (a Attribute) String() string {
	return "<" + a.Predicate + ", " + a.Literal().String() + ">"
}

// AttrDict is a bidirectional Attribute↔AttrID dictionary. Alongside the
// tuple mapping it maintains a per-predicate posting list (sorted by id),
// which is what lets query translation bind literal-object variables: the
// candidates for `?x p ?lit` are exactly PredicateAttrs(p).
// The zero value is ready to use.
type AttrDict struct {
	ids    map[Attribute]AttrID
	values []Attribute
	byPred map[string][]AttrID
}

// Intern returns the id for a, assigning the next dense id on first sight.
func (d *AttrDict) Intern(a Attribute) AttrID {
	if id, ok := d.ids[a]; ok {
		return id
	}
	if d.ids == nil {
		d.ids = make(map[Attribute]AttrID)
		d.byPred = make(map[string][]AttrID)
	}
	id := AttrID(len(d.values))
	d.ids[a] = id
	d.values = append(d.values, a)
	// Ids are assigned in increasing order, so per-predicate lists stay
	// sorted by construction.
	d.byPred[a.Predicate] = append(d.byPred[a.Predicate], id)
	return id
}

// Lookup returns the id for a without interning.
func (d *AttrDict) Lookup(a Attribute) (AttrID, bool) {
	id, ok := d.ids[a]
	return id, ok
}

// Value returns the tuple for id; it panics on out-of-range ids.
func (d *AttrDict) Value(id AttrID) Attribute {
	if int(id) >= len(d.values) {
		panic(fmt.Sprintf("dict: attribute id %d out of range (len %d)", id, len(d.values)))
	}
	return d.values[id]
}

// PredicateAttrs returns the sorted ids of every attribute whose predicate
// is pred (nil when the predicate has no literal occurrences). The slice
// is shared and must not be modified.
func (d *AttrDict) PredicateAttrs(pred string) []AttrID {
	return d.byPred[pred]
}

// Len reports the number of interned attributes.
func (d *AttrDict) Len() int { return len(d.values) }

// Resolver is the read-only lookup surface of the three dictionaries.
// *Dictionaries implements it over a frozen graph; a mutation overlay
// (internal/delta) implements it by layering its own interned entries on
// top of a base. Query translation and solution rendering depend only on
// this interface, so they work against either.
type Resolver interface {
	// LookupVertex resolves an IRI (or blank label) to its vertex id
	// without interning.
	LookupVertex(iri string) (VertexID, bool)
	// LookupEdgeType resolves a predicate IRI without interning.
	LookupEdgeType(predicate string) (EdgeType, bool)
	// LookupAttr resolves a <predicate, literal-term> tuple without
	// interning.
	LookupAttr(predicate string, o rdf.Term) (AttrID, bool)
	// VertexIRI applies the inverse mapping Mv⁻¹.
	VertexIRI(v VertexID) string
	// Attr applies the inverse mapping Ma⁻¹.
	Attr(a AttrID) Attribute
	// PredicateAttrs returns the sorted ids of the attributes carrying
	// the given predicate (nil when none). The slice must not be modified.
	PredicateAttrs(predicate string) []AttrID
}

// Dictionaries bundles the three mapping functions of Table 2.
// The zero value is ready to use.
type Dictionaries struct {
	Vertices  StringDict // Mv: subject/object IRI → VertexID
	EdgeTypes StringDict // Me: predicate IRI → EdgeType
	Attrs     AttrDict   // Ma: <predicate, literal> → AttrID
}

// InternVertex applies Mv.
func (d *Dictionaries) InternVertex(iri string) VertexID {
	return VertexID(d.Vertices.Intern(iri))
}

// InternEdgeType applies Me.
func (d *Dictionaries) InternEdgeType(predicate string) EdgeType {
	return EdgeType(d.EdgeTypes.Intern(predicate))
}

// InternAttr applies Ma for a literal object term.
func (d *Dictionaries) InternAttr(predicate string, o rdf.Term) AttrID {
	return d.Attrs.Intern(AttributeOf(predicate, o))
}

// LookupVertex resolves an IRI without interning (used for query constants:
// an IRI that never occurs in the data has no binding).
func (d *Dictionaries) LookupVertex(iri string) (VertexID, bool) {
	id, ok := d.Vertices.Lookup(iri)
	return VertexID(id), ok
}

// LookupEdgeType resolves a predicate without interning.
func (d *Dictionaries) LookupEdgeType(predicate string) (EdgeType, bool) {
	id, ok := d.EdgeTypes.Lookup(predicate)
	return EdgeType(id), ok
}

// LookupAttr resolves an attribute tuple without interning.
func (d *Dictionaries) LookupAttr(predicate string, o rdf.Term) (AttrID, bool) {
	return d.Attrs.Lookup(AttributeOf(predicate, o))
}

// VertexIRI applies the inverse mapping Mv⁻¹, used to translate embeddings
// back to RDF entities (paper Section 3).
func (d *Dictionaries) VertexIRI(v VertexID) string { return d.Vertices.Value(uint32(v)) }

// EdgeTypeIRI applies Me⁻¹.
func (d *Dictionaries) EdgeTypeIRI(t EdgeType) string { return d.EdgeTypes.Value(uint32(t)) }

// Attr applies Ma⁻¹.
func (d *Dictionaries) Attr(a AttrID) Attribute { return d.Attrs.Value(a) }

// PredicateAttrs returns the sorted attribute ids of a predicate.
func (d *Dictionaries) PredicateAttrs(predicate string) []AttrID {
	return d.Attrs.PredicateAttrs(predicate)
}

package otil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dict"
)

func types(ts ...dict.EdgeType) []dict.EdgeType { return ts }
func verts(vs ...dict.VertexID) []dict.VertexID { return vs }

func equalVerts(a, b []dict.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildFigure3 reproduces the N+ trie of the paper's Figure 3b: the
// incoming neighbourhood of data vertex v2 (London). Multi-edges:
//
//	v3 —t1→ v2,  v1 —{t4,t5}→ v2,  v7 —t5→ v2,  v0 —t6→ v2
func buildFigure3() *Trie {
	var tr Trie
	tr.Insert(types(1), 3)    // England, hasCapital
	tr.Insert(types(4, 5), 1) // Amy, {diedIn, wasBornIn}
	tr.Insert(types(5), 7)    // Nolan, wasBornIn
	tr.Insert(types(6), 0)    // Music_Band, wasFormedIn
	return &tr
}

func TestFigure3SingleTypeLookups(t *testing.T) {
	tr := buildFigure3()
	// Paper example: fetching all data vertices with edge type t5 directed
	// towards v2 yields {v1, v7}.
	if got := tr.Lookup(types(5)); !equalVerts(got, verts(1, 7)) {
		t.Errorf("Lookup(t5) = %v, want [1 7]", got)
	}
	if got := tr.Lookup(types(1)); !equalVerts(got, verts(3)) {
		t.Errorf("Lookup(t1) = %v, want [3]", got)
	}
	if got := tr.Lookup(types(4)); !equalVerts(got, verts(1)) {
		t.Errorf("Lookup(t4) = %v, want [1]", got)
	}
	if got := tr.Lookup(types(9)); got != nil {
		t.Errorf("Lookup(absent type) = %v, want nil", got)
	}
}

func TestFigure3MultiTypeLookup(t *testing.T) {
	tr := buildFigure3()
	if got := tr.Lookup(types(4, 5)); !equalVerts(got, verts(1)) {
		t.Errorf("Lookup({t4,t5}) = %v, want [1]", got)
	}
	// No neighbour carries both t1 and t5.
	if got := tr.Lookup(types(1, 5)); got != nil {
		t.Errorf("Lookup({t1,t5}) = %v, want nil", got)
	}
}

func TestNeighborsInvertedList(t *testing.T) {
	tr := buildFigure3()
	if got := tr.Neighbors(5); !equalVerts(got, verts(1, 7)) {
		t.Errorf("Neighbors(t5) = %v", got)
	}
	if got := tr.Neighbors(42); got != nil {
		t.Errorf("Neighbors(absent) = %v", got)
	}
}

func TestEmptyQueryAndEmptyTrie(t *testing.T) {
	var tr Trie
	if got := tr.Lookup(types(1)); got != nil {
		t.Errorf("Lookup on empty trie = %v", got)
	}
	full := buildFigure3()
	if got := full.Lookup(nil); got != nil {
		t.Errorf("empty query = %v, want nil", got)
	}
	if got := full.LookupTrie(nil); got != nil {
		t.Errorf("empty trie query = %v, want nil", got)
	}
	if tr.Len() != 0 || full.Len() != 4 {
		t.Errorf("Len = %d, %d", tr.Len(), full.Len())
	}
}

func TestInsertEmptyMultiEdgeIgnored(t *testing.T) {
	var tr Trie
	tr.Insert(nil, 9)
	if tr.Len() != 0 {
		t.Error("empty multi-edge should be ignored")
	}
}

func TestTrieAndInvertedListAgree(t *testing.T) {
	tr := buildFigure3()
	queries := [][]dict.EdgeType{
		types(1), types(4), types(5), types(6), types(4, 5), types(1, 4), types(7),
	}
	for _, q := range queries {
		a := tr.Lookup(q)
		b := tr.LookupTrie(q)
		if !equalVerts(a, b) {
			t.Errorf("query %v: inverted %v, trie %v", q, a, b)
		}
	}
}

func TestSharedPrefixPaths(t *testing.T) {
	var tr Trie
	tr.Insert(types(1, 2), 10)
	tr.Insert(types(1, 3), 11)
	tr.Insert(types(1), 12)
	tr.Insert(types(1, 2, 3), 13)

	if got := tr.Lookup(types(1)); !equalVerts(got, verts(10, 11, 12, 13)) {
		t.Errorf("Lookup(1) = %v", got)
	}
	if got := tr.Lookup(types(1, 2)); !equalVerts(got, verts(10, 13)) {
		t.Errorf("Lookup(1,2) = %v", got)
	}
	if got := tr.Lookup(types(2, 3)); !equalVerts(got, verts(13)) {
		t.Errorf("Lookup(2,3) = %v", got)
	}
	if got := tr.LookupTrie(types(2, 3)); !equalVerts(got, verts(13)) {
		t.Errorf("LookupTrie(2,3) = %v", got)
	}
	// Skip-descent must find type 3 even when preceded by unmatched types.
	if got := tr.LookupTrie(types(3)); !equalVerts(got, verts(11, 13)) {
		t.Errorf("LookupTrie(3) = %v", got)
	}
}

func TestDuplicateInsertsCollapse(t *testing.T) {
	var tr Trie
	tr.Insert(types(2), 5)
	tr.Insert(types(2), 5)
	if got := tr.Lookup(types(2)); !equalVerts(got, verts(5)) {
		t.Errorf("Lookup after duplicate insert = %v", got)
	}
}

func TestInsertAfterFinalize(t *testing.T) {
	var tr Trie
	tr.Insert(types(1), 1)
	if got := tr.Lookup(types(1)); !equalVerts(got, verts(1)) {
		t.Fatalf("first lookup = %v", got)
	}
	tr.Insert(types(1), 0) // out of order on purpose
	if got := tr.Lookup(types(1)); !equalVerts(got, verts(0, 1)) {
		t.Errorf("lookup after re-insert = %v, want re-finalized sorted list", got)
	}
}

// TestLookupEquivalenceProperty: on random tries, the inverted-list
// intersection and the trie walk agree for all query sizes, and both agree
// with brute force over the inserted multi-edges.
func TestLookupEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Trie
		const nTypes = 8
		edges := make(map[dict.VertexID][]dict.EdgeType)
		for v := dict.VertexID(0); v < 30; v++ {
			k := 1 + rng.Intn(4)
			set := map[dict.EdgeType]struct{}{}
			for len(set) < k {
				set[dict.EdgeType(rng.Intn(nTypes))] = struct{}{}
			}
			me := make([]dict.EdgeType, 0, k)
			for et := range set {
				me = append(me, et)
			}
			sortTypes(me)
			edges[v] = me
			tr.Insert(me, v)
		}
		for q := 0; q < 25; q++ {
			k := 1 + rng.Intn(3)
			set := map[dict.EdgeType]struct{}{}
			for len(set) < k {
				set[dict.EdgeType(rng.Intn(nTypes))] = struct{}{}
			}
			query := make([]dict.EdgeType, 0, k)
			for et := range set {
				query = append(query, et)
			}
			sortTypes(query)

			var want []dict.VertexID
			for v := dict.VertexID(0); v < 30; v++ {
				if containsAll(edges[v], query) {
					want = append(want, v)
				}
			}
			got := tr.Lookup(query)
			gotTrie := tr.LookupTrie(query)
			if !equalVerts(got, want) || !equalVerts(gotTrie, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sortTypes(ts []dict.EdgeType) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1] > ts[j]; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

func containsAll(have, want []dict.EdgeType) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
		i++
	}
	return true
}

func TestIntersectSorted(t *testing.T) {
	tests := []struct {
		a, b, want []dict.VertexID
	}{
		{verts(1, 2, 3), verts(2, 3, 4), verts(2, 3)},
		{verts(1, 2), verts(3, 4), nil},
		{nil, verts(1), nil},
		{verts(5), verts(5), verts(5)},
		{verts(1, 3, 5, 7, 9), verts(3, 7), verts(3, 7)},
	}
	for _, tc := range tests {
		if got := IntersectSorted(tc.a, tc.b); !equalVerts(got, tc.want) {
			t.Errorf("IntersectSorted(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Package otil implements the Ordered Trie with Inverted Lists of
// Terrovitis et al. (CIKM 2006), the structure the AMbER paper uses for the
// vertex neighbourhood index N (Section 4.3, Figure 3).
//
// One trie indexes the multi-edges incident on a single data vertex in one
// direction. Each multi-edge — the ordered set of edge types shared with
// one neighbour — is inserted as a root-to-node path, and the neighbour is
// recorded both at the terminal trie node and in a per-edge-type inverted
// list. A lookup for a query multi-edge T′ returns every neighbour whose
// multi-edge is a superset of T′.
//
// Two equivalent lookup strategies are provided: intersection of inverted
// lists (the default, and what the engine uses) and a trie walk with
// skip-descent (kept as the reference implementation and as an ablation
// point for the benchmarks).
package otil

import (
	"sort"

	"repro/internal/dict"
)

// tnode is one trie node; children are kept sorted by edge type.
type tnode struct {
	children []childRef
	// neighbours whose full multi-edge ends at this node
	terminal []dict.VertexID
}

type childRef struct {
	t dict.EdgeType
	n *tnode
}

func (n *tnode) child(t dict.EdgeType) *tnode {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].t >= t })
	if i < len(n.children) && n.children[i].t == t {
		return n.children[i].n
	}
	return nil
}

func (n *tnode) ensureChild(t dict.EdgeType) *tnode {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].t >= t })
	if i < len(n.children) && n.children[i].t == t {
		return n.children[i].n
	}
	c := &tnode{}
	n.children = append(n.children, childRef{})
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = childRef{t: t, n: c}
	return c
}

// Trie indexes the multi-edges of one vertex in one direction.
// The zero value is ready to use; call Finalize after the last Insert.
type Trie struct {
	root tnode
	inv  map[dict.EdgeType][]dict.VertexID
	fin  bool
}

// Insert records that neighbour v is connected through the multi-edge
// types, which must be sorted ascending and duplicate-free (the universal
// order the paper requires).
func (t *Trie) Insert(types []dict.EdgeType, v dict.VertexID) {
	if len(types) == 0 {
		return
	}
	n := &t.root
	for _, et := range types {
		n = n.ensureChild(et)
	}
	n.terminal = append(n.terminal, v)
	if t.inv == nil {
		t.inv = make(map[dict.EdgeType][]dict.VertexID)
	}
	for _, et := range types {
		t.inv[et] = append(t.inv[et], v)
	}
	t.fin = false
}

// Finalize sorts the inverted lists; it must be called before lookups and
// is idempotent.
func (t *Trie) Finalize() {
	if t.fin {
		return
	}
	for et, lst := range t.inv {
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		t.inv[et] = dedupVertices(lst)
	}
	t.fin = true
}

func dedupVertices(lst []dict.VertexID) []dict.VertexID {
	if len(lst) < 2 {
		return lst
	}
	out := lst[:1]
	for _, v := range lst[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Neighbors returns the sorted inverted list for a single edge type: all
// neighbours whose multi-edge contains et. The returned slice must not be
// modified.
func (t *Trie) Neighbors(et dict.EdgeType) []dict.VertexID {
	t.Finalize()
	return t.inv[et]
}

// Lookup returns, sorted ascending, every neighbour whose multi-edge is a
// superset of types (sorted ascending, duplicates allowed but redundant).
// An empty query returns nil — the engine never asks for unconstrained
// neighbours through the index.
func (t *Trie) Lookup(types []dict.EdgeType) []dict.VertexID {
	if len(types) == 0 {
		return nil
	}
	t.Finalize()
	// Start from the rarest list to keep intersections cheap.
	lists := make([][]dict.VertexID, len(types))
	for i, et := range types {
		lst := t.inv[et]
		if len(lst) == 0 {
			return nil
		}
		lists[i] = lst
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, lst := range lists[1:] {
		out = IntersectSorted(out, lst)
		if len(out) == 0 {
			return nil
		}
	}
	// out may alias an inverted list; copy before returning.
	res := make([]dict.VertexID, len(out))
	copy(res, out)
	return res
}

// LookupTrie answers the same superset query by walking the trie with
// skip-descent. It is the reference implementation used by tests and the
// ablation benchmarks.
func (t *Trie) LookupTrie(types []dict.EdgeType) []dict.VertexID {
	if len(types) == 0 {
		return nil
	}
	var out []dict.VertexID
	walkSuperset(&t.root, types, &out)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupVertices(out)
}

// walkSuperset visits all terminal nodes whose path contains every type in
// want (sorted). Because paths are ordered ascending, a child with type
// greater than want[0] can never contain want[0] deeper down.
func walkSuperset(n *tnode, want []dict.EdgeType, out *[]dict.VertexID) {
	if len(want) == 0 {
		collectTerminals(n, out)
		return
	}
	target := want[0]
	for _, c := range n.children {
		switch {
		case c.t < target:
			walkSuperset(c.n, want, out) // skip an extra symbol
		case c.t == target:
			walkSuperset(c.n, want[1:], out) // consume the query symbol
		default:
			return // children are ordered; target can no longer appear
		}
	}
}

// collectTerminals gathers the terminals of the whole subtree.
func collectTerminals(n *tnode, out *[]dict.VertexID) {
	*out = append(*out, n.terminal...)
	for _, c := range n.children {
		collectTerminals(c.n, out)
	}
}

// Len reports the number of distinct edge types indexed.
func (t *Trie) Len() int { return len(t.inv) }

// IntersectSorted returns the intersection of two ascending id lists.
func IntersectSorted[T ~uint32](a, b []T) []T {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []T
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsSorted reports whether v occurs in the ascending id list, by
// binary search.
func ContainsSorted[T ~uint32](lst []T, v T) bool {
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lst[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(lst) && lst[lo] == v
}

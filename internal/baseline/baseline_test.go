package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triplestore"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func loadGraph(t *testing.T) *Graph {
	t.Helper()
	ts, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func count(t *testing.T, g *Graph, src string, opts Options) uint64 {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Count(g.Compile(pq), opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBasicCounts(t *testing.T) {
	g := loadGraph(t)
	tests := []struct {
		name, q string
		want    uint64
	}{
		{"livedIn", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:livedIn ?b }`, 3},
		{"born+died", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?w y:wasBornIn ?c . ?w y:diedIn ?c }`, 1},
		{"literal const", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?s y:hasName "MCA_Band" }`, 1},
		{"iri anchor", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { ?w y:livedIn x:United_States }`, 2},
		{"vars never bind literals", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?s y:hasName ?o }`, 0},
		{"ground true", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { x:London y:isPartOf x:England }`, 1},
		{"ground false", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { x:England y:isPartOf x:London }`, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := count(t, g, tc.q, Options{}); got != tc.want {
				t.Errorf("count = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDuplicateTriplesCollapse(t *testing.T) {
	ts, _ := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/b> .
<http://x/a> <http://y/p> <http://x/b> .
`)
	g, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	pq, _ := sparql.Parse(`SELECT * WHERE { ?a <http://y/p> ?b }`)
	n, _ := g.Count(g.Compile(pq), Options{})
	if n != 1 {
		t.Errorf("count = %d, want 1 after dedup", n)
	}
}

func TestSelfLoop(t *testing.T) {
	ts, _ := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/a> .
<http://x/a> <http://y/p> <http://x/b> .
`)
	g, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	pq, _ := sparql.Parse(`SELECT ?v WHERE { ?v <http://y/p> ?v }`)
	n, _ := g.Count(g.Compile(pq), Options{})
	if n != 1 {
		t.Errorf("self-loop count = %d, want 1", n)
	}
}

func TestUnsat(t *testing.T) {
	g := loadGraph(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:nope ?b }`)
	c := g.Compile(pq)
	if !c.Unsat() {
		t.Error("not unsat")
	}
	if n, err := g.Count(c, Options{}); err != nil || n != 0 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestLimitDeadlineAbort(t *testing.T) {
	g := loadGraph(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:livedIn ?b }`)
	c := g.Compile(pq)
	n, err := g.Count(c, Options{Limit: 2})
	if err != nil || n != 2 {
		t.Errorf("limited = %d, %v", n, err)
	}
	if _, err := g.Count(c, Options{Deadline: time.Now().Add(-time.Second)}); err != ErrDeadlineExceeded {
		t.Errorf("deadline err = %v", err)
	}
	calls := 0
	if err := g.Stream(c, Options{}, func([]nodeID) bool { calls++; return false }); err != nil || calls != 1 {
		t.Errorf("abort calls = %d, %v", calls, err)
	}
}

func TestNodeName(t *testing.T) {
	g := loadGraph(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:wasMarriedTo ?b }`)
	c := g.Compile(pq)
	found := false
	_ = g.Stream(c, Options{}, func(asg []nodeID) bool {
		for i, name := range c.VarNames() {
			if name == "b" && g.NodeName(asg[i]) == "http://dbpedia.org/resource/Blake_Fielder-Civil" {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Error("Blake binding not found")
	}
}

// ---- three-engine equivalence ------------------------------------------

// randomDataset and randomQuery mirror the engine package's property test.
func randomDataset(rng *rand.Rand, nV, nP, nE, nLit int) []rdf.Triple {
	var ts []rdf.Triple
	for i := 0; i < nE; i++ {
		ts = append(ts, rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV))),
			P: rdf.NewIRI(fmt.Sprintf("http://y/p%d", rng.Intn(nP))),
			O: rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV))),
		})
	}
	for i := 0; i < nLit; i++ {
		ts = append(ts, rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/v%d", rng.Intn(nV))),
			P: rdf.NewIRI(fmt.Sprintf("http://y/a%d", rng.Intn(3))),
			O: rdf.NewLiteral(fmt.Sprintf("%d", rng.Intn(3))),
		})
	}
	return ts
}

func randomQuery(rng *rand.Rand, ts []rdf.Triple, size int) *sparql.Query {
	q := &sparql.Query{Star: true, Prefixes: &rdf.PrefixMap{}}
	varOf := map[string]string{}
	nextVar := 0
	termFor := func(iri string) sparql.Term {
		if rng.Intn(6) == 0 {
			return sparql.Term{Kind: sparql.IRI, Value: iri}
		}
		name, ok := varOf[iri]
		if !ok {
			name = fmt.Sprintf("v%d", nextVar)
			nextVar++
			varOf[iri] = name
		}
		return sparql.Term{Kind: sparql.Var, Value: name}
	}
	for len(q.Patterns) < size {
		tr := ts[rng.Intn(len(ts))]
		var o sparql.Term
		if tr.O.IsLiteral() {
			o = sparql.Term{Kind: sparql.Literal, Value: tr.O.Value}
		} else {
			o = termFor(tr.O.Value)
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: termFor(tr.S.Value),
			P: sparql.Term{Kind: sparql.IRI, Value: tr.P.Value},
			O: o,
		})
	}
	return q
}

// TestThreeEngineEquivalence: AMbER, the triple store, and this baseline
// must agree on result counts for arbitrary workloads. This is the paper's
// implicit correctness claim — all engines answer the same queries.
func TestThreeEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		ts := randomDataset(rng, 9, 4, 22, 6)
		pq := randomQuery(rng, ts, 1+rng.Intn(5))

		mg, err := multigraph.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(mg)
		qg, err := query.Build(pq, &mg.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		amber, err := engine.Count(index.NewReader(mg, ix), plan.For(qg, index.NewReader(mg, ix)), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}

		st, err := triplestore.FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := st.Count(st.Compile(pq), triplestore.Options{})
		if err != nil {
			t.Fatal(err)
		}

		bg, err := FromTriples(ts)
		if err != nil {
			t.Fatal(err)
		}
		gra, err := bg.Count(bg.Compile(pq), Options{})
		if err != nil {
			t.Fatal(err)
		}

		if amber != rel || rel != gra {
			t.Fatalf("trial %d: amber=%d triplestore=%d baseline=%d\nquery:\n%s",
				trial, amber, rel, gra, pq)
		}
	}
}

// Package baseline implements the graph-based comparison system of the
// paper's evaluation: a filter-and-refine subgraph homomorphism matcher in
// the gStore / TurboHom++ architecture class. It operates on the plain RDF
// graph — literals are ordinary vertices, no multigraph compaction, no
// precomputed index structures — and matches queries by backtracking with
// an on-the-fly degree-signature filter for the initial variable and
// adjacency-driven refinement for the rest.
//
// Variables bind only IRIs, matching AMbER's multigraph semantics, so
// result counts are comparable across all three engines.
package baseline

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ErrDeadlineExceeded is returned when the evaluation deadline passes.
var ErrDeadlineExceeded = errors.New("baseline: deadline exceeded")

// Options control query evaluation.
type Options struct {
	Limit    int
	Deadline time.Time
}

type nodeID uint32

type edge struct {
	p  uint32
	to nodeID
}

// Graph is the plain (non-multigraph) RDF graph.
type Graph struct {
	nodes dict.StringDict // literals mangled with a \x00 prefix
	isLit []bool
	preds dict.StringDict
	out   [][]edge
	in    [][]edge
	seen  map[[3]uint64]struct{} // dedup
}

const litMangle = "\x00L\x00"

// NewGraph returns an empty graph ready for Add.
func NewGraph() *Graph {
	return &Graph{seen: make(map[[3]uint64]struct{})}
}

func (g *Graph) node(key string, lit bool) nodeID {
	before := g.nodes.Len()
	id := g.nodes.Intern(key)
	if g.nodes.Len() > before {
		g.isLit = append(g.isLit, lit)
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
	return nodeID(id)
}

// Add ingests one RDF triple.
func (g *Graph) Add(t rdf.Triple) error {
	if !t.S.IsIRI() || !t.P.IsIRI() {
		return fmt.Errorf("baseline: subject and predicate must be IRIs: %v", t)
	}
	s := g.node(t.S.Value, false)
	p := g.preds.Intern(t.P.Value)
	var o nodeID
	if t.O.IsLiteral() {
		o = g.node(litMangle+t.O.Value, true)
	} else {
		o = g.node(t.O.Value, false)
	}
	k := [3]uint64{uint64(s), uint64(p), uint64(o)}
	if _, dup := g.seen[k]; dup {
		return nil
	}
	g.seen[k] = struct{}{}
	g.out[s] = append(g.out[s], edge{p: p, to: o})
	g.in[o] = append(g.in[o], edge{p: p, to: s})
	return nil
}

// AddAll ingests a batch, stopping at the first error.
func (g *Graph) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// FromTriples builds a graph from a slice.
func FromTriples(ts []rdf.Triple) (*Graph, error) {
	g := NewGraph()
	if err := g.AddAll(ts); err != nil {
		return nil, err
	}
	return g, nil
}

// FromReader builds a graph from an N-Triples reader.
func FromReader(r io.Reader) (*Graph, error) {
	g := NewGraph()
	dec := rdf.NewDecoder(r)
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			return g, nil
		}
		if err != nil {
			return nil, err
		}
		if err := g.Add(t); err != nil {
			return nil, err
		}
	}
}

// NumNodes reports the node count (resources + literal nodes).
func (g *Graph) NumNodes() int { return g.nodes.Len() }

// NodeName resolves a node id to its IRI (or literal lexical form).
func (g *Graph) NodeName(id nodeID) string {
	name := g.nodes.Value(uint32(id))
	if g.isLit[id] {
		return name[len(litMangle):]
	}
	return name
}

// ---- query compilation -------------------------------------------------

// constraint is one edge of the query graph seen from a variable.
type constraint struct {
	p   uint32
	out bool // true: var → other; false: other → var
	// exactly one of otherVar ≥ 0 or constNode ≥ 0 is set
	otherVar  int
	constNode int64
}

// compiled is a query compiled against the graph.
type compiled struct {
	varNames []string
	cons     [][]constraint // per variable
	ground   [][3]uint64    // fully constant patterns
	order    []int
	// degree-signature filter: required predicate counts per variable
	outSig []map[uint32]int
	inSig  []map[uint32]int
	unsat  bool
}

// VarNames exposes the variable order.
func (c *compiled) VarNames() []string { return c.varNames }

// Unsat reports whether compilation found a constant absent from the data.
func (c *compiled) Unsat() bool { return c.unsat }

// Compile translates a parsed SPARQL query.
func (g *Graph) Compile(q *sparql.Query) *compiled {
	c := &compiled{}
	varID := map[string]int{}
	getVar := func(name string) int {
		if id, ok := varID[name]; ok {
			return id
		}
		id := len(c.varNames)
		varID[name] = id
		c.varNames = append(c.varNames, name)
		c.cons = append(c.cons, nil)
		c.outSig = append(c.outSig, map[uint32]int{})
		c.inSig = append(c.inSig, map[uint32]int{})
		return id
	}
	lookupNode := func(key string) int64 {
		id, ok := g.nodes.Lookup(key)
		if !ok {
			c.unsat = true
			return -1
		}
		return int64(id)
	}
	for _, p := range q.Patterns {
		pid, ok := g.preds.Lookup(p.P.Value)
		if !ok {
			c.unsat = true
			continue
		}
		sVar, oVar := -1, -1
		var sConst, oConst int64 = -1, -1
		if p.S.Kind == sparql.Var {
			sVar = getVar(p.S.Value)
		} else {
			sConst = lookupNode(p.S.Value)
		}
		switch p.O.Kind {
		case sparql.Var:
			oVar = getVar(p.O.Value)
		case sparql.Literal:
			oConst = lookupNode(litMangle + p.O.Value)
		default:
			oConst = lookupNode(p.O.Value)
		}
		if c.unsat {
			continue
		}
		switch {
		// The signature filter records which (predicate, direction) pairs a
		// candidate must carry. Presence, not multiplicity: homomorphic
		// matching lets several query edges map onto one data edge.
		case sVar >= 0 && oVar >= 0:
			c.cons[sVar] = append(c.cons[sVar], constraint{p: pid, out: true, otherVar: oVar, constNode: -1})
			c.cons[oVar] = append(c.cons[oVar], constraint{p: pid, out: false, otherVar: sVar, constNode: -1})
			c.outSig[sVar][pid] = 1
			c.inSig[oVar][pid] = 1
		case sVar >= 0:
			c.cons[sVar] = append(c.cons[sVar], constraint{p: pid, out: true, otherVar: -1, constNode: oConst})
			c.outSig[sVar][pid] = 1
		case oVar >= 0:
			c.cons[oVar] = append(c.cons[oVar], constraint{p: pid, out: false, otherVar: -1, constNode: sConst})
			c.inSig[oVar][pid] = 1
		default:
			c.ground = append(c.ground, [3]uint64{uint64(sConst), uint64(pid), uint64(oConst)})
		}
	}
	if !c.unsat {
		c.order = orderVars(c)
	}
	return c
}

// orderVars picks the most-constrained variable first, then grows the order
// along connections.
func orderVars(c *compiled) []int {
	n := len(c.varNames)
	order := make([]int, 0, n)
	used := make([]bool, n)
	connected := make([]bool, n)
	score := func(v int) int { return len(c.cons[v]) }
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if best < 0 {
				best = v
				continue
			}
			bc, vc := connected[best] || len(order) == 0, connected[v] || len(order) == 0
			if (vc && !bc) || (vc == bc && score(v) > score(best)) {
				best = v
			}
		}
		order = append(order, best)
		used[best] = true
		for _, cn := range c.cons[best] {
			if cn.otherVar >= 0 {
				connected[cn.otherVar] = true
			}
		}
	}
	return order
}

// ---- evaluation ---------------------------------------------------------

type evaluator struct {
	g *Graph
	c *compiled

	asg   []nodeID
	isSet []bool

	yield    func([]nodeID) bool
	limit    int
	deadline time.Time

	steps   int
	emitted int
	stopped bool
	expired bool
}

// Count returns the number of homomorphic solutions.
func (g *Graph) Count(c *compiled, opts Options) (uint64, error) {
	var n uint64
	err := g.Stream(c, opts, func([]nodeID) bool {
		n++
		return true
	})
	return n, err
}

// Stream enumerates solutions; the assignment slice is reused across calls.
func (g *Graph) Stream(c *compiled, opts Options, yield func([]nodeID) bool) error {
	if c.unsat {
		return nil
	}
	if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
		return ErrDeadlineExceeded
	}
	for _, gr := range c.ground {
		if !g.hasTriple(nodeID(gr[0]), uint32(gr[1]), nodeID(gr[2])) {
			return nil
		}
	}
	e := &evaluator{
		g: g, c: c,
		asg:      make([]nodeID, len(c.varNames)),
		isSet:    make([]bool, len(c.varNames)),
		yield:    yield,
		limit:    opts.Limit,
		deadline: opts.Deadline,
	}
	e.match(0)
	if e.expired {
		return ErrDeadlineExceeded
	}
	return nil
}

func (g *Graph) hasTriple(s nodeID, p uint32, o nodeID) bool {
	for _, e := range g.out[s] {
		if e.p == p && e.to == o {
			return true
		}
	}
	return false
}

func (e *evaluator) checkDeadline() bool {
	if e.expired {
		return true
	}
	e.steps++
	if e.deadline.IsZero() || e.steps&255 != 0 {
		return false
	}
	if time.Now().After(e.deadline) {
		e.expired = true
	}
	return e.expired
}

// signatureOK is the filter step: v must carry at least the required count
// of each predicate in each direction (computed on the fly — the baseline
// has no precomputed signature index).
func (e *evaluator) signatureOK(qv int, v nodeID) bool {
	for p, need := range e.c.outSig[qv] {
		have := 0
		for _, ed := range e.g.out[v] {
			if ed.p == p {
				have++
			}
		}
		if have < need {
			return false
		}
	}
	for p, need := range e.c.inSig[qv] {
		have := 0
		for _, ed := range e.g.in[v] {
			if ed.p == p {
				have++
			}
		}
		if have < need {
			return false
		}
	}
	return true
}

// consistent verifies every constraint of qv that is checkable now (bound
// neighbours and constants).
func (e *evaluator) consistent(qv int, v nodeID) bool {
	for _, cn := range e.c.cons[qv] {
		var other int64 = -1
		if cn.otherVar >= 0 {
			if cn.otherVar == qv {
				other = int64(v) // self loop
			} else if e.isSet[cn.otherVar] {
				other = int64(e.asg[cn.otherVar])
			} else {
				continue // deferred
			}
		} else {
			other = cn.constNode
		}
		if cn.out {
			if !e.g.hasTriple(v, cn.p, nodeID(other)) {
				return false
			}
		} else {
			if !e.g.hasTriple(nodeID(other), cn.p, v) {
				return false
			}
		}
	}
	return true
}

// candidates computes the candidate nodes for the k-th variable in order.
func (e *evaluator) candidates(qv int) []nodeID {
	// Refinement: if some neighbour is bound, only its adjacency qualifies.
	for _, cn := range e.c.cons[qv] {
		var anchor int64 = -1
		if cn.otherVar >= 0 && cn.otherVar != qv && e.isSet[cn.otherVar] {
			anchor = int64(e.asg[cn.otherVar])
		} else if cn.constNode >= 0 {
			anchor = cn.constNode
		}
		if anchor < 0 {
			continue
		}
		var out []nodeID
		if cn.out { // qv → anchor: scan anchor's in-list
			for _, ed := range e.g.in[anchor] {
				if ed.p == cn.p && !e.g.isLit[ed.to] {
					out = append(out, ed.to)
				}
			}
		} else {
			for _, ed := range e.g.out[anchor] {
				if ed.p == cn.p && !e.g.isLit[ed.to] {
					out = append(out, ed.to)
				}
			}
		}
		return dedupNodes(out)
	}
	// Filter: no anchor — scan all non-literal nodes through the signature.
	// The scan itself honours the deadline: on skewed graphs a single
	// signature pass over every hub can exceed the whole time budget.
	var out []nodeID
	for v := 0; v < e.g.NumNodes(); v++ {
		if e.checkDeadline() {
			return nil
		}
		if e.g.isLit[v] {
			continue
		}
		if e.signatureOK(qv, nodeID(v)) {
			out = append(out, nodeID(v))
		}
	}
	return out
}

func dedupNodes(ns []nodeID) []nodeID {
	if len(ns) < 2 {
		return ns
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ns[:1]
	for _, v := range ns[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// match binds the k-th variable of the order.
func (e *evaluator) match(k int) {
	if e.stopped || e.expired {
		return
	}
	if k == len(e.c.order) {
		e.emitted++
		if e.yield != nil && !e.yield(e.asg) {
			e.stopped = true
		}
		if e.limit > 0 && e.emitted >= e.limit {
			e.stopped = true
		}
		return
	}
	qv := e.c.order[k]
	for _, v := range e.candidates(qv) {
		if e.stopped || e.checkDeadline() {
			return
		}
		if !e.consistent(qv, v) {
			continue
		}
		e.asg[qv], e.isSet[qv] = v, true
		e.match(k + 1)
		e.isSet[qv] = false
	}
}

// Package repl implements WAL-shipped replication: a primary serves its
// write-ahead log as an HTTP byte stream, and followers pull it, append
// the records into their own local WAL, and apply them through the same
// consumer path startup replay uses. Reads then scale out to followers
// at an observable staleness (the applied epoch), while the primary
// stays the only writer.
//
// The wire protocol is deliberately thin. A stream is one long chunked
// GET /repl/stream?from=<seq>&id=<follower> response carrying a sequence
// of messages:
//
//	'r' <WAL frame>           one record, the on-disk frame verbatim
//	'h' <24-byte heartbeat>   lastSeq, epoch, unix-nanos (little-endian)
//
// Record frames are shipped byte-for-byte as they sit in the segments,
// so the CRC32-C computed when the primary logged the record guards the
// whole pipeline: disk, network, and the follower's re-append. A frame
// damaged in flight fails its checksum at the follower, which drops the
// connection and re-requests from its cursor — the primary re-reads the
// frame from disk, so a torn transfer never becomes torn history.
//
// Catch-up and live tailing are the same loop: the primary ships
// whatever segments cover seqs above the cursor, then parks on the log's
// append notification. A follower whose cursor has been truncated away
// (checkpoint passed it) gets 410 Gone and bootstraps a fresh base via
// GET /repl/snapshot, which carries the covered WAL sequence and epoch
// in headers; it then resumes the stream at that sequence.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/wal"
)

const (
	msgRecord    = 'r'
	msgHeartbeat = 'h'

	heartbeatLen = 24
)

// heartbeat is the primary's periodic position report: the newest logged
// sequence, the store epoch, and the primary's clock, so an idle
// follower can tell "caught up" from "stalled" and report its lag in
// seconds as well as sequences.
type heartbeat struct {
	lastSeq  uint64
	epoch    uint64
	unixNano int64
}

func appendHeartbeat(buf []byte, hb heartbeat) []byte {
	buf = append(buf, msgHeartbeat)
	var b [heartbeatLen]byte
	binary.LittleEndian.PutUint64(b[0:], hb.lastSeq)
	binary.LittleEndian.PutUint64(b[8:], hb.epoch)
	binary.LittleEndian.PutUint64(b[16:], uint64(hb.unixNano))
	return append(buf, b[:]...)
}

// message is one decoded stream message: either a record (with the raw
// frame length, for byte accounting) or a heartbeat.
type message struct {
	kind     byte
	rec      wal.Record
	frameLen int
	hb       heartbeat
}

// readMessage reads exactly one message from the stream, blocking until
// it is complete. A record frame is length-prefixed, so the reader
// first pulls the 8-byte frame header, then the payload, then validates
// the CRC via wal.DecodeFrame.
func readMessage(br *bufio.Reader) (message, error) {
	t, err := br.ReadByte()
	if err != nil {
		return message{}, err
	}
	switch t {
	case msgHeartbeat:
		var b [heartbeatLen]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return message{}, err
		}
		return message{kind: msgHeartbeat, hb: heartbeat{
			lastSeq:  binary.LittleEndian.Uint64(b[0:]),
			epoch:    binary.LittleEndian.Uint64(b[8:]),
			unixNano: int64(binary.LittleEndian.Uint64(b[16:])),
		}}, nil
	case msgRecord:
		var hdr [wal.FrameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return message{}, err
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > 1<<30 {
			return message{}, fmt.Errorf("repl: frame length %d exceeds limit", n)
		}
		frame := make([]byte, wal.FrameHeaderSize+int(n))
		copy(frame, hdr[:])
		if _, err := io.ReadFull(br, frame[wal.FrameHeaderSize:]); err != nil {
			return message{}, err
		}
		rec, _, err := wal.DecodeFrame(frame)
		if err != nil {
			// Torn or bit-flipped in transit: the caller reconnects and the
			// primary re-reads the frame from disk.
			return message{}, fmt.Errorf("repl: damaged record frame: %w", err)
		}
		return message{kind: msgRecord, rec: rec, frameLen: len(frame)}, nil
	default:
		return message{}, fmt.Errorf("repl: unknown stream message type %q", t)
	}
}

// bufferedMessage consumes one message only if it is already complete in
// br's buffer, never blocking. ok=false means the caller should stop
// draining and apply what it has.
func bufferedMessage(br *bufio.Reader) (message, bool, error) {
	if br.Buffered() < 1 {
		return message{}, false, nil
	}
	t, err := br.Peek(1)
	if err != nil {
		return message{}, false, nil
	}
	switch t[0] {
	case msgHeartbeat:
		if br.Buffered() < 1+heartbeatLen {
			return message{}, false, nil
		}
	case msgRecord:
		if br.Buffered() < 1+wal.FrameHeaderSize {
			return message{}, false, nil
		}
		hdr, err := br.Peek(1 + wal.FrameHeaderSize)
		if err != nil {
			return message{}, false, nil
		}
		n := binary.LittleEndian.Uint32(hdr[1:5])
		if n > 1<<30 {
			return message{}, false, fmt.Errorf("repl: frame length %d exceeds limit", n)
		}
		if br.Buffered() < 1+wal.FrameHeaderSize+int(n) {
			return message{}, false, nil
		}
	default:
		return message{}, false, fmt.Errorf("repl: unknown stream message type %q", t[0])
	}
	msg, err := readMessage(br)
	if err != nil {
		return message{}, false, err
	}
	return msg, true, nil
}

package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	amber "repro"
	"repro/internal/errorfs"
	"repro/internal/server"
)

// testPrimary is an in-process primary: durable database, replication
// wrapper, and a SPARQL server with /repl/ mounted, on an httptest
// listener.
type testPrimary struct {
	db  *amber.DB
	rep *Primary
	srv *server.Server
	ts  *httptest.Server
}

func startPrimary(t *testing.T, opts PrimaryOptions, dur *amber.DurabilityOptions) *testPrimary {
	t.Helper()
	if dur == nil {
		dur = &amber.DurabilityOptions{Fsync: "never"}
	}
	db, err := amber.OpenDurable(t.TempDir(), dur)
	if err != nil {
		t.Fatalf("primary OpenDurable: %v", err)
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 25 * time.Millisecond
	}
	rep, err := NewPrimary(db, opts)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	srv := server.New(db, server.Config{Replication: rep, DisableHistograms: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		db.Close() //nolint:errcheck
	})
	return &testPrimary{db: db, rep: rep, srv: srv, ts: ts}
}

// testFollower is an in-process follower: local durable replica
// directory, pull loop, and a read-only SPARQL server.
type testFollower struct {
	f      *Follower
	srv    *server.Server
	ts     *httptest.Server
	cancel context.CancelFunc
}

func startFollower(t *testing.T, primaryURL, id string, mutate func(*FollowerOptions)) *testFollower {
	t.Helper()
	tf := &testFollower{}
	opts := FollowerOptions{
		Dir:         t.TempDir(),
		Primary:     primaryURL,
		ID:          id,
		Fsync:       "never",
		AckInterval: 20 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		Logf:        t.Logf,
		OnSwap: func(db *amber.DB) {
			if tf.srv != nil {
				tf.srv.Swap(db)
			}
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	f, err := NewFollower(opts)
	if err != nil {
		t.Fatalf("NewFollower(%s): %v", id, err)
	}
	tf.f = f
	tf.srv = server.New(f.DB(), server.Config{Follower: f, DisableHistograms: true})
	tf.ts = httptest.NewServer(tf.srv)
	ctx, cancel := context.WithCancel(context.Background())
	tf.cancel = cancel
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx) //nolint:errcheck // exits on cancel
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		tf.ts.Close()
		f.Close() //nolint:errcheck
	})
	return tf
}

func sparqlUpdate(t *testing.T, baseURL, update string) *http.Response {
	t.Helper()
	resp, err := http.PostForm(baseURL+"/sparql", url.Values{"update": {update}})
	if err != nil {
		t.Fatalf("update request: %v", err)
	}
	return resp
}

func countTriples(t *testing.T, db *amber.DB) int {
	t.Helper()
	n, err := db.Count("SELECT ?s ?o WHERE { ?s <http://repl/p> ?o . }", nil)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	return int(n)
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func insertStmt(tag string, i int) string {
	return fmt.Sprintf("INSERT DATA { <http://repl/%s/%d> <http://repl/p> <http://repl/o%d> . }", tag, i, i)
}

// TestReplicationEndToEnd is the acceptance demo: a primary and two
// followers, concurrent updates against the primary while both
// followers serve queries, convergence to identical counts after
// quiesce, follower acks visible in the primary's /stats, writes to a
// follower redirected, X-Min-Epoch read-your-writes, and — after one
// follower dies — checkpoint truncation proceeding past its stalled ack
// thanks to the retention override.
func TestReplicationEndToEnd(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{RetainSeqs: 64}, &amber.DurabilityOptions{
		Fsync: "never", SegmentBytes: 2048,
	})
	f1 := startFollower(t, p.ts.URL, "f1", nil)
	f2 := startFollower(t, p.ts.URL, "f2", nil)

	// Concurrent updates on the primary while both followers serve reads.
	const writers, perWriter = 2, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp := sparqlUpdate(t, p.ts.URL, insertStmt(fmt.Sprintf("w%d", w), i))
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("update w%d/%d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for _, tf := range []*testFollower{f1, f2} {
		wg.Add(1)
		go func(tf *testFollower) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(tf.ts.URL + "/sparql?query=" +
					url.QueryEscape("SELECT ?s WHERE { ?s <http://repl/p> ?o . }"))
				if err != nil {
					t.Errorf("follower query: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("follower query status %d", resp.StatusCode)
				}
				if resp.Header.Get("X-Epoch") == "" {
					t.Error("follower read response missing X-Epoch")
				}
				resp.Body.Close()
				time.Sleep(5 * time.Millisecond)
			}
		}(tf)
	}
	// Writers finish, then the readers are released.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitFor(t, "writers to finish", 30*time.Second, func() bool {
		if countTriples(t, p.db) == writers*perWriter {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	close(stop)
	<-done

	want := writers * perWriter
	if got := countTriples(t, p.db); got != want {
		t.Fatalf("primary has %d triples, want %d", got, want)
	}
	waitFor(t, "followers to converge", 10*time.Second, func() bool {
		return countTriples(t, f1.f.DB()) == want && countTriples(t, f2.f.DB()) == want
	})

	// Both followers' acks reach the primary's last sequence in /stats.
	lastSeq := p.db.Durability().LastSeq
	waitFor(t, "acks in /stats", 10*time.Second, func() bool {
		resp, err := http.Get(p.ts.URL + "/stats")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var doc struct {
			Replication struct {
				Followers []struct {
					ID     string `json:"id"`
					AckSeq uint64 `json:"ack_seq"`
				} `json:"followers"`
			} `json:"replication"`
		}
		if json.NewDecoder(resp.Body).Decode(&doc) != nil {
			return false
		}
		acked := map[string]uint64{}
		for _, fw := range doc.Replication.Followers {
			acked[fw.ID] = fw.AckSeq
		}
		return acked["f1"] >= lastSeq && acked["f2"] >= lastSeq
	})

	// Reads advertise the data version on the primary too (not just on
	// updates), and the epochs agree once quiesced.
	resp, err := http.Get(p.ts.URL + "/sparql?query=" +
		url.QueryEscape("SELECT ?s WHERE { ?s <http://repl/p> ?o . }"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pEpoch := resp.Header.Get("X-Epoch")
	if pEpoch == "" {
		t.Fatal("primary read response missing X-Epoch")
	}

	// Updates sent to a follower are misdirected: 421 plus the primary's
	// endpoint in Location.
	resp = sparqlUpdate(t, f1.ts.URL, insertStmt("misdirected", 0))
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower update: status %d, want 421", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, p.ts.URL) {
		t.Fatalf("follower update Location %q does not point at the primary", loc)
	}

	// Read-your-writes: a write's X-Epoch, replayed as X-Min-Epoch on a
	// follower read, must see the written triple.
	resp = sparqlUpdate(t, p.ts.URL, "INSERT DATA { <http://repl/ryw> <http://repl/p> <http://repl/ryw-o> . }")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ryw update: status %d", resp.StatusCode)
	}
	wrote := resp.Header.Get("X-Epoch")
	if wrote == "" {
		t.Fatal("update response missing X-Epoch")
	}
	req, _ := http.NewRequest(http.MethodGet, f1.ts.URL+"/sparql?query="+
		url.QueryEscape("SELECT ?o WHERE { <http://repl/ryw> <http://repl/p> ?o . }"), nil)
	req.Header.Set("X-Min-Epoch", wrote)
	req.Header.Set("Accept", "application/sparql-results+json")
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Results struct {
			Bindings []map[string]any `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding ryw response: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("ryw read: status %d", rresp.StatusCode)
	}
	if got, _ := strconv.ParseUint(rresp.Header.Get("X-Epoch"), 10, 64); got < mustU64(t, wrote) {
		t.Fatalf("ryw read served epoch %d below requested %s", got, wrote)
	}
	if len(body.Results.Bindings) != 1 {
		t.Fatalf("ryw read returned %d rows, want 1", len(body.Results.Bindings))
	}

	// Kill follower 2 and write far past RetainSeqs: the next checkpoint
	// must truncate past its stalled ack (the dead follower pins at most
	// RetainSeqs of history) — and follower 1 must keep converging.
	f2.cancel()
	deadAck := f2.f.Cursor()
	for i := 0; i < 100; i++ {
		if err := p.db.Update(insertStmt("post-death", i)); err != nil {
			t.Fatalf("post-death update %d: %v", i, err)
		}
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	oldest := p.rep.oldestSeq()
	last := p.db.Durability().LastSeq
	if oldest <= deadAck+1 {
		t.Fatalf("oldest retained seq %d; dead follower at ack %d blocked truncation", oldest, deadAck)
	}
	if floor := last - 64 + 1; oldest > floor {
		t.Fatalf("oldest retained seq %d beyond the retention floor %d (live follower pinned out)", oldest, floor)
	}
	waitFor(t, "survivor to converge past the checkpoint", 10*time.Second, func() bool {
		return countTriples(t, f1.f.DB()) == want+1+100
	})

	// The dead follower's cursor is now below the oldest retained seq:
	// its reconnect would be told to resync.
	sresp, err := http.Get(fmt.Sprintf("%s/repl/stream?from=%d&id=f2", p.ts.URL, deadAck))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusGone {
		t.Fatalf("stale stream request: status %d, want 410", sresp.StatusCode)
	}
}

func mustU64(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

// TestFollowerBootstrapViaSnapshotResync starts a fresh follower against
// a primary whose early history is already checkpointed away: the
// stream answers 410, the follower bootstraps from /repl/snapshot, and
// then tails the live stream for subsequent writes.
func TestFollowerBootstrapViaSnapshotResync(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{}, nil)
	for i := 0; i < 40; i++ {
		if err := p.db.Update(insertStmt("pre", i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	f := startFollower(t, p.ts.URL, "late", nil)
	waitFor(t, "snapshot bootstrap", 10*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 40
	})
	if f.f.resyncs.Load() != 1 {
		t.Fatalf("resyncs = %d, want 1", f.f.resyncs.Load())
	}
	// Live tail continues after the bootstrap.
	for i := 0; i < 10; i++ {
		if err := p.db.Update(insertStmt("post", i)); err != nil {
			t.Fatalf("post update %d: %v", i, err)
		}
	}
	waitFor(t, "live tail after bootstrap", 10*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 50
	})
}

// TestBootstrappedPrimaryForcesSnapshotBootstrap: a primary seeded from
// a source file holds base state its WAL never carried. A fresh
// follower streaming from sequence zero would silently miss it, so the
// primary must answer 410 and the follower must bootstrap from a
// snapshot — then tail the live stream as usual.
func TestBootstrappedPrimaryForcesSnapshotBootstrap(t *testing.T) {
	src := filepath.Join(t.TempDir(), "seed.nt")
	var seed strings.Builder
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&seed, "<http://repl/seed/%d> <http://repl/p> <http://repl/o%d> .\n", i, i)
	}
	if err := os.WriteFile(src, []byte(seed.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := amber.OpenDurable(t.TempDir(), &amber.DurabilityOptions{
		Fsync: "never", SourcePath: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewPrimary(db, PrimaryOptions{Heartbeat: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Replication: rep, DisableHistograms: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		db.Close() //nolint:errcheck
	})

	// The raw protocol answer first: from=0 must be refused outright.
	resp, err := http.Get(ts.URL + "/repl/stream?from=0&id=probe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream from 0 on a bootstrapped primary: status %d, want 410", resp.StatusCode)
	}

	// And the follower loop handles it end to end: snapshot, then tail.
	f := startFollower(t, ts.URL, "fresh", nil)
	waitFor(t, "snapshot bootstrap of the seeded base", 10*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 25
	})
	if f.f.resyncs.Load() == 0 {
		t.Fatal("follower never resynced — it cannot have gotten the base from the stream")
	}
	// The base occupies sequence 1 (wal.Options.InitialSeq), so the
	// snapshot leaves the follower's cursor above the refused from=0
	// window. On a quiet primary the follower must settle into the
	// stream after ONE resync — not loop snapshot → cursor 0 → 410 →
	// snapshot forever.
	if cur := f.f.Cursor(); cur == 0 {
		t.Fatalf("cursor still 0 after snapshot bootstrap — resync loop incoming")
	}
	resyncsAfterBootstrap := f.f.resyncs.Load()
	time.Sleep(300 * time.Millisecond) // several backoff cycles of quiet
	if got := f.f.resyncs.Load(); got != resyncsAfterBootstrap {
		t.Fatalf("resyncs climbed from %d to %d on a quiet primary — snapshot loop", resyncsAfterBootstrap, got)
	}
	for i := 0; i < 10; i++ {
		if err := db.Update(insertStmt("tail", i)); err != nil {
			t.Fatalf("tail update %d: %v", i, err)
		}
	}
	waitFor(t, "live tail after seeded bootstrap", 10*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 35
	})
}

// TestPrimaryRestartMidStream kills and restarts the primary (same WAL
// directory, new process state) while a follower is tailing: the
// follower must ride out the outage with backoff and converge on the
// restarted primary's writes.
func TestPrimaryRestartMidStream(t *testing.T) {
	dir := t.TempDir()
	dur := &amber.DurabilityOptions{Fsync: "never"}
	db1, err := amber.OpenDurable(dir, dur)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPrimary(db1, PrimaryOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One stable URL fronting whichever primary incarnation is alive —
	// the follower's view of a process restart behind one address.
	var handler atomic.Value // always holds an http.HandlerFunc
	handler.Store(http.HandlerFunc(p1.Handler().ServeHTTP))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.HandlerFunc)(w, r)
	}))
	defer ts.Close()

	f := startFollower(t, ts.URL, "rider", nil)
	for i := 0; i < 30; i++ {
		if err := db1.Update(insertStmt("a", i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	waitFor(t, "catch-up before restart", 10*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 30
	})

	// Crash: the primary goes away mid-stream...
	handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "primary down", http.StatusServiceUnavailable)
	}))
	db1.Close() //nolint:errcheck // closing the log tears down live streams

	// ...and comes back after recovery on the same directory.
	db2, err := amber.OpenDurable(dir, dur)
	if err != nil {
		t.Fatalf("primary restart: %v", err)
	}
	defer db2.Close() //nolint:errcheck
	p2, err := NewPrimary(db2, PrimaryOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db2.Update(insertStmt("b", i)); err != nil {
			t.Fatalf("post-restart update %d: %v", i, err)
		}
	}
	handler.Store(http.HandlerFunc(p2.Handler().ServeHTTP))

	waitFor(t, "convergence after primary restart", 15*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 50
	})
	if f.f.reconnects.Load() == 0 {
		t.Fatal("follower never reconnected across the restart")
	}
}

// TestFaultInjectedCatchUp tears a write in the follower's local WAL in
// the middle of network catch-up: the apply fails, the follower reopens
// its directory (recovery truncates the torn tail), reconnects from the
// surviving prefix, and still converges — the errorfs-backed replication
// half of the torn-write story.
func TestFaultInjectedCatchUp(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{}, nil)
	for i := 0; i < 60; i++ {
		if err := p.db.Update(insertStmt("x", i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	inj := errorfs.New()
	// The fault budget lands mid catch-up, inside the local re-append of
	// the replicated records.
	inj.Arm(1500, errorfs.PartialWrite)
	f := startFollower(t, p.ts.URL, "faulty", func(o *FollowerOptions) {
		o.WrapWALFile = inj.Wrap
	})
	waitFor(t, "convergence across the injected fault", 15*time.Second, func() bool {
		return countTriples(t, f.f.DB()) == 60
	})
	if inj.Faults() != 1 {
		t.Fatalf("faults delivered = %d, want 1", inj.Faults())
	}
	if f.f.localReopens.Load() == 0 {
		t.Fatal("follower never reopened its local directory after the fault")
	}
	// The follower's directory must also recover standalone: acknowledged
	// prefix semantics survived the torn write.
	f.cancel()
}

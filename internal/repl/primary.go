package repl

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	amber "repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// PrimaryOptions tune the replication primary. The zero value selects
// the documented defaults.
type PrimaryOptions struct {
	// RetainSeqs caps how much WAL history a lagging (or dead) follower
	// can pin against checkpoint truncation: the retention floor never
	// drops below lastSeq-RetainSeqs+1, so a follower further behind than
	// that must resync from a snapshot instead of blocking truncation
	// forever. Default 1<<20 records.
	RetainSeqs uint64
	// Heartbeat is the idle-stream heartbeat period. Default 1s.
	Heartbeat time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.RetainSeqs == 0 {
		o.RetainSeqs = 1 << 20
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	return o
}

// followerState is the primary's book-keeping for one follower, keyed by
// the follower's self-chosen id. Ack is the highest sequence the
// follower has confirmed applying (via /repl/ack or its stream-connect
// cursor); the minimum across followers gates WAL truncation.
type followerState struct {
	Ack       uint64
	Epoch     uint64
	Addr      string
	LastSeen  time.Time
	Streaming int // open stream connections for this id
}

// Primary serves a durable database's WAL to followers. It installs a
// retention hook on the log so Checkpoint keeps every segment a
// registered follower still needs (bounded by RetainSeqs), and exposes
// the /repl/ endpoints via Handler.
type Primary struct {
	db         *amber.DB
	log        *wal.Log
	opts       PrimaryOptions
	baseLoaded bool

	mu        sync.Mutex
	followers map[string]*followerState

	streamsStarted atomic.Uint64
	streamsActive  atomic.Int64
	bytesShipped   atomic.Uint64
	recsShipped    atomic.Uint64
	snapshots      atomic.Uint64
}

// NewPrimary wraps db, which must have been opened durably, as a
// replication primary and installs its WAL-retention hook.
func NewPrimary(db *amber.DB, opts PrimaryOptions) (*Primary, error) {
	log := db.WAL()
	if log == nil {
		return nil, amber.ErrNotDurable
	}
	p := &Primary{
		db:        db,
		log:       log,
		opts:      opts.withDefaults(),
		followers: make(map[string]*followerState),
		// A non-empty base (bootstrap source or checkpoint snapshot) is
		// state the WAL cannot replay; a follower starting from sequence
		// zero would silently miss it, so such requests get 410 → resync.
		baseLoaded: db.Durability().BaseLoaded,
	}
	log.SetRetain(p.retainFloor)
	return p, nil
}

// Close uninstalls the retention hook; checkpoints truncate freely again.
func (p *Primary) Close() {
	p.log.SetRetain(nil)
}

// retainFloor is the wal retention hook: the lowest sequence some
// follower still needs, or 0 for no constraint. Called with the log's
// mutex held, so it must not call back into the log.
func (p *Primary) retainFloor(lastSeq uint64) uint64 {
	p.mu.Lock()
	minAck := uint64(math.MaxUint64)
	for _, f := range p.followers {
		if f.Ack < minAck {
			minAck = f.Ack
		}
	}
	p.mu.Unlock()
	if minAck == math.MaxUint64 {
		return 0
	}
	need := minAck + 1
	// A dead follower pins at most RetainSeqs of history; anything further
	// behind resyncs from a snapshot (410 on its next stream request).
	if lastSeq > p.opts.RetainSeqs {
		if floor := lastSeq - p.opts.RetainSeqs + 1; need < floor {
			need = floor
		}
	}
	return need
}

// Handler returns the /repl/ endpoint mux. The server mounts it at
// "/repl/"; paths are absolute so the mux composes with the server's.
func (p *Primary) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/stream", p.handleStream)
	mux.HandleFunc("/repl/snapshot", p.handleSnapshot)
	mux.HandleFunc("/repl/ack", p.handleAck)
	return mux
}

// touch records a sighting of follower id, creating it if new, and
// advances its ack monotonically. Caller does not hold p.mu.
func (p *Primary) touch(id, addr string, ack, epoch uint64, dStream int) *followerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.followers[id]
	if f == nil {
		f = &followerState{}
		p.followers[id] = f
	}
	if ack > f.Ack {
		f.Ack = ack
	}
	if epoch > f.Epoch {
		f.Epoch = epoch
	}
	if addr != "" {
		f.Addr = addr
	}
	f.LastSeen = time.Now()
	f.Streaming += dStream
	return f
}

// oldestSeq reports the first sequence still present in the log's
// segments (lastSeq+1 when the log is empty or fully truncated).
func (p *Primary) oldestSeq() uint64 {
	segs, lastSeq, _ := p.log.SegmentView()
	for _, s := range segs {
		if s.Last > 0 {
			return s.First
		}
	}
	return lastSeq + 1
}

// handleStream serves the replication byte stream: every record above
// ?from, then live tail with heartbeats, until the client disconnects.
func (p *Primary) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil && q.Get("from") != "" {
		http.Error(w, "repl: bad from", http.StatusBadRequest)
		return
	}
	id := q.Get("id")
	if id == "" {
		id = r.RemoteAddr
	}
	if oldest := p.oldestSeq(); from+1 < oldest || (from == 0 && p.baseLoaded) {
		// History below the cursor is gone — truncated away, or folded
		// into a base the WAL never carried; the follower must resync.
		w.Header().Set("X-Amber-Oldest-Seq", strconv.FormatUint(oldest, 10))
		http.Error(w, "repl: requested history truncated; resync from /repl/snapshot", http.StatusGone)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "repl: streaming unsupported", http.StatusInternalServerError)
		return
	}

	// Registering with Ack=from pins history for this follower before the
	// first explicit ack arrives; the retention hook sees it immediately.
	p.touch(id, r.RemoteAddr, from, 0, +1)
	defer p.touch(id, "", 0, 0, -1)
	p.streamsStarted.Add(1)
	p.streamsActive.Add(1)
	defer p.streamsActive.Add(-1)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	sub := p.log.Subscribe()
	defer p.log.Unsubscribe(sub)
	tick := time.NewTicker(p.opts.Heartbeat)
	defer tick.Stop()

	cur := &streamCursor{seq: from}
	ctx := r.Context()
	for {
		if err := p.shipAvailable(w, cur); err != nil {
			return // client gone, or history vanished under us
		}
		if err := p.writeHeartbeat(w); err != nil {
			return
		}
		flusher.Flush()
		select {
		case <-ctx.Done():
			return
		case _, open := <-sub:
			if !open {
				return // log closed (shutdown)
			}
		case <-tick.C:
		}
	}
}

func (p *Primary) writeHeartbeat(w io.Writer) error {
	hb := heartbeat{
		lastSeq:  p.log.LastSeq(),
		epoch:    p.db.Epoch(),
		unixNano: time.Now().UnixNano(),
	}
	_, err := w.Write(appendHeartbeat(nil, hb))
	if err == nil {
		p.bytesShipped.Add(1 + heartbeatLen)
	}
	return err
}

// streamCursor tracks one stream's position: the last shipped sequence,
// plus a byte offset into the active segment so tailing an append is an
// O(new bytes) read instead of a rescan of the whole segment.
type streamCursor struct {
	seq  uint64
	path string // active segment the offset belongs to
	off  int64
}

// shipAvailable writes every logged record with sequence above cur.seq
// to w, walking the segment view: sealed segments (plain or gzipped) are
// read whole via wal.ReadSegmentFile, the active segment is read up to
// its snapshotted frame-complete length. A segment file that disappears
// mid-read lost a race with the background compressor; the view is
// re-fetched and the walk retried.
func (p *Primary) shipAvailable(w io.Writer, cur *streamCursor) error {
retry:
	for {
		segs, lastSeq, _ := p.log.SegmentView()
		if cur.seq >= lastSeq {
			return nil
		}
		// If truncation (bounded by RetainSeqs) removed history this stream
		// still needed, shipping onward would smuggle a silent gap into the
		// follower. Kill the stream instead: the reconnect asks from the
		// follower's durable cursor, gets 410, and resyncs from a snapshot.
		for _, seg := range segs {
			if seg.Last > 0 {
				if cur.seq+1 < seg.First {
					return fmt.Errorf("repl: history from %d truncated (oldest %d)", cur.seq+1, seg.First)
				}
				break
			}
		}
		for _, seg := range segs {
			if seg.Last <= cur.seq || seg.Bytes == 0 {
				continue
			}
			var data []byte
			var err error
			var base int64 // byte offset of data[0] within the segment
			switch {
			case seg.Active && seg.Path == cur.path && cur.off > 0 && cur.off <= seg.Bytes:
				base = cur.off
				data, err = readFileRange(seg.Path, cur.off, seg.Bytes)
			case seg.Active:
				data, err = readFileRange(seg.Path, 0, seg.Bytes)
			default:
				data, err = wal.ReadSegmentFile(seg.Path)
			}
			if err != nil {
				if os.IsNotExist(err) {
					continue retry // compressor swapped plain → gz; re-list
				}
				return err
			}
			var off int64
			for off < int64(len(data)) {
				rec, n, derr := wal.DecodeFrame(data[off:])
				if derr != nil {
					return fmt.Errorf("repl: segment %s invalid at offset %d: %w", seg.Path, base+off, derr)
				}
				frame := data[off : off+int64(n)]
				off += int64(n)
				if rec.Seq <= cur.seq {
					continue
				}
				if _, err := w.Write([]byte{msgRecord}); err != nil {
					return err
				}
				if _, err := w.Write(frame); err != nil {
					return err
				}
				cur.seq = rec.Seq
				p.recsShipped.Add(1)
				p.bytesShipped.Add(uint64(1 + len(frame)))
			}
			if seg.Active {
				cur.path = seg.Path
				cur.off = base + off
			}
		}
		return nil
	}
}

// readFileRange reads path's bytes [from, to). The upper bound comes
// from SegmentView's frame-complete snapshot, so concurrent appends past
// it are ignored rather than half-read.
func readFileRange(path string, from, to int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if to <= from {
		return nil, nil
	}
	buf := make([]byte, to-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, err
	}
	return buf, nil
}

// handleSnapshot serves a full base snapshot for follower bootstrap and
// resync. The body is buffered to a temp file first so the covered WAL
// sequence and epoch — known only after the capture — can travel as
// response headers ahead of the body.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	tmp, err := os.CreateTemp("", "amber-replica-*.snap")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	seq, epoch, err := p.db.SaveReplica(tmp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p.snapshots.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("X-Amber-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("X-Amber-Epoch", strconv.FormatUint(epoch, 10))
	io.Copy(w, tmp) //nolint:errcheck // client disconnect mid-body is its problem
}

// handleAck records a follower's applied position, unblocking checkpoint
// truncation up to the minimum across followers.
func (p *Primary) handleAck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "repl: POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		http.Error(w, "repl: missing id", http.StatusBadRequest)
		return
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, "repl: bad seq", http.StatusBadRequest)
		return
	}
	epoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
	p.touch(id, "", seq, epoch, 0)
	w.WriteHeader(http.StatusNoContent)
}

// MinAck reports the lowest acknowledged sequence across followers
// (lastSeq when there are none, i.e. nothing is pinned).
func (p *Primary) MinAck() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	minAck := uint64(math.MaxUint64)
	for _, f := range p.followers {
		if f.Ack < minAck {
			minAck = f.Ack
		}
	}
	if minAck == math.MaxUint64 {
		return p.log.LastSeq()
	}
	return minAck
}

// Followers snapshots the follower registry, keyed by follower id.
func (p *Primary) Followers() map[string]followerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]followerState, len(p.followers))
	for id, f := range p.followers {
		out[id] = *f
	}
	return out
}

// StatsSection renders the primary's /stats replication section.
func (p *Primary) StatsSection() map[string]any {
	fws := p.Followers()
	ids := make([]string, 0, len(fws))
	for id := range fws {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	followers := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		f := fws[id]
		followers = append(followers, map[string]any{
			"id":        id,
			"ack_seq":   f.Ack,
			"epoch":     f.Epoch,
			"addr":      f.Addr,
			"last_seen": f.LastSeen.UTC().Format(time.RFC3339Nano),
			"streams":   f.Streaming,
		})
	}
	return map[string]any{
		"role":                   "primary",
		"last_seq":               p.log.LastSeq(),
		"min_ack_seq":            p.MinAck(),
		"followers":              followers,
		"streams_started":        p.streamsStarted.Load(),
		"streams_active":         p.streamsActive.Load(),
		"records_shipped":        p.recsShipped.Load(),
		"bytes_shipped":          p.bytesShipped.Load(),
		"snapshots_served":       p.snapshots.Load(),
		"retain_seqs":            p.opts.RetainSeqs,
		"heartbeat_interval_sec": p.opts.Heartbeat.Seconds(),
	}
}

// RegisterMetrics adds the primary-side amber_repl_* series to r.
func (p *Primary) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("amber_repl_followers", "Followers known to the replication primary.",
		func() float64 { p.mu.Lock(); defer p.mu.Unlock(); return float64(len(p.followers)) })
	r.GaugeFunc("amber_repl_min_ack_seq", "Lowest follower-acknowledged WAL sequence (gates truncation).",
		func() float64 { return float64(p.MinAck()) })
	r.GaugeFunc("amber_repl_streams_active", "Replication streams currently connected.",
		func() float64 { return float64(p.streamsActive.Load()) })
	r.CounterFunc("amber_repl_streams_started_total", "Replication stream connections accepted.",
		func() float64 { return float64(p.streamsStarted.Load()) })
	r.CounterFunc("amber_repl_records_shipped_total", "WAL records shipped to followers.",
		func() float64 { return float64(p.recsShipped.Load()) })
	r.CounterFunc("amber_repl_bytes_shipped_total", "Stream bytes shipped to followers (records and heartbeats).",
		func() float64 { return float64(p.bytesShipped.Load()) })
	r.CounterFunc("amber_repl_snapshots_served_total", "Bootstrap/resync snapshots served to followers.",
		func() float64 { return float64(p.snapshots.Load()) })
}

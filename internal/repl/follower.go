package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	amber "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

// errGone marks a stream request refused because the primary truncated
// the requested history; the follower resyncs from a snapshot.
var errGone = errors.New("repl: requested history truncated on primary")

// FollowerOptions configure a follower. Dir and Primary are required.
type FollowerOptions struct {
	// Dir is the follower's own durable directory: its local WAL (with the
	// primary's sequence numbers preserved) plus checkpointed snapshots,
	// so a restarted follower recovers locally and resumes the stream
	// where it left off instead of re-downloading history.
	Dir string
	// Primary is the primary's base URL (e.g. http://primary:7171).
	Primary string
	// ID names this follower in the primary's ack registry; default is
	// the hostname plus the directory base name.
	ID string
	// Fsync, SegmentBytes, CheckpointOnCompact, CompressSegments and
	// WrapWALFile mirror amber.DurabilityOptions for the local directory.
	Fsync               string
	SegmentBytes        int64
	CheckpointOnCompact bool
	CompressSegments    bool
	WrapWALFile         func(*os.File) wal.SegmentFile
	// AckInterval is how often the follower reports its applied position
	// to the primary. Default 1s.
	AckInterval time.Duration
	// BackoffMin and BackoffMax bound the jittered exponential reconnect
	// backoff. Defaults 100ms and 5s.
	BackoffMin, BackoffMax time.Duration
	// OnSwap is called whenever the follower replaces its database object
	// (resync from snapshot, or reopen after a local WAL fault); the
	// serving layer hot-swaps to the new object.
	OnSwap func(*amber.DB)
	// Client is the HTTP client for stream, snapshot and ack requests;
	// default http.DefaultClient.
	Client *http.Client
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.ID == "" {
		host, _ := os.Hostname()
		o.ID = host + ":" + filepath.Base(o.Dir)
	}
	if o.AckInterval <= 0 {
		o.AckInterval = time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	o.Primary = strings.TrimRight(o.Primary, "/")
	return o
}

// Follower pulls the primary's WAL stream, appends the records into its
// own local WAL (preserving the primary's sequence numbers), and applies
// them into its store through the same consumer path startup replay
// uses. Reads served from the follower are stale by exactly the gap
// between its applied epoch and the primary's — observable via
// AppliedEpoch and the amber_repl_lag_* metrics.
type Follower struct {
	opts FollowerOptions

	mu     sync.Mutex // guards db swaps and cursor
	db     *amber.DB
	cursor uint64 // last applied primary sequence

	appliedEpoch    atomic.Uint64 // primary-comparable epoch (Record.Epoch)
	primaryLastSeq  atomic.Uint64
	primaryNano     atomic.Int64 // primary clock at last heartbeat
	connected       atomic.Bool
	reconnects      atomic.Uint64
	resyncs         atomic.Uint64
	appliedRecs     atomic.Uint64
	appliedBytes    atomic.Uint64
	lastAckSeq      atomic.Uint64
	lastAckAt       atomic.Int64
	localReopens    atomic.Uint64

	epochMu sync.Mutex
	epochCh chan struct{} // closed and replaced whenever progress lands
}

// NewFollower opens (or creates) the follower's local durable directory
// and recovers its replication cursor from the local WAL. Run starts the
// pull loop.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" || opts.Primary == "" {
		return nil, errors.New("repl: follower needs Dir and Primary")
	}
	f := &Follower{opts: opts}
	db, err := f.openLocal()
	if err != nil {
		return nil, err
	}
	f.db = db
	f.cursor = db.Durability().LastSeq
	return f, nil
}

func (f *Follower) openLocal() (*amber.DB, error) {
	return amber.OpenDurable(f.opts.Dir, &amber.DurabilityOptions{
		Fsync:               f.opts.Fsync,
		SegmentBytes:        f.opts.SegmentBytes,
		CheckpointOnCompact: f.opts.CheckpointOnCompact,
		CompressSegments:    f.opts.CompressSegments,
		WrapWALFile:         f.opts.WrapWALFile,
	})
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// DB returns the follower's current database object. It changes on
// resync or local reopen; serving layers should prefer OnSwap.
func (f *Follower) DB() *amber.DB {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// PrimaryURL reports the primary's base URL (for redirecting writes).
func (f *Follower) PrimaryURL() string { return f.opts.Primary }

// ID reports the follower's identity in the primary's registry.
func (f *Follower) ID() string { return f.opts.ID }

// AppliedEpoch reports the primary epoch the follower has applied
// through — the staleness bound readers observe via X-Epoch.
func (f *Follower) AppliedEpoch() uint64 { return f.appliedEpoch.Load() }

// Cursor reports the last applied primary WAL sequence.
func (f *Follower) Cursor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// Run pulls the stream until ctx is cancelled, reconnecting with
// jittered exponential backoff across primary restarts and resyncing
// from a snapshot whenever the primary has truncated the history the
// cursor needs.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.BackoffMin
	for {
		progressed, err := f.streamOnce(ctx)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, errGone) {
			f.logf("repl: cursor %d truncated on primary, resyncing from snapshot", f.Cursor())
			if rerr := f.resync(ctx); rerr != nil {
				f.logf("repl: resync failed: %v", rerr)
			} else {
				backoff = f.opts.BackoffMin
				continue
			}
		} else if err != nil {
			f.logf("repl: stream ended: %v", err)
		}
		if progressed {
			backoff = f.opts.BackoffMin
		}
		f.reconnects.Add(1)
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if backoff *= 2; backoff > f.opts.BackoffMax {
			backoff = f.opts.BackoffMax
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
	}
}

// streamOnce runs one stream connection to completion. progressed
// reports whether any message was applied (resets the backoff).
func (f *Follower) streamOnce(ctx context.Context) (progressed bool, err error) {
	u := fmt.Sprintf("%s/repl/stream?from=%d&id=%s",
		f.opts.Primary, f.Cursor(), url.QueryEscape(f.opts.ID))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return false, errGone
	default:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return false, fmt.Errorf("repl: stream request: %s", resp.Status)
	}
	f.connected.Store(true)

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	batch := make([]wal.Record, 0, 256)
	var batchBytes int
	for {
		msg, err := readMessage(br)
		if err != nil {
			return progressed, err
		}
		batch, batchBytes = batch[:0], 0
		f.observe(msg, &batch, &batchBytes)
		// Drain whatever is already buffered so a burst applies as one
		// group commit instead of 1 fsync per record.
		for len(batch) < cap(batch) {
			m, ok, derr := bufferedMessage(br)
			if derr != nil {
				return progressed, derr
			}
			if !ok {
				break
			}
			f.observe(m, &batch, &batchBytes)
		}
		if len(batch) > 0 {
			if err := f.apply(batch, batchBytes); err != nil {
				return progressed, err
			}
			progressed = true
		}
		f.maybeAck(ctx, false)
	}
}

// observe folds one message into the pending batch (records) or the
// position trackers (heartbeats).
func (f *Follower) observe(msg message, batch *[]wal.Record, batchBytes *int) {
	switch msg.kind {
	case msgRecord:
		*batch = append(*batch, msg.rec)
		*batchBytes += msg.frameLen
	case msgHeartbeat:
		f.primaryLastSeq.Store(msg.hb.lastSeq)
		f.primaryNano.Store(msg.hb.unixNano)
		// Compaction and clear bump the primary's epoch without a WAL
		// record; adopt the heartbeat epoch only when fully caught up, so
		// the epoch never claims state the follower hasn't applied.
		if f.Cursor() == msg.hb.lastSeq {
			f.advanceEpoch(msg.hb.epoch)
		}
	}
}

// apply appends the batch to the local WAL and applies it to the store.
// A durability failure (the local log died, e.g. a torn write closed it)
// reopens the local directory — recovery truncates the torn tail — and
// the caller reconnects from the recovered cursor.
func (f *Follower) apply(batch []wal.Record, batchBytes int) error {
	f.mu.Lock()
	db := f.db
	f.mu.Unlock()
	if err := db.ApplyReplicated(batch); err != nil {
		if errors.Is(err, amber.ErrDurability) {
			f.logf("repl: local WAL failure, reopening: %v", err)
			if rerr := f.reopenLocal(); rerr != nil {
				return fmt.Errorf("repl: reopen after WAL failure: %w (cause: %v)", rerr, err)
			}
			return err
		}
		return err
	}
	last := batch[len(batch)-1]
	f.mu.Lock()
	f.cursor = last.Seq
	f.mu.Unlock()
	f.appliedRecs.Add(uint64(len(batch)))
	f.appliedBytes.Add(uint64(batchBytes))
	f.advanceEpoch(last.Epoch)
	return nil
}

// reopenLocal closes and reopens the local durable directory after a
// WAL fault, recovering the cursor from whatever survived on disk.
func (f *Follower) reopenLocal() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Close() //nolint:errcheck // already failed; recovery follows
	db, err := f.openLocal()
	if err != nil {
		return err
	}
	f.db = db
	f.cursor = db.Durability().LastSeq
	f.localReopens.Add(1)
	if f.opts.OnSwap != nil {
		f.opts.OnSwap(db)
	}
	return nil
}

// resync bootstraps a fresh base from the primary's snapshot endpoint:
// download, wipe the local log (its history predates the snapshot),
// install the snapshot as the checkpointed base, and reopen. The old
// database object keeps serving reads until the swap.
func (f *Follower) resync(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.Primary+"/repl/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return fmt.Errorf("repl: snapshot request: %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Amber-Seq"), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: snapshot response lacks X-Amber-Seq: %w", err)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Amber-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: snapshot response lacks X-Amber-Epoch: %w", err)
	}
	// Land the body in Dir so the final install is a same-filesystem
	// rename, atomic like every other base-snapshot update.
	tmp, err := os.CreateTemp(f.opts.Dir, "resync-*.snap.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Close() //nolint:errcheck // releases the directory lock
	if err := wipeWAL(f.opts.Dir); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), core.CheckpointSnapshotPath(f.opts.Dir)); err != nil {
		return err
	}
	if err := wal.WriteCheckpointFile(f.opts.Dir, seq); err != nil {
		return err
	}
	db, err := f.openLocal()
	if err != nil {
		return err
	}
	f.db = db
	f.cursor = seq
	f.resyncs.Add(1)
	f.advanceEpoch(epoch)
	if f.opts.OnSwap != nil {
		f.opts.OnSwap(db)
	}
	f.logf("repl: resynced from snapshot at seq %d epoch %d", seq, epoch)
	return nil
}

// wipeWAL removes the directory's WAL segments and checkpoint marker;
// the snapshot about to be installed supersedes them all.
func wipeWAL(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") || name == "checkpoint" {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return wal.SyncDir(dir)
}

// maybeAck reports the applied position to the primary when it has
// advanced and the ack interval elapsed (or force). Best-effort: a lost
// ack only delays truncation, never correctness.
func (f *Follower) maybeAck(ctx context.Context, force bool) {
	cur := f.Cursor()
	if cur == f.lastAckSeq.Load() {
		return
	}
	now := time.Now().UnixNano()
	caughtUp := cur >= f.primaryLastSeq.Load()
	if !force && !caughtUp && now-f.lastAckAt.Load() < int64(f.opts.AckInterval) {
		return
	}
	u := fmt.Sprintf("%s/repl/ack?id=%s&seq=%d&epoch=%d",
		f.opts.Primary, url.QueryEscape(f.opts.ID), cur, f.AppliedEpoch())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	f.lastAckSeq.Store(cur)
	f.lastAckAt.Store(now)
}

// advanceEpoch moves the applied epoch forward monotonically and wakes
// WaitEpoch parkers.
func (f *Follower) advanceEpoch(epoch uint64) {
	for {
		cur := f.appliedEpoch.Load()
		if epoch <= cur {
			return
		}
		if f.appliedEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	f.epochMu.Lock()
	if f.epochCh != nil {
		close(f.epochCh)
		f.epochCh = nil
	}
	f.epochMu.Unlock()
}

func (f *Follower) epochChan() <-chan struct{} {
	f.epochMu.Lock()
	defer f.epochMu.Unlock()
	if f.epochCh == nil {
		f.epochCh = make(chan struct{})
	}
	return f.epochCh
}

// WaitEpoch blocks until the follower has applied through epoch, the
// timeout expires, or ctx is cancelled, reporting whether the epoch was
// reached. Serving layers use it for X-Min-Epoch read-your-writes.
func (f *Follower) WaitEpoch(ctx context.Context, epoch uint64, timeout time.Duration) bool {
	if f.AppliedEpoch() >= epoch {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := f.epochChan()
		if f.AppliedEpoch() >= epoch {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return f.AppliedEpoch() >= epoch
		case <-ctx.Done():
			return false
		}
	}
}

// LagSeqs reports how many primary sequences the follower is behind
// (0 when caught up or before the first heartbeat).
func (f *Follower) LagSeqs() uint64 {
	last := f.primaryLastSeq.Load()
	cur := f.Cursor()
	if last <= cur {
		return 0
	}
	return last - cur
}

// LagSeconds estimates the staleness age: time since the primary clock
// reading of the last heartbeat, when the follower is behind (0 when
// caught up). Cross-host clock skew applies.
func (f *Follower) LagSeconds() float64 {
	if f.LagSeqs() == 0 {
		return 0
	}
	nano := f.primaryNano.Load()
	if nano == 0 {
		return 0
	}
	d := time.Since(time.Unix(0, nano))
	if d < 0 {
		return 0
	}
	return d.Seconds()
}

// StatsSection renders the follower's /stats replication section.
func (f *Follower) StatsSection() map[string]any {
	return map[string]any{
		"role":             "follower",
		"id":               f.opts.ID,
		"primary":          f.opts.Primary,
		"connected":        f.connected.Load(),
		"cursor_seq":       f.Cursor(),
		"primary_last_seq": f.primaryLastSeq.Load(),
		"lag_seqs":         f.LagSeqs(),
		"lag_seconds":      f.LagSeconds(),
		"applied_epoch":    f.AppliedEpoch(),
		"applied_records":  f.appliedRecs.Load(),
		"applied_bytes":    f.appliedBytes.Load(),
		"reconnects":       f.reconnects.Load(),
		"resyncs":          f.resyncs.Load(),
		"local_reopens":    f.localReopens.Load(),
	}
}

// RegisterMetrics adds the follower-side amber_repl_* series to r.
func (f *Follower) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("amber_repl_connected", "1 while the replication stream is connected.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("amber_repl_lag_seqs", "Primary WAL sequences not yet applied locally.",
		func() float64 { return float64(f.LagSeqs()) })
	r.GaugeFunc("amber_repl_lag_seconds", "Estimated staleness age of the served state.",
		f.LagSeconds)
	r.GaugeFunc("amber_repl_applied_epoch", "Primary epoch the follower has applied through.",
		func() float64 { return float64(f.AppliedEpoch()) })
	r.CounterFunc("amber_repl_applied_records_total", "Replicated records applied locally.",
		func() float64 { return float64(f.appliedRecs.Load()) })
	r.CounterFunc("amber_repl_applied_bytes_total", "Replicated record bytes applied locally.",
		func() float64 { return float64(f.appliedBytes.Load()) })
	r.CounterFunc("amber_repl_reconnects_total", "Stream reconnect attempts.",
		func() float64 { return float64(f.reconnects.Load()) })
	r.CounterFunc("amber_repl_resyncs_total", "Snapshot resyncs after history truncation.",
		func() float64 { return float64(f.resyncs.Load()) })
}

// Close closes the follower's local database (its WAL). Run should be
// cancelled first.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db.Close()
}

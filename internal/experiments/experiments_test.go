package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// tinyConfig keeps the test fast: small corpora, few queries.
func tinyConfig() Config {
	return Config{
		Scale:           1,
		Universities:    1,
		Seed:            42,
		Timeout:         300 * time.Millisecond,
		QueriesPerPoint: 3,
		Sizes:           []int{4, 8},
	}
}

// cachedLUBM shares one dataset across the tests in this package; building
// all three engines repeatedly dominates test time otherwise.
var cachedLUBM *Dataset

func buildLUBM(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	if cachedLUBM != nil {
		return cachedLUBM
	}
	d, err := BuildDataset("LUBM", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedLUBM = d
	return d
}

func TestBuildDatasetAllEngines(t *testing.T) {
	cfg := tinyConfig()
	d := buildLUBM(t, cfg)
	if d.Amber == nil || d.Store == nil || d.Graph == nil || d.Gen == nil {
		t.Fatal("dataset engines missing")
	}
	if d.Amber.Graph().NumTriples() == 0 {
		t.Error("empty dataset")
	}
	if _, err := BuildDataset("NOPE", cfg); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunQueryAllEnginesAgree(t *testing.T) {
	cfg := tinyConfig()
	d := buildLUBM(t, cfg)
	queries := d.Gen.Workload(workload.Complex, 5, 5)
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}
	for i, q := range queries {
		counts := map[EngineName]uint64{}
		for _, eng := range Engines {
			answered, dur, count := d.RunQuery(eng, q, 10*time.Second)
			if !answered {
				if eng == AMbER {
					t.Fatalf("query %d timed out on AMbER", i)
				}
				// Baselines may legitimately exceed even a generous timeout
				// on slow (instrumented or loaded) runs; the three-engine
				// equivalence property is covered by the baseline and
				// integration packages.
				continue
			}
			if dur <= 0 {
				t.Errorf("non-positive duration for %s", eng)
			}
			counts[eng] = count
		}
		for eng, n := range counts {
			if n != counts[AMbER] {
				t.Errorf("query %d: %s count %d != AMbER count %d\n%s", i, eng, n, counts[AMbER], q)
			}
		}
		if counts[AMbER] == 0 {
			t.Errorf("query %d: generated query unsatisfiable", i)
		}
	}
}

func TestRunFigureShape(t *testing.T) {
	cfg := tinyConfig()
	d := buildLUBM(t, cfg)
	points := RunFigure(d, workload.Star, cfg)
	if len(points) != len(cfg.Sizes) {
		t.Fatalf("points = %d, want %d", len(points), len(cfg.Sizes))
	}
	for i, p := range points {
		if p.Size != cfg.Sizes[i] {
			t.Errorf("point %d size = %d", i, p.Size)
		}
		if p.Queries == 0 {
			t.Errorf("point %d has no queries", i)
		}
		for _, e := range Engines {
			if pct := p.Unanswered[e]; pct < 0 || pct > 100 {
				t.Errorf("unanswered%% out of range: %f", pct)
			}
		}
	}
	out := FormatFigure("Figure X", points)
	if !strings.Contains(out, "average time") || !strings.Contains(out, "unanswered") {
		t.Errorf("FormatFigure output incomplete:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	cfg := tinyConfig()
	d := buildLUBM(t, cfg)
	rows4 := Table4([]*Dataset{d})
	if len(rows4) != 1 || rows4[0].EdgeTypes != 13 {
		t.Errorf("Table4 = %+v (LUBM must have 13 edge types)", rows4)
	}
	rows5 := Table5([]*Dataset{d})
	if len(rows5) != 1 || rows5[0].IndexBytes <= 0 {
		t.Errorf("Table5 = %+v", rows5)
	}
	if !strings.Contains(FormatTable4(rows4), "LUBM") {
		t.Error("FormatTable4 missing dataset name")
	}
	if !strings.Contains(FormatTable5(rows5), "index") {
		t.Error("FormatTable5 missing header")
	}
}

func TestTable1Runs(t *testing.T) {
	cfg := tinyConfig()
	cfg.QueriesPerPoint = 2
	d := buildLUBM(t, cfg) // use LUBM for speed; Table 1 proper uses DBPEDIA
	r := RunTable1(d, cfg)
	if r.Queries == 0 {
		t.Fatal("no queries in Table 1 run")
	}
	out := FormatTable1(r)
	if !strings.Contains(out, "AMbER") {
		t.Errorf("FormatTable1 output:\n%s", out)
	}
}

func TestTimeoutProducesUnanswered(t *testing.T) {
	cfg := tinyConfig()
	d := buildLUBM(t, cfg)
	queries := d.Gen.Workload(workload.Star, 10, 2)
	if len(queries) == 0 {
		t.Skip("no size-10 stars in tiny corpus")
	}
	// A 1ns timeout cannot be met.
	answered, _, _ := d.RunQuery(GraphMatch, queries[0], time.Nanosecond)
	if answered {
		t.Error("1ns timeout reported answered")
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(2500 * time.Microsecond); got != "2.50ms" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(900 * time.Nanosecond); got != "0µs" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(2048); got != "2.0KB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(10); got != "10B" {
		t.Errorf("fmtBytes = %q", got)
	}
}

// TestChurnWithFsync exercises the durable churn mode: the run attaches a
// throwaway WAL, logs every write, and restores the store afterwards.
func TestChurnWithFsync(t *testing.T) {
	cfg := tinyConfig()
	cfg.WriteRatio = 0.5
	cfg.WriteBatch = 8
	cfg.Fsync = "interval=10ms"
	d := buildLUBM(t, cfg)
	before := d.Amber.Snapshot().Delta.NumTriples()
	res := RunChurn(d, workload.Star, cfg)
	if res.DurabilityErr != "" {
		t.Fatalf("WAL setup failed: %s", res.DurabilityErr)
	}
	if res.Fsync != cfg.Fsync {
		t.Fatalf("Fsync = %q, want %q", res.Fsync, cfg.Fsync)
	}
	if res.Writes > 0 && res.WALBytes == 0 {
		t.Errorf("writes ran but WAL recorded no bytes: %+v", res)
	}
	if d.Amber.DurabilityInfo().Enabled {
		t.Error("WAL still attached after the run")
	}
	// The generator dedupes emitted triples at the source, so the initial
	// build and any post-compaction rebuild agree exactly.
	if after := d.Amber.Snapshot().Delta.NumTriples(); after != before {
		t.Errorf("store not restored: %d triples, want %d", after, before)
	}
	out := FormatChurn(res)
	if !strings.Contains(out, "durability: fsync=") {
		t.Errorf("FormatChurn missing durability line:\n%s", out)
	}
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7) at configurable scale: Table 1 (50-triplet
// complex queries on DBPEDIA), Table 4 (benchmark statistics), Table 5
// (offline construction cost), and Figures 6–11 (time and robustness for
// star/complex workloads of sizes 10–50 on DBPEDIA, YAGO and LUBM).
//
// The engines compared are AMbER (this repository's core contribution),
// the permutation-index triple store (x-RDF-3X/Virtuoso architecture
// class) and the filter-and-refine graph matcher (gStore/TurboHom++
// class); see DESIGN.md §5 for the substitution rationale.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triplestore"
	"repro/internal/workload"
)

// Config scales the experiments. The paper's full setting (33M triples,
// 60 s timeout, 200 queries/point) is reachable by raising these knobs;
// the defaults target a laptop-scale run with the same workload shape.
type Config struct {
	// Scale multiplies dataset size (DBpedia-like ≈ 60k, YAGO-like ≈ 54k
	// triples at scale 1).
	Scale int
	// Universities is the LUBM scale factor (paper: 100).
	Universities int
	// Seed drives dataset and workload generation.
	Seed int64
	// Timeout is the per-query time constraint (paper: 60 s).
	Timeout time.Duration
	// QueriesPerPoint is the workload size per (dataset, shape, size)
	// point (paper: 200).
	QueriesPerPoint int
	// Sizes are the query sizes in triple patterns (paper: 10..50).
	Sizes []int
	// Planner selects AMbER's matching-order planner: "cost" (default,
	// statistics-driven) or "heuristic" (the paper's static Section 5.3
	// ordering), so runs under both are comparable.
	Planner string
	// WriteRatio is the write fraction of the churn experiment's mixed
	// read/write workload (0 = read-only); WriteBatch is the triples per
	// write batch (0 = 64). Only RunChurn consumes them.
	WriteRatio float64
	WriteBatch int
	// Fsync, when non-empty, attaches a write-ahead log (in a temporary
	// directory) to the churn run's store with the given policy —
	// "always", "never" or "interval=<duration>" — so the write-latency
	// cost of each durability policy is measurable. Only RunChurn
	// consumes it.
	Fsync string
	// Writers is the churn experiment's concurrent writer count: 0 or 1
	// keeps the single-threaded interleaved loop; W > 1 runs W writer
	// goroutines flat-out against concurrent readers, measuring durable
	// write throughput and commit grouping. Only RunChurn consumes it.
	Writers int
	// ChurnOnly shrinks RunBenchReport to a churn-focused report: LUBM
	// only, a single query point for context, and churn under the
	// configured fsync policy (default "always") — the CI write-path
	// smoke-test shape.
	ChurnOnly bool
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Scale:           1,
		Universities:    3,
		Seed:            2016,
		Timeout:         500 * time.Millisecond,
		QueriesPerPoint: 25,
		Sizes:           []int{10, 20, 30, 40, 50},
	}
}

// EngineName identifies one competitor.
type EngineName string

// The three engines of the comparison.
const (
	AMbER      EngineName = "AMbER"
	PermStore  EngineName = "PermStore"  // x-RDF-3X / Virtuoso class
	GraphMatch EngineName = "GraphMatch" // gStore / TurboHom++ class
)

// Engines lists the comparison order used in all outputs.
var Engines = []EngineName{AMbER, PermStore, GraphMatch}

// Dataset bundles one benchmark corpus loaded into all three engines.
type Dataset struct {
	Name    string
	Triples []rdf.Triple
	Amber   *core.Store
	Store   *triplestore.Store
	Graph   *baseline.Graph
	Gen     *workload.Generator

	// Planner orders AMbER's matching (from Config.Planner; nil means the
	// default cost-based planner).
	Planner plan.Planner

	// Build costs for Table 5 (AMbER's offline stage).
	AmberStats core.BuildStats
}

func (d *Dataset) planner() plan.Planner {
	if d.Planner != nil {
		return d.Planner
	}
	return plan.Default()
}

// BuildDataset generates the corpus and loads every engine.
func BuildDataset(name string, cfg Config) (*Dataset, error) {
	var triples []rdf.Triple
	switch name {
	case "DBPEDIA":
		triples = datagen.DBpediaLike(cfg.Scale, cfg.Seed)
	case "YAGO":
		triples = datagen.YAGOLike(cfg.Scale, cfg.Seed+1)
	case "LUBM":
		triples = datagen.LUBM(datagen.LUBMConfig{Universities: cfg.Universities, Seed: cfg.Seed + 2})
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	amber, err := core.NewStore(triples)
	if err != nil {
		return nil, err
	}
	planner, ok := plan.ByName(cfg.Planner)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown planner %q", cfg.Planner)
	}
	st, err := triplestore.FromTriples(triples)
	if err != nil {
		return nil, err
	}
	bg, err := baseline.FromTriples(triples)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:       name,
		Triples:    triples,
		Amber:      amber,
		Store:      st,
		Graph:      bg,
		Gen:        workload.NewGenerator(triples, cfg.Seed+7, workload.DefaultConfig()),
		Planner:    planner,
		AmberStats: amber.BuildInfo(),
	}, nil
}

// RunQuery executes one query on one engine under the timeout, reporting
// whether it finished and how long it ran.
func (d *Dataset) RunQuery(name EngineName, q *sparql.Query, timeout time.Duration) (answered bool, dur time.Duration, count uint64) {
	deadline := time.Now().Add(timeout)
	start := time.Now()
	var err error
	switch name {
	case AMbER:
		// PreparedQuery pins one MVCC snapshot for plan + execution, so
		// the measurement stays correct under concurrent compaction
		// (the churn experiment mutates the store mid-run).
		g, buildErr := d.Amber.PrepareQueryWith(d.planner(), q)
		if buildErr != nil {
			return false, 0, 0
		}
		count, err = g.Count(engine.Options{Deadline: deadline})
	case PermStore:
		c := d.Store.Compile(q)
		count, err = d.Store.Count(c, triplestore.Options{Deadline: deadline})
	case GraphMatch:
		c := d.Graph.Compile(q)
		count, err = d.Graph.Count(c, baseline.Options{Deadline: deadline})
	}
	dur = time.Since(start)
	return err == nil, dur, count
}

// Point is one x-axis point of a figure: a query size with per-engine
// average time over answered queries and percentage unanswered.
type Point struct {
	Size       int
	AvgTime    map[EngineName]time.Duration
	Unanswered map[EngineName]float64
	Queries    int
}

// RunFigure evaluates one (dataset, shape) figure: for each size, generate
// the workload and run all engines under the timeout, exactly as
// Section 7.2 prescribes (averages computed over answered queries only).
func RunFigure(d *Dataset, kind workload.Kind, cfg Config) []Point {
	points := make([]Point, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		queries := d.Gen.Workload(kind, size, cfg.QueriesPerPoint)
		p := Point{
			Size:       size,
			AvgTime:    map[EngineName]time.Duration{},
			Unanswered: map[EngineName]float64{},
			Queries:    len(queries),
		}
		for _, eng := range Engines {
			var total time.Duration
			answeredN := 0
			for _, q := range queries {
				answered, dur, _ := d.RunQuery(eng, q, cfg.Timeout)
				if answered {
					answeredN++
					total += dur
				}
			}
			if answeredN > 0 {
				p.AvgTime[eng] = total / time.Duration(answeredN)
			}
			if len(queries) > 0 {
				p.Unanswered[eng] = 100 * float64(len(queries)-answeredN) / float64(len(queries))
			}
		}
		points = append(points, p)
	}
	return points
}

// Table1Result is the paper's headline comparison: average time for
// complex queries of 50 triplets on DBPEDIA.
type Table1Result struct {
	AvgTime    map[EngineName]time.Duration
	Unanswered map[EngineName]float64
	Queries    int
	Timeout    time.Duration
}

// RunTable1 reproduces Table 1.
func RunTable1(d *Dataset, cfg Config) Table1Result {
	pts := RunFigure(d, workload.Complex, Config{
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		Timeout:         cfg.Timeout,
		QueriesPerPoint: cfg.QueriesPerPoint,
		Sizes:           []int{50},
		Planner:         cfg.Planner,
	})
	r := Table1Result{
		AvgTime:    map[EngineName]time.Duration{},
		Unanswered: map[EngineName]float64{},
		Timeout:    cfg.Timeout,
	}
	if len(pts) == 1 {
		r.AvgTime = pts[0].AvgTime
		r.Unanswered = pts[0].Unanswered
		r.Queries = pts[0].Queries
	}
	return r
}

// Table4Row is one row of the benchmark-statistics table.
type Table4Row struct {
	Dataset   string
	Triples   int
	Vertices  int
	Edges     int
	EdgeTypes int
}

// Table4 reproduces the paper's Table 4 for a set of datasets.
func Table4(datasets []*Dataset) []Table4Row {
	rows := make([]Table4Row, 0, len(datasets))
	for _, d := range datasets {
		g := d.Amber.Graph()
		rows = append(rows, Table4Row{
			Dataset:   d.Name,
			Triples:   g.NumTriples(),
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			EdgeTypes: g.NumEdgeTypes(),
		})
	}
	return rows
}

// Table5Row is one row of the offline-stage cost table.
type Table5Row struct {
	Dataset       string
	DatabaseTime  time.Duration
	DatabaseBytes int64
	IndexTime     time.Duration
	IndexBytes    int64
}

// Table5 reproduces the paper's Table 5.
func Table5(datasets []*Dataset) []Table5Row {
	rows := make([]Table5Row, 0, len(datasets))
	for _, d := range datasets {
		rows = append(rows, Table5Row{
			Dataset:       d.Name,
			DatabaseTime:  d.AmberStats.DatabaseTime,
			DatabaseBytes: d.AmberStats.DatabaseBytes,
			IndexTime:     d.AmberStats.IndexTime,
			IndexBytes:    d.AmberStats.IndexBytes,
		})
	}
	return rows
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
)

// ReportSchema identifies the JSON layout of BenchReport. Bump it when a
// field changes meaning or disappears; additions are backward-compatible
// within a version.
const ReportSchema = "amber-bench/v1"

// BenchReport is the machine-readable output of `amber-bench -json`: one
// self-describing document per run, committed to the repository as
// BENCH_NNNN.json files so performance has a trajectory across PRs
// rather than a single mutable number.
type BenchReport struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"` // RFC 3339, UTC
	GoVersion   string        `json:"go_version"`
	Planner     string        `json:"planner"`
	Env         *EnvReport    `json:"env,omitempty"` // absent in pre-fingerprint reports
	Config      ReportConfig  `json:"config"`
	Load        []LoadResult  `json:"load"`
	Queries     []QueryResult `json:"queries"`
	Churn       []ChurnReport `json:"churn"`

	PlannerComparison PlannerComparison `json:"planner_comparison"`
}

// EnvReport fingerprints the machine a report was generated on. The
// trajectory guard (CompareReports) needs it because absolute I/O-bound
// numbers do not transfer between machines: an identical tree can show a
// 3-10x churn-latency swing purely from slower storage. Churn metrics
// are therefore only compared between reports whose fsync probes match;
// CPU-bound metrics (load, query latency) are compared regardless.
type EnvReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// FsyncProbeMS is the median latency of a 4KB write+fsync cycle
	// measured immediately before the run — a storage-speed fingerprint
	// for deciding whether two reports' churn numbers are comparable.
	FsyncProbeMS float64 `json:"fsync_probe_ms"`
}

// measureEnv fingerprints the host. A probe failure (read-only temp dir,
// exotic filesystem) degrades to a fingerprint without a probe value —
// the comparison gate then treats the report as from unknown storage.
func measureEnv() *EnvReport {
	env := &EnvReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	f, err := os.CreateTemp("", "amber-fsync-probe-*")
	if err != nil {
		return env
	}
	defer os.Remove(f.Name())
	defer f.Close()
	buf := make([]byte, 4096)
	lats := make([]time.Duration, 0, 32)
	for i := 0; i < cap(lats); i++ {
		start := time.Now()
		if _, err := f.Write(buf); err != nil {
			return env
		}
		if err := f.Sync(); err != nil {
			return env
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	env.FsyncProbeMS = ms(lats[len(lats)/2])
	return env
}

// ReportConfig records the knobs the run used, so two reports are only
// compared when their workloads match.
type ReportConfig struct {
	Scale           int     `json:"scale"`
	Universities    int     `json:"universities"`
	QueriesPerPoint int     `json:"queries_per_point"`
	TimeoutMS       float64 `json:"timeout_ms"`
	Seed            int64   `json:"seed"`
	Sizes           []int   `json:"sizes"`
	Quick           bool    `json:"quick"`
}

// LoadResult is the offline stage of one dataset: corpus size and the
// cost of building AMbER's database plus index ensemble.
type LoadResult struct {
	Dataset       string  `json:"dataset"`
	Triples       int     `json:"triples"`
	BuildMS       float64 `json:"build_ms"`
	TriplesPerSec float64 `json:"triples_per_sec"`
	IndexBytes    int64   `json:"index_bytes"`
}

// QueryResult summarizes AMbER latency for one (dataset, shape, size)
// workload point. Percentiles are over answered queries only; the
// unanswered share is reported separately.
type QueryResult struct {
	Dataset       string  `json:"dataset"`
	Shape         string  `json:"shape"` // star | complex
	Size          int     `json:"size"`
	Queries       int     `json:"queries"`
	Answered      int     `json:"answered"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	UnansweredPct float64 `json:"unanswered_pct"`
}

// ChurnReport is one mixed read/write run under one durability policy.
// The writer-concurrency and commit-grouping fields were added with the
// group-commit write path; older committed reports simply lack them.
type ChurnReport struct {
	Fsync       string  `json:"fsync"` // "" = no WAL
	Reads       int     `json:"reads"`
	Writes      int     `json:"writes"`
	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	WriteP50MS  float64 `json:"write_p50_ms"`
	WriteP99MS  float64 `json:"write_p99_ms"`
	Compactions uint64  `json:"compactions"`
	Fsyncs      uint64  `json:"fsyncs"`
	// Writers is the concurrent writer count; WritesPerSec the durable
	// write throughput over the writers' flat-out span (Writers > 1 only).
	Writers      int     `json:"writers,omitempty"`
	WritesPerSec float64 `json:"writes_per_sec,omitempty"`
	// Commit grouping over the run: Writes/Groups batches shared each WAL
	// append span (one fsync under fsync=always).
	Groups        uint64  `json:"groups,omitempty"`
	MeanGroupSize float64 `json:"mean_group_size,omitempty"`
	MaxGroupSize  uint64  `json:"max_group_size,omitempty"`
}

// PlannerComparison pits the cost-based planner against the paper's
// §5.3 heuristic on the same workload: WinRatio is the fraction of
// queries the cost planner answered at least as fast.
type PlannerComparison struct {
	Dataset        string  `json:"dataset"`
	Queries        int     `json:"queries"`
	CostWins       int     `json:"cost_wins"`
	WinRatio       float64 `json:"win_ratio"`
	CostP50MS      float64 `json:"cost_p50_ms"`
	HeuristicP50MS float64 `json:"heuristic_p50_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// QuickConfig shrinks a config to the CI smoke-test scale: one small
// LUBM corpus, one workload point, short timeout.
func QuickConfig(cfg Config) Config {
	cfg.Scale = 1
	cfg.Universities = 2
	cfg.QueriesPerPoint = 8
	cfg.Sizes = []int{10}
	cfg.Timeout = 300 * time.Millisecond
	return cfg
}

// RunBenchReport runs the benchmark trajectory: dataset builds, AMbER
// query latency percentiles by shape, churn under each durability
// policy, and the cost-vs-heuristic planner comparison. Quick mode uses
// a single small LUBM corpus so the whole run fits a CI smoke test.
func RunBenchReport(cfg Config, quick bool) (*BenchReport, error) {
	datasetNames := []string{"DBPEDIA", "YAGO", "LUBM"}
	fsyncs := []string{"", "always", "never"}
	if quick {
		cfg = QuickConfig(cfg)
		datasetNames = []string{"LUBM"}
		fsyncs = []string{"", "always"}
	}
	if cfg.ChurnOnly {
		// Churn-focused report (the CI write-path smoke test): one small
		// corpus, one query point for read context, churn under the
		// requested fsync policy only.
		datasetNames = []string{"LUBM"}
		if cfg.Fsync != "" {
			fsyncs = []string{cfg.Fsync}
		} else {
			fsyncs = []string{"always"}
		}
		if len(cfg.Sizes) > 1 {
			cfg.Sizes = cfg.Sizes[:1]
		}
	}

	rep := &BenchReport{
		Schema:      ReportSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Planner:     cfg.Planner,
		Env:         measureEnv(),
		Config: ReportConfig{
			Scale:           cfg.Scale,
			Universities:    cfg.Universities,
			QueriesPerPoint: cfg.QueriesPerPoint,
			TimeoutMS:       ms(cfg.Timeout),
			Seed:            cfg.Seed,
			Sizes:           cfg.Sizes,
			Quick:           quick,
		},
	}
	if rep.Planner == "" {
		rep.Planner = "cost"
	}

	var datasets []*Dataset
	for _, name := range datasetNames {
		start := time.Now()
		d, err := BuildDataset(name, cfg)
		if err != nil {
			return nil, err
		}
		buildDur := time.Since(start)
		datasets = append(datasets, d)
		lr := LoadResult{
			Dataset:    name,
			Triples:    len(d.Triples),
			BuildMS:    ms(buildDur),
			IndexBytes: d.AmberStats.IndexBytes,
		}
		if buildDur > 0 {
			lr.TriplesPerSec = float64(len(d.Triples)) / buildDur.Seconds()
		}
		rep.Load = append(rep.Load, lr)
	}

	shapes := []struct {
		name string
		kind workload.Kind
	}{{"star", workload.Star}, {"complex", workload.Complex}}
	if cfg.ChurnOnly {
		shapes = shapes[:1]
	}
	for _, d := range datasets {
		for _, sh := range shapes {
			for _, size := range cfg.Sizes {
				queries := d.Gen.Workload(sh.kind, size, cfg.QueriesPerPoint)
				qr := QueryResult{Dataset: d.Name, Shape: sh.name, Size: size, Queries: len(queries)}
				var lats []time.Duration
				for _, q := range queries {
					answered, dur, _ := d.RunQuery(AMbER, q, cfg.Timeout)
					if answered {
						lats = append(lats, dur)
					}
				}
				qr.Answered = len(lats)
				if len(lats) > 0 {
					_, p50, p99 := latencySummary(lats)
					qr.P50MS, qr.P99MS = ms(p50), ms(p99)
				}
				if qr.Queries > 0 {
					qr.UnansweredPct = 100 * float64(qr.Queries-qr.Answered) / float64(qr.Queries)
				}
				rep.Queries = append(rep.Queries, qr)
			}
		}
	}

	// Churn and the planner comparison run on the first dataset only: the
	// point is tracking write latency per fsync policy and planner wins
	// over time, not covering every corpus.
	churnDS := datasets[0]
	for _, fs := range fsyncs {
		ccfg := cfg
		ccfg.Fsync = fs
		r := RunChurn(churnDS, workload.Star, ccfg)
		rep.Churn = append(rep.Churn, ChurnReport{
			Fsync:         fs,
			Reads:         r.Reads,
			Writes:        r.Writes,
			ReadP50MS:     ms(r.ReadP50),
			ReadP99MS:     ms(r.ReadP99),
			WriteP50MS:    ms(r.WriteP50),
			WriteP99MS:    ms(r.WriteP99),
			Compactions:   r.Compactions,
			Fsyncs:        r.Fsyncs,
			Writers:       r.Writers,
			WritesPerSec:  r.WritesPerSec,
			Groups:        r.Groups,
			MeanGroupSize: r.MeanGroupSize,
			MaxGroupSize:  r.MaxGroupSize,
		})
	}

	if !cfg.ChurnOnly {
		rep.PlannerComparison = runPlannerComparison(churnDS, workload.Star, cfg)
	}
	return rep, nil
}

// runPlannerComparison times every workload query under both planners on
// AMbER and counts how often the cost-based order is at least as fast.
func runPlannerComparison(d *Dataset, kind workload.Kind, cfg Config) PlannerComparison {
	size := 10
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[0]
	}
	costPl, _ := plan.ByName("cost")
	heurPl, _ := plan.ByName("heuristic")
	queries := d.Gen.Workload(kind, size, cfg.QueriesPerPoint)
	pc := PlannerComparison{Dataset: d.Name}

	timeWith := func(pl plan.Planner, q int) (time.Duration, bool) {
		g, err := d.Amber.PrepareQueryWith(pl, queries[q])
		if err != nil {
			return 0, false
		}
		start := time.Now()
		_, err = g.Count(engine.Options{Deadline: start.Add(cfg.Timeout)})
		return time.Since(start), err == nil
	}

	var costLats, heurLats []time.Duration
	for qi := range queries {
		costDur, costOK := timeWith(costPl, qi)
		heurDur, heurOK := timeWith(heurPl, qi)
		if !costOK && !heurOK {
			continue // neither finished; no information
		}
		pc.Queries++
		// A timeout loses to any finished run; both finished compares times.
		switch {
		case costOK && !heurOK:
			pc.CostWins++
		case costOK && heurOK && costDur <= heurDur:
			pc.CostWins++
		}
		if costOK {
			costLats = append(costLats, costDur)
		}
		if heurOK {
			heurLats = append(heurLats, heurDur)
		}
	}
	if pc.Queries > 0 {
		pc.WinRatio = float64(pc.CostWins) / float64(pc.Queries)
	}
	if len(costLats) > 0 {
		sort.Slice(costLats, func(i, j int) bool { return costLats[i] < costLats[j] })
		pc.CostP50MS = ms(costLats[len(costLats)/2])
	}
	if len(heurLats) > 0 {
		sort.Slice(heurLats, func(i, j int) bool { return heurLats[i] < heurLats[j] })
		pc.HeuristicP50MS = ms(heurLats[len(heurLats)/2])
	}
	return pc
}

// ValidateReport checks that data is a well-formed BenchReport: the CI
// schema gate for committed BENCH_NNNN.json files. Unknown fields are
// rejected so accidental schema drift fails loudly.
func ValidateReport(data []byte) error {
	var rep BenchReport
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return fmt.Errorf("bench report: schema %q, want %q", rep.Schema, ReportSchema)
	}
	if _, err := time.Parse(time.RFC3339, rep.GeneratedAt); err != nil {
		return fmt.Errorf("bench report: bad generated_at: %w", err)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("bench report: missing go_version")
	}
	if rep.Planner != "cost" && rep.Planner != "heuristic" {
		return fmt.Errorf("bench report: unknown planner %q", rep.Planner)
	}
	if rep.Env != nil {
		if rep.Env.GOOS == "" || rep.Env.GOARCH == "" || rep.Env.CPUs <= 0 {
			return fmt.Errorf("bench report: incomplete env fingerprint %+v", *rep.Env)
		}
		if rep.Env.FsyncProbeMS < 0 {
			return fmt.Errorf("bench report: negative fsync probe %.3fms", rep.Env.FsyncProbeMS)
		}
	}
	if len(rep.Load) == 0 {
		return fmt.Errorf("bench report: no load results")
	}
	for _, l := range rep.Load {
		if l.Dataset == "" || l.Triples <= 0 {
			return fmt.Errorf("bench report: bad load entry %+v", l)
		}
	}
	if len(rep.Queries) == 0 {
		return fmt.Errorf("bench report: no query results")
	}
	for _, q := range rep.Queries {
		if q.Shape != "star" && q.Shape != "complex" {
			return fmt.Errorf("bench report: unknown shape %q", q.Shape)
		}
		if q.P99MS < q.P50MS {
			return fmt.Errorf("bench report: %s/%s/%d: p99 %.3fms < p50 %.3fms",
				q.Dataset, q.Shape, q.Size, q.P99MS, q.P50MS)
		}
		if q.Answered > q.Queries || q.UnansweredPct < 0 || q.UnansweredPct > 100 {
			return fmt.Errorf("bench report: %s/%s/%d: inconsistent answered counts",
				q.Dataset, q.Shape, q.Size)
		}
	}
	if len(rep.Churn) == 0 {
		return fmt.Errorf("bench report: no churn results")
	}
	for _, c := range rep.Churn {
		if c.WriteP99MS < c.WriteP50MS || c.ReadP99MS < c.ReadP50MS {
			return fmt.Errorf("bench report: churn fsync=%q: p99 < p50", c.Fsync)
		}
	}
	if r := rep.PlannerComparison.WinRatio; r < 0 || r > 1 {
		return fmt.Errorf("bench report: win_ratio %.3f outside [0,1]", r)
	}
	return nil
}

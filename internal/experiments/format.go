package experiments

import (
	"fmt"
	"strings"
	"time"
)

// FormatFigure renders one figure's points as the two panels the paper
// plots: (a) average time per answered query, (b) percentage unanswered.
func FormatFigure(title string, points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "(a) average time per answered query\n")
	fmt.Fprintf(&b, "%-6s", "size")
	for _, e := range Engines {
		fmt.Fprintf(&b, "%14s", e)
	}
	b.WriteString("\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d", p.Size)
		for _, e := range Engines {
			if t, ok := p.AvgTime[e]; ok {
				fmt.Fprintf(&b, "%14s", fmtDur(t))
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(b) %% unanswered queries (timeout)\n")
	fmt.Fprintf(&b, "%-6s", "size")
	for _, e := range Engines {
		fmt.Fprintf(&b, "%14s", e)
	}
	b.WriteString("\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d", p.Size)
		for _, e := range Engines {
			fmt.Fprintf(&b, "%13.1f%%", p.Unanswered[e])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable1 renders the headline comparison.
func FormatTable1(r Table1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: average time, %d complex queries of 50 triplets on DBPEDIA (timeout %s)\n",
		r.Queries, r.Timeout)
	fmt.Fprintf(&b, "%-12s%14s%14s\n", "engine", "avg time", "unanswered")
	for _, e := range Engines {
		t, ok := r.AvgTime[e]
		ts := "-"
		if ok {
			ts = fmtDur(t)
		}
		fmt.Fprintf(&b, "%-12s%14s%13.1f%%\n", e, ts, r.Unanswered[e])
	}
	return b.String()
}

// FormatTable4 renders the benchmark statistics.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: benchmark statistics\n")
	fmt.Fprintf(&b, "%-10s%12s%12s%12s%12s\n", "dataset", "#triples", "#vertices", "#edges", "#edgetypes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%12d%12d%12d%12d\n", r.Dataset, r.Triples, r.Vertices, r.Edges, r.EdgeTypes)
	}
	return b.String()
}

// FormatTable5 renders the offline-stage costs.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: offline stage — database and index construction\n")
	fmt.Fprintf(&b, "%-10s%14s%14s%14s%14s\n", "dataset", "db time", "db size", "index time", "index size")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%14s%14s%14s%14s\n", r.Dataset,
			fmtDur(r.DatabaseTime), fmtBytes(r.DatabaseBytes),
			fmtDur(r.IndexTime), fmtBytes(r.IndexBytes))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

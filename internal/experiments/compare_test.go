package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// minimalReport returns a valid BenchReport the tests mutate per case.
func minimalReport() BenchReport {
	return BenchReport{
		Schema:      ReportSchema,
		GeneratedAt: "2026-01-02T03:04:05Z",
		GoVersion:   "go1.24",
		Planner:     "cost",
		Env:         &EnvReport{GOOS: "linux", GOARCH: "amd64", CPUs: 8, FsyncProbeMS: 1.0},
		Load: []LoadResult{
			{Dataset: "LUBM", Triples: 1000, BuildMS: 10, TriplesPerSec: 100000},
		},
		Queries: []QueryResult{
			{Dataset: "LUBM", Shape: "star", Size: 10, Queries: 8, Answered: 8,
				P50MS: 1, P99MS: 2},
		},
		Churn: []ChurnReport{
			{Fsync: "always", Reads: 8, Writes: 3,
				ReadP50MS: 0.4, ReadP99MS: 0.5, WriteP50MS: 0.8, WriteP99MS: 1.2,
				Fsyncs: 3},
		},
	}
}

func mustJSON(t *testing.T, rep BenchReport) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func compare(t *testing.T, oldRep, newRep BenchReport) []string {
	t.Helper()
	regs, _, err := CompareReports(mustJSON(t, oldRep), mustJSON(t, newRep))
	if err != nil {
		t.Fatal(err)
	}
	return regs
}

// compareNotes returns only the skipped-comparison notes.
func compareNotes(t *testing.T, oldRep, newRep BenchReport) []string {
	t.Helper()
	_, notes, err := CompareReports(mustJSON(t, oldRep), mustJSON(t, newRep))
	if err != nil {
		t.Fatal(err)
	}
	return notes
}

func TestCompareNoRegressions(t *testing.T) {
	if regs := compare(t, minimalReport(), minimalReport()); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}
}

func TestCompareFlagsQueryLatencyRegression(t *testing.T) {
	newRep := minimalReport()
	newRep.Queries[0].P50MS = 3 // >2x of 1ms and above the absolute floor
	newRep.Queries[0].P99MS = 3
	regs := compare(t, minimalReport(), newRep)
	if len(regs) != 1 || !strings.Contains(regs[0], "query LUBM/star/10: p50") {
		t.Fatalf("regs = %v, want one query p50 regression", regs)
	}
}

func TestCompareIgnoresSubFloorSwings(t *testing.T) {
	oldRep := minimalReport()
	oldRep.Queries[0].P50MS = 0.1
	oldRep.Queries[0].P99MS = 0.2
	newRep := minimalReport()
	newRep.Queries[0].P50MS = 0.3 // 3x worse but under the 0.5ms floor
	newRep.Queries[0].P99MS = 0.4
	if regs := compare(t, oldRep, newRep); len(regs) != 0 {
		t.Fatalf("sub-floor swing flagged: %v", regs)
	}
}

func TestCompareFlagsLoadThroughputRegression(t *testing.T) {
	newRep := minimalReport()
	newRep.Load[0].TriplesPerSec = 40000 // > 2x slower than 100k
	regs := compare(t, minimalReport(), newRep)
	if len(regs) != 1 || !strings.Contains(regs[0], "load LUBM") {
		t.Fatalf("regs = %v, want one load regression", regs)
	}
}

// A writer-count change means the churn latencies were measured under a
// different experiment: per-batch and read latencies must not be
// compared, but throughput still is (via the implied single-writer rate
// on the old side).
func TestCompareChurnWriterChangeGatesLatencyNotThroughput(t *testing.T) {
	newRep := minimalReport()
	newRep.Churn[0] = ChurnReport{
		Fsync: "always", Reads: 8, Writes: 512, Writers: 8,
		ReadP50MS: 2, ReadP99MS: 9, // far worse than 0.4/0.5: contended reads
		WriteP50MS: 2.4, WriteP99MS: 10, // queued-commit latency
		WritesPerSec: 5000, Fsyncs: 300, Groups: 300,
		MeanGroupSize: 3, MaxGroupSize: 7,
	}
	if regs := compare(t, minimalReport(), newRep); len(regs) != 0 {
		t.Fatalf("cross-writer-count latencies flagged: %v", regs)
	}

	// Throughput guard stays armed across the transition: the old report
	// implies 1000/0.8 = 1250 batches/s, so 500/s is a >2x regression.
	slow := newRep
	slow.Churn = []ChurnReport{newRep.Churn[0]}
	slow.Churn[0].WritesPerSec = 500
	regs := compare(t, minimalReport(), slow)
	if len(regs) != 1 || !strings.Contains(regs[0], "write throughput") {
		t.Fatalf("regs = %v, want one throughput regression", regs)
	}
}

func TestCompareChurnSameWritersStillCompared(t *testing.T) {
	newRep := minimalReport()
	newRep.Churn[0].WriteP50MS = 2.5 // same (implicit single) writer count
	newRep.Churn[0].WriteP99MS = 3
	regs := compare(t, minimalReport(), newRep)
	// The slower batches also drag p99 and the implied throughput down,
	// so expect the p50 line among the flags rather than alone.
	if len(regs) == 0 || !strings.Contains(strings.Join(regs, "\n"), "write p50") {
		t.Fatalf("regs = %v, want a write p50 regression", regs)
	}
}

func TestCompareRejectsSchemaDrift(t *testing.T) {
	good := mustJSON(t, minimalReport())
	bad := []byte(strings.Replace(string(good), `"schema"`, `"schemaX"`, 1))
	if _, _, err := CompareReports(good, bad); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, _, err := CompareReports(bad, good); err == nil {
		t.Fatal("unknown field accepted in old report")
	}
}

// badChurn is a churn result far past the regression gate relative to
// minimalReport's: it must be flagged when storage matches and skipped
// (with a note) when it does not.
func badChurn() ChurnReport {
	return ChurnReport{
		Fsync: "always", Reads: 8, Writes: 3,
		ReadP50MS: 4, ReadP99MS: 5, WriteP50MS: 8, WriteP99MS: 12,
		Fsyncs: 3,
	}
}

// Disk-bound churn numbers measured on different storage (fsync probes
// more than the regression factor apart) are not comparable: the gate
// must skip them with a note instead of failing the trajectory.
func TestCompareChurnSkippedAcrossStorageMismatch(t *testing.T) {
	newRep := minimalReport()
	newRep.Env.FsyncProbeMS = 4.0 // 4x slower disk than old's 1.0ms probe
	newRep.Churn[0] = badChurn()
	if regs := compare(t, minimalReport(), newRep); len(regs) != 0 {
		t.Fatalf("cross-storage churn flagged: %v", regs)
	}
	notes := compareNotes(t, minimalReport(), newRep)
	if len(notes) != 1 || !strings.Contains(notes[0], "different storage") {
		t.Fatalf("notes = %v, want one storage-mismatch note", notes)
	}
}

// Reports predating the env fingerprint (every BENCH file up to 0008)
// carry no probe: churn comparisons against them are skipped with a
// note, while CPU-bound metrics are still compared.
func TestCompareChurnSkippedWhenOldReportHasNoEnv(t *testing.T) {
	oldRep := minimalReport()
	oldRep.Env = nil
	newRep := minimalReport()
	newRep.Churn[0] = badChurn()
	newRep.Load[0].TriplesPerSec = 40000 // CPU-bound metrics stay guarded
	regs := compare(t, oldRep, newRep)
	if len(regs) != 1 || !strings.Contains(regs[0], "load LUBM") {
		t.Fatalf("regs = %v, want only the load regression", regs)
	}
	notes := compareNotes(t, oldRep, newRep)
	if len(notes) != 1 || !strings.Contains(notes[0], "no environment fingerprint") {
		t.Fatalf("notes = %v, want one missing-fingerprint note", notes)
	}
}

// Matching fingerprints arm the churn gate: the same regression that is
// skipped across mismatched storage fails between matched reports.
func TestCompareChurnFlaggedOnMatchedStorage(t *testing.T) {
	newRep := minimalReport()
	newRep.Churn[0] = badChurn()
	regs := compare(t, minimalReport(), newRep)
	if len(regs) == 0 || !strings.Contains(strings.Join(regs, "\n"), "churn fsync=always") {
		t.Fatalf("regs = %v, want churn regressions on matched storage", regs)
	}
	if notes := compareNotes(t, minimalReport(), newRep); len(notes) != 0 {
		t.Fatalf("unexpected notes on matched storage: %v", notes)
	}
}

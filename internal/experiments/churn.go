package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/wal"
	"repro/internal/workload"
)

// churnNS is the namespace of the synthetic triples the churn workload
// inserts and deletes; keeping it disjoint from the datasets lets the
// run restore the store exactly afterwards.
const churnNS = "http://amber.bench/churn#"

// ChurnResult reports query latency under a mixed read/write workload:
// the live-update subsystem's benchmark (not part of the paper, which is
// read-only).
type ChurnResult struct {
	// Reads and Writes count executed operations; WriteRatio is the
	// configured write fraction.
	Reads, Writes int
	WriteRatio    float64
	// ReadAvg/ReadP50/ReadP99 summarize answered-read latency.
	ReadAvg, ReadP50, ReadP99 time.Duration
	// WriteAvg/WriteP50/WriteP99 summarize write-batch latency; with a
	// WAL attached they include the durability (fsync) cost.
	WriteAvg, WriteP50, WriteP99 time.Duration
	// Unanswered is the percentage of reads that hit the timeout.
	Unanswered float64
	// Compactions counts compactions that fired during the run;
	// LastCompaction is the duration of the final one.
	Compactions    uint64
	LastCompaction time.Duration
	// Fsync is the WAL policy the run used ("" = no WAL); Fsyncs and
	// WALBytes are the log's counters over the measured workload.
	// DurabilityErr reports a WAL setup failure (the run then proceeds
	// without durability).
	Fsync         string
	Fsyncs        uint64
	WALBytes      int64
	DurabilityErr string
}

// RunChurn interleaves workload queries with INSERT/DELETE batches at
// cfg.WriteRatio against the AMbER store, letting compaction fire as the
// overlay grows. Reads execute through the same prepared-count path as
// the figures; every read pins a consistent snapshot while writes land.
// The store is restored (inserted triples deleted, then compacted) on
// return, so later experiments see the original data.
func RunChurn(d *Dataset, kind workload.Kind, cfg Config) ChurnResult {
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	// The loop only advances on reads; a ratio of 1.0 would never
	// terminate, so clamp to a read-making range.
	if cfg.WriteRatio > 0.95 {
		cfg.WriteRatio = 0.95
	}
	if cfg.WriteRatio < 0 {
		cfg.WriteRatio = 0
	}
	size := 10
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[0]
	}
	batch := cfg.WriteBatch
	if batch <= 0 {
		batch = 64
	}
	queries := d.Gen.Workload(kind, size, cfg.QueriesPerPoint)
	if len(queries) == 0 {
		return ChurnResult{WriteRatio: cfg.WriteRatio}
	}
	genBefore := d.Amber.GenerationInfo()
	// Scale the compaction threshold to the run's write volume so the
	// benchmark actually exercises compaction, then restore the default.
	d.Amber.SetCompactThreshold(4 * batch)
	defer d.Amber.SetCompactThreshold(core.DefaultCompactThreshold)

	res := ChurnResult{WriteRatio: cfg.WriteRatio}

	// Durable mode: log every write batch to a throwaway WAL under the
	// requested fsync policy, so WriteAvg includes the durability cost.
	if cfg.Fsync != "" {
		policy, interval, err := wal.ParseSyncPolicy(cfg.Fsync)
		if err == nil {
			var walDir string
			walDir, err = os.MkdirTemp("", "amber-churn-wal-")
			if err == nil {
				defer os.RemoveAll(walDir) //nolint:errcheck
				_, err = d.Amber.AttachWAL(walDir, core.WALOptions{Policy: policy, Interval: interval})
			}
		}
		if err != nil {
			res.DurabilityErr = err.Error()
		} else {
			res.Fsync = cfg.Fsync
			defer d.Amber.DetachWAL() //nolint:errcheck
		}
	}
	var (
		readLats  []time.Duration
		writeLats []time.Duration
		pending   [][]rdf.Triple // inserted batches not yet deleted
		nextID    int
	)
	newBatch := func() []rdf.Triple {
		ts := make([]rdf.Triple, 0, batch)
		for i := 0; i < batch; i++ {
			s := rdf.NewIRI(fmt.Sprintf("%sv%d", churnNS, nextID))
			o := rdf.NewIRI(fmt.Sprintf("%sv%d", churnNS, nextID+1))
			ts = append(ts, rdf.Triple{S: s, P: rdf.NewIRI(churnNS + "linked"), O: o})
			nextID += 2
		}
		return ts
	}
	answered := 0
	for qi := 0; qi < len(queries); {
		if rng.Float64() < cfg.WriteRatio {
			start := time.Now()
			if len(pending) > 4 && rng.Intn(2) == 0 {
				// Delete the oldest inserted batch: exercises tombstones.
				d.Amber.Mutate(nil, pending[0]) //nolint:errcheck
				pending = pending[1:]
			} else {
				ts := newBatch()
				d.Amber.Mutate(ts, nil) //nolint:errcheck
				pending = append(pending, ts)
			}
			writeLats = append(writeLats, time.Since(start))
			res.Writes++
			continue
		}
		ok, dur, _ := d.RunQuery(AMbER, queries[qi], cfg.Timeout)
		qi++
		res.Reads++
		if ok {
			answered++
			readLats = append(readLats, dur)
		}
	}
	// Quiesce and capture the run's compaction and durability counters
	// BEFORE the restore below, which forces its own compaction (and logs
	// its own writes) that must not be attributed to the measured workload.
	d.Amber.WaitCompaction()
	genAfter := d.Amber.GenerationInfo()
	res.Compactions = genAfter.Compactions - genBefore.Compactions
	res.LastCompaction = genAfter.LastCompaction
	if res.Fsync != "" {
		di := d.Amber.DurabilityInfo()
		res.Fsyncs = di.Fsyncs
		res.WALBytes = di.WALBytes
	}

	// Restore: remove everything still inserted, fold into a fresh base.
	for _, ts := range pending {
		d.Amber.Mutate(nil, ts) //nolint:errcheck
	}
	d.Amber.Compact() //nolint:errcheck

	if len(readLats) > 0 {
		res.ReadAvg, res.ReadP50, res.ReadP99 = latencySummary(readLats)
	}
	if len(writeLats) > 0 {
		res.WriteAvg, res.WriteP50, res.WriteP99 = latencySummary(writeLats)
	}
	if res.Reads > 0 {
		res.Unanswered = 100 * float64(res.Reads-answered) / float64(res.Reads)
	}
	return res
}

// latencySummary sorts the samples in place and returns their mean, p50
// and p99 (nearest-rank).
func latencySummary(lats []time.Duration) (avg, p50, p99 time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	avg = total / time.Duration(len(lats))
	p50 = lats[len(lats)/2]
	p99 = lats[min(len(lats)-1, len(lats)*99/100)]
	return avg, p50, p99
}

// FormatChurn renders a churn result as a small report block.
func FormatChurn(r ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Mixed read/write (writeratio=%.2f)\n\n", r.WriteRatio)
	fmt.Fprintf(&b, "reads:  %d (unanswered %.1f%%)  avg=%s p50=%s p99=%s\n",
		r.Reads, r.Unanswered, r.ReadAvg.Round(time.Microsecond),
		r.ReadP50.Round(time.Microsecond), r.ReadP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "writes: %d  avg=%s p50=%s p99=%s\n",
		r.Writes, r.WriteAvg.Round(time.Microsecond),
		r.WriteP50.Round(time.Microsecond), r.WriteP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "compactions during run: %d (last took %s)\n",
		r.Compactions, r.LastCompaction.Round(time.Microsecond))
	switch {
	case r.DurabilityErr != "":
		fmt.Fprintf(&b, "durability: DISABLED (WAL setup failed: %s)\n", r.DurabilityErr)
	case r.Fsync != "":
		fmt.Fprintf(&b, "durability: fsync=%s  fsyncs=%d  wal_bytes=%d\n",
			r.Fsync, r.Fsyncs, r.WALBytes)
	}
	return b.String()
}

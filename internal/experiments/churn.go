package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/wal"
	"repro/internal/workload"
)

// churnNS is the namespace of the synthetic triples the churn workload
// inserts and deletes; keeping it disjoint from the datasets lets the
// run restore the store exactly afterwards.
const churnNS = "http://amber.bench/churn#"

// ChurnResult reports query latency under a mixed read/write workload:
// the live-update subsystem's benchmark (not part of the paper, which is
// read-only).
type ChurnResult struct {
	// Reads and Writes count executed operations; WriteRatio is the
	// configured write fraction.
	Reads, Writes int
	WriteRatio    float64
	// ReadAvg/ReadP50/ReadP99 summarize answered-read latency.
	ReadAvg, ReadP50, ReadP99 time.Duration
	// WriteAvg/WriteP50/WriteP99 summarize write-batch latency; with a
	// WAL attached they include the durability (fsync) cost.
	WriteAvg, WriteP50, WriteP99 time.Duration
	// Unanswered is the percentage of reads that hit the timeout.
	Unanswered float64
	// Compactions counts compactions that fired during the run;
	// LastCompaction is the duration of the final one.
	Compactions    uint64
	LastCompaction time.Duration
	// Fsync is the WAL policy the run used ("" = no WAL); Fsyncs and
	// WALBytes are the log's counters over the measured workload.
	// DurabilityErr reports a WAL setup failure (the run then proceeds
	// without durability).
	Fsync         string
	Fsyncs        uint64
	WALBytes      int64
	DurabilityErr string
	// Writers is the concurrent writer count (1 = the interleaved
	// single-threaded loop). With Writers > 1, WritesPerSec is committed
	// batches per second over the writers' flat-out span — the durable
	// write throughput number.
	Writers      int
	WritesPerSec float64
	// Groups, MeanGroupSize and MaxGroupSize summarize commit grouping
	// over the measured workload: fewer groups than writes means batches
	// shared WAL append spans (and fsyncs under fsync=always).
	Groups        uint64
	MeanGroupSize float64
	MaxGroupSize  uint64
}

// RunChurn interleaves workload queries with INSERT/DELETE batches at
// cfg.WriteRatio against the AMbER store, letting compaction fire as the
// overlay grows. Reads execute through the same prepared-count path as
// the figures; every read pins a consistent snapshot while writes land.
// The store is restored (inserted triples deleted, then compacted) on
// return, so later experiments see the original data.
func RunChurn(d *Dataset, kind workload.Kind, cfg Config) ChurnResult {
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	// The loop only advances on reads; a ratio of 1.0 would never
	// terminate, so clamp to a read-making range.
	if cfg.WriteRatio > 0.95 {
		cfg.WriteRatio = 0.95
	}
	if cfg.WriteRatio < 0 {
		cfg.WriteRatio = 0
	}
	size := 10
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[0]
	}
	batch := cfg.WriteBatch
	if batch <= 0 {
		batch = 64
	}
	queries := d.Gen.Workload(kind, size, cfg.QueriesPerPoint)
	if len(queries) == 0 {
		return ChurnResult{WriteRatio: cfg.WriteRatio}
	}
	genBefore := d.Amber.GenerationInfo()
	// Scale the compaction threshold to the run's write volume so the
	// benchmark actually exercises compaction, then restore the default.
	// The single-writer loop writes a handful of batches, so a few batches'
	// worth of entries suffices; the concurrent mode pushes writers*128
	// batches flat-out, and a threshold at half that volume keeps base
	// rebuilds from dominating the span the throughput number is measured
	// over (insert/delete annihilation may keep the overlay under it).
	threshold := 4 * batch
	if cfg.Writers > 1 {
		threshold = cfg.Writers * max(128, cfg.QueriesPerPoint) * batch / 2
	}
	d.Amber.SetCompactThreshold(threshold)
	defer d.Amber.SetCompactThreshold(core.DefaultCompactThreshold)

	res := ChurnResult{WriteRatio: cfg.WriteRatio}

	// Durable mode: log every write batch to a throwaway WAL under the
	// requested fsync policy, so WriteAvg includes the durability cost.
	if cfg.Fsync != "" {
		policy, interval, err := wal.ParseSyncPolicy(cfg.Fsync)
		if err == nil {
			var walDir string
			walDir, err = os.MkdirTemp("", "amber-churn-wal-")
			if err == nil {
				defer os.RemoveAll(walDir) //nolint:errcheck
				_, err = d.Amber.AttachWAL(walDir, core.WALOptions{Policy: policy, Interval: interval})
			}
		}
		if err != nil {
			res.DurabilityErr = err.Error()
		} else {
			res.Fsync = cfg.Fsync
			defer d.Amber.DetachWAL() //nolint:errcheck
		}
	}
	wiBefore := d.Amber.WriteInfo()
	var (
		readLats  []time.Duration
		writeLats []time.Duration
		pending   [][]rdf.Triple // inserted batches not yet deleted
	)
	// newBatch builds one insert batch from a private ID range so
	// concurrent writers never collide and the restore below can delete
	// exactly what was inserted.
	newBatch := func(nextID *int) []rdf.Triple {
		ts := make([]rdf.Triple, 0, batch)
		for i := 0; i < batch; i++ {
			s := rdf.NewIRI(fmt.Sprintf("%sv%d", churnNS, *nextID))
			o := rdf.NewIRI(fmt.Sprintf("%sv%d", churnNS, *nextID+1))
			ts = append(ts, rdf.Triple{S: s, P: rdf.NewIRI(churnNS + "linked"), O: o})
			*nextID += 2
		}
		return ts
	}
	answered := 0
	if cfg.Writers > 1 {
		// Concurrent mode: W writer goroutines commit batches flat-out
		// (exercising group commit) while reads run on this goroutine.
		// Throughput is batches committed over the writers' span. The op
		// sequence depends only on the rng, so every batch is built before
		// the clock starts: the measured span is Mutate calls, not triple
		// generation.
		res.Writers = cfg.Writers
		batchesPerWriter := max(128, cfg.QueriesPerPoint)
		type churnOp struct {
			ins, del []rdf.Triple
		}
		plans := make([][]churnOp, cfg.Writers)
		for w := range plans {
			wrng := rand.New(rand.NewSource(cfg.Seed + 99 + int64(w)))
			nextID := w << 26 // disjoint per-writer ID range
			var mine [][]rdf.Triple
			ops := make([]churnOp, 0, batchesPerWriter)
			for i := 0; i < batchesPerWriter; i++ {
				if len(mine) > 4 && wrng.Intn(2) == 0 {
					ops = append(ops, churnOp{del: mine[0]})
					mine = mine[1:]
				} else {
					ts := newBatch(&nextID)
					ops = append(ops, churnOp{ins: ts})
					mine = append(mine, ts)
				}
			}
			plans[w] = ops
			pending = append(pending, mine...)
		}
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex // guards writeLats merges
			started = time.Now()
		)
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, batchesPerWriter)
				for _, op := range plans[w] {
					start := time.Now()
					d.Amber.Mutate(op.ins, op.del) //nolint:errcheck
					lats = append(lats, time.Since(start))
				}
				mu.Lock()
				writeLats = append(writeLats, lats...)
				mu.Unlock()
			}(w)
		}
		for qi := 0; qi < len(queries); qi++ {
			ok, dur, _ := d.RunQuery(AMbER, queries[qi], cfg.Timeout)
			res.Reads++
			if ok {
				answered++
				readLats = append(readLats, dur)
			}
		}
		wg.Wait()
		span := time.Since(started)
		res.Writes = cfg.Writers * batchesPerWriter
		if span > 0 {
			res.WritesPerSec = float64(res.Writes) / span.Seconds()
		}
	} else {
		res.Writers = 1
		nextID := 0
		for qi := 0; qi < len(queries); {
			if rng.Float64() < cfg.WriteRatio {
				start := time.Now()
				if len(pending) > 4 && rng.Intn(2) == 0 {
					// Delete the oldest inserted batch: exercises tombstones.
					d.Amber.Mutate(nil, pending[0]) //nolint:errcheck
					pending = pending[1:]
				} else {
					ts := newBatch(&nextID)
					d.Amber.Mutate(ts, nil) //nolint:errcheck
					pending = append(pending, ts)
				}
				writeLats = append(writeLats, time.Since(start))
				res.Writes++
				continue
			}
			ok, dur, _ := d.RunQuery(AMbER, queries[qi], cfg.Timeout)
			qi++
			res.Reads++
			if ok {
				answered++
				readLats = append(readLats, dur)
			}
		}
	}
	// Quiesce and capture the run's compaction and durability counters
	// BEFORE the restore below, which forces its own compaction (and logs
	// its own writes) that must not be attributed to the measured workload.
	d.Amber.WaitCompaction()
	genAfter := d.Amber.GenerationInfo()
	res.Compactions = genAfter.Compactions - genBefore.Compactions
	res.LastCompaction = genAfter.LastCompaction
	if res.Fsync != "" {
		di := d.Amber.DurabilityInfo()
		res.Fsyncs = di.Fsyncs
		res.WALBytes = di.WALBytes
	}
	wiAfter := d.Amber.WriteInfo()
	res.Groups = wiAfter.Groups - wiBefore.Groups
	res.MaxGroupSize = wiAfter.MaxGroupSize
	if res.Groups > 0 {
		res.MeanGroupSize = float64(wiAfter.Batches-wiBefore.Batches) / float64(res.Groups)
	}

	// Restore: remove everything still inserted, fold into a fresh base.
	for _, ts := range pending {
		d.Amber.Mutate(nil, ts) //nolint:errcheck
	}
	d.Amber.Compact() //nolint:errcheck

	if len(readLats) > 0 {
		res.ReadAvg, res.ReadP50, res.ReadP99 = latencySummary(readLats)
	}
	if len(writeLats) > 0 {
		res.WriteAvg, res.WriteP50, res.WriteP99 = latencySummary(writeLats)
	}
	if res.Reads > 0 {
		res.Unanswered = 100 * float64(res.Reads-answered) / float64(res.Reads)
	}
	return res
}

// latencySummary sorts the samples in place and returns their mean, p50
// and p99 (nearest-rank).
func latencySummary(lats []time.Duration) (avg, p50, p99 time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	avg = total / time.Duration(len(lats))
	p50 = lats[len(lats)/2]
	p99 = lats[min(len(lats)-1, len(lats)*99/100)]
	return avg, p50, p99
}

// FormatChurn renders a churn result as a small report block.
func FormatChurn(r ChurnResult) string {
	var b strings.Builder
	if r.Writers > 1 {
		fmt.Fprintf(&b, "## Mixed read/write (%d concurrent writers)\n\n", r.Writers)
	} else {
		fmt.Fprintf(&b, "## Mixed read/write (writeratio=%.2f)\n\n", r.WriteRatio)
	}
	fmt.Fprintf(&b, "reads:  %d (unanswered %.1f%%)  avg=%s p50=%s p99=%s\n",
		r.Reads, r.Unanswered, r.ReadAvg.Round(time.Microsecond),
		r.ReadP50.Round(time.Microsecond), r.ReadP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "writes: %d  avg=%s p50=%s p99=%s\n",
		r.Writes, r.WriteAvg.Round(time.Microsecond),
		r.WriteP50.Round(time.Microsecond), r.WriteP99.Round(time.Microsecond))
	if r.WritesPerSec > 0 {
		fmt.Fprintf(&b, "write throughput: %.0f batches/s\n", r.WritesPerSec)
	}
	if r.Groups > 0 {
		fmt.Fprintf(&b, "commit groups: %d (mean size %.2f, max %d)\n",
			r.Groups, r.MeanGroupSize, r.MaxGroupSize)
	}
	fmt.Fprintf(&b, "compactions during run: %d (last took %s)\n",
		r.Compactions, r.LastCompaction.Round(time.Microsecond))
	switch {
	case r.DurabilityErr != "":
		fmt.Fprintf(&b, "durability: DISABLED (WAL setup failed: %s)\n", r.DurabilityErr)
	case r.Fsync != "":
		fmt.Fprintf(&b, "durability: fsync=%s  fsyncs=%d  wal_bytes=%d\n",
			r.Fsync, r.Fsyncs, r.WALBytes)
	}
	return b.String()
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// regressionFactor is the benchstat-style gate: a shared metric that got
// more than this factor worse between two committed reports fails CI.
const regressionFactor = 2.0

// latencyFloorMS ignores regressions below this absolute delta: at
// sub-millisecond latencies a 2x swing is scheduler noise, not a
// regression.
const latencyFloorMS = 0.5

// CompareReports validates two amber-bench JSON reports (schema drift in
// either fails) and compares every metric they share: query latency
// percentiles matched by (dataset, shape, size), load throughput matched
// by dataset, and churn write/read latency and write throughput matched
// by fsync policy. It returns a human-readable line per regression — a
// metric more than 2x worse in new than old (latencies also need to move
// by an absolute floor) — plus a note per comparison it declined, and an
// error only when a report is malformed. Metrics present in only one
// report are skipped, so schema additions don't block the trajectory.
//
// Churn metrics are disk-bound, and absolute disk numbers do not
// transfer between machines: the same tree can show a 3-10x fsync-bound
// latency swing purely from slower storage. They are therefore compared
// only when both reports carry an environment fingerprint (EnvReport)
// and the fsync probes agree to within the regression factor; otherwise
// the churn comparison is skipped with an explicit note, never silently.
func CompareReports(oldData, newData []byte) (regs, notes []string, err error) {
	var oldRep, newRep BenchReport
	if err := decodeStrict(oldData, &oldRep); err != nil {
		return nil, nil, fmt.Errorf("old report: %w", err)
	}
	if err := decodeStrict(newData, &newRep); err != nil {
		return nil, nil, fmt.Errorf("new report: %w", err)
	}
	worse := func(oldV, newV float64) bool {
		return oldV > 0 && newV > oldV*regressionFactor
	}
	worseLat := func(oldV, newV float64) bool {
		return worse(oldV, newV) && newV-oldV > latencyFloorMS
	}

	// Load throughput: halving the triples/s build rate is a regression.
	for _, ol := range oldRep.Load {
		for _, nl := range newRep.Load {
			if nl.Dataset != ol.Dataset {
				continue
			}
			if ol.TriplesPerSec > 0 && nl.TriplesPerSec < ol.TriplesPerSec/regressionFactor {
				regs = append(regs, fmt.Sprintf(
					"load %s: triples_per_sec %.0f -> %.0f (>%.0fx slower)",
					ol.Dataset, ol.TriplesPerSec, nl.TriplesPerSec, regressionFactor))
			}
		}
	}

	// Query latency percentiles, matched by (dataset, shape, size).
	for _, oq := range oldRep.Queries {
		for _, nq := range newRep.Queries {
			if nq.Dataset != oq.Dataset || nq.Shape != oq.Shape || nq.Size != oq.Size {
				continue
			}
			point := fmt.Sprintf("%s/%s/%d", oq.Dataset, oq.Shape, oq.Size)
			if worseLat(oq.P50MS, nq.P50MS) {
				regs = append(regs, fmt.Sprintf("query %s: p50 %.3fms -> %.3fms", point, oq.P50MS, nq.P50MS))
			}
			if worseLat(oq.P99MS, nq.P99MS) {
				regs = append(regs, fmt.Sprintf("query %s: p99 %.3fms -> %.3fms", point, oq.P99MS, nq.P99MS))
			}
		}
	}

	// Churn, matched by fsync policy — only between matching storage.
	if ok, why := sameStorage(oldRep, newRep); !ok {
		notes = append(notes, "skipping churn comparisons ("+why+")")
		return regs, notes, nil
	}
	// Older reports have no writes_per_sec; derive a single-writer
	// throughput from write p50 so the trajectory still has a throughput
	// guard across the transition.
	for _, oc := range oldRep.Churn {
		for _, nc := range newRep.Churn {
			if nc.Fsync != oc.Fsync {
				continue
			}
			point := "churn fsync=" + displayFsync(oc.Fsync)
			if worseLat(oc.WriteP50MS, nc.WriteP50MS) && sameWriters(oc, nc) {
				regs = append(regs, fmt.Sprintf("%s: write p50 %.3fms -> %.3fms", point, oc.WriteP50MS, nc.WriteP50MS))
			}
			if worseLat(oc.WriteP99MS, nc.WriteP99MS) && sameWriters(oc, nc) {
				regs = append(regs, fmt.Sprintf("%s: write p99 %.3fms -> %.3fms", point, oc.WriteP99MS, nc.WriteP99MS))
			}
			if worseLat(oc.ReadP50MS, nc.ReadP50MS) && sameWriters(oc, nc) {
				regs = append(regs, fmt.Sprintf("%s: read p50 %.3fms -> %.3fms", point, oc.ReadP50MS, nc.ReadP50MS))
			}
			if worseLat(oc.ReadP99MS, nc.ReadP99MS) && sameWriters(oc, nc) {
				regs = append(regs, fmt.Sprintf("%s: read p99 %.3fms -> %.3fms", point, oc.ReadP99MS, nc.ReadP99MS))
			}
			oldTP, newTP := churnThroughput(oc), churnThroughput(nc)
			if oldTP > 0 && newTP > 0 && newTP < oldTP/regressionFactor {
				regs = append(regs, fmt.Sprintf(
					"%s: write throughput %.0f/s -> %.0f/s (>%.0fx slower)",
					point, oldTP, newTP, regressionFactor))
			}
		}
	}
	return regs, notes, nil
}

// sameStorage reports whether two reports were generated on storage
// similar enough for their disk-bound churn numbers to be comparable:
// both carry an environment fingerprint with a successful fsync probe,
// and the probes agree to within the regression factor.
func sameStorage(a, b BenchReport) (bool, string) {
	if a.Env == nil {
		return false, "old report has no environment fingerprint"
	}
	if b.Env == nil {
		return false, "new report has no environment fingerprint"
	}
	pa, pb := a.Env.FsyncProbeMS, b.Env.FsyncProbeMS
	if pa <= 0 || pb <= 0 {
		return false, "a report's fsync probe failed"
	}
	if pb > pa*regressionFactor || pa > pb*regressionFactor {
		return false, fmt.Sprintf("fsync probe %.3fms vs %.3fms: different storage", pa, pb)
	}
	return true, ""
}

func decodeStrict(data []byte, rep *BenchReport) error {
	if err := ValidateReport(data); err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(rep)
}

// sameWriters gates latency comparisons: a single interleaved writer's
// uncontended batch (and read) latency and the latencies measured while
// concurrent writers saturate the machine are different experiments.
func sameWriters(a, b ChurnReport) bool {
	wa, wb := a.Writers, b.Writers
	if wa == 0 {
		wa = 1
	}
	if wb == 0 {
		wb = 1
	}
	return wa == wb
}

// churnThroughput is the run's durable write throughput in batches/s:
// the measured flat-out rate when present, else the single-writer rate
// implied by the per-batch p50.
func churnThroughput(c ChurnReport) float64 {
	if c.WritesPerSec > 0 {
		return c.WritesPerSec
	}
	if c.WriteP50MS > 0 {
		return 1000 / c.WriteP50MS
	}
	return 0
}

func displayFsync(fs string) string {
	if fs == "" {
		return "(none)"
	}
	return fs
}

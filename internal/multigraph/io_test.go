package multigraph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func encodeDecode(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.NumTriples() != b.NumTriples() || a.NumEdgeTypes() != b.NumEdgeTypes() ||
		a.NumAttrs() != b.NumAttrs() {
		t.Fatalf("stats differ: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)",
			a.NumVertices(), a.NumEdges(), a.NumTriples(), a.NumEdgeTypes(), a.NumAttrs(),
			b.NumVertices(), b.NumEdges(), b.NumTriples(), b.NumEdgeTypes(), b.NumAttrs())
	}
	for v := 0; v < a.NumVertices(); v++ {
		vid := dict.VertexID(v)
		if a.Dicts.VertexIRI(vid) != b.Dicts.VertexIRI(vid) {
			t.Fatalf("vertex %d IRI differs", v)
		}
		ao, bo := a.Out(vid), b.Out(vid)
		if len(ao) != len(bo) {
			t.Fatalf("out-degree of %d differs", v)
		}
		for i := range ao {
			if ao[i].V != bo[i].V || len(ao[i].Types) != len(bo[i].Types) {
				t.Fatalf("neighbour %d of %d differs", i, v)
			}
			for j := range ao[i].Types {
				if ao[i].Types[j] != bo[i].Types[j] {
					t.Fatalf("types of %d→%d differ", v, ao[i].V)
				}
			}
		}
		ai, bi := a.In(vid), b.In(vid)
		if len(ai) != len(bi) {
			t.Fatalf("in-degree of %d differs", v)
		}
		aa, ba := a.Attrs(vid), b.Attrs(vid)
		if len(aa) != len(ba) {
			t.Fatalf("attrs of %d differ", v)
		}
		for i := range aa {
			if aa[i] != ba[i] {
				t.Fatalf("attr %d of %d differs", i, v)
			}
		}
	}
	for i := 0; i < a.NumEdgeTypes(); i++ {
		if a.Dicts.EdgeTypeIRI(dict.EdgeType(i)) != b.Dicts.EdgeTypeIRI(dict.EdgeType(i)) {
			t.Fatalf("edge type %d differs", i)
		}
	}
	for i := 0; i < a.NumAttrs(); i++ {
		if a.Dicts.Attr(dict.AttrID(i)) != b.Dicts.Attr(dict.AttrID(i)) {
			t.Fatalf("attribute %d differs", i)
		}
	}
}

func TestSnapshotRoundTripFigure1(t *testing.T) {
	g := buildFigure1(t)
	graphsEqual(t, g, encodeDecode(t, g))
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	g, err := FromTriples(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeDecode(t, g)
	if got.NumVertices() != 0 || got.NumTriples() != 0 {
		t.Errorf("empty round trip: %d vertices", got.NumVertices())
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30, 8, 200)
		graphsEqual(t, g, encodeDecode(t, g))
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := buildFigure1(t)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[0] = 'X'
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[4] = 99
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{5, len(raw) / 2, len(raw) - 2} {
			if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bit flip fails checksum", func(t *testing.T) {
		// Flip a byte in the middle (adjacency area); either a structural
		// validation or the CRC must reject it.
		bad := append([]byte{}, raw...)
		bad[len(bad)/2] ^= 0xff
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bit flip accepted")
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(nil)); err == nil {
			t.Error("empty input accepted")
		}
	})
}

func TestSnapshotDeterministic(t *testing.T) {
	g := buildFigure1(t)
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshot encoding not deterministic")
	}
}

// encodeV1 writes the pre-typed-term snapshot layout (version 1): the
// attribute dictionary carries (predicate, literal) string pairs with no
// datatype or language fields. Kept as a byte-level emitter so the
// compatibility guarantee — old Save files still open — stays tested
// after the writer moved to version 2.
func encodeV1(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cw := &crcWriter{w: bw}
	write := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := cw.Write([]byte(snapshotMagic))
	write(err)
	_, err = cw.Write([]byte{snapshotVersionOld})
	write(err)
	write(cw.uvarint(uint64(g.Dicts.Vertices.Len())))
	for i := 0; i < g.Dicts.Vertices.Len(); i++ {
		write(cw.str(g.Dicts.Vertices.Value(uint32(i))))
	}
	write(cw.uvarint(uint64(g.Dicts.EdgeTypes.Len())))
	for i := 0; i < g.Dicts.EdgeTypes.Len(); i++ {
		write(cw.str(g.Dicts.EdgeTypes.Value(uint32(i))))
	}
	write(cw.uvarint(uint64(g.Dicts.Attrs.Len())))
	for i := 0; i < g.Dicts.Attrs.Len(); i++ {
		a := g.Dicts.Attr(dict.AttrID(i))
		write(cw.str(a.Predicate))
		write(cw.str(a.Lexical)) // v1 stored the folded lexical form here
	}
	write(cw.uvarint(uint64(g.numTriples)))
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.out[v]
		write(cw.uvarint(uint64(len(adj))))
		for _, nb := range adj {
			write(cw.uvarint(uint64(nb.V)))
			write(cw.uvarint(uint64(len(nb.Types))))
			prev := uint64(0)
			for _, ty := range nb.Types {
				write(cw.uvarint(uint64(ty) - prev))
				prev = uint64(ty)
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		as := g.attrs[v]
		write(cw.uvarint(uint64(len(as))))
		prev := uint64(0)
		for _, a := range as {
			write(cw.uvarint(uint64(a) - prev))
			prev = uint64(a)
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeVersion1Snapshot: snapshots written before the typed-term
// dictionary still open; their folded literal strings load as plain
// literals, exactly as stored.
func TestDecodeVersion1Snapshot(t *testing.T) {
	g, err := FromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://y/p"), O: rdf.NewIRI("http://x/b")},
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://y/q"), O: rdf.NewLiteral("folded@en")},
	})
	if err != nil {
		t.Fatal(err)
	}
	old := encodeV1(t, g)
	got, err := Decode(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumTriples() != g.NumTriples() {
		t.Errorf("v1 decode sizes: %d vertices %d triples", got.NumVertices(), got.NumTriples())
	}
	a := got.Dicts.Attr(0)
	if a.Lexical != "folded@en" || a.Datatype != "" || a.Lang != "" {
		t.Errorf("v1 attribute = %+v, want plain folded literal", a)
	}
}

// TestDecodeUnknownVersionFails: a future version must fail with a clear
// versioned error, not a checksum mismatch or a garbled graph.
func TestDecodeUnknownVersionFails(t *testing.T) {
	g, err := FromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://y/p"), O: rdf.NewIRI("http://x/b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(snapshotMagic)] = 99
	_, err = Decode(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "unsupported snapshot version 99") {
		t.Errorf("Decode(v99) err = %v", err)
	}
}

// TestTypedAttributeSnapshotRoundTrip: datatypes and language tags
// survive Encode→Decode.
func TestTypedAttributeSnapshotRoundTrip(t *testing.T) {
	g, err := FromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://y/age"),
			O: rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
		{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://y/greet"),
			O: rdf.NewLangLiteral("hi", "en")},
		{S: rdf.NewBlank("b1"), P: rdf.NewIRI("http://y/name"), O: rdf.NewLiteral("plain")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := encodeDecode(t, g)
	for i := 0; i < g.Dicts.Attrs.Len(); i++ {
		want := g.Dicts.Attr(dict.AttrID(i))
		if have := got.Dicts.Attr(dict.AttrID(i)); have != want {
			t.Errorf("attr %d = %+v, want %+v", i, have, want)
		}
	}
}

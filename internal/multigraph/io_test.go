package multigraph

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dict"
)

func encodeDecode(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.NumTriples() != b.NumTriples() || a.NumEdgeTypes() != b.NumEdgeTypes() ||
		a.NumAttrs() != b.NumAttrs() {
		t.Fatalf("stats differ: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)",
			a.NumVertices(), a.NumEdges(), a.NumTriples(), a.NumEdgeTypes(), a.NumAttrs(),
			b.NumVertices(), b.NumEdges(), b.NumTriples(), b.NumEdgeTypes(), b.NumAttrs())
	}
	for v := 0; v < a.NumVertices(); v++ {
		vid := dict.VertexID(v)
		if a.Dicts.VertexIRI(vid) != b.Dicts.VertexIRI(vid) {
			t.Fatalf("vertex %d IRI differs", v)
		}
		ao, bo := a.Out(vid), b.Out(vid)
		if len(ao) != len(bo) {
			t.Fatalf("out-degree of %d differs", v)
		}
		for i := range ao {
			if ao[i].V != bo[i].V || len(ao[i].Types) != len(bo[i].Types) {
				t.Fatalf("neighbour %d of %d differs", i, v)
			}
			for j := range ao[i].Types {
				if ao[i].Types[j] != bo[i].Types[j] {
					t.Fatalf("types of %d→%d differ", v, ao[i].V)
				}
			}
		}
		ai, bi := a.In(vid), b.In(vid)
		if len(ai) != len(bi) {
			t.Fatalf("in-degree of %d differs", v)
		}
		aa, ba := a.Attrs(vid), b.Attrs(vid)
		if len(aa) != len(ba) {
			t.Fatalf("attrs of %d differ", v)
		}
		for i := range aa {
			if aa[i] != ba[i] {
				t.Fatalf("attr %d of %d differs", i, v)
			}
		}
	}
	for i := 0; i < a.NumEdgeTypes(); i++ {
		if a.Dicts.EdgeTypeIRI(dict.EdgeType(i)) != b.Dicts.EdgeTypeIRI(dict.EdgeType(i)) {
			t.Fatalf("edge type %d differs", i)
		}
	}
	for i := 0; i < a.NumAttrs(); i++ {
		if a.Dicts.Attr(dict.AttrID(i)) != b.Dicts.Attr(dict.AttrID(i)) {
			t.Fatalf("attribute %d differs", i)
		}
	}
}

func TestSnapshotRoundTripFigure1(t *testing.T) {
	g := buildFigure1(t)
	graphsEqual(t, g, encodeDecode(t, g))
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	g, err := FromTriples(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeDecode(t, g)
	if got.NumVertices() != 0 || got.NumTriples() != 0 {
		t.Errorf("empty round trip: %d vertices", got.NumVertices())
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30, 8, 200)
		graphsEqual(t, g, encodeDecode(t, g))
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := buildFigure1(t)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[0] = 'X'
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, raw...)
		bad[4] = 99
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bad version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{5, len(raw) / 2, len(raw) - 2} {
			if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bit flip fails checksum", func(t *testing.T) {
		// Flip a byte in the middle (adjacency area); either a structural
		// validation or the CRC must reject it.
		bad := append([]byte{}, raw...)
		bad[len(bad)/2] ^= 0xff
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Error("bit flip accepted")
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(nil)); err == nil {
			t.Error("empty input accepted")
		}
	})
}

func TestSnapshotDeterministic(t *testing.T) {
	g := buildFigure1(t)
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshot encoding not deterministic")
	}
}

package multigraph

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// figure1 is the RDF tripleset of the paper's running example (Figure 1a).
const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func buildFigure1(t *testing.T) *Graph {
	t.Helper()
	triples, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatalf("parse figure1: %v", err)
	}
	g, err := FromTriples(triples)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func vid(t *testing.T, g *Graph, iri string) dict.VertexID {
	t.Helper()
	v, ok := g.Dicts.LookupVertex("http://dbpedia.org/resource/" + iri)
	if !ok {
		t.Fatalf("vertex %q not found", iri)
	}
	return v
}

func etype(t *testing.T, g *Graph, pred string) dict.EdgeType {
	t.Helper()
	e, ok := g.Dicts.LookupEdgeType("http://dbpedia.org/ontology/" + pred)
	if !ok {
		t.Fatalf("edge type %q not found", pred)
	}
	return e
}

func TestFigure1Statistics(t *testing.T) {
	g := buildFigure1(t)
	if got := g.NumTriples(); got != 16 {
		t.Errorf("NumTriples = %d, want 16", got)
	}
	// 9 IRI vertices (Figure 1c has v0..v8).
	if got := g.NumVertices(); got != 9 {
		t.Errorf("NumVertices = %d, want 9", got)
	}
	// 13 edge triples collapse to 12 distinct directed pairs (wasBornIn and
	// diedIn share the Amy→London pair).
	if got := g.NumEdges(); got != 12 {
		t.Errorf("NumEdges = %d, want 12", got)
	}
	// 9 predicates connect IRIs; 3 predicates only ever reach literals.
	if got := g.NumEdgeTypes(); got != 9 {
		t.Errorf("NumEdgeTypes = %d, want 9", got)
	}
	if got := g.NumAttrs(); got != 3 {
		t.Errorf("NumAttrs = %d, want 3", got)
	}
}

func TestFigure1Attributes(t *testing.T) {
	g := buildFigure1(t)
	wembley := vid(t, g, "WembleyStadium")
	band := vid(t, g, "Music_Band")
	london := vid(t, g, "London")

	if got := g.Attrs(wembley); len(got) != 1 {
		t.Fatalf("Wembley attrs = %v, want 1 attribute", got)
	} else if a := g.Dicts.Attr(got[0]); a.Lexical != "90000" {
		t.Errorf("Wembley attribute = %v", a)
	}
	if got := g.Attrs(band); len(got) != 2 {
		t.Errorf("Music_Band attrs = %v, want 2 attributes", got)
	}
	if got := g.Attrs(london); len(got) != 0 {
		t.Errorf("London attrs = %v, want none", got)
	}

	if !g.HasAttrs(band, g.Attrs(band)) {
		t.Error("HasAttrs(all own attrs) = false")
	}
	if g.HasAttrs(london, g.Attrs(band)) {
		t.Error("London should not have Music_Band's attributes")
	}
	if !g.HasAttrs(london, nil) {
		t.Error("empty attribute requirement must always hold")
	}
}

func TestFigure1MultiEdge(t *testing.T) {
	g := buildFigure1(t)
	amy := vid(t, g, "Amy_Winehouse")
	london := vid(t, g, "London")
	born := etype(t, g, "wasBornIn")
	died := etype(t, g, "diedIn")

	types := g.EdgeTypes(amy, london)
	if len(types) != 2 {
		t.Fatalf("EdgeTypes(Amy, London) = %v, want 2 types", types)
	}
	if !g.HasEdgeTypes(amy, london, []dict.EdgeType{min(born, died), max(born, died)}) {
		t.Error("multi-edge {wasBornIn, diedIn} not found")
	}
	if g.EdgeTypes(london, amy) != nil {
		t.Error("reverse edge should not exist (directed)")
	}
	if g.EdgeTypes(amy, amy) != nil {
		t.Error("self edge should not exist")
	}
}

func TestInOutConsistency(t *testing.T) {
	g := buildFigure1(t)
	// Every out-edge must appear as an in-edge on the other side, with the
	// identical type set, and vice versa.
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.Out(dict.VertexID(v)) {
			found := false
			for _, back := range g.In(nb.V) {
				if back.V == dict.VertexID(v) {
					found = true
					if len(back.Types) != len(nb.Types) {
						t.Errorf("type sets differ on %d→%d", v, nb.V)
					}
				}
			}
			if !found {
				t.Errorf("edge %d→%d missing from in-list", v, nb.V)
			}
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := buildFigure1(t)
	for v := 0; v < g.NumVertices(); v++ {
		for _, adj := range [][]Neighbor{g.Out(dict.VertexID(v)), g.In(dict.VertexID(v))} {
			for i := 1; i < len(adj); i++ {
				if adj[i-1].V >= adj[i].V {
					t.Fatalf("adjacency of %d not sorted: %v", v, adj)
				}
			}
			for _, nb := range adj {
				for i := 1; i < len(nb.Types); i++ {
					if nb.Types[i-1] >= nb.Types[i] {
						t.Fatalf("types of %d→%d not sorted: %v", v, nb.V, nb.Types)
					}
				}
			}
		}
	}
}

func TestBuilderRejectsBadTriples(t *testing.T) {
	var b Builder
	lit := rdf.NewLiteral("x")
	iri := rdf.NewIRI("http://x/a")
	if err := b.Add(rdf.Triple{S: lit, P: iri, O: iri}); err == nil {
		t.Error("literal subject accepted")
	}
	if err := b.Add(rdf.Triple{S: iri, P: lit, O: iri}); err == nil {
		t.Error("literal predicate accepted")
	}
	if err := b.AddAll([]rdf.Triple{{S: iri, P: iri, O: lit}, {S: lit, P: iri, O: iri}}); err == nil {
		t.Error("AddAll should stop at bad triple")
	}
}

func TestDuplicateTriplesCollapse(t *testing.T) {
	src := `<http://x/a> <http://y/p> <http://x/b> .
<http://x/a> <http://y/p> <http://x/b> .
<http://x/a> <http://y/q> "1" .
<http://x/a> <http://y/q> "1" .
`
	triples, err := rdf.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	a, _ := g.Dicts.LookupVertex("http://x/a")
	if got := g.Attrs(a); len(got) != 1 {
		t.Errorf("attrs = %v, want 1", got)
	}
	if ts := g.EdgeTypes(a, 1); len(ts) != 1 {
		t.Errorf("edge types = %v, want 1", ts)
	}
	if g.NumTriples() != 4 {
		t.Errorf("NumTriples = %d, want 4 (raw count)", g.NumTriples())
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromTriples(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumAttrs() != 0 {
		t.Errorf("empty graph has content: V=%d E=%d A=%d",
			g.NumVertices(), g.NumEdges(), g.NumAttrs())
	}
}

func TestContainsTypes(t *testing.T) {
	tests := []struct {
		have, want []dict.EdgeType
		ok         bool
	}{
		{[]dict.EdgeType{1, 3, 5}, []dict.EdgeType{3}, true},
		{[]dict.EdgeType{1, 3, 5}, []dict.EdgeType{1, 5}, true},
		{[]dict.EdgeType{1, 3, 5}, []dict.EdgeType{1, 3, 5}, true},
		{[]dict.EdgeType{1, 3, 5}, nil, true},
		{[]dict.EdgeType{1, 3, 5}, []dict.EdgeType{2}, false},
		{[]dict.EdgeType{1, 3, 5}, []dict.EdgeType{1, 2}, false},
		{[]dict.EdgeType{3}, []dict.EdgeType{3, 3}, false}, // multiset: need two
		{nil, []dict.EdgeType{0}, false},
		{nil, nil, true},
	}
	for _, tc := range tests {
		if got := ContainsTypes(tc.have, tc.want); got != tc.ok {
			t.Errorf("ContainsTypes(%v, %v) = %v, want %v", tc.have, tc.want, got, tc.ok)
		}
	}
}

func TestDegree(t *testing.T) {
	g := buildFigure1(t)
	london := vid(t, g, "London")
	// London (paper's v2): 4 incoming neighbours (England, Nolan, Amy,
	// Music_Band) + 2 outgoing (England, WembleyStadium).
	if got := g.Degree(london); got != 6 {
		t.Errorf("Degree(London) = %d, want 6", got)
	}
}

// randomGraph builds a small random multigraph for property tests.
func randomGraph(rng *rand.Rand, nV, nT, nEdges int) *Graph {
	var b Builder
	iri := func(i int) rdf.Term { return rdf.NewIRI(string(rune('a'+i%26)) + "/" + itoa(i)) }
	for i := 0; i < nEdges; i++ {
		s := iri(rng.Intn(nV))
		o := iri(rng.Intn(nV))
		p := rdf.NewIRI("p" + itoa(rng.Intn(nT)))
		if s == o {
			continue
		}
		_ = b.Add(rdf.Triple{S: s, P: p, O: o})
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

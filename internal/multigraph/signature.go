package multigraph

import (
	"math"

	"repro/internal/dict"
)

// SynopsisFields is the dimensionality of a vertex synopsis: the four
// features f1..f4 of Section 4.2, replicated for incoming (+) and outgoing
// (−) edges.
const SynopsisFields = 8

// Synopsis is the surrogate representation of a vertex signature
// (Section 4.2, Table 3). Field order:
//
//	[0] f1+  maximum cardinality of an incoming multi-edge
//	[1] f2+  number of unique incoming edge types ("dimensions")
//	[2] f3+  NEGATED minimum incoming edge-type index
//	[3] f4+  maximum incoming edge-type index
//	[4] f1−  … same four for outgoing edges …
//	[5] f2−
//	[6] f3−  NEGATED minimum outgoing edge-type index
//	[7] f4−
//
// f3 is stored negated so that candidate filtering is a single dominance
// test: u can match v only if Synopsis(u)[i] ≤ Synopsis(v)[i] for every i
// (Lemma 1). A direction with no edges contributes all-zero fields, which
// any vertex dominates.
type Synopsis [SynopsisFields]int32

// AsQuery converts a synopsis computed from a query vertex's signature into
// the form used for index probes. When a direction has no edges at all, its
// negated-minimum field (f3) is lowered to the global minimum so that the
// uniform dominance test places no constraint on that direction: a data
// vertex with incoming edges of any minimum index must still match a query
// vertex that has no incoming edges. (Data synopses keep plain zeros for
// empty directions — Lemma 1's proof relies on f1 rejecting those.)
func (s Synopsis) AsQuery() Synopsis {
	if s[0] == 0 { // no incoming multi-edges (f1+ ≥ 1 otherwise)
		s[2] = math.MinInt32
	}
	if s[4] == 0 { // no outgoing multi-edges
		s[6] = math.MinInt32
	}
	return s
}

// Dominates reports whether s dominates q componentwise (q[i] ≤ s[i] ∀i),
// i.e. whether the rectangle spanned by q is contained in the one spanned
// by s. A data vertex with synopsis s remains a candidate for a query
// vertex with synopsis q exactly when this holds.
func (s Synopsis) Dominates(q Synopsis) bool {
	for i := range s {
		if q[i] > s[i] {
			return false
		}
	}
	return true
}

// sideSynopsis fills half of a synopsis from one direction's multi-edges.
func sideSynopsis(dst []int32, multiEdges [][]dict.EdgeType) {
	if len(multiEdges) == 0 {
		return
	}
	var (
		maxCard int32
		minIdx  = int32(-1)
		maxIdx  int32
		uniq    = make(map[dict.EdgeType]struct{})
	)
	for _, me := range multiEdges {
		if len(me) == 0 {
			continue
		}
		if c := int32(len(me)); c > maxCard {
			maxCard = c
		}
		for _, t := range me {
			uniq[t] = struct{}{}
			idx := int32(t)
			if minIdx < 0 || idx < minIdx {
				minIdx = idx
			}
			if idx > maxIdx {
				maxIdx = idx
			}
		}
	}
	if len(uniq) == 0 {
		return
	}
	dst[0] = maxCard
	dst[1] = int32(len(uniq))
	dst[2] = -minIdx
	dst[3] = maxIdx
}

// SynopsisFromMultiEdges computes a synopsis from explicit incoming and
// outgoing multi-edge sets. It is shared between data vertices and query
// vertices (whose signatures come from the query multigraph).
func SynopsisFromMultiEdges(in, out [][]dict.EdgeType) Synopsis {
	var s Synopsis
	sideSynopsis(s[0:4], in)
	sideSynopsis(s[4:8], out)
	return s
}

// VertexSynopsis computes the synopsis of data vertex v.
func (g *Graph) VertexSynopsis(v dict.VertexID) Synopsis {
	in := make([][]dict.EdgeType, len(g.in[v]))
	for i, nb := range g.in[v] {
		in[i] = nb.Types
	}
	out := make([][]dict.EdgeType, len(g.out[v]))
	for i, nb := range g.out[v] {
		out[i] = nb.Types
	}
	return SynopsisFromMultiEdges(in, out)
}

// Signature returns the vertex signature σv of Definition 3 as two slices
// of multi-edges: incoming (+) and outgoing (−). The inner slices alias the
// graph's storage and must not be modified.
func (g *Graph) Signature(v dict.VertexID) (in, out [][]dict.EdgeType) {
	in = make([][]dict.EdgeType, len(g.in[v]))
	for i, nb := range g.in[v] {
		in[i] = nb.Types
	}
	out = make([][]dict.EdgeType, len(g.out[v]))
	for i, nb := range g.out[v] {
		out[i] = nb.Types
	}
	return in, out
}

// SignatureSubsumes reports whether the signature (qin, qout) of a query
// vertex is subsumed by data vertex v's signature in the exact sense the
// synopsis approximates: for every query multi-edge there must exist a
// distinct data multi-edge of the same direction containing it.
//
// This is the reference ("ground truth") predicate used by tests to verify
// Lemma 1: the synopsis dominance test never prunes a vertex for which
// SignatureSubsumes holds.
func (g *Graph) SignatureSubsumes(v dict.VertexID, qin, qout [][]dict.EdgeType) bool {
	return matchMultiEdges(qin, g.in[v]) && matchMultiEdges(qout, g.out[v])
}

// matchMultiEdges greedily checks that each query multi-edge embeds into a
// distinct data multi-edge via bipartite matching (small sizes: backtrack).
func matchMultiEdges(query [][]dict.EdgeType, data []Neighbor) bool {
	if len(query) == 0 {
		return true
	}
	if len(query) > len(data) {
		return false
	}
	used := make([]bool, len(data))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(query) {
			return true
		}
		for j := range data {
			if used[j] || !ContainsTypes(data[j].Types, query[i]) {
				continue
			}
			used[j] = true
			if rec(i + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return rec(0)
}

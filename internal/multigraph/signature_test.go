package multigraph

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
)

// me builds a multi-edge from raw type indexes.
func me(types ...dict.EdgeType) []dict.EdgeType { return types }

// TestTable3Synopses reproduces the synopses of the paper's Table 3 from
// the printed vertex signatures (which fix the edge-type indexes t0..t8).
func TestTable3Synopses(t *testing.T) {
	tests := []struct {
		name    string
		in, out [][]dict.EdgeType
		want    Synopsis
	}{
		{"v0", [][]dict.EdgeType{me(7)}, [][]dict.EdgeType{me(6)},
			Synopsis{1, 1, -7, 7, 1, 1, -6, 6}},
		{"v1", nil, [][]dict.EdgeType{me(3), me(7), me(8), me(4, 5)},
			Synopsis{0, 0, 0, 0, 2, 5, -3, 8}},
		{"v2", [][]dict.EdgeType{me(1), me(5), me(6), me(4, 5)}, [][]dict.EdgeType{me(0), me(2)},
			Synopsis{2, 4, -1, 6, 1, 2, 0, 2}},
		{"v3", [][]dict.EdgeType{me(0), me(3)}, [][]dict.EdgeType{me(1)},
			Synopsis{1, 2, 0, 3, 1, 1, -1, 1}},
		{"v4", [][]dict.EdgeType{me(2)}, nil,
			Synopsis{1, 1, -2, 2, 0, 0, 0, 0}},
		{"v5", [][]dict.EdgeType{me(3), me(3)}, nil,
			Synopsis{1, 1, -3, 3, 0, 0, 0, 0}},
		{"v6", [][]dict.EdgeType{me(8)}, [][]dict.EdgeType{me(3)},
			Synopsis{1, 1, -8, 8, 1, 1, -3, 3}},
		{"v7", nil, [][]dict.EdgeType{me(0), me(3), me(5)},
			Synopsis{0, 0, 0, 0, 1, 3, 0, 5}},
		{"v8", [][]dict.EdgeType{me(0)}, nil,
			Synopsis{1, 1, 0, 0, 0, 0, 0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SynopsisFromMultiEdges(tc.in, tc.out); got != tc.want {
				t.Errorf("synopsis = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestPaperU0Example reproduces the worked example from Section 4.2: query
// vertex u0 with signature σu0 = {−t5} has synopsis [0 0 0 0 1 1 −5 5] and
// is dominated by exactly v1 and v7 of Table 3.
func TestPaperU0Example(t *testing.T) {
	raw := SynopsisFromMultiEdges(nil, [][]dict.EdgeType{me(5)})
	want := Synopsis{0, 0, 0, 0, 1, 1, -5, 5}
	if raw != want {
		t.Fatalf("u0 synopsis = %v, want %v", raw, want)
	}
	u0 := raw.AsQuery()
	table3 := map[string]Synopsis{
		"v0": {1, 1, -7, 7, 1, 1, -6, 6},
		"v1": {0, 0, 0, 0, 2, 5, -3, 8},
		"v2": {2, 4, -1, 6, 1, 2, 0, 2},
		"v3": {1, 2, 0, 3, 1, 1, -1, 1},
		"v4": {1, 1, -2, 2, 0, 0, 0, 0},
		"v5": {1, 1, -3, 3, 0, 0, 0, 0},
		"v6": {1, 1, -8, 8, 1, 1, -3, 3},
		"v7": {0, 0, 0, 0, 1, 3, 0, 5},
		"v8": {1, 1, 0, 0, 0, 0, 0, 0},
	}
	wantMatch := map[string]bool{"v1": true, "v7": true}
	for name, syn := range table3 {
		if got := syn.Dominates(u0); got != wantMatch[name] {
			t.Errorf("%s.Dominates(u0) = %v, want %v", name, got, wantMatch[name])
		}
	}
}

func TestDominatesReflexive(t *testing.T) {
	s := Synopsis{2, 4, -1, 6, 1, 2, 0, 2}
	if !s.Dominates(s) {
		t.Error("synopsis must dominate itself")
	}
	var zero Synopsis
	// A query vertex with no edges at all (zero signature) must match any
	// data vertex once converted with AsQuery.
	if !s.Dominates(zero.AsQuery()) {
		t.Error("any synopsis must dominate the empty query synopsis")
	}
	if zero.Dominates(s) {
		t.Error("zero synopsis must not dominate a non-zero one")
	}
}

func TestAsQueryPreservesNonEmptySides(t *testing.T) {
	s := SynopsisFromMultiEdges([][]dict.EdgeType{me(0, 2)}, [][]dict.EdgeType{me(1)})
	if got := s.AsQuery(); got != s {
		t.Errorf("AsQuery changed a fully-populated synopsis: %v → %v", s, got)
	}
}

func TestVertexSynopsisMatchesSignature(t *testing.T) {
	g := buildFigure1(t)
	for v := 0; v < g.NumVertices(); v++ {
		in, out := g.Signature(dict.VertexID(v))
		direct := SynopsisFromMultiEdges(in, out)
		if got := g.VertexSynopsis(dict.VertexID(v)); got != direct {
			t.Errorf("vertex %d: VertexSynopsis = %v, from signature = %v", v, got, direct)
		}
	}
}

// TestLemma1Soundness is the property test for Lemma 1: whenever a query
// signature truly embeds into a data vertex's signature
// (SignatureSubsumes), the synopsis dominance test must keep the vertex.
// Pruning a true candidate would make the engine incomplete.
func TestLemma1Soundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		g := randomGraph(rng, 12, 6, 40)
		if g.NumVertices() == 0 {
			continue
		}
		// Random query signature: subsets of some data vertex's signature,
		// possibly perturbed.
		for trial := 0; trial < 20; trial++ {
			v := dict.VertexID(rng.Intn(g.NumVertices()))
			in, out := g.Signature(v)
			qin := subsetMultiEdges(rng, in)
			qout := subsetMultiEdges(rng, out)
			qsyn := SynopsisFromMultiEdges(qin, qout).AsQuery()
			for w := 0; w < g.NumVertices(); w++ {
				wv := dict.VertexID(w)
				if g.SignatureSubsumes(wv, qin, qout) && !g.VertexSynopsis(wv).Dominates(qsyn) {
					t.Fatalf("Lemma 1 violated: vertex %d subsumes query sig %v/%v but synopsis prunes it",
						w, qin, qout)
				}
			}
		}
	}
}

// subsetMultiEdges picks a random sub-multiset of multi-edges, each reduced
// to a random non-empty subset of its types.
func subsetMultiEdges(rng *rand.Rand, sig [][]dict.EdgeType) [][]dict.EdgeType {
	var out [][]dict.EdgeType
	for _, me := range sig {
		if rng.Intn(2) == 0 || len(me) == 0 {
			continue
		}
		k := 1 + rng.Intn(len(me))
		sub := make([]dict.EdgeType, 0, k)
		for i, t := range me {
			if len(sub) < k && rng.Intn(len(me)-i) < k-len(sub) {
				sub = append(sub, t)
			}
		}
		if len(sub) > 0 {
			out = append(out, sub)
		}
	}
	return out
}

func TestSignatureSubsumesMultiset(t *testing.T) {
	g := buildFigure1(t)
	london := vid(t, g, "London")
	// London has four incoming multi-edges; requiring the same single-type
	// multi-edge more often than it occurs must fail.
	born := etype(t, g, "wasBornIn")
	q := [][]dict.EdgeType{{born}, {born}}
	// Amy→London carries {wasBornIn,diedIn} and Nolan→London {wasBornIn},
	// so two distinct incoming multi-edges contain wasBornIn: subsumed.
	if !g.SignatureSubsumes(london, q, nil) {
		t.Error("two wasBornIn multi-edges should be subsumed (Amy and Nolan)")
	}
	q3 := [][]dict.EdgeType{{born}, {born}, {born}}
	if g.SignatureSubsumes(london, q3, nil) {
		t.Error("three wasBornIn multi-edges must not be subsumed")
	}
}

// TestSynopsisEmptyMultiEdgeIgnored: a zero-length multi-edge entry must
// not contribute to any synopsis field.
func TestSynopsisEmptyMultiEdgeIgnored(t *testing.T) {
	withEmpty := SynopsisFromMultiEdges([][]dict.EdgeType{{}, me(2)}, nil)
	without := SynopsisFromMultiEdges([][]dict.EdgeType{me(2)}, nil)
	if withEmpty != without {
		t.Errorf("empty multi-edge changed synopsis: %v vs %v", withEmpty, without)
	}
	onlyEmpty := SynopsisFromMultiEdges([][]dict.EdgeType{{}}, nil)
	var zero Synopsis
	if onlyEmpty != zero {
		t.Errorf("only-empty synopsis = %v, want zero", onlyEmpty)
	}
}

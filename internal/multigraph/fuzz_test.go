package multigraph

import (
	"bytes"
	"testing"

	"repro/internal/rdf"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder; it
// must reject them cleanly (error, never panic) or produce a graph that
// re-encodes byte-identically.
func FuzzDecodeSnapshot(f *testing.F) {
	// Seed with a valid snapshot and some prefixes of it.
	g := mustFigure1(f)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("AMBG\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		again, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded snapshot failed: %v", err)
		}
		if again.NumVertices() != got.NumVertices() || again.NumEdges() != got.NumEdges() {
			t.Fatal("snapshot re-encode changed the graph")
		}
	})
}

func mustFigure1(f *testing.F) *Graph {
	f.Helper()
	triples := []struct{ s, p, o string }{
		{"a", "p", "b"}, {"b", "q", "a"}, {"c", "p", "a"},
	}
	var b Builder
	for _, tr := range triples {
		if err := b.Add(tripleOf(tr.s, tr.p, tr.o)); err != nil {
			f.Fatal(err)
		}
	}
	return b.Build()
}

// tripleOf builds a simple IRI triple for fuzz seeding.
func tripleOf(s, p, o string) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI("http://x/" + s),
		P: rdf.NewIRI("http://y/" + p),
		O: rdf.NewIRI("http://x/" + o),
	}
}

// Package multigraph implements the directed, vertex-attributed data
// multigraph G of the AMbER paper (Definition 1), built from an RDF
// tripleset by the four transformation protocols of Section 2.1.1:
//
//   - a subject is always a vertex;
//   - a predicate is always an edge (type);
//   - an object is a vertex only when it is an IRI;
//   - a literal object is folded, together with its predicate, into a
//     vertex attribute <p, o> on the subject.
//
// The package also computes vertex signatures and their 8-field synopses
// (Section 4.2, Table 3), which feed the S index.
package multigraph

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Neighbor is one entry of an adjacency list: the neighbouring vertex and
// the multi-edge (set of edge types, sorted ascending, unique) connecting
// to it.
type Neighbor struct {
	V     dict.VertexID
	Types []dict.EdgeType
}

// Graph is the immutable data multigraph. Build one with a Builder.
type Graph struct {
	Dicts dict.Dictionaries

	out   [][]Neighbor    // out[v] sorted by Neighbor.V: edges v → w ("-")
	in    [][]Neighbor    // in[v] sorted by Neighbor.V: edges w → v ("+")
	attrs [][]dict.AttrID // attrs[v] sorted ascending

	numTriples int
	numEdges   int // distinct directed (v, w) pairs
}

// NumVertices reports |V|.
func (g *Graph) NumVertices() int { return len(g.out) }

// NumEdges reports the number of distinct directed vertex pairs carrying at
// least one edge type (the paper's "# Edges" in Table 4).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumEdgeTypes reports |T|, the number of distinct predicates between IRIs.
func (g *Graph) NumEdgeTypes() int { return g.Dicts.EdgeTypes.Len() }

// NumAttrs reports |A|, the number of distinct <predicate, literal> tuples.
func (g *Graph) NumAttrs() int { return g.Dicts.Attrs.Len() }

// NumTriples reports the number of source RDF triples.
func (g *Graph) NumTriples() int { return g.numTriples }

// Out returns the outgoing ("-") adjacency of v, sorted by neighbour id.
// The returned slice must not be modified.
func (g *Graph) Out(v dict.VertexID) []Neighbor { return g.out[v] }

// In returns the incoming ("+") adjacency of v, sorted by neighbour id.
// The returned slice must not be modified.
func (g *Graph) In(v dict.VertexID) []Neighbor { return g.in[v] }

// Attrs returns the sorted attribute set of v (the paper's LV(v), minus the
// implicit null attribute every vertex carries).
func (g *Graph) Attrs(v dict.VertexID) []dict.AttrID { return g.attrs[v] }

// HasAttrs reports whether v carries every attribute in want (want must be
// sorted ascending).
func (g *Graph) HasAttrs(v dict.VertexID, want []dict.AttrID) bool {
	have := g.attrs[v]
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
	}
	return true
}

// EdgeTypes returns the multi-edge label set LE(from, to), or nil when no
// edge exists. The returned slice must not be modified.
func (g *Graph) EdgeTypes(from, to dict.VertexID) []dict.EdgeType {
	adj := g.out[from]
	i := sort.Search(len(adj), func(i int) bool { return adj[i].V >= to })
	if i < len(adj) && adj[i].V == to {
		return adj[i].Types
	}
	return nil
}

// HasEdgeTypes reports whether edge from→to exists and its label set
// contains every type in want (want must be sorted ascending).
func (g *Graph) HasEdgeTypes(from, to dict.VertexID, want []dict.EdgeType) bool {
	return ContainsTypes(g.EdgeTypes(from, to), want)
}

// ContainsTypes reports whether the sorted set have contains every element
// of the sorted set want.
func ContainsTypes(have, want []dict.EdgeType) bool {
	if len(want) > len(have) {
		return false
	}
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
		i++
	}
	return true
}

// Degree reports the number of distinct neighbours of v (in + out pairs).
func (g *Graph) Degree(v dict.VertexID) int { return len(g.in[v]) + len(g.out[v]) }

// Builder accumulates RDF triples and produces a Graph. The zero value is
// ready to use.
type Builder struct {
	dicts      dict.Dictionaries
	out        []map[dict.VertexID]map[dict.EdgeType]struct{}
	attrs      []map[dict.AttrID]struct{}
	numTriples int
}

// grow ensures per-vertex storage exists up to id v.
func (b *Builder) grow(v dict.VertexID) {
	for len(b.out) <= int(v) {
		b.out = append(b.out, nil)
		b.attrs = append(b.attrs, nil)
	}
}

// Add ingests one RDF triple, applying the four transformation protocols.
// It returns an error when the triple violates the RDF model (literal
// subject or predicate).
func (b *Builder) Add(t rdf.Triple) error {
	if !t.S.IsResource() {
		return fmt.Errorf("multigraph: subject must be an IRI or blank node: %v", t)
	}
	if !t.P.IsIRI() {
		return fmt.Errorf("multigraph: predicate must be an IRI: %v", t)
	}
	if t.O.Datatype != "" && t.O.Lang != "" {
		// A literal carries at most one annotation; accepting both would
		// intern an attribute the snapshot format refuses to reload.
		return fmt.Errorf("multigraph: literal with both datatype and language tag: %v", t)
	}
	b.numTriples++
	s := b.dicts.InternVertex(t.S.Value)
	b.grow(s)
	if t.O.IsLiteral() {
		a := b.dicts.InternAttr(t.P.Value, t.O)
		if b.attrs[s] == nil {
			b.attrs[s] = make(map[dict.AttrID]struct{})
		}
		b.attrs[s][a] = struct{}{}
		return nil
	}
	o := b.dicts.InternVertex(t.O.Value)
	b.grow(o)
	et := b.dicts.InternEdgeType(t.P.Value)
	m := b.out[s]
	if m == nil {
		m = make(map[dict.VertexID]map[dict.EdgeType]struct{})
		b.out[s] = m
	}
	types := m[o]
	if types == nil {
		types = make(map[dict.EdgeType]struct{})
		m[o] = types
	}
	types[et] = struct{}{}
	return nil
}

// AddAll ingests a batch of triples, stopping at the first error.
func (b *Builder) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := b.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// NumTriples reports how many triples have been added so far.
func (b *Builder) NumTriples() int { return b.numTriples }

// Build finalizes the accumulated triples into an immutable Graph. The
// Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.out)
	g := &Graph{
		Dicts:      b.dicts,
		out:        make([][]Neighbor, n),
		in:         make([][]Neighbor, n),
		attrs:      make([][]dict.AttrID, n),
		numTriples: b.numTriples,
	}
	// Count incoming degrees first so the in-lists allocate exactly once.
	inDeg := make([]int, n)
	for _, adj := range b.out {
		for w := range adj {
			inDeg[w]++
		}
	}
	for v := 0; v < n; v++ {
		g.in[v] = make([]Neighbor, 0, inDeg[v])
	}
	for v, adj := range b.out {
		if len(adj) == 0 {
			continue
		}
		g.numEdges += len(adj)
		lst := make([]Neighbor, 0, len(adj))
		for w, types := range adj {
			ts := make([]dict.EdgeType, 0, len(types))
			for t := range types {
				ts = append(ts, t)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			lst = append(lst, Neighbor{V: w, Types: ts})
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i].V < lst[j].V })
		g.out[v] = lst
		for _, nb := range lst {
			g.in[nb.V] = append(g.in[nb.V], Neighbor{V: dict.VertexID(v), Types: nb.Types})
		}
	}
	for v := range g.in {
		lst := g.in[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i].V < lst[j].V })
	}
	for v, set := range b.attrs {
		if len(set) == 0 {
			continue
		}
		as := make([]dict.AttrID, 0, len(set))
		for a := range set {
			as = append(as, a)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		g.attrs[v] = as
	}
	return g
}

// FromTriples is a convenience that builds a Graph from a triple slice.
func FromTriples(ts []rdf.Triple) (*Graph, error) {
	var b Builder
	if err := b.AddAll(ts); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

package multigraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Snapshot format: a compact binary serialization of the data multigraph
// (dictionaries, adjacency, attributes). Loading a snapshot skips the
// N-Triples parsing of the offline stage; the index ensemble I is rebuilt
// deterministically from the graph on load.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "AMBG" + version byte
//	vertex dictionary:    count, then len-prefixed strings
//	edge-type dictionary: count, then len-prefixed strings
//	attribute dictionary: count, then per attribute
//	           version 1: (predicate, literal) string pairs
//	           version 2: (predicate, lexical, datatype, lang) tuples
//	numTriples
//	adjacency: per vertex: out-degree, then per neighbour:
//	           target id, type count, delta-encoded sorted type ids
//	attributes: per vertex: count, delta-encoded sorted attribute ids
//	crc32 (IEEE, fixed 4-byte little endian) over everything prior
//
// Version 2 carries typed literals; writers always emit it. Version 1
// snapshots (written before the typed-term model) still open: their folded
// literal strings load as plain literals, exactly as they were stored.
const (
	snapshotMagic      = "AMBG"
	snapshotVersion    = 2
	snapshotVersionOld = 1
)

// crcWriter tees written bytes into a CRC.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := cw.Write(buf[:n])
	return err
}

func (cw *crcWriter) str(s string) error {
	if err := cw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := cw.Write([]byte(s))
	return err
}

// Encode writes the graph snapshot to w.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	if _, err := cw.Write([]byte{snapshotVersion}); err != nil {
		return err
	}
	// Dictionaries.
	if err := cw.uvarint(uint64(g.Dicts.Vertices.Len())); err != nil {
		return err
	}
	for i := 0; i < g.Dicts.Vertices.Len(); i++ {
		if err := cw.str(g.Dicts.Vertices.Value(uint32(i))); err != nil {
			return err
		}
	}
	if err := cw.uvarint(uint64(g.Dicts.EdgeTypes.Len())); err != nil {
		return err
	}
	for i := 0; i < g.Dicts.EdgeTypes.Len(); i++ {
		if err := cw.str(g.Dicts.EdgeTypes.Value(uint32(i))); err != nil {
			return err
		}
	}
	if err := cw.uvarint(uint64(g.Dicts.Attrs.Len())); err != nil {
		return err
	}
	for i := 0; i < g.Dicts.Attrs.Len(); i++ {
		a := g.Dicts.Attr(dict.AttrID(i))
		if err := cw.str(a.Predicate); err != nil {
			return err
		}
		if err := cw.str(a.Lexical); err != nil {
			return err
		}
		if err := cw.str(a.Datatype); err != nil {
			return err
		}
		if err := cw.str(a.Lang); err != nil {
			return err
		}
	}
	if err := cw.uvarint(uint64(g.numTriples)); err != nil {
		return err
	}
	// Adjacency (out side only; the in side is reconstructed).
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.out[v]
		if err := cw.uvarint(uint64(len(adj))); err != nil {
			return err
		}
		for _, nb := range adj {
			if err := cw.uvarint(uint64(nb.V)); err != nil {
				return err
			}
			if err := cw.uvarint(uint64(len(nb.Types))); err != nil {
				return err
			}
			prev := uint64(0)
			for _, t := range nb.Types {
				if err := cw.uvarint(uint64(t) - prev); err != nil {
					return err
				}
				prev = uint64(t)
			}
		}
	}
	// Attributes.
	for v := 0; v < g.NumVertices(); v++ {
		as := g.attrs[v]
		if err := cw.uvarint(uint64(len(as))); err != nil {
			return err
		}
		prev := uint64(0)
		for _, a := range as {
			if err := cw.uvarint(uint64(a) - prev); err != nil {
				return err
			}
			prev = uint64(a)
		}
	}
	// Trailer CRC (not itself CRC'd).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader tees read bytes into a CRC.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

func (cr *crcReader) full(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p)
	return nil
}

func (cr *crcReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(cr)
}

func (cr *crcReader) str(max uint64) (string, error) {
	n, err := cr.uvarint()
	if err != nil {
		return "", err
	}
	if n > max {
		return "", fmt.Errorf("multigraph: string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if err := cr.full(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// maxStr bounds dictionary string lengths against corrupted input.
const maxStr = 1 << 24

// Decode reads a graph snapshot written by Encode.
func Decode(r io.Reader) (*Graph, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}
	head := make([]byte, len(snapshotMagic)+1)
	if err := cr.full(head); err != nil {
		return nil, fmt.Errorf("multigraph: reading snapshot header: %w", err)
	}
	if string(head[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("multigraph: bad snapshot magic %q", head[:len(snapshotMagic)])
	}
	version := head[len(snapshotMagic)]
	if version != snapshotVersion && version != snapshotVersionOld {
		return nil, fmt.Errorf("multigraph: unsupported snapshot version %d (this build reads versions %d and %d; rebuild the snapshot with Save)",
			version, snapshotVersionOld, snapshotVersion)
	}
	g := &Graph{}
	// Dictionaries: intern in id order, so dense ids are reproduced.
	nV, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nV; i++ {
		s, err := cr.str(maxStr)
		if err != nil {
			return nil, err
		}
		if id := g.Dicts.InternVertex(s); uint64(id) != i {
			return nil, fmt.Errorf("multigraph: duplicate vertex %q in snapshot", s)
		}
	}
	nT, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nT; i++ {
		s, err := cr.str(maxStr)
		if err != nil {
			return nil, err
		}
		if id := g.Dicts.InternEdgeType(s); uint64(id) != i {
			return nil, fmt.Errorf("multigraph: duplicate edge type %q in snapshot", s)
		}
	}
	nA, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nA; i++ {
		p, err := cr.str(maxStr)
		if err != nil {
			return nil, err
		}
		l, err := cr.str(maxStr)
		if err != nil {
			return nil, err
		}
		lit := rdf.NewLiteral(l)
		if version >= 2 {
			dt, err := cr.str(maxStr)
			if err != nil {
				return nil, err
			}
			lang, err := cr.str(maxStr)
			if err != nil {
				return nil, err
			}
			if dt != "" && lang != "" {
				return nil, fmt.Errorf("multigraph: attribute %d has both datatype and language tag", i)
			}
			lit = rdf.Term{Kind: rdf.Literal, Value: l, Datatype: dt, Lang: lang}
		}
		if id := g.Dicts.InternAttr(p, lit); uint64(id) != i {
			return nil, fmt.Errorf("multigraph: duplicate attribute <%s,%s> in snapshot", p, l)
		}
	}
	numTriples, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	g.numTriples = int(numTriples)
	// Adjacency.
	g.out = make([][]Neighbor, nV)
	g.in = make([][]Neighbor, nV)
	g.attrs = make([][]dict.AttrID, nV)
	inDeg := make([]int, nV)
	for v := uint64(0); v < nV; v++ {
		deg, err := cr.uvarint()
		if err != nil {
			return nil, err
		}
		if deg > nV {
			return nil, fmt.Errorf("multigraph: out-degree %d exceeds vertex count", deg)
		}
		adj := make([]Neighbor, 0, deg)
		prevTarget := int64(-1)
		for e := uint64(0); e < deg; e++ {
			target, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			if target >= nV {
				return nil, fmt.Errorf("multigraph: edge target %d out of range", target)
			}
			if int64(target) <= prevTarget {
				return nil, fmt.Errorf("multigraph: adjacency of %d not sorted", v)
			}
			prevTarget = int64(target)
			k, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			if k == 0 || k > nT {
				return nil, fmt.Errorf("multigraph: bad multi-edge cardinality %d", k)
			}
			types := make([]dict.EdgeType, k)
			acc := uint64(0)
			for ti := uint64(0); ti < k; ti++ {
				d, err := cr.uvarint()
				if err != nil {
					return nil, err
				}
				acc += d
				if acc >= nT {
					return nil, fmt.Errorf("multigraph: edge type %d out of range", acc)
				}
				types[ti] = dict.EdgeType(acc)
			}
			adj = append(adj, Neighbor{V: dict.VertexID(target), Types: types})
			inDeg[target]++
			g.numEdges++
		}
		g.out[v] = adj
	}
	for v := range g.in {
		g.in[v] = make([]Neighbor, 0, inDeg[v])
	}
	for v := uint64(0); v < nV; v++ {
		for _, nb := range g.out[v] {
			g.in[nb.V] = append(g.in[nb.V], Neighbor{V: dict.VertexID(v), Types: nb.Types})
		}
	}
	// In-lists are built in ascending source order, hence already sorted.
	// Attributes.
	for v := uint64(0); v < nV; v++ {
		k, err := cr.uvarint()
		if err != nil {
			return nil, err
		}
		if k > nA {
			return nil, fmt.Errorf("multigraph: attribute count %d exceeds dictionary", k)
		}
		if k == 0 {
			continue
		}
		as := make([]dict.AttrID, k)
		acc := uint64(0)
		for i := uint64(0); i < k; i++ {
			d, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			acc += d
			if acc >= nA {
				return nil, fmt.Errorf("multigraph: attribute id %d out of range", acc)
			}
			as[i] = dict.AttrID(acc)
		}
		g.attrs[v] = as
	}
	// Verify trailer CRC.
	want := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, fmt.Errorf("multigraph: reading snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("multigraph: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	return g, nil
}

package workload

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func testData(t *testing.T) []rdf.Triple {
	t.Helper()
	return datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 5, Compact: true})
}

func TestStarShape(t *testing.T) {
	ts := testData(t)
	g := NewGenerator(ts, 11, DefaultConfig())
	q, ok := g.Generate(Star, 5)
	if !ok {
		t.Fatal("star generation failed")
	}
	if len(q.Patterns) != 5 {
		t.Fatalf("patterns = %d, want 5", len(q.Patterns))
	}
	// Star property: one entity participates in every pattern. Collect the
	// terms per pattern and intersect.
	common := map[string]bool{}
	for i, p := range q.Patterns {
		here := map[string]bool{
			p.S.Kind.String() + "|" + p.S.Value: true,
			p.O.Kind.String() + "|" + p.O.Value: true,
		}
		if i == 0 {
			common = here
			continue
		}
		for k := range common {
			if !here[k] {
				delete(common, k)
			}
		}
	}
	if len(common) == 0 {
		t.Errorf("no central entity shared by all patterns:\n%s", q)
	}
}

func TestComplexConnected(t *testing.T) {
	ts := testData(t)
	g := NewGenerator(ts, 13, DefaultConfig())
	q, ok := g.Generate(Complex, 8)
	if !ok {
		t.Fatal("complex generation failed")
	}
	if len(q.Patterns) != 8 {
		t.Fatalf("patterns = %d, want 8", len(q.Patterns))
	}
	// Connectivity: union-find over pattern terms.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	keyOf := func(tm sparql.Term) string { return tm.Kind.String() + "|" + tm.Value }
	for _, p := range q.Patterns {
		union(keyOf(p.S), keyOf(p.S))
		if p.O.Kind != sparql.Literal {
			union(keyOf(p.S), keyOf(p.O))
		}
	}
	roots := map[string]bool{}
	for _, p := range q.Patterns {
		roots[find(keyOf(p.S))] = true
	}
	if len(roots) != 1 {
		t.Errorf("complex query has %d components, want 1:\n%s", len(roots), q)
	}
}

// TestGeneratedQueriesSatisfiable is the generator's core guarantee: every
// sampled query has at least one embedding (the identity assignment).
func TestGeneratedQueriesSatisfiable(t *testing.T) {
	ts := testData(t)
	g, err := multigraph.FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(g)
	gen := NewGenerator(ts, 17, DefaultConfig())
	for _, kind := range []Kind{Star, Complex} {
		for _, size := range []int{2, 4, 6, 10} {
			for i := 0; i < 10; i++ {
				q, ok := gen.Generate(kind, size)
				if !ok {
					t.Fatalf("%v size %d: generation failed", kind, size)
				}
				qg, err := query.Build(q, &g.Dicts)
				if err != nil {
					t.Fatal(err)
				}
				n, err := engine.Count(index.NewReader(g, ix), plan.For(qg, index.NewReader(g, ix)), engine.Options{Limit: 1})
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					t.Fatalf("%v size %d: generated unsatisfiable query:\n%s", kind, size, q)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	ts := testData(t)
	a := NewGenerator(ts, 23, DefaultConfig()).Workload(Star, 4, 5)
	b := NewGenerator(ts, 23, DefaultConfig()).Workload(Star, 4, 5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("query %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

func TestImpossibleSizeFails(t *testing.T) {
	ts, _ := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/b> .`)
	g := NewGenerator(ts, 1, DefaultConfig())
	if _, ok := g.Generate(Star, 50); ok {
		t.Error("star of size 50 from one triple should fail")
	}
	if _, ok := g.Generate(Complex, 50); ok {
		t.Error("complex of size 50 from one triple should fail")
	}
}

func TestEmptyDataset(t *testing.T) {
	g := NewGenerator(nil, 1, DefaultConfig())
	if g.NumEntities() != 0 {
		t.Error("entities on empty dataset")
	}
	if _, ok := g.Generate(Star, 1); ok {
		t.Error("generation from empty dataset should fail")
	}
}

func TestWorkloadCount(t *testing.T) {
	ts := testData(t)
	g := NewGenerator(ts, 29, DefaultConfig())
	qs := g.Workload(Complex, 5, 8)
	if len(qs) != 8 {
		t.Errorf("workload = %d queries, want 8", len(qs))
	}
}

func TestKindString(t *testing.T) {
	if Star.String() != "star" || Complex.String() != "complex" {
		t.Errorf("kind strings: %s %s", Star, Complex)
	}
}

func TestQueriesParseable(t *testing.T) {
	ts := testData(t)
	g := NewGenerator(ts, 31, DefaultConfig())
	for i := 0; i < 5; i++ {
		q, ok := g.Generate(Complex, 6)
		if !ok {
			t.Fatal("generation failed")
		}
		if _, err := sparql.Parse(q.String()); err != nil {
			t.Errorf("generated query does not re-parse: %v\n%s", err, q)
		}
	}
}

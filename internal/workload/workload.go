// Package workload generates SPARQL query workloads from a dataset exactly
// as the paper's evaluation does (Section 7.2): star-shaped and
// complex-shaped queries of a given size (number of triple patterns) are
// grown from a random initial entity of the RDF tripleset; object literals
// and some constant IRIs are injected, and the remaining IRIs become
// variables. Because every query is carved out of the data with a
// consistent entity→variable mapping, the identity assignment is always a
// homomorphic embedding: generated queries are satisfiable by
// construction.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Kind selects the query shape of Section 7.2.
type Kind int

const (
	// Star grows all k patterns around one central entity.
	Star Kind = iota
	// Complex navigates the neighbourhood of the initial entity through
	// predicate links until k patterns are collected.
	Complex
)

// String reports the shape name used in the paper's figures.
func (k Kind) String() string {
	if k == Star {
		return "star"
	}
	return "complex"
}

// Config tunes query generation.
type Config struct {
	// ConstProb is the probability that an entity is kept as a constant
	// IRI instead of becoming a variable.
	ConstProb float64
	// MaxAttempts bounds the sampling retries per query.
	MaxAttempts int
}

// DefaultConfig matches the paper's setting: mostly variables with some
// injected constants.
func DefaultConfig() Config {
	return Config{ConstProb: 0.08, MaxAttempts: 200}
}

// Generator samples queries from a dataset. Create one with NewGenerator.
type Generator struct {
	rng      *rand.Rand
	cfg      Config
	entities []string
	incident map[string][]rdf.Triple // IRI → triples it participates in
	// byDegree holds entities sorted by descending incident count, so star
	// centres of any size are found without rejection sampling.
	byDegree []string
}

// NewGenerator indexes the tripleset for sampling. Generation is
// deterministic in seed.
func NewGenerator(triples []rdf.Triple, seed int64, cfg Config) *Generator {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 200
	}
	g := &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		cfg:      cfg,
		incident: make(map[string][]rdf.Triple),
	}
	seen := map[string]bool{}
	addEntity := func(iri string) {
		if !seen[iri] {
			seen[iri] = true
			g.entities = append(g.entities, iri)
		}
	}
	for _, t := range triples {
		addEntity(t.S.Value)
		g.incident[t.S.Value] = append(g.incident[t.S.Value], t)
		if t.O.IsIRI() {
			addEntity(t.O.Value)
			g.incident[t.O.Value] = append(g.incident[t.O.Value], t)
		}
	}
	g.byDegree = append([]string(nil), g.entities...)
	sort.SliceStable(g.byDegree, func(i, j int) bool {
		return len(g.incident[g.byDegree[i]]) > len(g.incident[g.byDegree[j]])
	})
	return g
}

// eligibleStarCenters returns how many entities can centre a star of the
// given size (a prefix of byDegree).
func (g *Generator) eligibleStarCenters(size int) int {
	return sort.Search(len(g.byDegree), func(i int) bool {
		return len(g.incident[g.byDegree[i]]) < size
	})
}

// NumEntities reports how many distinct IRIs are available for sampling.
func (g *Generator) NumEntities() int { return len(g.entities) }

// Generate produces one query of the given kind and size. ok is false when
// the dataset cannot support the request within the attempt budget.
func (g *Generator) Generate(kind Kind, size int) (*sparql.Query, bool) {
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		var ts []rdf.Triple
		var ok bool
		if kind == Star {
			ts, ok = g.sampleStar(size)
		} else {
			ts, ok = g.sampleComplex(size)
		}
		if !ok {
			continue
		}
		if q, ok := g.variabilize(ts); ok {
			return q, true
		}
	}
	return nil, false
}

// Workload produces n queries of one kind and size.
func (g *Generator) Workload(kind Kind, size, n int) []*sparql.Query {
	out := make([]*sparql.Query, 0, n)
	for i := 0; i < n; i++ {
		q, ok := g.Generate(kind, size)
		if !ok {
			break
		}
		out = append(out, q)
	}
	return out
}

// sampleStar picks an initial entity with at least `size` incident triples
// and chooses `size` of them at random (paper: "the initial entity forms
// the central vertex of the star structure").
func (g *Generator) sampleStar(size int) ([]rdf.Triple, bool) {
	n := g.eligibleStarCenters(size)
	if n == 0 {
		return nil, false
	}
	center := g.byDegree[g.rng.Intn(n)]
	inc := g.incident[center]
	idx := g.rng.Perm(len(inc))[:size]
	out := make([]rdf.Triple, size)
	for i, j := range idx {
		out[i] = inc[j]
	}
	return out, true
}

// sampleComplex navigates the neighbourhood of the initial entity through
// predicate links until it has gathered `size` distinct triples.
func (g *Generator) sampleComplex(size int) ([]rdf.Triple, bool) {
	if len(g.entities) == 0 {
		return nil, false
	}
	start := g.entities[g.rng.Intn(len(g.entities))]
	used := map[rdf.Triple]bool{}
	var frontier []string
	frontier = append(frontier, start)
	var out []rdf.Triple
	stuck := 0
	for len(out) < size && stuck < 10*size {
		e := frontier[g.rng.Intn(len(frontier))]
		inc := g.incident[e]
		if len(inc) == 0 {
			stuck++
			continue
		}
		t := inc[g.rng.Intn(len(inc))]
		if used[t] {
			stuck++
			continue
		}
		used[t] = true
		out = append(out, t)
		frontier = append(frontier, t.S.Value)
		if t.O.IsIRI() {
			frontier = append(frontier, t.O.Value)
		}
		stuck = 0
	}
	if len(out) < size {
		return nil, false
	}
	return out, true
}

// variabilize converts sampled triples into a query: every literal object
// stays a constant, entities become variables with a consistent mapping,
// and a few entities are injected as constant IRIs.
func (g *Generator) variabilize(ts []rdf.Triple) (*sparql.Query, bool) {
	q := &sparql.Query{Star: true, Prefixes: &rdf.PrefixMap{}}
	varOf := map[string]string{}
	constOf := map[string]bool{}
	decided := map[string]bool{}
	nVars := 0
	term := func(iri string) sparql.Term {
		if !decided[iri] {
			decided[iri] = true
			if g.rng.Float64() < g.cfg.ConstProb {
				constOf[iri] = true
			} else {
				varOf[iri] = fmt.Sprintf("X%d", nVars)
				nVars++
			}
		}
		if constOf[iri] {
			return sparql.Term{Kind: sparql.IRI, Value: iri}
		}
		return sparql.Term{Kind: sparql.Var, Value: varOf[iri]}
	}
	for _, t := range ts {
		var o sparql.Term
		if t.O.IsLiteral() {
			o = sparql.Term{Kind: sparql.Literal, Value: t.O.Value, Datatype: t.O.Datatype, Lang: t.O.Lang}
		} else {
			o = term(t.O.Value)
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: term(t.S.Value),
			P: sparql.Term{Kind: sparql.IRI, Value: t.P.Value},
			O: o,
		})
	}
	// A query without any variable is a pure existence check; the paper's
	// workloads always have unknowns, so force at least one.
	if nVars == 0 {
		return nil, false
	}
	return q, true
}

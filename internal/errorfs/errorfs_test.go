package errorfs_test

import (
	"errors"
	"fmt"
	"testing"

	amber "repro"
	"repro/internal/errorfs"
	"repro/internal/rdf"
	"repro/internal/wal"
)

func rec(i int) wal.Record {
	return wal.Record{
		Kind:  wal.KindMutation,
		Epoch: uint64(i + 1),
		Adds: []rdf.Triple{{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
			P: rdf.NewIRI("http://x/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", i)),
		}},
	}
}

func replayCount(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	l, err := wal.Open(dir, wal.Options{}, wal.ConsumerFunc(func(wal.Record) error {
		n++
		return nil
	}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after replay: %v", err)
	}
	return n
}

// TestTornWriteRecovery models a crash mid-write: the injected partial
// write leaves a torn frame at the tail, the append reports failure (the
// record was never acknowledged), and recovery truncates the tail back
// to the acknowledged prefix.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := errorfs.New()
	l, err := wal.Open(dir, wal.Options{WrapFile: inj.Wrap}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Tear the next frame a few bytes in.
	inj.Arm(3, errorfs.PartialWrite)
	if _, err := l.Append(rec(5)); !errors.Is(err, errorfs.ErrInjected) {
		t.Fatalf("torn append error = %v, want ErrInjected", err)
	}
	if inj.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", inj.Faults())
	}
	// The log closed itself — nothing may be written past a failed write.
	if _, err := l.Append(rec(6)); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("append after fault error = %v, want ErrClosed", err)
	}
	l.Close()

	if n := replayCount(t, dir); n != 5 {
		t.Fatalf("recovered %d records, want the 5 acknowledged ones", n)
	}
}

// TestBitFlipDetectedByCRC models silent media corruption: the injected
// write succeeds but flips one bit, so only the frame CRC can catch it.
// Recovery must stop at the corrupt frame instead of applying garbage.
func TestBitFlipDetectedByCRC(t *testing.T) {
	dir := t.TempDir()
	inj := errorfs.New()
	l, err := wal.Open(dir, wal.Options{WrapFile: inj.Wrap}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Flip a bit in the middle of the sixth record's frame. The write
	// reports success — the corruption is silent until replay.
	inj.Arm(20, errorfs.BitFlip)
	if _, err := l.Append(rec(5)); err != nil {
		t.Fatalf("bit-flipped append unexpectedly failed: %v", err)
	}
	for i := 6; i < 10; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Replay keeps the 5 intact records; the flipped frame and everything
	// after it (same segment, post-corruption) are discarded.
	if n := replayCount(t, dir); n != 5 {
		t.Fatalf("recovered %d records, want 5 (corruption must stop replay)", n)
	}
}

// TestTornWriteDurableDatabase runs the same crash model through the
// full database stack: an update that fails its WAL write must not be
// visible after reopening the directory.
func TestTornWriteDurableDatabase(t *testing.T) {
	dir := t.TempDir()
	inj := errorfs.New()
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{WrapWALFile: inj.Wrap})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf("INSERT DATA { <http://x/s%d> <http://x/p> <http://x/o> . }", i)
		if err := db.Update(stmt); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	inj.Arm(2, errorfs.PartialWrite)
	err = db.Update("INSERT DATA { <http://x/torn> <http://x/p> <http://x/o> . }")
	if !errors.Is(err, amber.ErrDurability) {
		t.Fatalf("torn update error = %v, want ErrDurability", err)
	}
	db.Close()

	re, err := amber.OpenDurable(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if n := re.Stats().Triples; n != 3 {
		t.Fatalf("recovered %d triples, want the 3 acknowledged ones", n)
	}
}

// Package errorfs injects storage faults underneath the write-ahead
// log, in the spirit of errorfs-style test filesystems: a wrapper around
// the active segment file that, once armed, tears a write partway
// through (modeling a crash mid-write) or silently flips a bit in the
// written data (modeling media corruption the CRC layer must catch).
// Tests hand Injector.Wrap to wal.Options.WrapFile (or
// amber.DurabilityOptions.WrapWALFile) and arm a fault at a byte offset;
// the recovery and replication suites then verify that replay truncates
// the torn tail and that catch-up resumes from the surviving prefix.
package errorfs

import (
	"errors"
	"os"
	"sync"

	"repro/internal/wal"
)

// ErrInjected is the error returned by a torn (partial) write fault.
var ErrInjected = errors.New("errorfs: injected write fault")

// Mode selects what the armed fault does when the write budget runs out.
type Mode int

const (
	// PartialWrite writes only the bytes remaining in the budget, then
	// fails the write — the on-disk state holds a torn frame, exactly
	// what a crash between write and fsync leaves behind.
	PartialWrite Mode = iota
	// BitFlip flips one bit at the budget offset and reports success —
	// silent corruption that only the frame CRC can expose later.
	BitFlip
)

// Injector arms at most one fault at a time and counts the faults it
// has delivered. Safe for concurrent use; one Injector may wrap many
// files (the budget spans them all, in write order).
type Injector struct {
	mu      sync.Mutex
	armed   bool
	mode    Mode
	budget  int64 // bytes that still pass through untouched
	faults  int
	written int64
}

// New returns an unarmed Injector: writes pass through untouched.
func New() *Injector { return &Injector{} }

// Arm schedules one fault: the next after bytes of written data pass
// through, then mode strikes. Re-arming replaces any pending fault.
func (i *Injector) Arm(after int64, mode Mode) {
	i.mu.Lock()
	i.armed = true
	i.mode = mode
	i.budget = after
	i.mu.Unlock()
}

// Disarm cancels any pending fault.
func (i *Injector) Disarm() {
	i.mu.Lock()
	i.armed = false
	i.mu.Unlock()
}

// Faults reports how many faults have been delivered.
func (i *Injector) Faults() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faults
}

// Written reports the total bytes written through the injector
// (including the intact prefix of a torn write).
func (i *Injector) Written() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.written
}

// Wrap wraps f for wal.Options.WrapFile.
func (i *Injector) Wrap(f *os.File) wal.SegmentFile {
	return &file{inj: i, f: f}
}

type file struct {
	inj *Injector
	f   *os.File
}

func (w *file) Write(p []byte) (int, error) {
	i := w.inj
	i.mu.Lock()
	if !i.armed || i.budget >= int64(len(p)) {
		if i.armed {
			i.budget -= int64(len(p))
		}
		i.written += int64(len(p))
		i.mu.Unlock()
		return w.f.Write(p)
	}
	// The fault lands inside this write.
	k := i.budget
	mode := i.mode
	i.armed = false
	i.faults++
	switch mode {
	case PartialWrite:
		i.written += k
		i.mu.Unlock()
		n, err := w.f.Write(p[:k])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	default: // BitFlip
		i.written += int64(len(p))
		i.mu.Unlock()
		buf := append([]byte(nil), p...)
		buf[k] ^= 1 << 3
		return w.f.Write(buf)
	}
}

func (w *file) Sync() error  { return w.f.Sync() }
func (w *file) Close() error { return w.f.Close() }

// Package align exercises the hot-struct padding check. Field sizes
// here are arch-independent on all 64-bit targets (int64/int32/bool),
// so the expected diagnostics hold wherever the tests run.
package align

// A bool between two int64s costs 7 pad bytes.
//
//amber:hot
type padded struct { // want "hot struct padded is 24 bytes, reorderable to 16"
	a bool
	b int64
	c bool
}

// Same fields, minimal order: no diagnostic.
//
//amber:hot
type packed struct {
	b int64
	a bool
	c bool
}

// Mixed alignments in descending order: already minimal.
//
//amber:hot
type descending struct {
	q int64
	r int32
	s int32
	t bool
}

// Unmarked structs are out of scope however wasteful.
type unmarkedPadded struct {
	a bool
	b int64
	c bool
}

// Generic structs have no fixed layout: skipped.
//
//amber:hot
type generic[T any] struct {
	a bool
	v T
	b bool
}

// The directive only makes sense on structs.
//
//amber:hot
type notAStruct int // want "//amber:hot applies to struct types"

package fieldalign_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fieldalign"
)

func TestFieldAlign(t *testing.T) {
	analysistest.Run(t, "testdata/src", fieldalign.Analyzer)
}

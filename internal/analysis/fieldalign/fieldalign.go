// Package fieldalign checks that structs marked //amber:hot have no
// padding waste: their field order must reach the minimal size the
// greedy alignment-descending layout achieves.
//
// Unlike the stock fieldalignment analyzer this one is opt-in, on
// purpose: most structs in the tree are configuration or one-per-server
// state where field order should follow meaning, not alignment. The hot
// set — the engine matcher, delta's single-writer map tables, the
// per-query resource meter — is allocated per query or per probe and
// sits on cache-critical paths, where pad bytes are resident-set and
// cache-line waste multiplied by fan-out. The directive records the
// decision "this layout is performance-relevant" in the source, and the
// analyzer keeps it true as fields come and go.
//
// The suggested order is advisory (any order reaching the minimal size
// passes); the diagnostic includes one such order.
package fieldalign

import (
	"fmt"
	"go/ast"
	"go/types"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the fieldalign pass.
var Analyzer = &analysis.Analyzer{
	Name: "fieldalign",
	Doc: "structs marked //amber:hot must have a padding-minimal field order\n\n" +
		"For every struct type whose declaration carries //amber:hot, the struct's\n" +
		"size under the gc sizes for the current GOARCH must equal the size of the\n" +
		"greedy minimal layout (fields sorted by alignment then size, descending).\n" +
		"Hot structs are per-query/per-probe allocations; padding there is cache\n" +
		"and RSS waste multiplied by fan-out.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		return nil, fmt.Errorf("no sizes for gc/%s", runtime.GOARCH)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasHot(gd.Doc) && !hasHot(ts.Doc) {
					continue
				}
				if ts.TypeParams != nil {
					// Generic structs have no fixed layout to check — field
					// sizes depend on the instantiation.
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name]
				if !ok || obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					pass.Reportf(ts.Pos(), "//amber:hot applies to struct types; %s is not a struct", ts.Name.Name)
					continue
				}
				checkStruct(pass, ts, st, sizes)
			}
		}
	}
	return nil, nil
}

func hasHot(doc *ast.CommentGroup) bool {
	for _, d := range analysis.ParseDirectives(doc) {
		if d.Name == "hot" {
			return true
		}
	}
	return false
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *types.Struct, sizes types.Sizes) {
	n := st.NumFields()
	if n < 2 {
		return
	}
	cur := sizes.Sizeof(st)

	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
	}
	best := make([]*types.Var, n)
	copy(best, fields)
	// Greedy minimal layout: alignment descending, then size descending;
	// zero-sized fields last so none ends the struct (a trailing
	// zero-size field forces a pad byte to keep &s.f inside the object).
	sort.SliceStable(best, func(i, j int) bool {
		si, sj := sizes.Sizeof(best[i].Type()), sizes.Sizeof(best[j].Type())
		if (si == 0) != (sj == 0) {
			return sj == 0
		}
		ai, aj := sizes.Alignof(best[i].Type()), sizes.Alignof(best[j].Type())
		if ai != aj {
			return ai > aj
		}
		return si > sj
	})
	min := sizes.Sizeof(types.NewStruct(best, nil))
	if cur <= min {
		return
	}
	names := make([]string, n)
	for i, f := range best {
		names[i] = f.Name()
	}
	pass.Reportf(ts.Pos(),
		"hot struct %s is %d bytes, reorderable to %d: padding on a per-query allocation is cache and RSS waste (e.g. order %s)",
		ts.Name.Name, cur, min, strings.Join(names, ", "))
}

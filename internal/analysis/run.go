package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run applies every analyzer to every package, then fires the global
// hooks over the full result set. Diagnostics come back sorted by
// position. An analyzer Run error aborts the whole run: a checker that
// cannot complete must fail loudly, not pass silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	results := make(map[*Analyzer][]Result, len(analyzers))
	for _, pkg := range pkgs {
		dirPass := &Pass{
			Analyzer:  &Analyzer{Name: "directives"},
			Pkg:       pkg,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TypesInfo: pkg.TypesInfo,
			report:    collect,
		}
		CheckDirectives(dirPass)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Pkg:       pkg,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TypesInfo: pkg.TypesInfo,
				report:    collect,
			}
			v, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			results[a] = append(results[a], Result{Pkg: pkg, Value: v})
		}
	}

	fset := (*token.FileSet)(nil)
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, a := range analyzers {
		if a.Global == nil {
			continue
		}
		name := a.Name
		a.Global(results[a], func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      fset.Position(pos),
				Message:  msg,
			})
		})
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Package hot exercises the hot-path content rules and the
// poll-in-cycle requirement.
package hot

import (
	"fmt"
	"sync/atomic"
	"time"
)

type m struct {
	steps    int
	deadline time.Time
	expired  bool
	total    atomic.Int64
	seen     map[int]bool
}

// poll is the sanctioned amortized slow path: clock reads and atomics
// are fine here.
//
//amber:hotloop poll
func (x *m) poll() bool {
	x.steps++
	if x.steps&255 != 0 {
		return false
	}
	x.total.Add(int64(x.steps))
	if !x.deadline.IsZero() && time.Now().After(x.deadline) {
		x.expired = true
	}
	return x.expired
}

// ---- compliant code ----------------------------------------------------

//amber:hotloop
func (x *m) search(depth int) {
	if x.poll() {
		return
	}
	if depth == 0 {
		return
	}
	x.search(depth - 1)
}

// Mutual recursion where every member polls directly.
//
//amber:hotloop
func (x *m) stepA(d int) {
	if x.poll() {
		return
	}
	x.stepB(d)
}

//amber:hotloop
func (x *m) stepB(d int) {
	if x.poll() {
		return
	}
	x.stepA(d - 1)
}

// Non-recursive helpers need no poll.
//
//amber:hotloop
func (x *m) leaf(v int) int {
	return v * 2
}

// Unmarked functions are out of scope entirely.
func slowPath(v int) string {
	m := map[int]bool{}
	m[v] = true
	return fmt.Sprint(time.Now(), v)
}

// ---- violations --------------------------------------------------------

//amber:hotloop
func (x *m) badRecurse(d int) { // want "hot function badRecurse recurses but never polls the deadline"
	if d == 0 {
		return
	}
	x.badRecurse(d - 1)
}

// Mutual recursion where one member skips the poll.
//
//amber:hotloop
func (x *m) stepC(d int) {
	if x.poll() {
		return
	}
	x.stepD(d)
}

//amber:hotloop
func (x *m) stepD(d int) { // want "hot function stepD recurses but never polls the deadline"
	x.stepC(d - 1)
}

//amber:hotloop
func (x *m) badAtomic() {
	x.total.Add(1) // want "atomic operation in hot function badAtomic"
}

//amber:hotloop
func (x *m) badFmt(v int) {
	_ = fmt.Sprint(v) // want "fmt call in hot function badFmt"
}

//amber:hotloop
func (x *m) badClock() bool {
	return time.Now().After(x.deadline) // want "clock read in hot function badClock" "clock read in hot function badClock"
}

//amber:hotloop
func (x *m) badMapWrite(k int) {
	x.seen[k] = true // want "map write in hot function badMapWrite"
}

//amber:hotloop
func (x *m) badMapDelete(k int) {
	delete(x.seen, k) // want "map delete in hot function badMapDelete"
}

//amber:hotloop pool
func (x *m) badDirectiveArg() { // want "unknown //amber:hotloop argument \"pool\""
}

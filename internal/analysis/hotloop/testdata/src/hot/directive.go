// Package hot: a misspelled directive must fail the run, not silently
// check nothing (caught by the suite-wide directive check).
package hot

//amber:hotlop want-a-diagnostic // want "unknown directive"
func typoDirective() {}

// Package hotloop enforces the engine's hot-path discipline on
// functions that opt in with a //amber:hotloop directive: the inner
// search step must stay free of per-visit overhead (atomics, fmt, map
// writes, clock reads), and every recursive cycle through the marked
// set must poll the throttled deadline check so a runaway query stays
// cancellable.
//
// The matcher's contract since the group-commit and governance PRs is
// that per-visit bookkeeping accumulates in plain matcher fields and is
// flushed into shared atomics only at the deadline-poll cadence
// (deadlineCheckMask). That keeps the visit step allocation-free and
// fence-free, and it makes the poll the single point where
// cancellation, deadline and meter flushing happen. Both halves rot
// easily: an innocent fmt.Sprintf in a diagnostic, a "just count it"
// atomic.AddUint64, or a new recursion path that forgets checkDeadline
// each reintroduce exactly the regressions those PRs removed —
// invisible in unit tests, obvious at a million visits per query.
//
// Two directive forms:
//
//	//amber:hotloop       — the function is a hot search step; content
//	                        rules V1–V4 apply, and if it is recursive
//	                        (directly or mutually through other marked
//	                        functions) it must directly call a poll
//	                        function (rule P1).
//	//amber:hotloop poll  — the function IS the sanctioned amortized
//	                        slow path (checkDeadline): exempt from the
//	                        content rules, target of rule P1.
package hotloop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotloop pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotloop",
	Doc: "//amber:hotloop functions must stay lean and poll the deadline\n\n" +
		"Functions marked //amber:hotloop may not call sync/atomic, fmt or the\n" +
		"time package, nor write to maps (per-visit cost belongs in plain fields,\n" +
		"flushed at the poll cadence). Marked functions that recurse — directly or\n" +
		"mutually through other marked functions — must directly call a function\n" +
		"marked //amber:hotloop poll, so every search cycle stays cancellable.",
	Run: run,
}

// fnInfo is the per-marked-function record.
type fnInfo struct {
	decl  *ast.FuncDecl
	poll  bool
	calls map[*types.Func]bool // marked callees (cycle edges)
	polls bool                 // directly calls a poll function
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Collect the marked set first: cycle detection needs it complete.
	marked := map[*types.Func]*fnInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			args, ok := analysis.FuncDirective(fn, "hotloop")
			if !ok {
				continue
			}
			if args != "" && args != "poll" {
				pass.Reportf(fn.Pos(), "unknown //amber:hotloop argument %q (want nothing or \"poll\")", args)
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			marked[obj] = &fnInfo{decl: fn, poll: args == "poll"}
		}
	}
	if len(marked) == 0 {
		return 0, nil
	}

	for obj, fi := range marked {
		fi.calls = map[*types.Func]bool{}
		checkBody(pass, obj, fi, marked)
	}

	// Rule P1: every non-poll marked function on a cycle within the
	// marked set must itself call a poll function. Per-member, not
	// per-cycle: a cycle with alternate edges can skip the one member
	// that polls, and a direct call is one line.
	for obj, fi := range marked {
		if fi.poll || fi.polls {
			continue
		}
		if reaches(marked, fi, obj, map[*types.Func]bool{}) {
			pass.Reportf(fi.decl.Pos(),
				"hot function %s recurses but never polls the deadline: call the //amber:hotloop poll function (checkDeadline) so the search stays cancellable",
				obj.Name())
		}
	}
	return len(marked), nil
}

// reaches reports whether start is reachable from fi through marked-set
// call edges (i.e. fi's owner is on a cycle when fi is start's record).
func reaches(marked map[*types.Func]*fnInfo, fi *fnInfo, start *types.Func, seen map[*types.Func]bool) bool {
	for callee := range fi.calls {
		if callee == start {
			return true
		}
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if next := marked[callee]; next != nil && reaches(marked, next, start, seen) {
			return true
		}
	}
	return false
}

// checkBody applies content rules V1–V4 to one marked function and
// records its call edges for P1.
func checkBody(pass *analysis.Pass, obj *types.Func, fi *fnInfo, marked map[*types.Func]*fnInfo) {
	info := pass.TypesInfo
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// delete(m, k) is a map write (V3's builtin case).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("delete") {
				if !fi.poll {
					pass.Reportf(n.Pos(), "map delete in hot function %s: map mutation in the search step defeats the flush-at-poll design (use a slice or move it out of the loop)", obj.Name())
				}
				return true
			}
			callee := analysis.Callee(info, n)
			if callee == nil {
				return true
			}
			if other := marked[callee]; other != nil {
				fi.calls[callee] = true
				if other.poll {
					fi.polls = true
				}
			}
			if fi.poll {
				return true // the poll function is the sanctioned slow path
			}
			switch {
			case analysis.IsPkg(callee.Pkg(), "sync/atomic"):
				pass.Reportf(n.Pos(),
					"atomic operation in hot function %s: per-visit counters belong in plain matcher fields, flushed by the poll path (flushMeter)", obj.Name())
			case isStdPkg(callee.Pkg(), "fmt"):
				pass.Reportf(n.Pos(),
					"fmt call in hot function %s allocates per visit: format outside the search step", obj.Name())
			case isStdPkg(callee.Pkg(), "time"):
				pass.Reportf(n.Pos(),
					"clock read in hot function %s: the deadline is polled every deadlineCheckMask+1 steps by the poll function, not per visit", obj.Name())
			}
		case *ast.AssignStmt:
			if fi.poll {
				return true
			}
			for _, lhs := range n.Lhs {
				reportMapWrite(pass, info, obj, lhs)
			}
		case *ast.IncDecStmt:
			if fi.poll {
				return true
			}
			reportMapWrite(pass, info, obj, n.X)
		}
		return true
	})
}

// reportMapWrite flags m[k] appearing as an assignment target.
func reportMapWrite(pass *analysis.Pass, info *types.Info, obj *types.Func, lhs ast.Expr) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
		pass.Reportf(lhs.Pos(),
			"map write in hot function %s: map mutation in the search step costs a hash+possible grow per visit (use a slice indexed by vertex, as asg/satSets do)", obj.Name())
	}
}

// isStdPkg matches exactly the standard-library package path (unlike
// analysis.IsPkg it does not match by suffix or name, so a local
// package named "fmt" in testdata would still be its own package — but
// stdlib paths have no slash, so exact match is the right test).
func isStdPkg(pkg *types.Package, path string) bool {
	return pkg != nil && pkg.Path() == path
}

package hotloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotloop"
)

func TestHotLoop(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotloop.Analyzer)
}

// Package suite assembles the full amber-vet analyzer set in one
// place, so the cmd/amber-vet binary, the clean-tree meta-test and the
// seeded-regression tests all run exactly the same checks.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/errdurability"
	"repro/internal/analysis/fieldalign"
	"repro/internal/analysis/hotloop"
	"repro/internal/analysis/metricdiscipline"
	"repro/internal/analysis/publishbarrier"
)

// Analyzers is the complete suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	errdurability.Analyzer,
	fieldalign.Analyzer,
	hotloop.Analyzer,
	metricdiscipline.Analyzer,
	publishbarrier.Analyzer,
}

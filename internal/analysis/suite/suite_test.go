package suite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// repoRoot locates the module root from this package's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join(wd, "..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected module root at %s: %v", root, err)
	}
	return root
}

// TestSuiteCleanOverTree is the merge gate's ground truth: the full
// analyzer suite, Global hooks included, reports nothing on the
// production tree. CI runs the same suite through go vet per package;
// this test additionally exercises the cross-package rules a per-unit
// run cannot see.
func TestSuiteCleanOverTree(t *testing.T) {
	pkgs, err := analysis.Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	diags, err := analysis.Run(pkgs, suite.Analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("tree not clean: %s", d)
	}
}

// copyModule copies the production module (go.mod plus every non-test
// .go file, skipping nested testdata modules) into dst.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".github":
				if rel != "." {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}

// mutate rewrites one file in the copied module, asserting the
// replacement target exists (so refactors that move the code update
// this test instead of silently weakening it).
func mutate(t *testing.T, dir, rel, old, new string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s no longer contains the expected snippet %q — update the seeded regression", rel, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSeededRegressions flips real invariants in a copy of the
// production tree and asserts the suite catches each one: the analyzers
// guard the actual code, not just the golden files.
func TestSeededRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and re-type-checks the module")
	}
	root := repoRoot(t)
	dir := t.TempDir()
	copyModule(t, root, dir)

	// Regression 1: return a wal error from core without the
	// ErrDurability wrap (the exact bug this PR fixed in SyncWAL).
	mutate(t, dir, "internal/core/durable.go",
		`	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// Checkpoint`,
		`	return d.log.Sync()
}

// Checkpoint`)

	// Regression 2: drop the deadline poll from the engine's core
	// recursion, making a runaway query uncancellable.
	mutate(t, dir, "internal/engine/engine.go",
		`func (m *matcher) homomorphicMatch(ci int, comp *plan.ComponentPlan, pos int, matched []bool) {
	if m.stopped || m.checkDeadline() {
		return
	}`,
		`func (m *matcher) homomorphicMatch(ci int, comp *plan.ComponentPlan, pos int, matched []bool) {
	if m.stopped {
		return
	}`)

	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading mutated tree: %v", err)
	}
	diags, err := analysis.Run(pkgs, suite.Analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	expect := map[string]string{
		"errdurability": "without ErrDurability",
		"hotloop":       "homomorphicMatch recurses but never polls",
	}
	for analyzer, substr := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seeded %s regression not caught; got %d diagnostics:", analyzer, len(diags))
			for _, d := range diags {
				t.Logf("  %s", d)
			}
		}
	}
}

// Package a exercises the all-or-nothing field atomicity rule.
package a

import "sync/atomic"

type counter struct {
	n    int64
	done uint32
	name string
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) plainRead() int64 {
	return c.n // want "field n is accessed with sync/atomic elsewhere"
}

func (c *counter) plainWrite() {
	c.n = 0 // want "field n is accessed with sync/atomic elsewhere"
}

func (c *counter) plainThroughValue(other counter) int64 {
	return other.n // want "field n is accessed with sync/atomic elsewhere"
}

// Composite-literal initialization is exempt: the value is unshared.
func newCounter() *counter {
	return &counter{n: 1, name: "fresh"}
}

// done is only ever touched atomically: no diagnostics.
func (c *counter) finish() {
	atomic.StoreUint32(&c.done, 1)
}

func (c *counter) finished() bool {
	return atomic.LoadUint32(&c.done) == 1
}

// name is never touched atomically: plain access is fine.
func (c *counter) label() string {
	return c.name
}

// typed wrappers make mixed access inexpressible: never flagged.
type typed struct {
	v atomic.Int64
}

func (t *typed) bump() int64 {
	t.v.Add(1)
	return t.v.Load()
}

// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field whose address is ever passed to a sync/atomic
// function must be accessed through sync/atomic everywhere.
//
// The invariant comes from the engine's hand-rolled concurrency
// machinery — delta's single-writer/many-reader maps, the obs counters,
// the replication ack registry — where a single plain load of an
// atomically published field is a data race that -race only catches if
// the schedule cooperates. Most of the tree uses the typed atomic.T
// wrappers, which make mixed access inexpressible; this analyzer guards
// the old-style pattern (a plain int64 field plus atomic.AddInt64)
// that a refactor or a "just this once" read could reintroduce.
//
// Composite-literal initialization (S{n: 1}) is allowed: a value still
// under construction is not shared, and requiring atomics there would
// push code toward pointless ceremony. Everything after publication
// must go through sync/atomic — including reads that "only" feed logs.
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "fields accessed via sync/atomic must be accessed atomically everywhere\n\n" +
		"A struct field whose address is passed to any sync/atomic function in the\n" +
		"package must have every other access go through sync/atomic too. Plain\n" +
		"reads and writes of such a field are data races. Composite-literal\n" +
		"initialization is exempt (the value is not yet shared); prefer the typed\n" +
		"atomic.T wrappers, which make this mistake impossible to write.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: find every &x.f argument of a sync/atomic call. The field
	// object identifies the field across all instances of the struct.
	atomicFields := map[*types.Var][]*ast.SelectorExpr{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods on the typed atomic.T wrappers are always safe.
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass.TypesInfo, sel); fv != nil {
					atomicFields[fv] = append(atomicFields[fv], sel)
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return []*types.Var(nil), nil
	}

	// Pass 2: every other selector touching those fields is a violation,
	// except keyed composite-literal initialization.
	for _, f := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Keys are field names, not accesses; values still checked.
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						ast.Inspect(kv.Value, visit)
					} else {
						ast.Inspect(el, visit)
					}
				}
				return false
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return true
				}
				fv := fieldOf(pass.TypesInfo, n)
				if fv == nil {
					return true
				}
				if _, hot := atomicFields[fv]; hot {
					pass.Reportf(n.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere in this package; this plain access races (use sync/atomic here too, or a typed atomic.%s)",
						fv.Name(), suggestTyped(fv.Type()))
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}

	fields := make([]*types.Var, 0, len(atomicFields))
	for fv := range atomicFields {
		fields = append(fields, fv)
	}
	return fields, nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// suggestTyped names the typed atomic wrapper for the field's type, for
// the diagnostic's fix hint.
func suggestTyped(t types.Type) string {
	if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	if _, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		return "Pointer[T]"
	}
	return "Value"
}

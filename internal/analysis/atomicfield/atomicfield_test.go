package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/src", atomicfield.Analyzer)
}

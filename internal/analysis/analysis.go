// Package analysis is AMbER's project-specific static-analysis
// framework: a deliberately small, stdlib-only re-statement of the
// golang.org/x/tools/go/analysis surface, carrying a suite of analyzers
// that turn the engine's concurrency and durability invariants — rules
// that previously lived only in comments and -race tests — into
// build-time errors.
//
// The shape mirrors x/tools so each analyzer reads like (and could be
// ported to) a standard go/analysis pass: an Analyzer owns a Run
// function over a Pass; diagnostics carry positions; golden tests use
// the // want "regexp" convention. What differs is the driver: packages
// are loaded with `go list -export` plus go/types and the gc export
// data importer, so the whole suite builds and runs with nothing
// outside the standard toolchain (this repository has no third-party
// dependencies, and its CI must work without them).
//
// See cmd/amber-vet for the multichecker binary and the README's
// "Static analysis" section for the invariant catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags; lowercase,
	// no spaces.
	Name string

	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, then the full invariant it enforces and why it exists.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through the pass. The returned value is collected per package and
	// handed to Global (nil is fine when the analyzer has no
	// cross-package component).
	Run func(*Pass) (any, error)

	// Global, when non-nil, runs once after every package in the unit of
	// work has been analyzed, with each package's Run result. It is how
	// whole-program rules (a metric name registered in two different
	// packages) report, and it only fires in whole-tree drivers —
	// per-package vet units skip it.
	Global func(results []Result, report func(token.Pos, string))
}

// Result pairs a package with its analyzer Run value, for Global.
type Result struct {
	Pkg   *Package
	Value any
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; Name the package name.
	Path string
	Name string
	// Fset is the file set shared by every package in the load (so
	// token.Pos values are comparable across packages).
	Fset *token.FileSet
	// Files holds the parsed non-test source files. Test files are
	// excluded throughout the suite: the invariants govern production
	// code, and tests deliberately violate several of them (duplicate
	// metric registration, plain access to torn fields) to prove the
	// runtime panics they exercise.
	Files []*ast.File
	// Types and TypesInfo are the go/types results for Files.
	Types     *types.Package
	TypesInfo *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Pkg       *Package
	Fset      *token.FileSet
	Files     []*ast.File
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: message [analyzer]
// form used by the amber-vet CLI and the golden-test harness.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// ---- directives --------------------------------------------------------

// Directive is one //amber:name[ args] comment: the mechanism hot-path
// code uses to opt into stricter rules (hotloop, fieldalign's hot
// structs). Unknown directives are reserved — the runner rejects them so
// a typo cannot silently disable a check.
type Directive struct {
	Name string // e.g. "hotloop", "hot"
	Args string // remainder after the name, space-trimmed
	Pos  token.Pos
}

// directivePrefix is the comment marker; like //go: directives there is
// no space after //.
const directivePrefix = "//amber:"

// KnownDirectives lists every directive the suite understands;
// CheckDirectives rejects the rest.
var KnownDirectives = map[string]bool{
	"hotloop": true, // hotloop analyzer: function is part of the hot search step
	"hot":     true, // fieldalign analyzer: struct layout must be minimal
}

// ParseDirectives extracts the //amber: directives from a doc comment
// group (nil-safe).
func ParseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		out = append(out, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()})
	}
	return out
}

// CheckDirectives reports unknown //amber: directives anywhere in the
// package — every driver runs it so a misspelled directive fails the
// build instead of silently checking nothing.
func CheckDirectives(p *Pass) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, d := range ParseDirectives(cg) {
				if !KnownDirectives[d.Name] {
					p.Reportf(d.Pos, "unknown directive %q (known: amber:hot, amber:hotloop)", directivePrefix+d.Name)
				}
			}
		}
	}
}

// FuncDirective reports whether fn's doc comment carries the named
// directive, returning its args.
func FuncDirective(fn *ast.FuncDecl, name string) (string, bool) {
	for _, d := range ParseDirectives(fn.Doc) {
		if d.Name == name {
			return d.Args, true
		}
	}
	return "", false
}

// ---- shared type helpers ----------------------------------------------

// Callee resolves the *types.Func a call expression invokes (methods
// and package-level functions), or nil for builtins, type conversions
// and calls through function-typed variables.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleeVar resolves the *types.Var a call through a function-typed
// variable invokes (the wrapper-closure pattern), or nil.
func CalleeVar(info *types.Info, call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// IsPkg reports whether pkg (possibly nil) is the named package: an
// exact path match, a path-suffix match ("/"+suffix), or — so golden
// testdata can model internal packages with short import paths — an
// exact package-name match.
func IsPkg(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name) || pkg.Name() == name
}

// NamedType unwraps aliases and pointers to the *types.Named beneath t,
// or nil.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t is (a pointer to) the named type pkg.name.
func IsNamed(t types.Type, pkg, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	return IsPkg(n.Obj().Pkg(), pkg)
}

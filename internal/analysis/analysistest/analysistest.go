// Package analysistest is the golden-test harness for the amber-vet
// analyzers, following the x/tools convention: each analyzer has a
// testdata/src directory holding a tiny module of positive and negative
// cases, and every line expecting a diagnostic carries a
//
//	// want "regexp"
//
// comment (several regexps on one line mean several diagnostics).
// The harness runs the analyzers over the module, then requires an
// exact bidirectional match: every want satisfied by a diagnostic on
// its line, every diagnostic claimed by a want.
//
// The testdata modules model the production packages structurally —
// a package literally named wal with a Log type, a core with an
// atomic.Pointer[Snapshot], an obs with a Registry — because the
// analyzers bind to those shapes (by package name and receiver type),
// which is also what lets the goldens stay self-contained instead of
// importing the real engine.
package analysistest

import (
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
)

// wantRE extracts the expectation list from a comment; quotedRE then
// pulls out each quoted regexp.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the module rooted at dir (conventionally "testdata/src"),
// applies the analyzers, and matches diagnostics against the // want
// comments in the loaded files.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The loader: `go list -export -deps -json` enumerates the packages
// matching the patterns and compiles export data for everything they
// import; the target packages are then parsed from source and
// type-checked with the gc export-data importer. This is exactly the
// information a go/packages NeedSyntax|NeedTypes load would provide,
// obtained with nothing but the standard toolchain.

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns
// (relative to dir; empty dir means the current directory). Test files
// are excluded — see Package.Files. Packages pulled in only as
// dependencies are type-checked through their compiled export data, not
// returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, unsupported", p.ImportPath)
		}
		var paths []string
		for _, gf := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, gf))
		}
		pkg, err := typeCheck(fset, p.ImportPath, paths, imp)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // test-only package: nothing in scope
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses the given files and type-checks them as one package.
func typeCheck(fset *token.FileSet, path string, files []string, imp types.Importer) (*Package, error) {
	var astFiles []*ast.File
	for _, fp := range files {
		if strings.HasSuffix(fp, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		astFiles = append(astFiles, f)
	}
	if len(astFiles) == 0 {
		return nil, nil // test-only package
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

package metricdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metricdiscipline"
)

func TestMetricDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src", metricdiscipline.Analyzer)
}

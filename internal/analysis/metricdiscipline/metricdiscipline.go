// Package metricdiscipline enforces the observability naming contract:
// every metric registered on an obs.Registry has a compile-time
// constant name matching ^amber_[a-z0-9_]+$, and no name is registered
// twice.
//
// The registry panics on duplicate registration — at runtime, on the
// first request that builds a server with the colliding component
// enabled, which with optional subsystems (replication, governance) can
// be long after the PR that introduced the clash. Dashboards and the
// bench-trajectory tooling key on the amber_ prefix; a metric that
// drifts out of the namespace silently vanishes from both. This
// analyzer moves both failures to vet time.
//
// Names must be constants so the full metric surface is greppable and
// auditable — a name assembled at runtime can collide with or shadow
// anything. The one sanctioned indirection is the local wrapper
// closure (cf := func(name, help string, ...) { r.CounterFunc(name,
// ...) }): the analyzer follows the parameter and checks each call
// site's literal instead. The go_* runtime namespace (go_goroutines,
// go_memstats_*) is allowed only inside package obs, which mirrors the
// Prometheus Go-runtime conventions on purpose.
package metricdiscipline

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the metricdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricdiscipline",
	Doc: "metric names are constant, amber_-prefixed and registered once\n\n" +
		"Every obs.Registry registration (Counter, CounterFunc, Gauge, GaugeFunc,\n" +
		"Histogram, CounterVec, HistogramVec) must pass a constant name matching\n" +
		"^amber_[a-z0-9_]+$ (package obs may also use the go_ runtime namespace).\n" +
		"Registering the same name twice panics at runtime; the analyzer reports\n" +
		"duplicates within a package, and across packages when run whole-tree.",
	Run:    run,
	Global: global,
}

// registerMethods maps obs.Registry registration methods to the index
// of their name parameter (all lead with name).
var registerMethods = map[string]bool{
	"Counter":      true,
	"CounterFunc":  true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"CounterVec":   true,
	"HistogramVec": true,
}

var (
	nameRE    = regexp.MustCompile(`^amber_[a-z0-9_]+$`)
	runtimeRE = regexp.MustCompile(`^go_[a-z0-9_]+$`)
)

// metric is one registration, collected for duplicate detection.
type metric struct {
	Name string
	Pos  token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Wrapper registrars: a function literal assigned to a local
	// variable whose body forwards one of its own string parameters as
	// the name of a registration call. Calls through that variable are
	// then themselves registrations, with the name at the parameter's
	// index.
	registrars := map[*types.Var]int{} // wrapper var -> name arg index
	forwarded := map[*types.Var]bool{} // wrapper's name parameter objects
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			lit, ok := ast.Unparen(asg.Rhs[0]).(*ast.FuncLit)
			if !ok {
				return true
			}
			id, ok := asg.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				v, _ = info.Uses[id].(*types.Var)
			}
			if v == nil {
				return true
			}
			if param := forwardedNameParam(info, lit); param != nil {
				if idx := paramIndex(lit, info, param); idx >= 0 {
					registrars[v] = idx
					forwarded[param] = true
				}
			}
			return true
		})
	}

	var metrics []metric
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var nameArg ast.Expr
			if isRegisterCall(info, call) && len(call.Args) > 0 {
				nameArg = call.Args[0]
			} else if v := analysis.CalleeVar(info, call); v != nil {
				idx, ok := registrars[v]
				if !ok || idx >= len(call.Args) {
					return true
				}
				nameArg = call.Args[idx]
			} else {
				return true
			}

			tv, ok := info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				// The wrapper's own forwarding of its parameter is the
				// sanctioned non-constant case; its call sites carry the
				// literals.
				if obj := identObj(info, nameArg); obj != nil {
					if v, ok := obj.(*types.Var); ok && forwarded[v] {
						return true
					}
				}
				pass.Reportf(nameArg.Pos(),
					"metric name is not a compile-time constant: names must be grep-able literals (or flow through a local wrapper closure whose call sites use literals)")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				if runtimeRE.MatchString(name) && pass.Pkg.Name == "obs" {
					metrics = append(metrics, metric{Name: name, Pos: nameArg.Pos()})
					return true
				}
				pass.Reportf(nameArg.Pos(),
					"metric name %q outside the amber_ namespace: dashboards and the bench tooling key on ^amber_[a-z0-9_]+$ (go_* is reserved for the runtime metrics in package obs)", name)
				return true
			}
			metrics = append(metrics, metric{Name: name, Pos: nameArg.Pos()})
			return true
		})
	}

	// Per-package duplicates report here; cross-package ones in Global.
	seen := map[string]token.Pos{}
	for _, m := range metrics {
		if first, dup := seen[m.Name]; dup {
			pass.Reportf(m.Pos,
				"metric %q registered twice in this package (first at %s): Registry.add panics on the second registration at runtime",
				m.Name, pass.Fset.Position(first))
			continue
		}
		seen[m.Name] = m.Pos
	}
	return metrics, nil
}

// global reports the same metric name registered from two different
// packages — each registration panics only when both land on one
// registry, which optional subsystems can defer past CI.
func global(results []analysis.Result, report func(token.Pos, string)) {
	type site struct {
		pkg string
		pos token.Pos
	}
	first := map[string]site{}
	for _, res := range results {
		ms, _ := res.Value.([]metric)
		for _, m := range ms {
			prev, ok := first[m.Name]
			if !ok {
				first[m.Name] = site{pkg: res.Pkg.Path, pos: m.Pos}
				continue
			}
			if prev.pkg != res.Pkg.Path {
				report(m.Pos, "metric \""+m.Name+"\" is also registered by "+prev.pkg+
					": both registrations panic if one server wires both subsystems")
			}
		}
	}
}

// isRegisterCall reports whether call is a registration method on
// obs.Registry.
func isRegisterCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || !registerMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamed(sig.Recv().Type(), "obs", "Registry")
}

// forwardedNameParam returns the *types.Var of a string parameter of
// lit that the body forwards as the name argument of a registration
// call, or nil.
func forwardedNameParam(info *types.Info, lit *ast.FuncLit) *types.Var {
	var param *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || param != nil {
			return true
		}
		if !isRegisterCall(info, call) || len(call.Args) == 0 {
			return true
		}
		obj := identObj(info, call.Args[0])
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		// Is v one of lit's parameters?
		if paramIndex(lit, info, v) >= 0 {
			param = v
		}
		return true
	})
	return param
}

// paramIndex returns v's position in lit's parameter list, or -1.
func paramIndex(lit *ast.FuncLit, info *types.Info, v *types.Var) int {
	idx := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == v {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

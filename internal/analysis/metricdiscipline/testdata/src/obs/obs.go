// Package obs models the production registry surface; the analyzer
// matches registration methods on a Registry type in a package named
// obs, and sanctions the go_ runtime namespace only here.
package obs

// Registry stands in for obs.Registry.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// CounterFunc registers a callback-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Counter { return &Counter{} }

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Counter { return &Counter{} }

// Counter is a stub metric.
type Counter struct{}

// RegisterRuntime mirrors obs/runtime.go: the go_ namespace is
// sanctioned inside package obs only.
func RegisterRuntime(r *Registry) {
	r.CounterFunc("go_goroutines", "Current goroutine count.", nil)
	r.GaugeFunc("go_memstats_heap_inuse_bytes", "Heap bytes in use.", nil)
}

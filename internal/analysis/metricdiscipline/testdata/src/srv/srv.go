// Package srv exercises the naming and duplicate rules at a
// registration site outside package obs.
package srv

import "vettest/obs"

const constName = "amber_from_const_total"

// Register exercises every rule.
func Register(r *obs.Registry) {
	// Compliant literal and named-constant registrations.
	r.Counter("amber_requests_total", "Requests served.")
	r.Gauge("amber_inflight", "In-flight requests.")
	r.Counter(constName, "Constant-named counter.")

	// Duplicate within the package: the registry panics at runtime.
	r.Counter("amber_requests_total", "Requests served.") // want "metric \"amber_requests_total\" registered twice in this package"

	// Namespace violations.
	r.Counter("http_requests_total", "Wrong prefix.") // want "metric name \"http_requests_total\" outside the amber_ namespace"
	r.Counter("go_goroutines", "Runtime name outside obs.") // want "metric name \"go_goroutines\" outside the amber_ namespace"
	r.Counter("amber_Bad_Case", "Uppercase.") // want "metric name \"amber_Bad_Case\" outside the amber_ namespace"

	// Non-constant name.
	name := pick()
	r.Counter(name, "Dynamic name.") // want "metric name is not a compile-time constant"

	// The sanctioned wrapper-closure pattern: the literal moves to the
	// call sites, which are checked instead.
	cf := func(n, h string, f func() float64) {
		r.CounterFunc(n, h, f)
	}
	cf("amber_wrapped_total", "Registered through the wrapper.", nil)
	cf("wrapped_bad_total", "Wrapper does not launder bad names.", nil) // want "metric name \"wrapped_bad_total\" outside the amber_ namespace"

	// Cross-package duplicate: also registered by srv2 (reported there,
	// whole-tree runs only).
	r.Counter("amber_shared_total", "Registered here first.")
}

func pick() string { return "amber_dynamic_total" }

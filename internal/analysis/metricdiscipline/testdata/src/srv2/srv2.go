// Package srv2 registers a name srv already owns: caught only by the
// whole-tree Global pass (per-unit vet runs cannot see across packages).
package srv2

import "vettest/obs"

// Register collides with srv on amber_shared_total.
func Register(r *obs.Registry) {
	r.Counter("amber_shared_total", "Registered here second.") // want "metric \"amber_shared_total\" is also registered by vettest/srv"
}

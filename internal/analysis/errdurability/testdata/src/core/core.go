// Package core exercises the errdurability contract: wal errors must be
// wrapped in ErrDurability before being returned.
package core

import (
	"errors"
	"fmt"

	"vettest/wal"
)

// ErrDurability mirrors the production sentinel.
var ErrDurability = errors.New("durability error")

type store struct {
	log *wal.Log
}

// ---- violations --------------------------------------------------------

func (s *store) syncBare() error {
	return s.log.Sync() // want "wal call's error returned without ErrDurability"
}

func (s *store) closeViaIdent() error {
	err := s.log.Close()
	return err // want "wal error \"err\" returned without ErrDurability"
}

func (s *store) openMultiResult(dir string) (uint64, error) {
	l, err := wal.Open(dir)
	if err != nil {
		return 0, err // want "wal error \"err\" returned without ErrDurability"
	}
	return l.LastSeq(), nil
}

func (s *store) wrappedWithoutSentinel(dir string) error {
	if err := wal.SyncDir(dir); err != nil {
		return fmt.Errorf("sync dir: %w", err) // want "wal error wrapped without ErrDurability"
	}
	return nil
}

func (s *store) channelBare() error {
	ch := make(chan error, 1)
	go func() { ch <- s.log.Sync() }()
	werr := <-ch
	return werr // want "wal error \"werr\" returned without ErrDurability"
}

// ---- compliant code ----------------------------------------------------

func (s *store) syncWrapped() error {
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

func (s *store) overlappedSync(rec []byte) error {
	ch := make(chan error, 1)
	go func() { ch <- s.log.Sync() }()
	if _, err := s.log.Append(rec); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if werr := <-ch; werr != nil {
		return fmt.Errorf("%w: %w", ErrDurability, werr)
	}
	return nil
}

// nonErrorResult must not taint: LastSeq returns uint64.
func (s *store) nonErrorResult() uint64 {
	seq := s.log.LastSeq()
	return seq
}

// localError is untainted: not from wal.
func (s *store) localError() error {
	err := errors.New("local")
	return err
}

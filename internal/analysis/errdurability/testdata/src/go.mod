module vettest

go 1.24

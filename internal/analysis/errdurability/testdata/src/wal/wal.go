// Package wal models the production repro/internal/wal surface: the
// errdurability analyzer matches callees by package name, so this stub
// stands in for the real log.
package wal

// Log stands in for wal.Log.
type Log struct{}

// Open stands in for wal.Open.
func Open(dir string) (*Log, error) { return &Log{}, nil }

// Sync models the durability barrier.
func (l *Log) Sync() error { return nil }

// Close models log shutdown.
func (l *Log) Close() error { return nil }

// Append models a record append, returning (seq, error).
func (l *Log) Append(rec []byte) (uint64, error) { return 0, nil }

// LastSeq returns a non-error result (must not taint).
func (l *Log) LastSeq() uint64 { return 0 }

// SyncDir models the directory fsync helper.
func SyncDir(dir string) error { return nil }

// Package errdurability enforces the durability error contract at the
// core/wal boundary: inside package core, an error produced by a call
// into the wal package must be wrapped in core.ErrDurability before it
// can be returned.
//
// The server maps ErrDurability to 503 + Retry-After so clients retry
// writes the log could not take, instead of treating a full disk as a
// malformed request and dropping the write. A raw wal error escaping
// core's surface silently breaks that mapping — it still reads like an
// error, tests that only check err != nil still pass, and the first
// symptom is a client discarding an acknowledged-retryable write in
// production. Hence a compile-time tripwire rather than a convention.
package errdurability

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errdurability pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdurability",
	Doc: "wal errors must be wrapped in ErrDurability before leaving package core\n\n" +
		"Within package core, an error obtained from a repro/internal/wal call may\n" +
		"not appear in a return statement bare, nor inside a wrapping call that\n" +
		"does not also carry ErrDurability (fmt.Errorf(\"%w: %w\", ErrDurability, err)).\n" +
		"The server relies on errors.Is(err, ErrDurability) to map log failures to\n" +
		"retryable 503s instead of client-fault 400s.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name != "core" {
		return nil, nil
	}
	errDur := pass.Pkg.Types.Scope().Lookup("ErrDurability")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body, errDur)
			}
		}
	}
	return nil, nil
}

// checkFunc applies the contract to one function body (including any
// function literals it contains — their returns cross the same package
// boundary once the closure escapes).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, errDur types.Object) {
	// Pass A: collect every identifier bound to a wal call's error
	// result, plus channels that carry one (the group-commit overlap
	// pattern sends d.log.Sync()'s result through a channel).
	tainted := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isWalCall(pass.TypesInfo, call) {
					for _, lhs := range n.Lhs {
						taintIfError(pass.TypesInfo, tainted, lhs, call.Pos())
					}
				}
				// Receive from a tainted channel: werr := <-syncErr.
				if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if chObj := identObj(pass.TypesInfo, u.X); chObj != nil {
						if pos, ok := tainted[chObj]; ok {
							for _, lhs := range n.Lhs {
								taintIfError(pass.TypesInfo, tainted, lhs, pos)
							}
						}
					}
				}
			}
		case *ast.SendStmt:
			// ch <- walCall(): the channel now carries a wal error.
			if call, ok := ast.Unparen(n.Value).(*ast.CallExpr); ok && isWalCall(pass.TypesInfo, call) {
				if chObj := identObj(pass.TypesInfo, n.Chan); chObj != nil {
					tainted[chObj] = call.Pos()
				}
			}
		}
		return true
	})

	// Pass B: inspect returns.
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res := ast.Unparen(res)
			// return d.log.Sync() — a bare wal call in return position.
			if call, ok := res.(*ast.CallExpr); ok && isWalCall(pass.TypesInfo, call) {
				if returnsError(pass.TypesInfo, call) {
					pass.Reportf(res.Pos(),
						"wal call's error returned without ErrDurability wrapping (wrap with fmt.Errorf(\"%%w: %%w\", ErrDurability, err))")
				}
				continue
			}
			// return err — a bare tainted identifier.
			if obj := identObj(pass.TypesInfo, res); obj != nil {
				if _, bad := tainted[obj]; bad && isErrorType(pass.TypesInfo, res) {
					pass.Reportf(res.Pos(),
						"wal error %q returned without ErrDurability wrapping (wrap with fmt.Errorf(\"%%w: %%w\", ErrDurability, %s))",
						obj.Name(), obj.Name())
				}
				continue
			}
			// return wrap(err) — a call consuming a tainted identifier
			// must also carry ErrDurability among its arguments.
			if call, ok := res.(*ast.CallExpr); ok && isErrorType(pass.TypesInfo, res) {
				var usesTainted bool
				hasErrDur := false
				for _, arg := range call.Args {
					if obj := identObj(pass.TypesInfo, arg); obj != nil {
						if _, bad := tainted[obj]; bad {
							usesTainted = true
						}
						if errDur != nil && obj == errDur {
							hasErrDur = true
						}
					}
				}
				if usesTainted && !hasErrDur {
					pass.Reportf(res.Pos(),
						"wal error wrapped without ErrDurability (include ErrDurability: fmt.Errorf(\"%%w: %%w\", ErrDurability, err))")
				}
			}
		}
		return true
	})
}

// taintIfError marks lhs as carrying a wal error when it is a non-blank
// identifier of type error.
func taintIfError(info *types.Info, tainted map[types.Object]token.Pos, lhs ast.Expr, pos token.Pos) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	t := obj.Type()
	if t != nil && (isError(t) || isErrorChan(t)) {
		tainted[obj] = pos
	}
}

// isWalCall reports whether call invokes a function or method of the
// repro/internal/wal package (matched by path suffix or package name,
// so golden testdata can model it).
func isWalCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && analysis.IsPkg(fn.Pkg(), "wal")
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isError(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isErrorChan(t types.Type) bool {
	ch, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok && isError(ch.Elem())
}

// isErrorType reports whether expression e has type error.
func isErrorType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isError(tv.Type)
}

// returnsError reports whether the call's (single or last) result is an
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len() > 0 && isError(tup.At(tup.Len()-1).Type())
	}
	return isError(tv.Type)
}

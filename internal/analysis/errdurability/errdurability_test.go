package errdurability_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errdurability"
)

func TestErrDurability(t *testing.T) {
	analysistest.Run(t, "testdata/src", errdurability.Analyzer)
}

package publishbarrier_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/publishbarrier"
)

func TestPublishBarrier(t *testing.T) {
	analysistest.Run(t, "testdata/src", publishbarrier.Analyzer)
}

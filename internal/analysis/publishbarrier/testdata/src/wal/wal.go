// Package wal models the production repro/internal/wal surface for the
// publishbarrier analyzer (which matches barrier methods on wal.Log).
package wal

// Log stands in for wal.Log.
type Log struct{}

// Sync is a durability barrier.
func (l *Log) Sync() error { return nil }

// Append is a durability barrier returning (seq, error).
func (l *Log) Append(rec []byte) (uint64, error) { return 0, nil }

// AppendBatchNoSync is the group-commit barrier.
func (l *Log) AppendBatchNoSync(recs [][]byte) (uint64, error) { return 0, nil }

// Stats is not a barrier.
func (l *Log) Stats() int { return 0 }

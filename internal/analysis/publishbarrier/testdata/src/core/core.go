// Package core exercises the publish-after-barrier discipline: no
// snapshot publish while a WAL barrier's error is unchecked, and no
// discarded barrier results.
package core

import (
	"sync/atomic"

	"vettest/wal"
)

// Snapshot stands in for the MVCC generation.
type Snapshot struct{ gen uint64 }

type liveState struct {
	snap atomic.Pointer[Snapshot]
	log  *wal.Log
}

// ---- violations --------------------------------------------------------

func (l *liveState) publishUnchecked(sn *Snapshot, rec []byte) {
	seq, err := l.log.Append(rec)
	_ = seq
	_ = err
	l.snap.Store(sn) // want "snapshot published while the error of WAL barrier Append is unchecked"
}

func (l *liveState) publishAfterUnreceivedSync(sn *Snapshot) {
	syncErr := make(chan error, 1)
	go func() { syncErr <- l.log.Sync() }()
	l.snap.Store(sn) // want "snapshot published while the error of WAL barrier Sync is unchecked"
}

func (l *liveState) discardedBarrier() {
	l.log.Sync() // want "result of WAL barrier Sync discarded"
}

func (l *liveState) discardedToBlank(rec []byte) {
	_, _ = l.log.Append(rec) // want "result of WAL barrier Append discarded"
}

func (l *liveState) checkWithoutReturn(sn *Snapshot, rec []byte) {
	_, err := l.log.Append(rec)
	if err != nil {
		// No return/panic: fallthrough still publishes on failure.
		err = nil
	}
	l.snap.Store(sn) // want "snapshot published while the error of WAL barrier Append is unchecked"
}

// ---- compliant code ----------------------------------------------------

func (l *liveState) commit(sn *Snapshot, rec []byte) error {
	if _, err := l.log.Append(rec); err != nil {
		return err
	}
	l.snap.Store(sn)
	return nil
}

// groupCommit is the overlapped-fsync leader shape from live.go.
func (l *liveState) groupCommit(sn *Snapshot, recs [][]byte) error {
	syncErr := make(chan error, 1)
	go func() { syncErr <- l.log.Sync() }()
	if _, err := l.log.AppendBatchNoSync(recs); err != nil {
		return err
	}
	if werr := <-syncErr; werr != nil {
		return werr
	}
	l.snap.Store(sn)
	return nil
}

// replayPublish has no barrier at all: replay and compaction publish
// state the log already contains.
func (l *liveState) replayPublish(sn *Snapshot) {
	l.snap.Store(sn)
}

// nonBarrierCall: Stats is not a barrier and needs no check.
func (l *liveState) nonBarrierCall(sn *Snapshot) {
	n := l.log.Stats()
	_ = n
	l.snap.Store(sn)
}

// otherPointerStore: Stores on non-Snapshot pointers are not publishes.
type sideState struct {
	p   atomic.Pointer[int]
	log *wal.Log
}

func (s *sideState) sideStore(v *int, rec []byte) error {
	if _, err := s.log.Append(rec); err != nil {
		return err
	}
	s.p.Store(v)
	return nil
}

// Package publishbarrier enforces write-ahead discipline on MVCC
// generation publishes in package core: no snapshot may be published on
// a path where a WAL durability barrier (Append, AppendBatch,
// AppendBatchNoSync, AppendExternal, Sync) failed or had its result
// discarded.
//
// Publishing a generation makes a batch visible to every reader; the
// write-ahead contract says the log must have accepted (and, under
// fsync=always, synced) the batch first, and that a barrier failure
// must keep the old snapshot — readers must never observe state the log
// cannot reproduce after a crash. The group-commit leader encodes this
// as "check every barrier error, early-return before the publish"; this
// analyzer makes that shape mandatory.
//
// The check is lexical, not path-sensitive, which is exactly as strong
// as the code style it enforces: within one function (closures
// included, since the fsync overlap runs the barrier inside a
// goroutine), every barrier call's error must be nil-checked by an
// if-statement with a terminating body before any later snapshot
// publish, where "publish" is a Store call on an atomic.Pointer whose
// element type is named Snapshot. Barrier errors forwarded through a
// channel (the overlapped-fsync pattern) are tracked through the
// channel: the receive must be checked instead. Discarding a barrier
// result — assigning it to _, or calling the barrier as a bare
// statement — is an unconditional violation: a skipped barrier is a
// skipped durability guarantee even if no publish follows.
package publishbarrier

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the publishbarrier pass.
var Analyzer = &analysis.Analyzer{
	Name: "publishbarrier",
	Doc: "MVCC generation publishes must be unreachable after a failed or skipped WAL barrier\n\n" +
		"In package core, every wal barrier call (Append/AppendBatch/AppendBatchNoSync/\n" +
		"AppendExternal/Sync on *wal.Log) must have its error nil-checked with a\n" +
		"terminating branch before any later atomic.Pointer[Snapshot].Store in the\n" +
		"same function; discarding a barrier result is always a violation.",
	Run: run,
}

// barrierMethods are the *wal.Log methods that constitute durability
// barriers.
var barrierMethods = map[string]bool{
	"Append":            true,
	"AppendBatch":       true,
	"AppendBatchNoSync": true,
	"AppendExternal":    true,
	"Sync":              true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name != "core" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil, nil
}

// event is one ordered occurrence inside a function: a barrier binding,
// a check that clears it, or a publish.
type event struct {
	pos token.Pos
	// kind: "bind" (obj carries an unchecked barrier error), "clear"
	// (obj's error was nil-checked with a terminating body), "transfer"
	// (from → to, the channel-receive pattern), "publish", "discard".
	kind     string
	obj      types.Object
	from, to types.Object
	what     string // barrier method name, for messages
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var events []event
	info := pass.TypesInfo

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if name, ok := barrierCall(info, n.Rhs[0]); ok {
					obj := errLHS(info, n.Lhs)
					if obj == nil {
						events = append(events, event{pos: n.Pos(), kind: "discard", what: name})
					} else {
						events = append(events, event{pos: n.Pos(), kind: "bind", obj: obj, what: name})
					}
				}
				// werr := <-ch transfers a pending barrier from the
				// channel to the received variable.
				if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if chObj := identObj(info, u.X); chObj != nil {
						if to := errLHS(info, n.Lhs); to != nil {
							events = append(events, event{pos: n.Pos(), kind: "transfer", from: chObj, to: to})
						}
					}
				}
			}
		case *ast.SendStmt:
			if name, ok := barrierCall(info, n.Value); ok {
				if chObj := identObj(info, n.Chan); chObj != nil {
					events = append(events, event{pos: n.Pos(), kind: "bind", obj: chObj, what: name})
				} else {
					events = append(events, event{pos: n.Pos(), kind: "discard", what: name})
				}
			}
		case *ast.ExprStmt:
			if name, ok := barrierCall(info, n.X); ok {
				events = append(events, event{pos: n.Pos(), kind: "discard", what: name})
			}
		case *ast.IfStmt:
			// if [init;] X != nil { ...return/panic... } clears X. The
			// init may itself bind (if _, err := barrier(); err != nil)
			// or receive (if werr := <-ch; werr != nil) — the Inspect
			// visit of the init statement emits those events first, and
			// position ordering keeps bind < clear.
			if checked := nilCheckedObj(info, n); checked != nil && terminates(n.Body) {
				events = append(events, event{pos: n.Body.Pos(), kind: "clear", obj: checked})
			}
		case *ast.CallExpr:
			if isPublish(info, n) {
				events = append(events, event{pos: n.Pos(), kind: "publish"})
			}
		}
		return true
	})

	// Replay in source order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	pending := map[types.Object]string{} // obj -> barrier name
	for _, e := range events {
		switch e.kind {
		case "bind":
			pending[e.obj] = e.what
		case "clear":
			delete(pending, e.obj)
		case "transfer":
			if what, ok := pending[e.from]; ok {
				delete(pending, e.from)
				pending[e.to] = what
			}
		case "discard":
			pass.Reportf(e.pos,
				"result of WAL barrier %s discarded: a snapshot published after it could outlive the log (check the error and fail the commit)", e.what)
		case "publish":
			if len(pending) == 0 {
				continue
			}
			names := make([]string, 0, len(pending))
			for _, what := range pending {
				names = append(names, what)
			}
			sort.Strings(names)
			for _, what := range names {
				pass.Reportf(e.pos,
					"snapshot published while the error of WAL barrier %s is unchecked: a failed barrier must keep the old generation (nil-check it with an early return first)", what)
			}
			pending = map[types.Object]string{}
		}
	}
}

// barrierCall reports whether e is a call to a wal.Log durability
// barrier, returning the method name.
func barrierCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || !barrierMethods[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !analysis.IsNamed(sig.Recv().Type(), "wal", "Log") {
		return "", false
	}
	return fn.Name(), true
}

// errLHS returns the object of the error-typed (or error-channel)
// left-hand side of an assignment, or nil when the error lands in _.
func errLHS(info *types.Info, lhs []ast.Expr) types.Object {
	// The error is the last result; for `n, err := ...` that is the last
	// LHS. For a send statement the caller passes the channel expression.
	for i := len(lhs) - 1; i >= 0; i-- {
		id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || obj.Type() == nil {
			continue
		}
		if isError(obj.Type()) {
			return obj
		}
	}
	return nil
}

// nilCheckedObj returns the object X when the if condition is `X != nil`.
func nilCheckedObj(info *types.Info, ifs *ast.IfStmt) types.Object {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	var operand ast.Expr
	switch {
	case isNil(info, bin.Y):
		operand = bin.X
	case isNil(info, bin.X):
		operand = bin.Y
	default:
		return nil
	}
	obj := identObj(info, operand)
	if obj == nil || obj.Type() == nil || !isError(obj.Type()) {
		return nil
	}
	return obj
}

// terminates reports whether the block's statement list contains a
// top-level return or panic — the shape that makes the error branch
// abort the commit path.
func terminates(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// isPublish reports whether call is atomic.Pointer[...Snapshot].Store.
func isPublish(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := analysis.NamedType(s.Recv())
	if recv == nil || recv.Obj().Name() != "Pointer" || !analysis.IsPkg(recv.Obj().Pkg(), "sync/atomic") {
		return false
	}
	args := recv.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	elem := analysis.NamedType(args.At(0))
	return elem != nil && elem.Obj().Name() == "Snapshot"
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func isError(t types.Type) bool {
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return true
	}
	ch, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok && types.Identical(ch.Elem(), types.Universe.Lookup("error").Type())
}

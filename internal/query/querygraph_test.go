package query

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

// figure2 is the paper's Figure 2a query, with the paper's predicate typos
// corrected to match the Figure 1 data (wasMarriedTo, hasCapacityOf,
// foundedIn 1994) so that the query is satisfiable.
const figure2 = `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}`

func dataGraph(t *testing.T) *multigraph.Graph {
	t.Helper()
	triples, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildQuery(t *testing.T, src string, g *multigraph.Graph) *Graph {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("sparql parse: %v", err)
	}
	qg, err := Build(pq, &g.Dicts)
	if err != nil {
		t.Fatalf("query build: %v", err)
	}
	return qg
}

func (g *Graph) mustVar(t *testing.T, name string) VertexID {
	t.Helper()
	id, ok := g.VarIndex[name]
	if !ok {
		t.Fatalf("variable %q missing", name)
	}
	return id
}

func TestFigure2Translation(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, figure2, dg)
	if qg.Unsat {
		t.Fatalf("query reported unsat: %s", qg.UnsatReason)
	}
	if len(qg.Vars) != 7 {
		t.Fatalf("vars = %d, want 7", len(qg.Vars))
	}

	// u5 carries two attributes (a1, a2).
	u5 := qg.mustVar(t, "X5")
	if len(qg.Vars[u5].Attrs) != 2 {
		t.Errorf("X5 attrs = %v, want 2", qg.Vars[u5].Attrs)
	}
	// u4 carries one attribute (a0).
	u4 := qg.mustVar(t, "X4")
	if len(qg.Vars[u4].Attrs) != 1 {
		t.Errorf("X4 attrs = %v, want 1", qg.Vars[u4].Attrs)
	}
	// u3 has one IRI constraint: edge u3 → United_States, probed Incoming
	// at the data vertex.
	u3 := qg.mustVar(t, "X3")
	if len(qg.Vars[u3].IRIs) != 1 {
		t.Fatalf("X3 IRI constraints = %v, want 1", qg.Vars[u3].IRIs)
	}
	us, _ := dg.Dicts.LookupVertex("http://dbpedia.org/resource/United_States")
	c := qg.Vars[u3].IRIs[0]
	if c.DataVertex != us || c.Dir != index.Incoming || len(c.Types) != 1 {
		t.Errorf("X3 IRI constraint = %+v", c)
	}

	// Multi-edge u3 → u1 must merge {wasBornIn, diedIn}.
	u1 := qg.mustVar(t, "X1")
	ab, ba := qg.EdgesBetween(u3, u1)
	if len(ab) != 2 {
		t.Errorf("u3→u1 types = %v, want 2 merged types", ab)
	}
	if ba != nil {
		t.Errorf("u1→u3 types = %v, want none", ba)
	}
	// u1 ↔ u2 has one edge each direction.
	u2 := qg.mustVar(t, "X2")
	ab, ba = qg.EdgesBetween(u1, u2)
	if len(ab) != 1 || len(ba) != 1 {
		t.Errorf("u1↔u2 = %v / %v, want one type each way", ab, ba)
	}
}

func TestFigure2Decomposition(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, figure2, dg)
	if len(qg.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(qg.Components))
	}
	comp := qg.Components[0]
	u1, u3, u5 := qg.mustVar(t, "X1"), qg.mustVar(t, "X3"), qg.mustVar(t, "X5")

	// Paper: U_c = {u1, u3, u5}. Core lists membership in ascending vertex
	// order; the matching order over it is chosen by internal/plan.
	if len(comp.Core) != 3 || comp.Core[0] != u1 || comp.Core[1] != u3 || comp.Core[2] != u5 {
		names := make([]string, len(comp.Core))
		for i, u := range comp.Core {
			names[i] = qg.Vars[u].Name
		}
		t.Fatalf("core = %v, want [X1 X3 X5] (ascending ids)", names)
	}
	// Paper: u1 has satellites {u0, u2, u4}; u3 has {u6}; u5 has none.
	if got := comp.Satellites[u1]; len(got) != 3 {
		t.Errorf("satellites of X1 = %v, want 3", got)
	}
	if got := comp.Satellites[u3]; len(got) != 1 || qg.Vars[got[0]].Name != "X6" {
		t.Errorf("satellites of X3 = %v, want [X6]", got)
	}
	if got := comp.Satellites[u5]; len(got) != 0 {
		t.Errorf("satellites of X5 = %v, want none", got)
	}
	if got := len(comp.Vertices()); got != 7 {
		t.Errorf("component vertices = %d, want 7", got)
	}
}

func TestVarDegrees(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, figure2, dg)
	wantDeg := map[string]int{
		"X0": 1, "X1": 5, "X2": 1, "X3": 3, "X4": 1, "X5": 2, "X6": 1,
	}
	for name, want := range wantDeg {
		if got := qg.VarDegree(qg.mustVar(t, name)); got != want {
			t.Errorf("deg(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestUnsatOnUnknownConstants(t *testing.T) {
	dg := dataGraph(t)
	cases := []struct {
		name, src string
	}{
		{"unknown predicate", `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a WHERE { ?a y:nonexistent ?b }`},
		{"unknown literal", `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a WHERE { ?a y:hasName "No_Such_Band" }`},
		{"unknown IRI", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT ?a WHERE { ?a y:livedIn x:Atlantis }`},
		// The paper's original Figure 2a text uses isMarriedTo, which does
		// not occur in the Figure 1 data (data says wasMarriedTo).
		{"paper typo", `PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:isMarriedTo ?b }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qg := buildQuery(t, tc.src, dg)
			if !qg.Unsat {
				t.Errorf("query not marked unsat")
			}
			if qg.UnsatReason == "" {
				t.Error("missing unsat reason")
			}
		})
	}
}

func TestGroundChecks(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?who WHERE {
  x:London y:isPartOf x:England .
  x:WembleyStadium y:hasCapacityOf "90000" .
  ?who y:wasBornIn x:London .
}`, dg)
	if qg.Unsat {
		t.Fatalf("unsat: %s", qg.UnsatReason)
	}
	if len(qg.GroundEdges) != 1 {
		t.Errorf("ground edges = %v, want 1", qg.GroundEdges)
	}
	if len(qg.GroundAttrs) != 1 {
		t.Errorf("ground attrs = %v, want 1", qg.GroundAttrs)
	}
	if len(qg.Vars) != 1 {
		t.Errorf("vars = %d, want 1", len(qg.Vars))
	}
}

func TestSelfLoop(t *testing.T) {
	triples, err := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/a> .
<http://x/a> <http://y/p> <http://x/b> .
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	qg := buildQuery(t, `SELECT ?v WHERE { ?v <http://y/p> ?v }`, g)
	if qg.Unsat {
		t.Fatal("self-loop query marked unsat")
	}
	v := qg.mustVar(t, "v")
	if len(qg.Vars[v].SelfTypes) != 1 {
		t.Errorf("SelfTypes = %v", qg.Vars[v].SelfTypes)
	}
	if qg.VarDegree(v) != 0 {
		t.Errorf("self-loop degree = %d, want 0", qg.VarDegree(v))
	}
	// Single-vertex component, v is the core.
	if len(qg.Components) != 1 || len(qg.Components[0].Core) != 1 {
		t.Errorf("components = %+v", qg.Components)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE {
  ?a y:wasBornIn ?b .
  ?c y:livedIn ?d .
}`, dg)
	if len(qg.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(qg.Components))
	}
	for _, comp := range qg.Components {
		if len(comp.Core) != 1 {
			t.Errorf("pair component core = %v, want exactly 1", comp.Core)
		}
		total := len(comp.Vertices())
		if total != 2 {
			t.Errorf("component vertices = %d, want 2", total)
		}
	}
}

func TestPairComponentPicksConstrainedCore(t *testing.T) {
	dg := dataGraph(t)
	// ?b has an attribute; with equal rank2, attribute count breaks the tie.
	qg := buildQuery(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:wasPartOf ?b . ?b y:hasName "MCA_Band" . }`, dg)
	comp := qg.Components[0]
	if len(comp.Core) != 1 {
		t.Fatalf("core = %v", comp.Core)
	}
	if qg.Vars[comp.Core[0]].Name != "b" {
		t.Errorf("core = %s, want the attributed vertex b", qg.Vars[comp.Core[0]].Name)
	}
}

func TestQuerySynopsis(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, figure2, dg)
	// X0 has a single outgoing edge (wasBornIn): synopsis must constrain
	// only the outgoing half and relax the incoming f3.
	u0 := qg.mustVar(t, "X0")
	syn := qg.Synopsis(u0)
	if syn[4] != 1 || syn[5] != 1 {
		t.Errorf("X0 outgoing f1/f2 = %d/%d, want 1/1", syn[4], syn[5])
	}
	if syn[0] != 0 {
		t.Errorf("X0 incoming f1 = %d, want 0", syn[0])
	}
	born, _ := dg.Dicts.LookupEdgeType("http://dbpedia.org/ontology/wasBornIn")
	if syn[7] != int32(born) {
		t.Errorf("X0 f4- = %d, want %d", syn[7], born)
	}
	// The IRI edge of X3 (livedIn United_States) must appear in X3's
	// outgoing signature.
	u3 := qg.mustVar(t, "X3")
	syn3 := qg.Synopsis(u3)
	// X3 has outgoing multi-edges: {born,died}→X1, {married}→X6,
	// {partOf}→X5, {livedIn}→IRI: f2- = 5 distinct types.
	if syn3[5] != 5 {
		t.Errorf("X3 f2- = %d, want 5", syn3[5])
	}
	if syn3[4] != 2 {
		t.Errorf("X3 f1- = %d, want 2 (the {born,died} multi-edge)", syn3[4])
	}
}

func TestEmptyQueryGraph(t *testing.T) {
	var d dict.Dictionaries
	pq, err := sparql.Parse(`SELECT * WHERE { <http://x/a> <http://y/p> <http://x/b> }`)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := Build(pq, &d)
	if err != nil {
		t.Fatal(err)
	}
	if !qg.Unsat {
		t.Error("ground pattern against empty data should be unsat")
	}
	if len(qg.Components) != 0 {
		t.Errorf("components = %v", qg.Components)
	}
}

func TestAllSatellitesOrder(t *testing.T) {
	dg := dataGraph(t)
	qg := buildQuery(t, figure2, dg)
	comp := qg.Components[0]
	sats := comp.AllSatellites()
	if len(sats) != 4 {
		t.Fatalf("AllSatellites = %d, want 4", len(sats))
	}
	// Core ids ascend as [X1 X3 X5]; X1's satellites come first, then
	// X3's X6.
	names := make([]string, len(sats))
	for i, u := range sats {
		names[i] = qg.Vars[u].Name
	}
	if names[3] != "X6" {
		t.Errorf("AllSatellites order = %v, want X6 last", names)
	}
}

func TestDuplicatePatternsMerge(t *testing.T) {
	dg := dataGraph(t)
	// The same pattern twice, a duplicated self loop, and a duplicated
	// attribute must all collapse.
	qg := buildQuery(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE {
  ?a y:wasBornIn ?b .
  ?a y:wasBornIn ?b .
  ?a y:diedIn ?b .
}`, dg)
	a := qg.mustVar(t, "a")
	b := qg.mustVar(t, "b")
	ab, _ := qg.EdgesBetween(a, b)
	if len(ab) != 2 {
		t.Errorf("merged multi-edge = %v, want 2 types", ab)
	}
	if _, ba := qg.EdgesBetween(a, b); ba != nil {
		t.Errorf("reverse types = %v, want none", ba)
	}
}

func TestSelfLoopSynopsisBothSides(t *testing.T) {
	triples, err := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/a> .`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	qg := buildQuery(t, `SELECT ?v WHERE { ?v <http://y/p> ?v . ?v <http://y/p> ?v . }`, g)
	v := qg.mustVar(t, "v")
	if len(qg.Vars[v].SelfTypes) != 1 {
		t.Fatalf("SelfTypes = %v, want deduplicated single type", qg.Vars[v].SelfTypes)
	}
	syn := qg.Synopsis(v)
	// Self loop contributes to both directions: f1+ and f1- are 1.
	if syn[0] != 1 || syn[4] != 1 {
		t.Errorf("self-loop synopsis = %v", syn)
	}
}

func TestTriangleAllCore(t *testing.T) {
	dg := dataGraph(t)
	// A triangle: every vertex has degree 2 — all three are core, none is
	// a satellite. (Which of them is matched first is the planner's call;
	// see internal/plan.)
	qg := buildQuery(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE {
  ?a y:wasBornIn ?b .
  ?b y:isPartOf ?c .
  ?c y:hasCapital ?a .
  ?a y:livedIn x:United_States .
}`, dg)
	comp := qg.Components[0]
	if len(comp.Core) != 3 {
		t.Fatalf("core = %v, want 3 (triangle)", comp.Core)
	}
	if got := qg.Rank2(qg.mustVar(t, "a")); got != 3 {
		t.Errorf("Rank2(a) = %d, want 3 (two triangle edges + IRI edge)", got)
	}
}

// parseQ is a small helper for the literal-satellite tests.
func parseQ(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestLitSatelliteAttrOnlyPredicate: `?s p ?o` over a predicate that only
// occurs with literal objects used to be unsatisfiable; it now yields a
// literal satellite attached to the subject.
func TestLitSatelliteAttrOnlyPredicate(t *testing.T) {
	g := dataGraph(t)
	q := parseQ(t, `PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?s ?n WHERE { ?s y:hasName ?n }`)
	qg, err := Build(q, &g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	if qg.Unsat {
		t.Fatalf("attr-only predicate unsat: %s", qg.UnsatReason)
	}
	uo := qg.VarIndex["n"]
	us := qg.VarIndex["s"]
	lit := qg.Vars[uo].Lit
	if lit == nil {
		t.Fatal("object variable has no Lit constraint")
	}
	if lit.SubjectVar != us || len(lit.Types) != 0 || len(lit.Attrs) == 0 {
		t.Errorf("Lit = %+v", lit)
	}
	if len(qg.Components) != 1 {
		t.Fatalf("components = %d, want 1 (lit link must connect)", len(qg.Components))
	}
	comp := qg.Components[0]
	if len(comp.Core) != 1 || comp.Core[0] != us {
		t.Errorf("core = %v, want [?s]", comp.Core)
	}
	if sats := comp.Satellites[us]; len(sats) != 1 || sats[0] != uo {
		t.Errorf("satellites = %v, want [?n]", sats)
	}
}

// TestLitSatelliteConstSubject: a constant subject makes the literal
// satellite its own single-vertex component with a fixed candidate list.
func TestLitSatelliteConstSubject(t *testing.T) {
	g := dataGraph(t)
	q := parseQ(t, `PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?n WHERE { x:Music_Band y:hasName ?n }`)
	qg, err := Build(q, &g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	uo := qg.VarIndex["n"]
	lit := qg.Vars[uo].Lit
	if lit == nil || lit.SubjectVar >= 0 {
		t.Fatalf("Lit = %+v, want constant subject", lit)
	}
	if want, _ := g.Dicts.LookupVertex("http://dbpedia.org/resource/Music_Band"); lit.SubjectVertex != want {
		t.Errorf("SubjectVertex = %d, want %d", lit.SubjectVertex, want)
	}
	if len(qg.Components) != 1 || len(qg.Components[0].Core) != 1 || qg.Components[0].Core[0] != uo {
		t.Errorf("decomposition = %+v", qg.Components)
	}
}

// TestLitSatelliteMultiOccurrenceStaysVertex: a variable that joins
// across patterns keeps the paper's vertex-only semantics.
func TestLitSatelliteMultiOccurrenceStaysVertex(t *testing.T) {
	g := dataGraph(t)
	q := parseQ(t, `PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?b WHERE { ?a y:wasBornIn ?b . ?c y:diedIn ?b }`)
	qg, err := Build(q, &g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	if qg.Vars[qg.VarIndex["b"]].Lit != nil {
		t.Error("join variable acquired a Lit constraint")
	}
}

// TestLitSatelliteMixedPredicate: when the predicate is both an edge type
// and an attribute predicate, the satellite probes both sides.
func TestLitSatelliteMixedPredicate(t *testing.T) {
	triples, err := rdf.ParseString(`
<http://x/b> <http://p/mixed> <http://x/a> .
<http://x/b> <http://p/mixed> "both" .
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	q := parseQ(t, `SELECT ?v WHERE { ?s <http://p/mixed> ?v }`)
	qg, err := Build(q, &g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	lit := qg.Vars[qg.VarIndex["v"]].Lit
	if lit == nil {
		t.Fatal("mixed predicate: no Lit")
	}
	if len(lit.Types) != 1 || len(lit.Attrs) != 1 {
		t.Errorf("Lit = %+v, want one edge type and one attribute", lit)
	}
}

// Package query translates a parsed SPARQL query into the query multigraph
// Q of the AMbER paper (Section 2.2.1) against a concrete data graph's
// dictionaries, and performs the structural analysis the matching engine
// needs: core/satellite decomposition (Section 3, Section 5).
//
// Beyond the paper's model, an object variable that occurs exactly once in
// the query may bind literals: the data multigraph folds literal objects
// into vertex attributes, so pattern `?s p ?o` translates such a ?o into a
// literal satellite whose candidates are the subject's <p, ·> attributes
// (encoded attribute ids, see dict.EncodeAttrBinding) unioned with the
// ordinary p-edge neighbours. This is what lets typed literals reach the
// result set. The matching
// order of the core vertices is deliberately NOT chosen here — ordering is
// a planning decision made by internal/plan, which may use either the
// paper's static heuristic (Section 5.3) or data-aware cost estimates.
package query

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/sparql"
)

// VertexID identifies a query vertex (an unknown variable) within a Graph.
type VertexID int

// Edge is a multi-edge from one query vertex to another: the sorted,
// duplicate-free set of edge types.
type Edge struct {
	To    VertexID
	Types []dict.EdgeType
}

// IRIConstraint records that a query vertex is connected to a constant IRI
// vertex (the paper's shaded square u^iri). The IRI has a unique data-vertex
// match; candidates for the query vertex are found by probing the
// neighbourhood index of that data vertex in the stored direction.
type IRIConstraint struct {
	// DataVertex is the unique match of the constant IRI.
	DataVertex dict.VertexID
	// Dir is the direction to probe *at the data vertex*: Incoming when the
	// query edge runs u → IRI, Outgoing when it runs IRI → u.
	Dir index.Direction
	// Types is the multi-edge between u and the IRI vertex.
	Types []dict.EdgeType
}

// LitSat marks a satellite variable that may bind literals as well as
// vertices: pattern `S p ?o` where ?o occurs nowhere else and predicate p
// has literal occurrences in the data. The satellite's candidates are the
// union of the subject's p-neighbours (when p is also an edge type) and
// its <p, ·> attributes, the latter encoded via dict.EncodeAttrBinding.
type LitSat struct {
	// SubjectVar is the subject query vertex, or -1 when the subject is
	// the constant SubjectVertex.
	SubjectVar VertexID
	// SubjectVertex is the constant subject's data vertex (SubjectVar < 0).
	SubjectVertex dict.VertexID
	// Types is p's edge-type id as a one-element probe set; nil when p
	// never links two vertices in the data.
	Types []dict.EdgeType
	// Attrs is Ma's sorted posting list for predicate p (non-empty by
	// construction — otherwise the pattern translates the ordinary way).
	Attrs []dict.AttrID
}

// Vertex is one query vertex u ∈ U with everything attached to it.
type Vertex struct {
	// Name is the SPARQL variable name (without '?').
	Name string
	// Attrs is u.A: attribute ids from literal-object patterns, sorted.
	Attrs []dict.AttrID
	// IRIs is u.R: constraints from constant-IRI neighbours.
	IRIs []IRIConstraint
	// Out and In are multi-edges to other query vertices, sorted by To.
	Out []Edge
	In  []Edge
	// SelfTypes holds types of self-loop patterns (?x p ?x), sorted.
	SelfTypes []dict.EdgeType
	// Lit, non-nil on a literal satellite, describes its binding sources.
	Lit *LitSat
	// LitSats lists the literal satellites hanging off this vertex
	// (inverse of Lit.SubjectVar), sorted ascending.
	LitSats []VertexID
}

// GroundEdge is a fully instantiated pattern (IRI p IRI): a boolean check.
type GroundEdge struct {
	From, To dict.VertexID
	Types    []dict.EdgeType
}

// GroundAttr is a fully instantiated attribute pattern (IRI p "lit").
type GroundAttr struct {
	V     dict.VertexID
	Attrs []dict.AttrID
}

// Graph is the query multigraph Q plus its decomposition.
type Graph struct {
	// Vars holds the query vertices; VertexID indexes into it.
	Vars []Vertex
	// VarIndex maps variable names to ids.
	VarIndex map[string]VertexID
	// GroundEdges and GroundAttrs are variable-free checks.
	GroundEdges []GroundEdge
	GroundAttrs []GroundAttr
	// Unsat is set when some constant of the query (predicate, literal
	// tuple, or IRI) does not occur in the data dictionaries: the query
	// can have no solutions.
	Unsat bool
	// UnsatReason explains the first unsatisfiable constant found.
	UnsatReason string
	// Components groups variable vertices into connected components (over
	// variable-variable edges), each already decomposed and ordered.
	Components []Component
}

// Component is one connected component of the query multigraph.
type Component struct {
	// Core is U_c: the core vertices, in ascending vertex order. The
	// matching order over them is chosen by a planner (internal/plan),
	// not here.
	Core []VertexID
	// Satellites maps each core vertex to its attached satellite vertices
	// (degree-1 vertices, paper Section 5).
	Satellites map[VertexID][]VertexID
}

// AllSatellites returns the component's satellite vertices grouped by
// their core vertex in ascending-id core order. This is a membership
// enumeration only — the engine's satellite enumeration order follows the
// matching order and lives on plan.ComponentPlan.AllSatellites.
func (c *Component) AllSatellites() []VertexID {
	var out []VertexID
	for _, uc := range c.Core {
		out = append(out, c.Satellites[uc]...)
	}
	return out
}

// Vertices returns all vertices of the component (cores then satellites).
func (c *Component) Vertices() []VertexID {
	out := append([]VertexID(nil), c.Core...)
	for _, sats := range c.Satellites {
		out = append(out, sats...)
	}
	return out
}

// Build translates q against the data dictionaries d (a frozen graph's
// Dictionaries, or a mutation overlay layering new entries on top). A nil
// return with a non-nil error indicates a structurally invalid query; an
// Unsat graph is a valid query that provably has no solutions.
func Build(q *sparql.Query, d dict.Resolver) (*Graph, error) {
	g := &Graph{VarIndex: make(map[string]VertexID)}
	type pairKey struct {
		a, b VertexID
	}
	varEdges := make(map[pairKey]map[dict.EdgeType]struct{})
	type iriKey struct {
		u   VertexID
		v   dict.VertexID
		dir index.Direction
	}
	iriEdges := make(map[iriKey]map[dict.EdgeType]struct{})
	type groundKey struct {
		from, to dict.VertexID
	}
	groundEdges := make(map[groundKey]map[dict.EdgeType]struct{})

	varID := func(name string) VertexID {
		if id, ok := g.VarIndex[name]; ok {
			return id
		}
		id := VertexID(len(g.Vars))
		g.Vars = append(g.Vars, Vertex{Name: name})
		g.VarIndex[name] = id
		return id
	}
	unsat := func(format string, args ...any) {
		if !g.Unsat {
			g.Unsat = true
			g.UnsatReason = fmt.Sprintf(format, args...)
		}
	}

	// Count variable occurrences: an object variable that occurs exactly
	// once may bind literals (see LitSat).
	occ := make(map[string]int)
	for _, p := range q.Patterns {
		if p.S.Kind == sparql.Var {
			occ[p.S.Value]++
		}
		if p.O.Kind == sparql.Var {
			occ[p.O.Value]++
		}
	}
	// litSatellite translates pattern `S p ?o` as a literal satellite when
	// ?o is single-occurrence and p has literal occurrences in the data.
	// It reports whether it consumed the pattern.
	litSatellite := func(p sparql.TriplePattern) bool {
		if occ[p.O.Value] != 1 {
			return false
		}
		attrs := d.PredicateAttrs(p.P.Value)
		if len(attrs) == 0 {
			return false
		}
		var types []dict.EdgeType
		if et, ok := d.LookupEdgeType(p.P.Value); ok {
			types = []dict.EdgeType{et}
		}
		uo := varID(p.O.Value)
		if p.S.Kind == sparql.Var {
			us := varID(p.S.Value)
			g.Vars[uo].Lit = &LitSat{SubjectVar: us, Types: types, Attrs: attrs}
			g.Vars[us].LitSats = append(g.Vars[us].LitSats, uo)
			return true
		}
		v, ok := d.LookupVertex(p.S.Value)
		if !ok {
			unsat("IRI <%s> not in data", p.S.Value)
			return true
		}
		g.Vars[uo].Lit = &LitSat{SubjectVar: -1, SubjectVertex: v, Types: types, Attrs: attrs}
		return true
	}

	for _, p := range q.Patterns {
		if p.P.Kind != sparql.IRI {
			return nil, fmt.Errorf("query: predicate must be an IRI in pattern %v", p)
		}
		// Register variables even when the pattern is unsatisfiable, so
		// projection stays meaningful.
		if p.S.Kind == sparql.Var {
			varID(p.S.Value)
		}
		if p.O.Kind == sparql.Var {
			varID(p.O.Value)
		}

		if p.O.Kind == sparql.Literal {
			a, ok := d.LookupAttr(p.P.Value, p.O.RDF())
			if !ok {
				unsat("attribute <%s, %s> not in data", p.P.Value, p.O.RDF())
				continue
			}
			switch p.S.Kind {
			case sparql.Var:
				u := varID(p.S.Value)
				g.Vars[u].Attrs = append(g.Vars[u].Attrs, a)
			case sparql.IRI:
				v, ok := d.LookupVertex(p.S.Value)
				if !ok {
					unsat("IRI <%s> not in data", p.S.Value)
					continue
				}
				g.GroundAttrs = append(g.GroundAttrs, GroundAttr{V: v, Attrs: []dict.AttrID{a}})
			}
			continue
		}

		sVar := p.S.Kind == sparql.Var
		oVar := p.O.Kind == sparql.Var
		if oVar && litSatellite(p) {
			continue
		}
		et, ok := d.LookupEdgeType(p.P.Value)
		if !ok {
			unsat("predicate <%s> not in data", p.P.Value)
			continue
		}
		switch {
		case sVar && oVar:
			us, uo := varID(p.S.Value), varID(p.O.Value)
			if us == uo {
				g.Vars[us].SelfTypes = append(g.Vars[us].SelfTypes, et)
				continue
			}
			k := pairKey{us, uo}
			if varEdges[k] == nil {
				varEdges[k] = make(map[dict.EdgeType]struct{})
			}
			varEdges[k][et] = struct{}{}
		case sVar && !oVar:
			u := varID(p.S.Value)
			v, ok := d.LookupVertex(p.O.Value)
			if !ok {
				unsat("IRI <%s> not in data", p.O.Value)
				continue
			}
			k := iriKey{u, v, index.Incoming} // probe v's incoming side
			if iriEdges[k] == nil {
				iriEdges[k] = make(map[dict.EdgeType]struct{})
			}
			iriEdges[k][et] = struct{}{}
		case !sVar && oVar:
			v, ok := d.LookupVertex(p.S.Value)
			if !ok {
				unsat("IRI <%s> not in data", p.S.Value)
				continue
			}
			u := varID(p.O.Value)
			k := iriKey{u, v, index.Outgoing} // probe v's outgoing side
			if iriEdges[k] == nil {
				iriEdges[k] = make(map[dict.EdgeType]struct{})
			}
			iriEdges[k][et] = struct{}{}
		default: // ground edge
			from, ok1 := d.LookupVertex(p.S.Value)
			to, ok2 := d.LookupVertex(p.O.Value)
			if !ok1 {
				unsat("IRI <%s> not in data", p.S.Value)
				continue
			}
			if !ok2 {
				unsat("IRI <%s> not in data", p.O.Value)
				continue
			}
			k := groundKey{from, to}
			if groundEdges[k] == nil {
				groundEdges[k] = make(map[dict.EdgeType]struct{})
			}
			groundEdges[k][et] = struct{}{}
		}
	}

	// Materialize accumulated edge maps into sorted structures.
	for k, set := range varEdges {
		types := sortedTypes(set)
		g.Vars[k.a].Out = append(g.Vars[k.a].Out, Edge{To: k.b, Types: types})
		g.Vars[k.b].In = append(g.Vars[k.b].In, Edge{To: k.a, Types: types})
	}
	for k, set := range iriEdges {
		g.Vars[k.u].IRIs = append(g.Vars[k.u].IRIs, IRIConstraint{
			DataVertex: k.v, Dir: k.dir, Types: sortedTypes(set),
		})
	}
	for k, set := range groundEdges {
		g.GroundEdges = append(g.GroundEdges, GroundEdge{From: k.from, To: k.to, Types: sortedTypes(set)})
	}
	for i := range g.Vars {
		v := &g.Vars[i]
		sort.Slice(v.Attrs, func(a, b int) bool { return v.Attrs[a] < v.Attrs[b] })
		v.Attrs = dedupAttrs(v.Attrs)
		sort.Slice(v.SelfTypes, func(a, b int) bool { return v.SelfTypes[a] < v.SelfTypes[b] })
		v.SelfTypes = dedupTypes(v.SelfTypes)
		sort.Slice(v.Out, func(a, b int) bool { return v.Out[a].To < v.Out[b].To })
		sort.Slice(v.In, func(a, b int) bool { return v.In[a].To < v.In[b].To })
		sort.Slice(v.IRIs, func(a, b int) bool {
			if v.IRIs[a].DataVertex != v.IRIs[b].DataVertex {
				return v.IRIs[a].DataVertex < v.IRIs[b].DataVertex
			}
			return v.IRIs[a].Dir < v.IRIs[b].Dir
		})
		sort.Slice(v.LitSats, func(a, b int) bool { return v.LitSats[a] < v.LitSats[b] })
	}
	sort.Slice(g.GroundEdges, func(a, b int) bool {
		if g.GroundEdges[a].From != g.GroundEdges[b].From {
			return g.GroundEdges[a].From < g.GroundEdges[b].From
		}
		return g.GroundEdges[a].To < g.GroundEdges[b].To
	})

	g.decompose()
	return g, nil
}

func sortedTypes(set map[dict.EdgeType]struct{}) []dict.EdgeType {
	out := make([]dict.EdgeType, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupAttrs(a []dict.AttrID) []dict.AttrID {
	if len(a) < 2 {
		return a
	}
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupTypes(a []dict.EdgeType) []dict.EdgeType {
	if len(a) < 2 {
		return a
	}
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// VarNeighbors returns the distinct variable neighbours of u, in first-seen
// order (Out edges before In edges, each sorted by To).
func (g *Graph) VarNeighbors(u VertexID) []VertexID { return g.varNeighbors(u) }

// varNeighbors returns the distinct variable neighbours of u, including
// literal-satellite links (which connect a satellite to its subject even
// when the predicate is not an edge type).
func (g *Graph) varNeighbors(u VertexID) []VertexID {
	seen := make(map[VertexID]bool)
	var out []VertexID
	add := func(w VertexID) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, e := range g.Vars[u].Out {
		add(e.To)
	}
	for _, e := range g.Vars[u].In {
		add(e.To)
	}
	for _, w := range g.Vars[u].LitSats {
		add(w)
	}
	if lit := g.Vars[u].Lit; lit != nil && lit.SubjectVar >= 0 {
		add(lit.SubjectVar)
	}
	return out
}

// VarDegree is the paper's deg(u): the number of distinct variable
// neighbours in the query multigraph.
func (g *Graph) VarDegree(u VertexID) int { return len(g.varNeighbors(u)) }

// EdgesBetween returns the multi-edges between two query vertices as the
// pair (typesFromAToB, typesFromBToA); either may be nil.
func (g *Graph) EdgesBetween(a, b VertexID) (ab, ba []dict.EdgeType) {
	for _, e := range g.Vars[a].Out {
		if e.To == b {
			ab = e.Types
		}
	}
	for _, e := range g.Vars[a].In {
		if e.To == b {
			ba = e.Types
		}
	}
	return ab, ba
}

// Synopsis computes the query vertex's synopsis in probe form (AsQuery).
// The signature includes every incident multi-edge: variable edges, IRI
// edges and self loops (which contribute to both directions).
func (g *Graph) Synopsis(u VertexID) multigraph.Synopsis {
	v := &g.Vars[u]
	var in, out [][]dict.EdgeType
	for _, e := range v.In {
		in = append(in, e.Types)
	}
	for _, e := range v.Out {
		out = append(out, e.Types)
	}
	for _, c := range v.IRIs {
		// Dir is relative to the IRI's data vertex; flip for u.
		if c.Dir == index.Incoming { // edge u → IRI: outgoing at u
			out = append(out, c.Types)
		} else {
			in = append(in, c.Types)
		}
	}
	if len(v.SelfTypes) > 0 {
		in = append(in, v.SelfTypes)
		out = append(out, v.SelfTypes)
	}
	return multigraph.SynopsisFromMultiEdges(in, out).AsQuery()
}

// Rank2 is the paper's r2(u): the total number of edge types over all
// incident multi-edges. It is both a decomposition tie-breaker (choosing
// the core vertex of a single-multi-edge component) and an input to the
// heuristic planner.
func (g *Graph) Rank2(u VertexID) int {
	v := &g.Vars[u]
	n := 0
	for _, e := range v.Out {
		n += len(e.Types)
	}
	for _, e := range v.In {
		n += len(e.Types)
	}
	for _, c := range v.IRIs {
		n += len(c.Types)
	}
	n += 2 * len(v.SelfTypes)
	return n
}

// decompose splits variables into connected components and classifies core
// and satellite vertices. It does not order the core vertices — that is
// the planner's job.
func (g *Graph) decompose() {
	n := len(g.Vars)
	if n == 0 {
		return
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var compMembers [][]VertexID
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(compMembers)
		stack := []VertexID{VertexID(s)}
		comp[s] = id
		var members []VertexID
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, w := range g.varNeighbors(u) {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		compMembers = append(compMembers, members)
	}

	for _, members := range compMembers {
		g.Components = append(g.Components, g.decomposeComponent(members))
	}
}

// decomposeComponent classifies one component into core and satellite
// vertices. Core vertices are returned in ascending vertex order; a
// planner chooses the matching order.
func (g *Graph) decomposeComponent(members []VertexID) Component {
	satellite := make(map[VertexID]bool)
	var core []VertexID
	maxDeg := 0
	for _, u := range members {
		if d := g.VarDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 1 {
		for _, u := range members {
			if g.VarDegree(u) > 1 {
				core = append(core, u)
			} else {
				satellite[u] = true
			}
		}
	} else {
		// The component is a single vertex or a single multi-edge: pick one
		// core vertex — deterministically, the most constrained one. This
		// is a decomposition decision (it fixes which vertex is core and
		// which is satellite), so it stays here rather than in the planner.
		best := members[0]
		for _, u := range members[1:] {
			// A literal satellite can never be core: its candidates are
			// enumerable only from its subject (or fixed constant subject).
			if g.Vars[u].Lit != nil && g.Vars[best].Lit == nil {
				continue
			}
			if g.Vars[best].Lit != nil && g.Vars[u].Lit == nil {
				best = u
				continue
			}
			if g.Rank2(u) > g.Rank2(best) ||
				(g.Rank2(u) == g.Rank2(best) && len(g.Vars[u].Attrs) > len(g.Vars[best].Attrs)) {
				best = u
			}
		}
		core = []VertexID{best}
		for _, u := range members {
			if u != best {
				satellite[u] = true
			}
		}
	}
	sort.Slice(core, func(i, j int) bool { return core[i] < core[j] })

	// Attach satellites to their unique core neighbour.
	sats := make(map[VertexID][]VertexID)
	for _, u := range members {
		if !satellite[u] {
			continue
		}
		nb := g.varNeighbors(u)
		if len(nb) == 1 {
			sats[nb[0]] = append(sats[nb[0]], u)
		}
		// A satellite with no variable neighbour can only occur in a
		// single-vertex component, which has no satellites by construction.
	}
	for _, lst := range sats {
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	return Component{Core: core, Satellites: sats}
}

// Package delta implements the live-update overlay of the AMbER
// reproduction: an immutable view of "frozen base graph + in-memory
// changes" that presents the same probe surface (index.Reader) and
// dictionary surface (dict.Resolver) as a frozen generation, so the
// matching engine, the planner and query translation run unchanged over
// mutating data.
//
// The design keeps the paper's expensive index ensemble untouched per
// generation: a View records only the difference — added triples and
// tombstones over the base — plus its own small side indexes (per-pair
// edge-type deltas, per-vertex touch lists, an attribute add/remove
// inverted index, and dictionary extensions for IRIs the base has never
// seen). Probes consult the base ensemble first and correct its answer
// through the overlay, so overlay matching stays sublinear in the base
// and linear only in the delta.
//
// # Writer-owned overlay, frozen views
//
// All Views published over one base generation share a single
// writer-owned overlay (the shared struct). A View is a lightweight
// handle: a version number plus fixed-length prefixes of the shared
// append-only structures. Apply mutates the shared overlay in place at
// the next version and returns a new View bound to it — O(batch) work,
// independent of how much overlay has accumulated — instead of deep
// copying the whole overlay per batch.
//
// Snapshot isolation is preserved two ways. Structures whose answers
// must be exact (pair deltas, attribute sets and their inverted lists)
// are keyed maps of immutable version chains: the writer prepends a
// copy-on-write bucket per mutation, and a reader walks to the newest
// bucket at or below its View's version. Structures whose entries are
// monotone supersets verified by exact probes downstream (touch lists,
// the touched-vertex list, dictionary extensions) are shared outright
// and filtered by the View's id bounds.
//
// Apply must be called on the newest View of its overlay — the shape
// internal/core.Store's serialized writer guarantees. Readers need no
// synchronization and may run concurrently with the writer; version
// chains keep growing until compaction starts a fresh generation, which
// is why Store also triggers compaction on Versions(), not just Size().
package delta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
)

// edgeKey identifies a directed vertex pair carrying an edge-type delta.
//
//amber:hot
type edgeKey struct {
	from, to dict.VertexID
}

// pairDelta is the multi-edge change on one directed pair: types added
// beyond the base label set and base types tombstoned. Both are sorted
// and disjoint; a type deleted and re-added cancels out.
//
//amber:hot
type pairDelta struct {
	add []dict.EdgeType
	del []dict.EdgeType
}

// verNode is one immutable version of a bucket, newest first. A reader
// walks the chain to the first node at or below its View's version; the
// single writer prepends (or replaces an unpublished head in place —
// never mutating a node a published View can see).
type verNode[V any] struct {
	ver  uint64
	val  V
	prev *verNode[V]
}

// verMap is a concurrent map of version chains: the exact-visibility
// copy-on-write store behind pair deltas and attribute postings.
type verMap[K comparable, V any] struct {
	m swmap[K, verNode[V]]
}

// get returns the bucket visible at version ver.
func (vm *verMap[K, V]) get(k K, ver uint64) (V, bool) {
	var zero V
	for n := vm.m.load(k); n != nil; n = n.prev {
		if n.ver <= ver {
			return n.val, true
		}
	}
	return zero, false
}

// verRef is a writer-side handle on one bucket: the map entry (nil when
// the key is absent) and the chain head it carried. The serialized
// writer's version upper-bounds every chain, so the head is always the
// bucket it sees; threading the ref into putRef saves the second map
// probe a get-then-put pair would pay. A ref is invalidated by any
// insert into the same verMap (swmap handle caveat).
type verRef[K comparable, V any] struct {
	e    *swentry[K, verNode[V]]
	head *verNode[V]
}

// ref returns the writer's handle on k's bucket.
func (vm *verMap[K, V]) ref(k K) verRef[K, V] {
	e := vm.m.entry(k)
	if e == nil {
		return verRef[K, V]{}
	}
	return verRef[K, V]{e: e, head: e.val.Load()}
}

// putRef prepends val as the version-ver bucket of k (writer only),
// through the handle ref obtained for k. When the head already carries
// ver — several mutations of one batch touching the same bucket — the
// head is superseded without growing the chain. Reports whether the key
// is new.
func (vm *verMap[K, V]) putRef(k K, ref verRef[K, V], ver uint64, val V) bool {
	prev := ref.head
	if prev != nil && prev.ver == ver {
		prev = prev.prev
	}
	n := &verNode[V]{ver: ver, val: val, prev: prev}
	if ref.e != nil {
		ref.e.val.Store(n)
		return false
	}
	vm.m.insert(k, n)
	return true
}

// rangeVisible calls f for every key with a bucket visible at ver.
// Iteration order is unspecified; callers sort.
func (vm *verMap[K, V]) rangeVisible(ver uint64, f func(K, V)) {
	vm.m.rangeAll(func(k K, head *verNode[V]) bool {
		for n := head; n != nil; n = n.prev {
			if n.ver <= ver {
				f(k, n.val)
				break
			}
		}
		return true
	})
}

// shared is the writer-owned overlay state behind every View of one base
// generation. The single writer (serialized by the owner) mutates it;
// concurrent readers reach it only through version-bounded Views.
type shared struct {
	g  *multigraph.Graph
	ix *index.Index

	baseNV, baseNT, baseNA int

	// ver is the version of the newest published View (writer only).
	ver uint64

	// Dictionary extensions for entities the base has never interned.
	// Overlay ids continue the base's dense ranges in intern order, so a
	// View admits exactly the ids below its captured bounds — the maps
	// are monotone and never need version chains.
	vertID   swmap[string, dict.VertexID]
	etID     swmap[string, dict.EdgeType]
	attrID   swmap[dict.Attribute, dict.AttrID]
	vertIRI  []string // writer-owned append-only; Views capture prefixes
	etIRI    []string
	attrVal  []dict.Attribute
	attrPred swmap[string, []dict.AttrID] // immutable buckets, ascending

	// Exact-visibility overlay state: version-chained COW buckets.
	pairs    verMap[edgeKey, pairDelta]
	addAttrs verMap[dict.VertexID, []dict.AttrID]
	delAttrs verMap[dict.VertexID, []dict.AttrID]
	attrAdd  verMap[dict.AttrID, []dict.VertexID]
	attrDel  verMap[dict.AttrID, []dict.VertexID]

	// Touch lists are monotone supersets (entries are never removed even
	// when a pair delta cancels out): Neighbors re-verifies every touched
	// candidate against the version-exact pair delta, so stale entries
	// cost a probe, never a wrong answer. Values are sorted; published
	// headers are never shrunk or reordered (see addTouchEntry).
	outTouch swmap[dict.VertexID, []dict.VertexID]
	inTouch  swmap[dict.VertexID, []dict.VertexID]

	// touched lists vertices whose signature may exceed their base
	// signature, in first-touch order; Views capture a prefix and sort it
	// lazily. touchedSet dedupes appends (writer only).
	touched    []dict.VertexID
	touchedSet map[dict.VertexID]bool

	// Copy-on-write effort counters, cumulative for this generation: the
	// observability behind "overlay bytes copied per Apply".
	copiedEntries atomic.Uint64
	copiedBytes   atomic.Uint64
	// versions counts bucket versions retained since the generation
	// started. Unlike Size it never shrinks when adds and deletes cancel,
	// so owners use it as a churn-memory compaction trigger.
	versions atomic.Uint64
}

// nodeBytes is the rough bookkeeping overhead charged per retained
// bucket version when estimating copy-on-write bytes.
const nodeBytes = 48

// View is one immutable overlay snapshot over a frozen base generation.
// The zero value is not usable; start from NewView and evolve with Apply.
// A View is safe for concurrent readers, including readers concurrent
// with a later Apply on the same overlay.
type View struct {
	sh  *shared
	ver uint64

	// Prefix captures of the shared append-only structures: the slice
	// headers fix this View's id bounds (the writer only ever appends
	// beyond every published length).
	vertIRI []string
	etIRI   []string
	attrVal []dict.Attribute
	touched []dict.VertexID // first-touch order; sorted lazily below

	touchOnce     sync.Once
	sortedTouched []dict.VertexID

	// Overlay entry counts visible at this version, maintained
	// incrementally by the writer (no O(overlay) recount at publish).
	edgeAdds, edgeDels int
	attrAdds, attrDels int
	numTriples         int // merged triple count (base ± overlay)
	newPairs           int // pairs with adds where the base had no edge

	// card caches the blended planner statistics (base counts corrected
	// by overlay adds/tombstones), computed lazily on first use because
	// most views are never planned against.
	cardOnce sync.Once
	card     *index.Cardinalities
}

// NewView returns the empty overlay over a frozen generation.
func NewView(g *multigraph.Graph, ix *index.Index) *View {
	sh := &shared{
		g: g, ix: ix,
		baseNV:     g.NumVertices(),
		baseNT:     g.NumEdgeTypes(),
		baseNA:     g.NumAttrs(),
		touchedSet: make(map[dict.VertexID]bool),
	}
	return &View{sh: sh, numTriples: g.NumTriples()}
}

// Base returns the frozen generation the view overlays.
func (v *View) Base() (*multigraph.Graph, *index.Index) { return v.sh.g, v.sh.ix }

// Empty reports whether the view holds no changes.
func (v *View) Empty() bool { return v.Adds() == 0 && v.Tombstones() == 0 }

// Size is the overlay's entry count (added triples + tombstones): the
// quantity compaction thresholds are measured against.
func (v *View) Size() int { return v.Adds() + v.Tombstones() }

// Adds reports the number of overlay-added triples.
func (v *View) Adds() int { return v.edgeAdds + v.attrAdds }

// Tombstones reports the number of tombstoned base triples.
func (v *View) Tombstones() int { return v.edgeDels + v.attrDels }

// NumTriples reports the merged triple count.
func (v *View) NumTriples() int { return v.numTriples }

// NumVertices reports |V| of the merged view.
func (v *View) NumVertices() int { return v.sh.baseNV + len(v.vertIRI) }

// NumEdgeTypes reports |T| of the merged view.
func (v *View) NumEdgeTypes() int { return v.sh.baseNT + len(v.etIRI) }

// NumAttrs reports |A| of the merged view.
func (v *View) NumAttrs() int { return v.sh.baseNA + len(v.attrVal) }

// NumEdges estimates the merged distinct-pair edge count: the base count
// plus pairs the overlay created (tombstoned-empty pairs are not
// subtracted — the estimate is an upper bound used for stats only).
func (v *View) NumEdges() int { return v.sh.g.NumEdges() + v.newPairs }

// Versions reports the bucket versions the overlay has retained since
// its generation started. It grows with every write and never shrinks —
// even when adds and deletes cancel out of Size — so owners bound
// overlay memory by compacting on Versions as well as Size.
func (v *View) Versions() int { return int(v.sh.versions.Load()) }

// CopyStats reports the cumulative copy-on-write effort of the overlay's
// generation: buckets copied (entries) and an estimate of the bytes
// those copies retained. The per-Apply delta is how the write path's
// O(batch) claim is measured.
func (v *View) CopyStats() (entries, bytes uint64) {
	return v.sh.copiedEntries.Load(), v.sh.copiedBytes.Load()
}

// ---- dict.Resolver -----------------------------------------------------

// LookupVertex resolves an IRI against base then overlay dictionaries.
func (v *View) LookupVertex(iri string) (dict.VertexID, bool) {
	if id, ok := v.sh.g.Dicts.LookupVertex(iri); ok {
		return id, true
	}
	if x := v.sh.vertID.load(iri); x != nil {
		if id := *x; int(id) < v.sh.baseNV+len(v.vertIRI) {
			return id, true
		}
	}
	return 0, false
}

// LookupEdgeType resolves a predicate IRI.
func (v *View) LookupEdgeType(predicate string) (dict.EdgeType, bool) {
	if id, ok := v.sh.g.Dicts.LookupEdgeType(predicate); ok {
		return id, true
	}
	if x := v.sh.etID.load(predicate); x != nil {
		if id := *x; int(id) < v.sh.baseNT+len(v.etIRI) {
			return id, true
		}
	}
	return 0, false
}

// LookupAttr resolves a <predicate, literal-term> tuple.
func (v *View) LookupAttr(predicate string, o rdf.Term) (dict.AttrID, bool) {
	if id, ok := v.sh.g.Dicts.LookupAttr(predicate, o); ok {
		return id, true
	}
	if x := v.sh.attrID.load(dict.AttributeOf(predicate, o)); x != nil {
		if id := *x; int(id) < v.sh.baseNA+len(v.attrVal) {
			return id, true
		}
	}
	return 0, false
}

// VertexIRI applies Mv⁻¹ across base and overlay id ranges.
func (v *View) VertexIRI(id dict.VertexID) string {
	if int(id) < v.sh.baseNV {
		return v.sh.g.Dicts.VertexIRI(id)
	}
	return v.vertIRI[int(id)-v.sh.baseNV]
}

// EdgeTypeIRI applies Me⁻¹ across base and overlay id ranges.
func (v *View) EdgeTypeIRI(t dict.EdgeType) string {
	if int(t) < v.sh.baseNT {
		return v.sh.g.Dicts.EdgeTypeIRI(t)
	}
	return v.etIRI[int(t)-v.sh.baseNT]
}

// Attr applies Ma⁻¹ across base and overlay id ranges.
func (v *View) Attr(a dict.AttrID) dict.Attribute {
	if int(a) < v.sh.baseNA {
		return v.sh.g.Dicts.Attr(a)
	}
	return v.attrVal[int(a)-v.sh.baseNA]
}

// PredicateAttrs returns the sorted attribute ids carrying the predicate
// across base and overlay dictionaries (base ids precede overlay ids, so
// concatenation preserves order). Overlay ids are ascending in intern
// order, so the View's id bound cuts a prefix of the shared list.
func (v *View) PredicateAttrs(predicate string) []dict.AttrID {
	base := v.sh.g.Dicts.PredicateAttrs(predicate)
	var over []dict.AttrID
	if x := v.sh.attrPred.load(predicate); x != nil {
		over = *x
		bound := dict.AttrID(v.sh.baseNA + len(v.attrVal))
		cut := sort.Search(len(over), func(i int) bool { return over[i] >= bound })
		over = over[:cut]
	}
	if len(over) == 0 {
		return base
	}
	out := make([]dict.AttrID, 0, len(base)+len(over))
	out = append(out, base...)
	return append(out, over...)
}

// ---- index.Reader ------------------------------------------------------

// EdgeTypes returns the effective multi-edge label set LE(from, to) of
// the merged view: base types minus tombstones plus overlay additions.
// The result is sorted; it may alias base storage when the pair carries
// no delta and must not be modified.
func (v *View) EdgeTypes(from, to dict.VertexID) []dict.EdgeType {
	var base []dict.EdgeType
	if int(from) < v.sh.baseNV && int(to) < v.sh.baseNV {
		base = v.sh.g.EdgeTypes(from, to)
	}
	pd, ok := v.sh.pairs.get(edgeKey{from, to}, v.ver)
	if !ok {
		return base
	}
	return unionSorted(subtractSorted(base, pd.del), pd.add)
}

// HasEdgeTypes reports whether from→to carries every type in want under
// the merged view.
func (v *View) HasEdgeTypes(from, to dict.VertexID, want []dict.EdgeType) bool {
	if _, ok := v.sh.pairs.get(edgeKey{from, to}, v.ver); !ok {
		// No delta on the pair: the base answer stands (overlay-new
		// endpoints have no base edge and fall through to false).
		if int(from) < v.sh.baseNV && int(to) < v.sh.baseNV {
			return v.sh.g.HasEdgeTypes(from, to, want)
		}
		return false
	}
	return multigraph.ContainsTypes(v.EdgeTypes(from, to), want)
}

// dirTypes returns the effective label set of the pair (v, w) oriented by
// dir: Outgoing reads edge v→w, Incoming reads edge w→v.
func (v *View) dirTypes(vid, w dict.VertexID, dir index.Direction) []dict.EdgeType {
	if dir == index.Outgoing {
		return v.EdgeTypes(vid, w)
	}
	return v.EdgeTypes(w, vid)
}

// touchList returns the shared touch list of vid oriented by dir,
// trimmed to the View's vertex bound. Entries touched after this View
// published resolve to base-only pair deltas and would be filtered by
// the containment probe anyway; the bound cut just skips ids the View
// cannot name.
func (v *View) touchList(vid dict.VertexID, dir index.Direction) []dict.VertexID {
	m := &v.sh.outTouch
	if dir == index.Incoming {
		m = &v.sh.inTouch
	}
	x := m.load(vid)
	if x == nil {
		return nil
	}
	touch := *x
	bound := dict.VertexID(v.NumVertices())
	cut := sort.Search(len(touch), func(i int) bool { return touch[i] >= bound })
	return touch[:cut]
}

// Neighbors implements the N probe over the merged view: the base trie
// answer, re-verified for pairs the overlay touched, merged with
// overlay-reachable neighbours that pass the same containment test.
func (v *View) Neighbors(vid dict.VertexID, dir index.Direction, types []dict.EdgeType) []dict.VertexID {
	var base []dict.VertexID
	if int(vid) < v.sh.baseNV {
		base = v.sh.ix.N.Neighbors(vid, dir, types)
	}
	touch := v.touchList(vid, dir)
	if len(touch) == 0 {
		return base
	}
	out := make([]dict.VertexID, 0, len(base)+len(touch))
	i, j := 0, 0
	for i < len(base) || j < len(touch) {
		switch {
		case j >= len(touch) || (i < len(base) && base[i] < touch[j]):
			// Base-only neighbour: no delta on the pair, answer stands.
			out = append(out, base[i])
			i++
		default:
			w := touch[j]
			if multigraph.ContainsTypes(v.dirTypes(vid, w, dir), types) {
				out = append(out, w)
			}
			j++
			if i < len(base) && base[i] == w {
				i++
			}
		}
	}
	return out
}

// SignatureCandidates probes the base R-tree and unions in the touched
// vertices — whose merged signatures may dominate query synopses their
// base signatures did not. Per Lemma 1 the result is a superset of all
// true matches; the engine's exact probes prune the rest. The View's
// touched prefix is sorted once, on first use.
func (v *View) SignatureCandidates(q multigraph.Synopsis) []dict.VertexID {
	base := v.sh.ix.S.Candidates(q)
	if len(v.touched) == 0 {
		return base
	}
	v.touchOnce.Do(func() {
		st := make([]dict.VertexID, len(v.touched))
		copy(st, v.touched)
		sort.Slice(st, func(i, j int) bool { return st[i] < st[j] })
		v.sortedTouched = st
	})
	return unionSorted(base, v.sortedTouched)
}

// attrVertices returns the merged inverted list of attribute a.
func (v *View) attrVertices(a dict.AttrID) []dict.VertexID {
	var base []dict.VertexID
	if int(a) < v.sh.baseNA {
		base = v.sh.ix.A.Vertices(a)
	}
	del, _ := v.sh.attrDel.get(a, v.ver)
	add, _ := v.sh.attrAdd.get(a, v.ver)
	return unionSorted(subtractSorted(base, del), add)
}

// VertexAttrs returns the sorted attribute ids vid carries under the
// merged view (base attributes minus tombstones plus overlay additions).
func (v *View) VertexAttrs(vid dict.VertexID) []dict.AttrID {
	var base []dict.AttrID
	if int(vid) < v.sh.baseNV {
		base = v.sh.g.Attrs(vid)
	}
	del, _ := v.sh.delAttrs.get(vid, v.ver)
	add, _ := v.sh.addAttrs.get(vid, v.ver)
	return unionSorted(subtractSorted(base, del), add)
}

// AttrCandidates returns the vertices carrying every attribute in attrs
// under the merged view (CᴬU of Algorithm 1). Mirrors the base index's
// rarest-first intersection; nil when attrs is empty.
func (v *View) AttrCandidates(attrs []dict.AttrID) []dict.VertexID {
	if len(attrs) == 0 {
		return nil
	}
	if v.attrAdds == 0 && v.attrDels == 0 {
		return v.sh.ix.A.Candidates(attrs)
	}
	lists := make([][]dict.VertexID, len(attrs))
	for i, a := range attrs {
		lst := v.attrVertices(a)
		if len(lst) == 0 {
			return nil
		}
		lists[i] = lst
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, lst := range lists[1:] {
		out = intersectSorted(out, lst)
		if len(out) == 0 {
			return nil
		}
	}
	res := make([]dict.VertexID, len(out))
	copy(res, out)
	return res
}

// HasAttrs reports whether vid carries every attribute in want (sorted)
// under the merged view.
func (v *View) HasAttrs(vid dict.VertexID, want []dict.AttrID) bool {
	add, _ := v.sh.addAttrs.get(vid, v.ver)
	del, _ := v.sh.delAttrs.get(vid, v.ver)
	for _, a := range want {
		if containsSorted(add, a) {
			continue
		}
		if int(vid) < v.sh.baseNV && int(a) < v.sh.baseNA &&
			v.sh.g.HasAttrs(vid, []dict.AttrID{a}) && !containsSorted(del, a) {
			continue
		}
		return false
	}
	return true
}

// Cardinalities returns planner statistics for the merged view: the base
// generation's per-edge-type counts blended with the overlay's additions
// and tombstones, so the cost planner doesn't order matching off stale
// counts when the overlay is large (e.g. an edge type that exists only
// in the overlay would otherwise estimate to zero and look spuriously
// selective). The blend is computed lazily, once per view, and cached —
// most views are never planned against. It is an estimate: deletions do
// not decrement the per-vertex counts (a tombstone may or may not remove
// a vertex's last edge of a type), which only ever errs toward the base
// generation's answer. Compaction still refreshes the statistics
// wholesale.
func (v *View) Cardinalities() *index.Cardinalities {
	base := v.sh.ix.Card
	if base == nil || v.Empty() {
		return base
	}
	v.cardOnce.Do(func() { v.card = v.blendCardinalities(base) })
	return v.card
}

// blendCardinalities clones the base statistics (extended over
// overlay-new edge types) and folds in the overlay's edge deltas.
func (v *View) blendCardinalities(base *index.Cardinalities) *index.Cardinalities {
	nT := v.NumEdgeTypes()
	c := &index.Cardinalities{
		OutVertices: make([]int, nT),
		InVertices:  make([]int, nT),
		Edges:       make([]int, nT),
		NumVertices: v.NumVertices(),
	}
	copy(c.OutVertices, base.OutVertices)
	copy(c.InVertices, base.InVertices)
	copy(c.Edges, base.Edges)

	type vertType struct {
		v dict.VertexID
		t dict.EdgeType
	}
	outGain := make(map[vertType]bool)
	inGain := make(map[vertType]bool)
	v.sh.pairs.rangeVisible(v.ver, func(k edgeKey, pd pairDelta) {
		for _, t := range pd.add {
			c.Edges[t]++
			outGain[vertType{k.from, t}] = true
			inGain[vertType{k.to, t}] = true
		}
		for _, t := range pd.del {
			// Tombstones only ever carry base types on base pairs, so the
			// decrement cannot underflow a correct base count; clamp anyway
			// for safety.
			if c.Edges[t] > 0 {
				c.Edges[t]--
			}
		}
	})
	// A vertex counts once per (type, side); overlay gains that the base
	// generation already counted (the vertex had a base edge of that type
	// on that side) must not count again. The probe is one trie lookup
	// per distinct gained (vertex, type) — bounded by the overlay size,
	// which compaction keeps small.
	countGains := func(gain map[vertType]bool, dir index.Direction, counts []int) {
		for key := range gain {
			if int(key.v) < v.sh.baseNV && int(key.t) < v.sh.baseNT &&
				len(v.sh.ix.N.Neighbors(key.v, dir, []dict.EdgeType{key.t})) > 0 {
				continue
			}
			counts[key.t]++
		}
	}
	countGains(outGain, index.Outgoing, c.OutVertices)
	countGains(inGain, index.Incoming, c.InVertices)
	return c
}

// ---- enumeration -------------------------------------------------------

// Triples enumerates the merged triple set deterministically (base scan
// in vertex order with tombstones skipped, then overlay additions in
// sorted order), stopping early when yield returns false. Compaction and
// snapshot Save rebuild a fresh generation from exactly this stream. It
// is safe to enumerate while later batches are applied to the same
// overlay: the stream reflects exactly this View's version.
func (v *View) Triples(yield func(rdf.Triple) bool) bool {
	for i := 0; i < v.sh.baseNV; i++ {
		vid := dict.VertexID(i)
		s := rdf.NewResource(v.sh.g.Dicts.VertexIRI(vid))
		for _, nb := range v.sh.g.Out(vid) {
			pd, hasPD := v.sh.pairs.get(edgeKey{vid, nb.V}, v.ver)
			o := rdf.NewResource(v.sh.g.Dicts.VertexIRI(nb.V))
			for _, t := range nb.Types {
				if hasPD && containsType(pd.del, t) {
					continue
				}
				if !yield(rdf.Triple{S: s, P: rdf.NewIRI(v.sh.g.Dicts.EdgeTypeIRI(t)), O: o}) {
					return false
				}
			}
		}
		da, _ := v.sh.delAttrs.get(vid, v.ver)
		for _, a := range v.sh.g.Attrs(vid) {
			if containsSorted(da, a) {
				continue
			}
			at := v.sh.g.Dicts.Attr(a)
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(at.Predicate), O: at.Literal()}) {
				return false
			}
		}
	}
	type pairEnt struct {
		k  edgeKey
		pd pairDelta
	}
	var pes []pairEnt
	v.sh.pairs.rangeVisible(v.ver, func(k edgeKey, pd pairDelta) {
		if len(pd.add) > 0 {
			pes = append(pes, pairEnt{k, pd})
		}
	})
	sort.Slice(pes, func(i, j int) bool {
		if pes[i].k.from != pes[j].k.from {
			return pes[i].k.from < pes[j].k.from
		}
		return pes[i].k.to < pes[j].k.to
	})
	for _, pe := range pes {
		s, o := rdf.NewResource(v.VertexIRI(pe.k.from)), rdf.NewResource(v.VertexIRI(pe.k.to))
		for _, t := range pe.pd.add {
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(v.EdgeTypeIRI(t)), O: o}) {
				return false
			}
		}
	}
	type attrEnt struct {
		vid dict.VertexID
		as  []dict.AttrID
	}
	var aes []attrEnt
	v.sh.addAttrs.rangeVisible(v.ver, func(vid dict.VertexID, as []dict.AttrID) {
		if len(as) > 0 {
			aes = append(aes, attrEnt{vid, as})
		}
	})
	sort.Slice(aes, func(i, j int) bool { return aes[i].vid < aes[j].vid })
	for _, ae := range aes {
		s := rdf.NewResource(v.VertexIRI(ae.vid))
		for _, a := range ae.as {
			at := v.Attr(a)
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(at.Predicate), O: at.Literal()}) {
				return false
			}
		}
	}
	return true
}

// ---- mutation ----------------------------------------------------------

// Validate checks that a triple is applicable: subject and predicate
// must be IRIs, the object an IRI or literal. Mutation entry points call
// it up front so a replayed log can never fail mid-apply.
func Validate(t rdf.Triple) error {
	if !t.S.IsResource() {
		return fmt.Errorf("delta: subject must be an IRI or blank node: %v", t)
	}
	if !t.P.IsIRI() {
		return fmt.Errorf("delta: predicate must be an IRI: %v", t)
	}
	if t.O.Datatype != "" && t.O.Lang != "" {
		// At most one annotation per literal (rdf.Term invariant); an
		// attribute interned with both would be unloadable from a
		// snapshot. Explicit xsd:string needs no rejection — interning
		// normalizes it (dict.AttributeOf), matching WAL replay.
		return fmt.Errorf("delta: literal with both datatype and language tag: %v", t)
	}
	return nil
}

// ErrStaleApply is returned when Apply is called on a View that is no
// longer the newest of its overlay: the shared writer state has moved
// on, so evolving an older View would corrupt published snapshots.
var ErrStaleApply = errors.New("delta: Apply on a stale view (a newer view was already published)")

// Apply returns a new View with dels removed and adds inserted (dels
// first, so a triple in both sets ends up present). The receiver is
// unchanged and remains fully readable. Deleting an absent triple and
// inserting a present one are no-ops, mirroring SPARQL 1.1 Update
// semantics.
//
// Apply mutates the shared overlay in place — O(batch), not O(overlay) —
// so it must be called on the newest View only (ErrStaleApply
// otherwise), and calls must be serialized by the owner. Readers of any
// published View may run concurrently.
func (v *View) Apply(adds, dels []rdf.Triple) (*View, error) {
	for _, t := range dels {
		if err := Validate(t); err != nil {
			return nil, err
		}
	}
	for _, t := range adds {
		if err := Validate(t); err != nil {
			return nil, err
		}
	}
	if v.ver != v.sh.ver {
		return nil, ErrStaleApply
	}
	w := &writer{
		sh:  v.sh,
		ver: v.ver + 1,
		nv: View{
			sh: v.sh, ver: v.ver + 1,
			edgeAdds: v.edgeAdds, edgeDels: v.edgeDels,
			attrAdds: v.attrAdds, attrDels: v.attrDels,
			numTriples: v.numTriples, newPairs: v.newPairs,
		},
	}
	for _, t := range dels {
		w.delete(t)
	}
	for _, t := range adds {
		w.insert(t)
	}
	return w.freeze(), nil
}

// writer is the transient single-Apply mutator: it stamps every bucket
// it rewrites with the next version and accumulates the new View's
// counters. Copy-effort counters batch locally and flush to the shared
// atomics once at freeze — the insert path is hot enough that a handful
// of atomic adds per triple shows up in profiles.
type writer struct {
	sh  *shared
	ver uint64
	nv  View // counters evolve here; prefixes are captured at freeze

	copiedEntries uint64
	copiedBytes   uint64
	versions      uint64

	// memo holds the two vertex bindings the previous triple resolved,
	// plus the last edge-type binding. Streamed batches (chains, stars,
	// sorted dumps) repeat an endpoint or predicate from one triple to
	// the next, and a byte-compare beats the two map probes a full
	// dictionary resolve pays. Bindings never change within a writer's
	// lifetime, so a hit is always exact; the empty string never matches
	// because Validate rejects empty IRIs.
	memoIRI [2]string
	memoID  [2]dict.VertexID
	memoP   string
	memoET  dict.EdgeType
}

// memoVertex records iri→id as the most recent vertex resolve.
func (w *writer) memoVertex(iri string, id dict.VertexID) {
	w.memoIRI[1], w.memoID[1] = w.memoIRI[0], w.memoID[0]
	w.memoIRI[0], w.memoID[0] = iri, id
}

func (w *writer) noteCopy(entries int) {
	w.copiedEntries += uint64(entries)
	w.copiedBytes += uint64(nodeBytes + 4*entries)
	w.versions++
}

// freeze publishes the batch: the new version becomes current and the
// View captures its prefixes of the shared append-only structures.
func (w *writer) freeze() *View {
	sh := w.sh
	sh.ver = w.ver
	if w.versions > 0 {
		sh.copiedEntries.Add(w.copiedEntries)
		sh.copiedBytes.Add(w.copiedBytes)
		sh.versions.Add(w.versions)
	}
	nv := &View{
		sh: sh, ver: w.ver,
		vertIRI: sh.vertIRI, etIRI: sh.etIRI, attrVal: sh.attrVal,
		touched:  sh.touched,
		edgeAdds: w.nv.edgeAdds, edgeDels: w.nv.edgeDels,
		attrAdds: w.nv.attrAdds, attrDels: w.nv.attrDels,
		numTriples: w.nv.numTriples, newPairs: w.nv.newPairs,
	}
	return nv
}

// internVertex resolves or assigns a vertex id across base + overlay.
// The writer is the swmap's single mutator, so it resolves against the
// same structure readers load from — no mirror to keep in step.
func (w *writer) internVertex(iri string) dict.VertexID {
	if id, ok := w.lookupVertex(iri); ok {
		return id
	}
	id := dict.VertexID(w.sh.baseNV + len(w.sh.vertIRI))
	w.sh.vertIRI = append(w.sh.vertIRI, iri)
	w.sh.vertID.insert(iri, &id)
	w.touch(id)
	w.memoVertex(iri, id)
	return id
}

func (w *writer) internEdgeType(p string) dict.EdgeType {
	if id, ok := w.lookupEdgeType(p); ok {
		return id
	}
	id := dict.EdgeType(w.sh.baseNT + len(w.sh.etIRI))
	w.sh.etIRI = append(w.sh.etIRI, p)
	w.sh.etID.insert(p, &id)
	w.memoP, w.memoET = p, id
	return id
}

func (w *writer) internAttr(p string, o rdf.Term) dict.AttrID {
	a := dict.AttributeOf(p, o)
	if id, ok := w.sh.g.Dicts.LookupAttr(p, o); ok {
		return id
	}
	if x := w.sh.attrID.load(a); x != nil {
		return *x
	}
	id := dict.AttrID(w.sh.baseNA + len(w.sh.attrVal))
	w.sh.attrVal = append(w.sh.attrVal, a)
	w.sh.attrID.insert(a, &id)
	var pred []dict.AttrID
	if x := w.sh.attrPred.load(p); x != nil {
		pred = *x
	}
	next := make([]dict.AttrID, 0, len(pred)+1)
	next = append(append(next, pred...), id) // ids intern in ascending order
	w.sh.attrPred.store(p, &next)
	return id
}

// baseHasEdge reports whether the frozen base carries type et on s→o.
func (w *writer) baseHasEdge(s, o dict.VertexID, et dict.EdgeType) bool {
	return int(s) < w.sh.baseNV && int(o) < w.sh.baseNV && int(et) < w.sh.baseNT &&
		containsType(w.sh.g.EdgeTypes(s, o), et)
}

// basePairExists reports whether the frozen base has any edge on the pair.
func (w *writer) basePairExists(k edgeKey) bool {
	return int(k.from) < w.sh.baseNV && int(k.to) < w.sh.baseNV &&
		w.sh.g.EdgeTypes(k.from, k.to) != nil
}

// baseHasAttr reports whether the frozen base carries attribute a on s.
func (w *writer) baseHasAttr(s dict.VertexID, a dict.AttrID) bool {
	return int(s) < w.sh.baseNV && int(a) < w.sh.baseNA &&
		w.sh.g.HasAttrs(s, []dict.AttrID{a})
}

func (w *writer) touch(vid dict.VertexID) {
	if w.sh.touchedSet[vid] {
		return
	}
	w.sh.touchedSet[vid] = true
	w.sh.touched = append(w.sh.touched, vid)
}

// setPair installs a new pair-delta bucket (ref is the pair's current
// bucket handle); a brand-new pair key also registers both endpoints in
// the (monotone) touch lists.
func (w *writer) setPair(k edgeKey, ref verRef[edgeKey, pairDelta], pd pairDelta) {
	w.noteCopy(len(pd.add) + len(pd.del))
	if w.sh.pairs.putRef(k, ref, w.ver, pd) {
		w.addTouchEntry(&w.sh.outTouch, k.from, k.to)
		w.addTouchEntry(&w.sh.inTouch, k.to, k.from)
	}
}

// addTouchEntry appends nb to vid's touch list. New neighbours mostly
// carry fresh, ascending vertex ids, so the common case extends the
// list in place — amortized O(1), which keeps hub vertices (one object
// shared by a whole stream of inserts) from turning every insert into
// an O(degree) copy. Extending in place is safe for concurrent readers:
// a published slice header bounds what its holder may read, and the
// cell past it has never been visible. The rare out-of-order id falls
// back to a sorted copy-insert.
func (w *writer) addTouchEntry(m *swmap[dict.VertexID, []dict.VertexID], vid, nb dict.VertexID) {
	e := m.entry(vid)
	var cur []dict.VertexID
	if e != nil {
		cur = *e.val.Load()
	}
	var next []dict.VertexID
	if n := len(cur); n == 0 || cur[n-1] < nb {
		w.noteCopy(1)
		next = append(cur, nb)
	} else {
		w.noteCopy(len(cur) + 1)
		next = insertSorted(cur, nb)
	}
	if e != nil {
		e.val.Store(&next)
		return
	}
	m.insert(vid, &next)
}

// setAttrSet installs a per-vertex attribute bucket (fwdRef is its
// current bucket handle) and mirrors it into the matching inverted list
// (the overlay's mini A index).
func (w *writer) setAttrSet(fwd *verMap[dict.VertexID, []dict.AttrID], inv *verMap[dict.AttrID, []dict.VertexID],
	vid dict.VertexID, fwdRef verRef[dict.VertexID, []dict.AttrID], as []dict.AttrID, a dict.AttrID, addInv bool) {
	w.noteCopy(len(as))
	fwd.putRef(vid, fwdRef, w.ver, as)
	invRef := inv.ref(a)
	var vs []dict.VertexID
	if invRef.head != nil {
		vs = invRef.head.val
	}
	if addInv {
		vs = insertSorted(vs, vid)
	} else {
		vs = removeSorted(vs, vid)
	}
	w.noteCopy(len(vs))
	inv.putRef(a, invRef, w.ver, vs)
}

// insert applies one triple addition (validated by the caller).
func (w *writer) insert(t rdf.Triple) {
	s := w.internVertex(t.S.Value)
	if t.O.IsLiteral() {
		a := w.internAttr(t.P.Value, t.O)
		if daR := w.sh.delAttrs.ref(s); daR.head != nil && containsSorted(daR.head.val, a) {
			w.setAttrSet(&w.sh.delAttrs, &w.sh.attrDel, s, daR, removeSorted(daR.head.val, a), a, false)
			w.nv.attrDels--
			w.nv.numTriples++
			return
		}
		if w.baseHasAttr(s, a) {
			return
		}
		aaR := w.sh.addAttrs.ref(s)
		var aa []dict.AttrID
		if aaR.head != nil {
			aa = aaR.head.val
		}
		if containsSorted(aa, a) {
			return
		}
		w.setAttrSet(&w.sh.addAttrs, &w.sh.attrAdd, s, aaR, insertSorted(aa, a), a, true)
		w.nv.attrAdds++
		w.nv.numTriples++
		return
	}
	o := w.internVertex(t.O.Value)
	et := w.internEdgeType(t.P.Value)
	k := edgeKey{s, o}
	ref := w.sh.pairs.ref(k)
	var pd pairDelta
	if ref.head != nil {
		pd = ref.head.val
	}
	if ref.head != nil && containsType(pd.del, et) {
		w.setPair(k, ref, pairDelta{add: pd.add, del: removeSorted(pd.del, et)})
		w.nv.edgeDels--
		w.nv.numTriples++
		return
	}
	if w.baseHasEdge(s, o, et) {
		return
	}
	if ref.head != nil && containsType(pd.add, et) {
		return
	}
	if len(pd.add) == 0 && !w.basePairExists(k) {
		w.nv.newPairs++
	}
	w.setPair(k, ref, pairDelta{add: insertSorted(pd.add, et), del: pd.del})
	w.touch(s)
	w.touch(o)
	w.nv.edgeAdds++
	w.nv.numTriples++
}

// delete applies one triple removal (validated by the caller). Removing
// a triple the merged view does not contain is a no-op.
func (w *writer) delete(t rdf.Triple) {
	s, ok := w.lookupVertex(t.S.Value)
	if !ok {
		return
	}
	if t.O.IsLiteral() {
		a, ok := w.lookupAttr(t.P.Value, t.O)
		if !ok {
			return
		}
		if aaR := w.sh.addAttrs.ref(s); aaR.head != nil && containsSorted(aaR.head.val, a) {
			w.setAttrSet(&w.sh.addAttrs, &w.sh.attrAdd, s, aaR, removeSorted(aaR.head.val, a), a, false)
			w.nv.attrAdds--
			w.nv.numTriples--
			return
		}
		daR := w.sh.delAttrs.ref(s)
		var da []dict.AttrID
		if daR.head != nil {
			da = daR.head.val
		}
		if w.baseHasAttr(s, a) && !containsSorted(da, a) {
			w.setAttrSet(&w.sh.delAttrs, &w.sh.attrDel, s, daR, insertSorted(da, a), a, true)
			w.nv.attrDels++
			w.nv.numTriples--
		}
		return
	}
	o, ok := w.lookupVertex(t.O.Value)
	if !ok {
		return
	}
	et, ok := w.lookupEdgeType(t.P.Value)
	if !ok {
		return
	}
	k := edgeKey{s, o}
	ref := w.sh.pairs.ref(k)
	var pd pairDelta
	if ref.head != nil {
		pd = ref.head.val
	}
	if ref.head != nil && containsType(pd.add, et) {
		add := removeSorted(pd.add, et)
		if len(add) == 0 && !w.basePairExists(k) {
			w.nv.newPairs--
		}
		w.setPair(k, ref, pairDelta{add: add, del: pd.del})
		w.nv.edgeAdds--
		w.nv.numTriples--
		return
	}
	if w.baseHasEdge(s, o, et) && !(ref.head != nil && containsType(pd.del, et)) {
		w.setPair(k, ref, pairDelta{add: pd.add, del: insertSorted(pd.del, et)})
		w.nv.edgeDels++
		w.nv.numTriples--
	}
}

func (w *writer) lookupVertex(iri string) (dict.VertexID, bool) {
	if iri == w.memoIRI[0] {
		return w.memoID[0], true
	}
	if iri == w.memoIRI[1] {
		return w.memoID[1], true
	}
	if id, ok := w.sh.g.Dicts.LookupVertex(iri); ok {
		w.memoVertex(iri, id)
		return id, true
	}
	if x := w.sh.vertID.load(iri); x != nil {
		w.memoVertex(iri, *x)
		return *x, true
	}
	return 0, false
}

func (w *writer) lookupEdgeType(p string) (dict.EdgeType, bool) {
	if p == w.memoP {
		return w.memoET, true
	}
	if id, ok := w.sh.g.Dicts.LookupEdgeType(p); ok {
		w.memoP, w.memoET = p, id
		return id, true
	}
	if x := w.sh.etID.load(p); x != nil {
		w.memoP, w.memoET = p, *x
		return *x, true
	}
	return 0, false
}

func (w *writer) lookupAttr(p string, o rdf.Term) (dict.AttrID, bool) {
	if id, ok := w.sh.g.Dicts.LookupAttr(p, o); ok {
		return id, true
	}
	if x := w.sh.attrID.load(dict.AttributeOf(p, o)); x != nil {
		return *x, true
	}
	return 0, false
}

// ---- sorted-slice helpers ----------------------------------------------

// insertSorted returns a new sorted slice with x inserted (the input is
// never modified — buckets are immutable once published). Inserting a
// present element copies but does not duplicate.
func insertSorted[T ~uint32](a []T, x T) []T {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i < len(a) && a[i] == x {
		out := make([]T, len(a))
		copy(out, a)
		return out
	}
	out := make([]T, 0, len(a)+1)
	out = append(out, a[:i]...)
	out = append(out, x)
	return append(out, a[i:]...)
}

// removeSorted returns a new sorted slice without x; nil when the result
// is empty (so emptied buckets compare like absent ones).
func removeSorted[T ~uint32](a []T, x T) []T {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i >= len(a) || a[i] != x {
		out := make([]T, len(a))
		copy(out, a)
		return out
	}
	if len(a) == 1 {
		return nil
	}
	out := make([]T, 0, len(a)-1)
	out = append(out, a[:i]...)
	return append(out, a[i+1:]...)
}

// unionSorted merges two sorted, duplicate-free slices into a new sorted,
// duplicate-free slice.
func unionSorted[T ~uint32](a, b []T) []T {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// subtractSorted returns a \ b for sorted slices.
func subtractSorted[T ~uint32](a, b []T) []T {
	if len(b) == 0 || len(a) == 0 {
		return a
	}
	out := make([]T, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// intersectSorted returns a ∩ b for sorted slices.
func intersectSorted[T ~uint32](a, b []T) []T {
	out := make([]T, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

func containsSorted[T ~uint32](lst []T, x T) bool {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= x })
	return i < len(lst) && lst[i] == x
}

func containsType(lst []dict.EdgeType, t dict.EdgeType) bool {
	return containsSorted(lst, t)
}

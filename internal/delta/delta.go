// Package delta implements the live-update overlay of the AMbER
// reproduction: an immutable view of "frozen base graph + in-memory
// changes" that presents the same probe surface (index.Reader) and
// dictionary surface (dict.Resolver) as a frozen generation, so the
// matching engine, the planner and query translation run unchanged over
// mutating data.
//
// The design keeps the paper's expensive index ensemble untouched per
// generation: a View records only the difference — added triples and
// tombstones over the base — plus its own small side indexes (per-pair
// edge-type deltas, per-vertex touch lists, an attribute add/remove
// inverted index, and dictionary extensions for IRIs the base has never
// seen). Probes consult the base ensemble first and correct its answer
// through the overlay, so overlay matching stays sublinear in the base
// and linear only in the delta.
//
// Views are persistent (copy-on-write): Apply returns a new View sharing
// the base and leaves the receiver untouched, which is what gives the
// MVCC read path its snapshot isolation — a query pins one View and can
// never observe a torn update. Writers are expected to be serialized by
// the owner (internal/core.Store); readers need no synchronization.
package delta

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
)

// edgeKey identifies a directed vertex pair carrying an edge-type delta.
type edgeKey struct {
	from, to dict.VertexID
}

// pairDelta is the multi-edge change on one directed pair: types added
// beyond the base label set and base types tombstoned. Both are sorted
// and disjoint; a type deleted and re-added cancels out.
type pairDelta struct {
	add []dict.EdgeType
	del []dict.EdgeType
}

// View is one immutable overlay snapshot over a frozen base generation.
// The zero value is not usable; start from NewView and evolve with Apply.
// A View is safe for concurrent readers.
type View struct {
	g  *multigraph.Graph
	ix *index.Index

	baseNV, baseNT, baseNA int

	// Dictionary extensions for entities the base has never interned.
	// Overlay ids continue the base's dense ranges (vertex id baseNV+i ↔
	// vertIRI[i], and likewise for edge types and attributes).
	vertID  map[string]dict.VertexID
	vertIRI []string
	etID    map[string]dict.EdgeType
	etIRI   []string
	attrID  map[dict.Attribute]dict.AttrID
	attrVal []dict.Attribute
	// attrPred indexes overlay attribute ids by predicate (sorted), the
	// overlay's extension of AttrDict.PredicateAttrs.
	attrPred map[string][]dict.AttrID

	// Edge overlay: per-pair type deltas plus per-vertex touch lists
	// (sorted neighbour ids with any delta on the connecting pair).
	pairs    map[edgeKey]pairDelta
	outTouch map[dict.VertexID][]dict.VertexID // v → {w : pairs[v,w] exists}
	inTouch  map[dict.VertexID][]dict.VertexID // v → {w : pairs[w,v] exists}

	// Attribute overlay: per-vertex sorted add/remove sets and the
	// matching inverted lists (the overlay's mini A index).
	addAttrs map[dict.VertexID][]dict.AttrID
	delAttrs map[dict.VertexID][]dict.AttrID
	attrAdd  map[dict.AttrID][]dict.VertexID
	attrDel  map[dict.AttrID][]dict.VertexID

	// touched lists the vertices whose signature may exceed their base
	// signature: every overlay-new vertex plus every base endpoint of an
	// added edge. SignatureCandidates unions it into the base R-tree
	// probe (deletions only shrink signatures, so they need no entry).
	touched []dict.VertexID

	adds, dels int // overlay entries: added triples, tombstones
	numTriples int // merged triple count (base ± overlay)
	newPairs   int // pairs with adds where the base had no edge

	// card caches the blended planner statistics (base counts corrected
	// by overlay adds/tombstones), computed lazily on first use because
	// most views are never planned against.
	cardOnce sync.Once
	card     *index.Cardinalities
}

// NewView returns the empty overlay over a frozen generation.
func NewView(g *multigraph.Graph, ix *index.Index) *View {
	return &View{
		g: g, ix: ix,
		baseNV:     g.NumVertices(),
		baseNT:     g.NumEdgeTypes(),
		baseNA:     g.NumAttrs(),
		numTriples: g.NumTriples(),
	}
}

// Base returns the frozen generation the view overlays.
func (v *View) Base() (*multigraph.Graph, *index.Index) { return v.g, v.ix }

// Empty reports whether the view holds no changes.
func (v *View) Empty() bool { return v.adds == 0 && v.dels == 0 }

// Size is the overlay's entry count (added triples + tombstones): the
// quantity compaction thresholds are measured against.
func (v *View) Size() int { return v.adds + v.dels }

// Adds reports the number of overlay-added triples.
func (v *View) Adds() int { return v.adds }

// Tombstones reports the number of tombstoned base triples.
func (v *View) Tombstones() int { return v.dels }

// NumTriples reports the merged triple count.
func (v *View) NumTriples() int { return v.numTriples }

// NumVertices reports |V| of the merged view.
func (v *View) NumVertices() int { return v.baseNV + len(v.vertIRI) }

// NumEdgeTypes reports |T| of the merged view.
func (v *View) NumEdgeTypes() int { return v.baseNT + len(v.etIRI) }

// NumAttrs reports |A| of the merged view.
func (v *View) NumAttrs() int { return v.baseNA + len(v.attrVal) }

// NumEdges estimates the merged distinct-pair edge count: the base count
// plus pairs the overlay created (tombstoned-empty pairs are not
// subtracted — the estimate is an upper bound used for stats only).
func (v *View) NumEdges() int { return v.g.NumEdges() + v.newPairs }

// ---- dict.Resolver -----------------------------------------------------

// LookupVertex resolves an IRI against base then overlay dictionaries.
func (v *View) LookupVertex(iri string) (dict.VertexID, bool) {
	if id, ok := v.g.Dicts.LookupVertex(iri); ok {
		return id, true
	}
	id, ok := v.vertID[iri]
	return id, ok
}

// LookupEdgeType resolves a predicate IRI.
func (v *View) LookupEdgeType(predicate string) (dict.EdgeType, bool) {
	if id, ok := v.g.Dicts.LookupEdgeType(predicate); ok {
		return id, true
	}
	id, ok := v.etID[predicate]
	return id, ok
}

// LookupAttr resolves a <predicate, literal-term> tuple.
func (v *View) LookupAttr(predicate string, o rdf.Term) (dict.AttrID, bool) {
	if id, ok := v.g.Dicts.LookupAttr(predicate, o); ok {
		return id, true
	}
	id, ok := v.attrID[dict.AttributeOf(predicate, o)]
	return id, ok
}

// VertexIRI applies Mv⁻¹ across base and overlay id ranges.
func (v *View) VertexIRI(id dict.VertexID) string {
	if int(id) < v.baseNV {
		return v.g.Dicts.VertexIRI(id)
	}
	return v.vertIRI[int(id)-v.baseNV]
}

// EdgeTypeIRI applies Me⁻¹ across base and overlay id ranges.
func (v *View) EdgeTypeIRI(t dict.EdgeType) string {
	if int(t) < v.baseNT {
		return v.g.Dicts.EdgeTypeIRI(t)
	}
	return v.etIRI[int(t)-v.baseNT]
}

// Attr applies Ma⁻¹ across base and overlay id ranges.
func (v *View) Attr(a dict.AttrID) dict.Attribute {
	if int(a) < v.baseNA {
		return v.g.Dicts.Attr(a)
	}
	return v.attrVal[int(a)-v.baseNA]
}

// PredicateAttrs returns the sorted attribute ids carrying the predicate
// across base and overlay dictionaries (base ids precede overlay ids, so
// concatenation preserves order).
func (v *View) PredicateAttrs(predicate string) []dict.AttrID {
	base := v.g.Dicts.PredicateAttrs(predicate)
	over := v.attrPred[predicate]
	if len(over) == 0 {
		return base
	}
	out := make([]dict.AttrID, 0, len(base)+len(over))
	out = append(out, base...)
	return append(out, over...)
}

// ---- index.Reader ------------------------------------------------------

// EdgeTypes returns the effective multi-edge label set LE(from, to) of
// the merged view: base types minus tombstones plus overlay additions.
// The result is sorted; it may alias base storage when the pair carries
// no delta and must not be modified.
func (v *View) EdgeTypes(from, to dict.VertexID) []dict.EdgeType {
	var base []dict.EdgeType
	if int(from) < v.baseNV && int(to) < v.baseNV {
		base = v.g.EdgeTypes(from, to)
	}
	pd, ok := v.pairs[edgeKey{from, to}]
	if !ok {
		return base
	}
	return unionSorted(subtractSorted(base, pd.del), pd.add)
}

// HasEdgeTypes reports whether from→to carries every type in want under
// the merged view.
func (v *View) HasEdgeTypes(from, to dict.VertexID, want []dict.EdgeType) bool {
	if _, ok := v.pairs[edgeKey{from, to}]; !ok {
		// No delta on the pair: the base answer stands (overlay-new
		// endpoints have no base edge and fall through to false).
		if int(from) < v.baseNV && int(to) < v.baseNV {
			return v.g.HasEdgeTypes(from, to, want)
		}
		return false
	}
	return multigraph.ContainsTypes(v.EdgeTypes(from, to), want)
}

// dirTypes returns the effective label set of the pair (v, w) oriented by
// dir: Outgoing reads edge v→w, Incoming reads edge w→v.
func (v *View) dirTypes(vid, w dict.VertexID, dir index.Direction) []dict.EdgeType {
	if dir == index.Outgoing {
		return v.EdgeTypes(vid, w)
	}
	return v.EdgeTypes(w, vid)
}

// Neighbors implements the N probe over the merged view: the base trie
// answer, re-verified for pairs the overlay touched, merged with
// overlay-reachable neighbours that pass the same containment test.
func (v *View) Neighbors(vid dict.VertexID, dir index.Direction, types []dict.EdgeType) []dict.VertexID {
	var base []dict.VertexID
	if int(vid) < v.baseNV {
		base = v.ix.N.Neighbors(vid, dir, types)
	}
	touch := v.outTouch[vid]
	if dir == index.Incoming {
		touch = v.inTouch[vid]
	}
	if len(touch) == 0 {
		return base
	}
	out := make([]dict.VertexID, 0, len(base)+len(touch))
	i, j := 0, 0
	for i < len(base) || j < len(touch) {
		switch {
		case j >= len(touch) || (i < len(base) && base[i] < touch[j]):
			// Base-only neighbour: no delta on the pair, answer stands.
			out = append(out, base[i])
			i++
		default:
			w := touch[j]
			if multigraph.ContainsTypes(v.dirTypes(vid, w, dir), types) {
				out = append(out, w)
			}
			j++
			if i < len(base) && base[i] == w {
				i++
			}
		}
	}
	return out
}

// SignatureCandidates probes the base R-tree and unions in the touched
// vertices — whose merged signatures may dominate query synopses their
// base signatures did not. Per Lemma 1 the result is a superset of all
// true matches; the engine's exact probes prune the rest.
func (v *View) SignatureCandidates(q multigraph.Synopsis) []dict.VertexID {
	base := v.ix.S.Candidates(q)
	if len(v.touched) == 0 {
		return base
	}
	return unionSorted(base, v.touched)
}

// attrVertices returns the merged inverted list of attribute a.
func (v *View) attrVertices(a dict.AttrID) []dict.VertexID {
	var base []dict.VertexID
	if int(a) < v.baseNA {
		base = v.ix.A.Vertices(a)
	}
	del, add := v.attrDel[a], v.attrAdd[a]
	if del == nil && add == nil {
		return base
	}
	return unionSorted(subtractSorted(base, del), add)
}

// VertexAttrs returns the sorted attribute ids vid carries under the
// merged view (base attributes minus tombstones plus overlay additions).
func (v *View) VertexAttrs(vid dict.VertexID) []dict.AttrID {
	var base []dict.AttrID
	if int(vid) < v.baseNV {
		base = v.g.Attrs(vid)
	}
	del, add := v.delAttrs[vid], v.addAttrs[vid]
	if del == nil && add == nil {
		return base
	}
	return unionSorted(subtractSorted(base, del), add)
}

// AttrCandidates returns the vertices carrying every attribute in attrs
// under the merged view (CᴬU of Algorithm 1). Mirrors the base index's
// rarest-first intersection; nil when attrs is empty.
func (v *View) AttrCandidates(attrs []dict.AttrID) []dict.VertexID {
	if len(attrs) == 0 {
		return nil
	}
	if len(v.attrAdd) == 0 && len(v.attrDel) == 0 {
		return v.ix.A.Candidates(attrs)
	}
	lists := make([][]dict.VertexID, len(attrs))
	for i, a := range attrs {
		lst := v.attrVertices(a)
		if len(lst) == 0 {
			return nil
		}
		lists[i] = lst
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, lst := range lists[1:] {
		out = intersectSorted(out, lst)
		if len(out) == 0 {
			return nil
		}
	}
	res := make([]dict.VertexID, len(out))
	copy(res, out)
	return res
}

// HasAttrs reports whether vid carries every attribute in want (sorted)
// under the merged view.
func (v *View) HasAttrs(vid dict.VertexID, want []dict.AttrID) bool {
	for _, a := range want {
		if containsSorted(v.addAttrs[vid], a) {
			continue
		}
		if int(vid) < v.baseNV && int(a) < v.baseNA &&
			v.g.HasAttrs(vid, []dict.AttrID{a}) && !containsSorted(v.delAttrs[vid], a) {
			continue
		}
		return false
	}
	return true
}

// Cardinalities returns planner statistics for the merged view: the base
// generation's per-edge-type counts blended with the overlay's additions
// and tombstones, so the cost planner doesn't order matching off stale
// counts when the overlay is large (e.g. an edge type that exists only
// in the overlay would otherwise estimate to zero and look spuriously
// selective). The blend is computed lazily, once per view, and cached —
// most views are never planned against. It is an estimate: deletions do
// not decrement the per-vertex counts (a tombstone may or may not remove
// a vertex's last edge of a type), which only ever errs toward the base
// generation's answer. Compaction still refreshes the statistics
// wholesale.
func (v *View) Cardinalities() *index.Cardinalities {
	base := v.ix.Card
	if base == nil || v.Empty() {
		return base
	}
	v.cardOnce.Do(func() { v.card = v.blendCardinalities(base) })
	return v.card
}

// blendCardinalities clones the base statistics (extended over
// overlay-new edge types) and folds in the overlay's edge deltas.
func (v *View) blendCardinalities(base *index.Cardinalities) *index.Cardinalities {
	nT := v.NumEdgeTypes()
	c := &index.Cardinalities{
		OutVertices: make([]int, nT),
		InVertices:  make([]int, nT),
		Edges:       make([]int, nT),
		NumVertices: v.NumVertices(),
	}
	copy(c.OutVertices, base.OutVertices)
	copy(c.InVertices, base.InVertices)
	copy(c.Edges, base.Edges)

	type vertType struct {
		v dict.VertexID
		t dict.EdgeType
	}
	outGain := make(map[vertType]bool)
	inGain := make(map[vertType]bool)
	for k, pd := range v.pairs {
		for _, t := range pd.add {
			c.Edges[t]++
			outGain[vertType{k.from, t}] = true
			inGain[vertType{k.to, t}] = true
		}
		for _, t := range pd.del {
			// Tombstones only ever carry base types on base pairs, so the
			// decrement cannot underflow a correct base count; clamp anyway
			// for safety.
			if c.Edges[t] > 0 {
				c.Edges[t]--
			}
		}
	}
	// A vertex counts once per (type, side); overlay gains that the base
	// generation already counted (the vertex had a base edge of that type
	// on that side) must not count again. The probe is one trie lookup
	// per distinct gained (vertex, type) — bounded by the overlay size,
	// which compaction keeps small.
	countGains := func(gain map[vertType]bool, dir index.Direction, counts []int) {
		for key := range gain {
			if int(key.v) < v.baseNV && int(key.t) < v.baseNT &&
				len(v.ix.N.Neighbors(key.v, dir, []dict.EdgeType{key.t})) > 0 {
				continue
			}
			counts[key.t]++
		}
	}
	countGains(outGain, index.Outgoing, c.OutVertices)
	countGains(inGain, index.Incoming, c.InVertices)
	return c
}

// ---- enumeration -------------------------------------------------------

// Triples enumerates the merged triple set deterministically (base scan
// in vertex order with tombstones skipped, then overlay additions in
// sorted order), stopping early when yield returns false. Compaction and
// snapshot Save rebuild a fresh generation from exactly this stream.
func (v *View) Triples(yield func(rdf.Triple) bool) bool {
	for i := 0; i < v.baseNV; i++ {
		vid := dict.VertexID(i)
		s := rdf.NewResource(v.g.Dicts.VertexIRI(vid))
		for _, nb := range v.g.Out(vid) {
			pd, hasPD := v.pairs[edgeKey{vid, nb.V}]
			o := rdf.NewResource(v.g.Dicts.VertexIRI(nb.V))
			for _, t := range nb.Types {
				if hasPD && containsType(pd.del, t) {
					continue
				}
				if !yield(rdf.Triple{S: s, P: rdf.NewIRI(v.g.Dicts.EdgeTypeIRI(t)), O: o}) {
					return false
				}
			}
		}
		da := v.delAttrs[vid]
		for _, a := range v.g.Attrs(vid) {
			if containsSorted(da, a) {
				continue
			}
			at := v.g.Dicts.Attr(a)
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(at.Predicate), O: at.Literal()}) {
				return false
			}
		}
	}
	keys := make([]edgeKey, 0, len(v.pairs))
	for k, pd := range v.pairs {
		if len(pd.add) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		s, o := rdf.NewResource(v.VertexIRI(k.from)), rdf.NewResource(v.VertexIRI(k.to))
		for _, t := range v.pairs[k].add {
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(v.EdgeTypeIRI(t)), O: o}) {
				return false
			}
		}
	}
	verts := make([]dict.VertexID, 0, len(v.addAttrs))
	for vid := range v.addAttrs {
		verts = append(verts, vid)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for _, vid := range verts {
		s := rdf.NewResource(v.VertexIRI(vid))
		for _, a := range v.addAttrs[vid] {
			at := v.Attr(a)
			if !yield(rdf.Triple{S: s, P: rdf.NewIRI(at.Predicate), O: at.Literal()}) {
				return false
			}
		}
	}
	return true
}

// ---- mutation ----------------------------------------------------------

// Validate checks that a triple is applicable: subject and predicate
// must be IRIs, the object an IRI or literal. Mutation entry points call
// it up front so a replayed log can never fail mid-apply.
func Validate(t rdf.Triple) error {
	if !t.S.IsResource() {
		return fmt.Errorf("delta: subject must be an IRI or blank node: %v", t)
	}
	if !t.P.IsIRI() {
		return fmt.Errorf("delta: predicate must be an IRI: %v", t)
	}
	if t.O.Datatype != "" && t.O.Lang != "" {
		// At most one annotation per literal (rdf.Term invariant); an
		// attribute interned with both would be unloadable from a
		// snapshot. Explicit xsd:string needs no rejection — interning
		// normalizes it (dict.AttributeOf), matching WAL replay.
		return fmt.Errorf("delta: literal with both datatype and language tag: %v", t)
	}
	return nil
}

// Apply returns a new View with dels removed and adds inserted (dels
// first, so a triple in both sets ends up present). The receiver is
// unchanged. Deleting an absent triple and inserting a present one are
// no-ops, mirroring SPARQL 1.1 Update semantics.
func (v *View) Apply(adds, dels []rdf.Triple) (*View, error) {
	for _, t := range dels {
		if err := Validate(t); err != nil {
			return nil, err
		}
	}
	for _, t := range adds {
		if err := Validate(t); err != nil {
			return nil, err
		}
	}
	m := v.thaw()
	for _, t := range dels {
		m.delete(t)
	}
	for _, t := range adds {
		m.insert(t)
	}
	return m.freeze(), nil
}

// mutable is the thawed, single-writer working form of a View.
type mutable struct {
	v *View // parent (base access only; overlay state is copied below)

	vertID  map[string]dict.VertexID
	vertIRI []string
	etID    map[string]dict.EdgeType
	etIRI   []string
	attrID  map[dict.Attribute]dict.AttrID
	attrVal []dict.Attribute

	pairs    map[edgeKey]*pairSets
	addAttrs map[dict.VertexID]map[dict.AttrID]bool
	delAttrs map[dict.VertexID]map[dict.AttrID]bool

	numTriples int
}

type pairSets struct {
	add map[dict.EdgeType]bool
	del map[dict.EdgeType]bool
}

// thaw deep-copies the overlay into mutable form. Cost is linear in the
// overlay, which compaction keeps bounded.
func (v *View) thaw() *mutable {
	m := &mutable{
		v:          v,
		vertID:     make(map[string]dict.VertexID, len(v.vertID)),
		vertIRI:    append([]string(nil), v.vertIRI...),
		etID:       make(map[string]dict.EdgeType, len(v.etID)),
		etIRI:      append([]string(nil), v.etIRI...),
		attrID:     make(map[dict.Attribute]dict.AttrID, len(v.attrID)),
		attrVal:    append([]dict.Attribute(nil), v.attrVal...),
		pairs:      make(map[edgeKey]*pairSets, len(v.pairs)),
		addAttrs:   make(map[dict.VertexID]map[dict.AttrID]bool, len(v.addAttrs)),
		delAttrs:   make(map[dict.VertexID]map[dict.AttrID]bool, len(v.delAttrs)),
		numTriples: v.numTriples,
	}
	for k, id := range v.vertID {
		m.vertID[k] = id
	}
	for k, id := range v.etID {
		m.etID[k] = id
	}
	for k, id := range v.attrID {
		m.attrID[k] = id
	}
	for k, pd := range v.pairs {
		ps := &pairSets{add: make(map[dict.EdgeType]bool, len(pd.add)), del: make(map[dict.EdgeType]bool, len(pd.del))}
		for _, t := range pd.add {
			ps.add[t] = true
		}
		for _, t := range pd.del {
			ps.del[t] = true
		}
		m.pairs[k] = ps
	}
	copyAttrSets := func(src map[dict.VertexID][]dict.AttrID, dst map[dict.VertexID]map[dict.AttrID]bool) {
		for vid, as := range src {
			set := make(map[dict.AttrID]bool, len(as))
			for _, a := range as {
				set[a] = true
			}
			dst[vid] = set
		}
	}
	copyAttrSets(v.addAttrs, m.addAttrs)
	copyAttrSets(v.delAttrs, m.delAttrs)
	return m
}

// internVertex resolves or assigns a vertex id across base + overlay.
func (m *mutable) internVertex(iri string) dict.VertexID {
	if id, ok := m.v.g.Dicts.LookupVertex(iri); ok {
		return id
	}
	if id, ok := m.vertID[iri]; ok {
		return id
	}
	id := dict.VertexID(m.v.baseNV + len(m.vertIRI))
	m.vertID[iri] = id
	m.vertIRI = append(m.vertIRI, iri)
	return id
}

func (m *mutable) internEdgeType(p string) dict.EdgeType {
	if id, ok := m.v.g.Dicts.LookupEdgeType(p); ok {
		return id
	}
	if id, ok := m.etID[p]; ok {
		return id
	}
	id := dict.EdgeType(m.v.baseNT + len(m.etIRI))
	m.etID[p] = id
	m.etIRI = append(m.etIRI, p)
	return id
}

func (m *mutable) internAttr(p string, o rdf.Term) dict.AttrID {
	a := dict.AttributeOf(p, o)
	if id, ok := m.v.g.Dicts.LookupAttr(p, o); ok {
		return id
	}
	if id, ok := m.attrID[a]; ok {
		return id
	}
	id := dict.AttrID(m.v.baseNA + len(m.attrVal))
	m.attrID[a] = id
	m.attrVal = append(m.attrVal, a)
	return id
}

// baseHasEdge reports whether the frozen base carries type et on s→o.
func (m *mutable) baseHasEdge(s, o dict.VertexID, et dict.EdgeType) bool {
	return int(s) < m.v.baseNV && int(o) < m.v.baseNV && int(et) < m.v.baseNT &&
		containsType(m.v.g.EdgeTypes(s, o), et)
}

// baseHasAttr reports whether the frozen base carries attribute a on s.
func (m *mutable) baseHasAttr(s dict.VertexID, a dict.AttrID) bool {
	return int(s) < m.v.baseNV && int(a) < m.v.baseNA &&
		m.v.g.HasAttrs(s, []dict.AttrID{a})
}

func (m *mutable) pair(k edgeKey) *pairSets {
	ps := m.pairs[k]
	if ps == nil {
		ps = &pairSets{add: make(map[dict.EdgeType]bool), del: make(map[dict.EdgeType]bool)}
		m.pairs[k] = ps
	}
	return ps
}

// insert applies one triple addition (validated by the caller).
func (m *mutable) insert(t rdf.Triple) {
	s := m.internVertex(t.S.Value)
	if t.O.IsLiteral() {
		a := m.internAttr(t.P.Value, t.O)
		if m.delAttrs[s][a] {
			delete(m.delAttrs[s], a)
			m.numTriples++
			return
		}
		if m.baseHasAttr(s, a) || m.addAttrs[s][a] {
			return
		}
		if m.addAttrs[s] == nil {
			m.addAttrs[s] = make(map[dict.AttrID]bool)
		}
		m.addAttrs[s][a] = true
		m.numTriples++
		return
	}
	o := m.internVertex(t.O.Value)
	et := m.internEdgeType(t.P.Value)
	k := edgeKey{s, o}
	if ps := m.pairs[k]; ps != nil && ps.del[et] {
		delete(ps.del, et)
		m.numTriples++
		return
	}
	if m.baseHasEdge(s, o, et) {
		return
	}
	ps := m.pair(k)
	if ps.add[et] {
		return
	}
	ps.add[et] = true
	m.numTriples++
}

// delete applies one triple removal (validated by the caller). Removing
// a triple the merged view does not contain is a no-op.
func (m *mutable) delete(t rdf.Triple) {
	s, ok := m.lookupVertex(t.S.Value)
	if !ok {
		return
	}
	if t.O.IsLiteral() {
		a, ok := m.lookupAttr(t.P.Value, t.O)
		if !ok {
			return
		}
		if m.addAttrs[s][a] {
			delete(m.addAttrs[s], a)
			m.numTriples--
			return
		}
		if m.baseHasAttr(s, a) && !m.delAttrs[s][a] {
			if m.delAttrs[s] == nil {
				m.delAttrs[s] = make(map[dict.AttrID]bool)
			}
			m.delAttrs[s][a] = true
			m.numTriples--
		}
		return
	}
	o, ok := m.lookupVertex(t.O.Value)
	if !ok {
		return
	}
	et, ok := m.lookupEdgeType(t.P.Value)
	if !ok {
		return
	}
	k := edgeKey{s, o}
	if ps := m.pairs[k]; ps != nil && ps.add[et] {
		delete(ps.add, et)
		m.numTriples--
		return
	}
	if m.baseHasEdge(s, o, et) {
		ps := m.pair(k)
		if !ps.del[et] {
			ps.del[et] = true
			m.numTriples--
		}
	}
}

func (m *mutable) lookupVertex(iri string) (dict.VertexID, bool) {
	if id, ok := m.v.g.Dicts.LookupVertex(iri); ok {
		return id, true
	}
	id, ok := m.vertID[iri]
	return id, ok
}

func (m *mutable) lookupEdgeType(p string) (dict.EdgeType, bool) {
	if id, ok := m.v.g.Dicts.LookupEdgeType(p); ok {
		return id, true
	}
	id, ok := m.etID[p]
	return id, ok
}

func (m *mutable) lookupAttr(p string, o rdf.Term) (dict.AttrID, bool) {
	if id, ok := m.v.g.Dicts.LookupAttr(p, o); ok {
		return id, true
	}
	id, ok := m.attrID[dict.AttributeOf(p, o)]
	return id, ok
}

// freeze materializes the mutable state into an immutable View, building
// the sorted side indexes (touch lists, attribute inverted lists, the
// touched-vertex list) the read path depends on.
func (m *mutable) freeze() *View {
	v := m.v
	nv := &View{
		g: v.g, ix: v.ix,
		baseNV: v.baseNV, baseNT: v.baseNT, baseNA: v.baseNA,
		vertID: m.vertID, vertIRI: m.vertIRI,
		etID: m.etID, etIRI: m.etIRI,
		attrID: m.attrID, attrVal: m.attrVal,
		pairs:      make(map[edgeKey]pairDelta, len(m.pairs)),
		outTouch:   make(map[dict.VertexID][]dict.VertexID),
		inTouch:    make(map[dict.VertexID][]dict.VertexID),
		addAttrs:   make(map[dict.VertexID][]dict.AttrID, len(m.addAttrs)),
		delAttrs:   make(map[dict.VertexID][]dict.AttrID, len(m.delAttrs)),
		attrAdd:    make(map[dict.AttrID][]dict.VertexID),
		attrDel:    make(map[dict.AttrID][]dict.VertexID),
		numTriples: m.numTriples,
	}
	touchedSet := make(map[dict.VertexID]bool)
	for i := range m.vertIRI {
		touchedSet[dict.VertexID(v.baseNV+i)] = true
	}
	for k, ps := range m.pairs {
		if len(ps.add) == 0 && len(ps.del) == 0 {
			continue
		}
		pd := pairDelta{add: sortedTypes(ps.add), del: sortedTypes(ps.del)}
		nv.pairs[k] = pd
		nv.outTouch[k.from] = append(nv.outTouch[k.from], k.to)
		nv.inTouch[k.to] = append(nv.inTouch[k.to], k.from)
		if len(pd.add) > 0 {
			nv.adds += len(pd.add)
			touchedSet[k.from] = true
			touchedSet[k.to] = true
			if !(int(k.from) < v.baseNV && int(k.to) < v.baseNV && v.g.EdgeTypes(k.from, k.to) != nil) {
				nv.newPairs++
			}
		}
		nv.dels += len(pd.del)
	}
	for _, lst := range [2]map[dict.VertexID][]dict.VertexID{nv.outTouch, nv.inTouch} {
		for _, ws := range lst {
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		}
	}
	for vid, set := range m.addAttrs {
		if len(set) == 0 {
			continue
		}
		as := sortedAttrs(set)
		nv.addAttrs[vid] = as
		nv.adds += len(as)
		for _, a := range as {
			nv.attrAdd[a] = append(nv.attrAdd[a], vid)
		}
	}
	for vid, set := range m.delAttrs {
		if len(set) == 0 {
			continue
		}
		as := sortedAttrs(set)
		nv.delAttrs[vid] = as
		nv.dels += len(as)
		for _, a := range as {
			nv.attrDel[a] = append(nv.attrDel[a], vid)
		}
	}
	for _, inv := range [2]map[dict.AttrID][]dict.VertexID{nv.attrAdd, nv.attrDel} {
		for _, vs := range inv {
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		}
	}
	if len(m.attrVal) > 0 {
		nv.attrPred = make(map[string][]dict.AttrID)
		for i, a := range m.attrVal {
			nv.attrPred[a.Predicate] = append(nv.attrPred[a.Predicate], dict.AttrID(v.baseNA+i))
		}
	}
	nv.touched = make([]dict.VertexID, 0, len(touchedSet))
	for vid := range touchedSet {
		nv.touched = append(nv.touched, vid)
	}
	sort.Slice(nv.touched, func(i, j int) bool { return nv.touched[i] < nv.touched[j] })
	return nv
}

// ---- sorted-slice helpers ----------------------------------------------

func sortedTypes(set map[dict.EdgeType]bool) []dict.EdgeType {
	if len(set) == 0 {
		return nil
	}
	out := make([]dict.EdgeType, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAttrs(set map[dict.AttrID]bool) []dict.AttrID {
	out := make([]dict.AttrID, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// unionSorted merges two sorted, duplicate-free slices into a new sorted,
// duplicate-free slice.
func unionSorted[T ~uint32](a, b []T) []T {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// subtractSorted returns a \ b for sorted slices.
func subtractSorted[T ~uint32](a, b []T) []T {
	if len(b) == 0 || len(a) == 0 {
		return a
	}
	out := make([]T, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// intersectSorted returns a ∩ b for sorted slices.
func intersectSorted[T ~uint32](a, b []T) []T {
	out := make([]T, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

func containsSorted[T ~uint32](lst []T, x T) bool {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= x })
	return i < len(lst) && lst[i] == x
}

func containsType(lst []dict.EdgeType, t dict.EdgeType) bool {
	return containsSorted(lst, t)
}

package delta

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// roundBatch builds n disjoint add-triples (fresh vertices, one shared
// predicate) for round r — every round has identical shape and size, so
// copy-on-write effort per Apply should not depend on r.
func roundBatch(r, n int) []rdf.Triple {
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, tr(
			fmt.Sprintf("http://o/r%d/s%d", r, i),
			"http://o/p",
			fmt.Sprintf("http://o/r%d/t%d", r, i)))
	}
	return ts
}

// TestApplyStaleView: only the newest view may Apply; a second Apply on
// an already-superseded view must fail with ErrStaleApply rather than
// corrupt the shared overlay.
func TestApplyStaleView(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	v2, err := v.Apply(roundBatch(0, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(roundBatch(1, 4), nil); err != ErrStaleApply {
		t.Fatalf("stale Apply: err = %v, want ErrStaleApply", err)
	}
	// The newest view still works, and the failed Apply left no trace.
	if v2.NumTriples() != 5+4 {
		t.Fatalf("NumTriples = %d, want 9", v2.NumTriples())
	}
	v3, err := v2.Apply(roundBatch(1, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v3.NumTriples() != 5+8 {
		t.Fatalf("NumTriples = %d, want 13", v3.NumTriples())
	}
}

// TestApplyCopyCostSteadyState: per-batch copy-on-write effort must be
// O(batch), independent of accumulated overlay size — the anti-sawtooth
// guarantee. After growing the overlay ~100x, an identical batch must
// not copy meaningfully more entries than the first one did.
func TestApplyCopyCostSteadyState(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	const batch = 16

	cost := func(r int) uint64 {
		e0, _ := v.CopyStats()
		nv, err := v.Apply(roundBatch(r, batch), nil)
		if err != nil {
			t.Fatal(err)
		}
		v = nv
		e1, _ := v.CopyStats()
		return e1 - e0
	}

	early := cost(0)
	for r := 1; r < 100; r++ {
		cost(r)
	}
	late := cost(100)
	if early == 0 || late == 0 {
		t.Fatalf("copy stats not tracked: early=%d late=%d", early, late)
	}
	// Identical batches may differ a little (map-bucket layout), but a
	// 100x-larger overlay must not make a batch meaningfully costlier —
	// under the old deep-copy Apply, late/early was ~100x.
	if late > 4*early {
		t.Fatalf("Apply cost grew with overlay size: first batch copied %d entries, batch 101 copied %d", early, late)
	}
	if v.Size() < 100*batch {
		t.Fatalf("overlay did not grow as expected: size %d", v.Size())
	}
}

// BenchmarkApplySteadyState measures per-batch Apply cost as the overlay
// keeps growing — the number that had the O(overlay) sawtooth.
func BenchmarkApplySteadyState(b *testing.B) {
	g, ix := buildBase(b, baseData)
	v := NewView(g, ix)
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nv, err := v.Apply(roundBatch(i, batch), nil)
		if err != nil {
			b.Fatal(err)
		}
		v = nv
	}
}

package delta

import (
	"hash/maphash"
	"sync/atomic"
)

// swmap is a hash map for one serialized writer and many lock-free
// readers: the overlay's batch writer inserts and updates, concurrent
// View readers only load. It exists because the overlay write path is
// hot enough that sync.Map's per-store entry allocations and interface
// boxing dominate Apply profiles; swmap's typed entries cost one
// allocation per new key and none per value update.
//
// Publication safety: an entry is fully initialized before the atomic
// bucket store that makes it reachable, so a reader that can find an
// entry sees it whole. A resize builds a fresh table sharing the value
// pointers and swaps it in atomically; readers holding the old table
// keep a frozen-but-consistent picture, and any state published to them
// afterwards (a newer snapshot) happens-after the swap, so they load
// the new table before they could need anything newer.
//
// Writer caveat: an entry handle obtained from entry() is tied to the
// table it was found in — any insert into the same map may resize and
// strand it. Callers update through a handle only with no intervening
// insert on the same map.
type swmap[K comparable, V any] struct {
	seed  maphash.Seed
	table atomic.Pointer[swtable[K, V]]
	n     int // live keys; writer-owned
}

type swtable[K comparable, V any] struct {
	buckets []atomic.Pointer[swentry[K, V]]
	mask    uint64
}

type swentry[K comparable, V any] struct {
	key  K
	val  atomic.Pointer[V]
	next *swentry[K, V]
}

// load returns k's current value pointer, or nil when absent.
func (m *swmap[K, V]) load(k K) *V {
	t := m.table.Load()
	if t == nil {
		return nil
	}
	for e := t.buckets[maphash.Comparable(m.seed, k)&t.mask].Load(); e != nil; e = e.next {
		if e.key == k {
			return e.val.Load()
		}
	}
	return nil
}

// entry returns k's entry for an in-place value update, or nil when
// absent (writer only; see the handle caveat above).
func (m *swmap[K, V]) entry(k K) *swentry[K, V] {
	t := m.table.Load()
	if t == nil {
		return nil
	}
	for e := t.buckets[maphash.Comparable(m.seed, k)&t.mask].Load(); e != nil; e = e.next {
		if e.key == k {
			return e
		}
	}
	return nil
}

// store inserts or updates k (writer only).
func (m *swmap[K, V]) store(k K, v *V) {
	if e := m.entry(k); e != nil {
		e.val.Store(v)
		return
	}
	m.insert(k, v)
}

// insert adds a key the writer knows is absent.
func (m *swmap[K, V]) insert(k K, v *V) {
	t := m.table.Load()
	if t == nil || m.n >= len(t.buckets)*3/4 {
		t = m.grow(t)
	}
	e := &swentry[K, V]{key: k}
	e.val.Store(v)
	b := &t.buckets[maphash.Comparable(m.seed, k)&t.mask]
	e.next = b.Load()
	b.Store(e)
	m.n++
}

func (m *swmap[K, V]) grow(old *swtable[K, V]) *swtable[K, V] {
	size := 8
	if old == nil {
		m.seed = maphash.MakeSeed()
	} else {
		size = len(old.buckets) * 2
	}
	nt := &swtable[K, V]{
		buckets: make([]atomic.Pointer[swentry[K, V]], size),
		mask:    uint64(size - 1),
	}
	if old != nil {
		for i := range old.buckets {
			for e := old.buckets[i].Load(); e != nil; e = e.next {
				ne := &swentry[K, V]{key: e.key}
				ne.val.Store(e.val.Load())
				b := &nt.buckets[maphash.Comparable(m.seed, e.key)&nt.mask]
				ne.next = b.Load()
				b.Store(ne)
			}
		}
	}
	m.table.Store(nt)
	return nt
}

// rangeAll calls f for every key until f returns false. Safe for
// readers concurrent with the writer: the iteration sees some table
// version; keys inserted later may be missed, exactly like sync.Map.
func (m *swmap[K, V]) rangeAll(f func(K, *V) bool) {
	t := m.table.Load()
	if t == nil {
		return
	}
	for i := range t.buckets {
		for e := t.buckets[i].Load(); e != nil; e = e.next {
			if !f(e.key, e.val.Load()) {
				return
			}
		}
	}
}

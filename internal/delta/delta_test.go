package delta

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
)

func buildBase(t testing.TB, src string) (*multigraph.Graph, *index.Index) {
	t.Helper()
	triples, err := rdf.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return g, index.Build(g)
}

const baseData = `
<http://x/a> <http://p/knows> <http://x/b> .
<http://x/b> <http://p/knows> <http://x/c> .
<http://x/a> <http://p/likes> <http://x/c> .
<http://x/a> <http://p/name> "ada" .
<http://x/b> <http://p/name> "bob" .
`

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}
func trLit(s, p, lit string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: rdf.NewLiteral(lit)}
}

func TestViewAddAndDeleteEdges(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	if !v.Empty() || v.NumTriples() != 5 {
		t.Fatalf("empty view: empty=%v triples=%d", v.Empty(), v.NumTriples())
	}

	a, _ := v.LookupVertex("http://x/a")
	b, _ := v.LookupVertex("http://x/b")
	c, _ := v.LookupVertex("http://x/c")
	knows, _ := v.LookupEdgeType("http://p/knows")

	// Add a new edge a→c with the existing type, delete a→b.
	v2, err := v.Apply(
		[]rdf.Triple{tr("http://x/a", "http://p/knows", "http://x/c")},
		[]rdf.Triple{tr("http://x/a", "http://p/knows", "http://x/b")})
	if err != nil {
		t.Fatal(err)
	}
	// Old view unchanged (snapshot isolation).
	if !v.HasEdgeTypes(a, b, []dict.EdgeType{knows}) {
		t.Error("old view lost a→b")
	}
	if v.HasEdgeTypes(a, c, []dict.EdgeType{knows}) {
		t.Error("old view gained a→c knows")
	}
	// New view reflects the batch.
	if v2.HasEdgeTypes(a, b, []dict.EdgeType{knows}) {
		t.Error("new view kept deleted a→b")
	}
	if !v2.HasEdgeTypes(a, c, []dict.EdgeType{knows}) {
		t.Error("new view missing a→c")
	}
	if v2.NumTriples() != 5 {
		t.Errorf("triples = %d, want 5", v2.NumTriples())
	}
	if v2.Adds() != 1 || v2.Tombstones() != 1 {
		t.Errorf("adds/dels = %d/%d, want 1/1", v2.Adds(), v2.Tombstones())
	}

	// Neighbor probes reflect the overlay on both sides.
	nb := v2.Neighbors(a, index.Outgoing, []dict.EdgeType{knows})
	if !reflect.DeepEqual(nb, []dict.VertexID{c}) {
		t.Errorf("a knows-out = %v, want [%v]", nb, c)
	}
	nb = v2.Neighbors(b, index.Incoming, []dict.EdgeType{knows})
	if len(nb) != 0 {
		t.Errorf("b knows-in = %v, want empty", nb)
	}
	nb = v2.Neighbors(c, index.Incoming, []dict.EdgeType{knows})
	if !reflect.DeepEqual(nb, []dict.VertexID{a, b}) {
		t.Errorf("c knows-in = %v, want [a b]", nb)
	}
}

func TestViewReAddCancelsTombstone(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	del := tr("http://x/a", "http://p/knows", "http://x/b")
	v2, err := v.Apply(nil, []rdf.Triple{del})
	if err != nil {
		t.Fatal(err)
	}
	v3, err := v2.Apply([]rdf.Triple{del}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Empty() {
		t.Errorf("delete+re-add should cancel: size=%d", v3.Size())
	}
	a, _ := v3.LookupVertex("http://x/a")
	b, _ := v3.LookupVertex("http://x/b")
	knows, _ := v3.LookupEdgeType("http://p/knows")
	if !v3.HasEdgeTypes(a, b, []dict.EdgeType{knows}) {
		t.Error("edge missing after re-add")
	}
}

func TestViewNewVerticesAndAttrs(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v, err := NewView(g, ix).Apply([]rdf.Triple{
		tr("http://x/new1", "http://p/knows", "http://x/new2"),
		trLit("http://x/new1", "http://p/name", "nova"),
		trLit("http://x/a", "http://p/age", "41"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVertices() != g.NumVertices()+2 {
		t.Errorf("vertices = %d, want %d", v.NumVertices(), g.NumVertices()+2)
	}
	n1, ok := v.LookupVertex("http://x/new1")
	if !ok {
		t.Fatal("new vertex not resolvable")
	}
	if v.VertexIRI(n1) != "http://x/new1" {
		t.Errorf("VertexIRI round trip = %q", v.VertexIRI(n1))
	}
	// New attribute reachable through the overlay A index.
	aid, ok := v.LookupAttr("http://p/name", rdf.NewLiteral("nova"))
	if !ok {
		t.Fatal("new attr not resolvable")
	}
	if got := v.AttrCandidates([]dict.AttrID{aid}); !reflect.DeepEqual(got, []dict.VertexID{n1}) {
		t.Errorf("AttrCandidates(nova) = %v, want [%v]", got, n1)
	}
	// Existing attr tuple on a new subject vertex.
	aAda, _ := v.LookupAttr("http://p/name", rdf.NewLiteral("ada"))
	a, _ := v.LookupVertex("http://x/a")
	if got := v.AttrCandidates([]dict.AttrID{aAda}); !reflect.DeepEqual(got, []dict.VertexID{a}) {
		t.Errorf("AttrCandidates(ada) = %v", got)
	}
	if !v.HasAttrs(n1, []dict.AttrID{aid}) {
		t.Error("HasAttrs(new1, nova) = false")
	}
	// Deleting the attr tombstones it out of the inverted list.
	v2, err := v.Apply(nil, []rdf.Triple{trLit("http://x/a", "http://p/name", "ada")})
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.AttrCandidates([]dict.AttrID{aAda}); len(got) != 0 {
		t.Errorf("AttrCandidates(ada) after delete = %v, want empty", got)
	}
	if v2.HasAttrs(a, []dict.AttrID{aAda}) {
		t.Error("HasAttrs(a, ada) survived delete")
	}
}

func TestViewSignatureCandidatesIncludeTouched(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v, err := NewView(g, ix).Apply([]rdf.Triple{
		tr("http://x/new1", "http://p/knows", "http://x/c"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := v.LookupVertex("http://x/new1")
	knows, _ := v.LookupEdgeType("http://p/knows")
	syn := multigraph.SynopsisFromMultiEdges(nil, [][]dict.EdgeType{{knows}}).AsQuery()
	cands := v.SignatureCandidates(syn)
	found := false
	for _, c := range cands {
		if c == n1 {
			found = true
		}
	}
	if !found {
		t.Errorf("signature candidates %v missing overlay vertex %v", cands, n1)
	}
}

func TestViewNoOpMutations(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	v2, err := v.Apply(
		[]rdf.Triple{tr("http://x/a", "http://p/knows", "http://x/b")}, // already present
		[]rdf.Triple{tr("http://x/a", "http://p/zzz", "http://x/b")})   // absent predicate
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Empty() || v2.NumTriples() != v.NumTriples() {
		t.Errorf("no-op batch changed view: size=%d triples=%d", v2.Size(), v2.NumTriples())
	}
	if _, err := v.Apply([]rdf.Triple{{S: rdf.NewLiteral("x"), P: iri("http://p"), O: iri("http://o")}}, nil); err == nil {
		t.Error("literal subject accepted")
	}
}

// TestViewMatchesRebuild is the semantic property test: after a random
// add/delete sequence, every probe of the overlay view must agree with a
// graph rebuilt from scratch over the merged triple set.
func TestViewMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uri := func(kind string, n int) string { return fmt.Sprintf("http://%s/%d", kind, n) }
	for trial := 0; trial < 30; trial++ {
		// Random base, deduplicated (Graph.NumTriples counts source
		// statements, so duplicates would skew the merged-count check).
		var baseTriples []rdf.Triple
		seen := make(map[string]bool)
		for i := 0; i < 30; i++ {
			var bt rdf.Triple
			if rng.Intn(4) == 0 {
				bt = trLit(uri("v", rng.Intn(8)), uri("p", rng.Intn(3)), fmt.Sprint(rng.Intn(4)))
			} else {
				bt = tr(uri("v", rng.Intn(8)), uri("p", rng.Intn(3)), uri("v", rng.Intn(8)))
			}
			if !seen[bt.String()] {
				seen[bt.String()] = true
				baseTriples = append(baseTriples, bt)
			}
		}
		g, err := multigraph.FromTriples(baseTriples)
		if err != nil {
			t.Fatal(err)
		}
		v := NewView(g, index.Build(g))

		// Random mutation batches over a slightly larger universe (so new
		// vertices/predicates/attrs appear).
		merged := make(map[string]rdf.Triple)
		for _, bt := range baseTriples {
			merged[bt.String()] = bt
		}
		for b := 0; b < 5; b++ {
			var adds, dels []rdf.Triple
			for i := 0; i < 10; i++ {
				var tr3 rdf.Triple
				if rng.Intn(4) == 0 {
					tr3 = trLit(uri("v", rng.Intn(10)), uri("p", rng.Intn(4)), fmt.Sprint(rng.Intn(5)))
				} else {
					tr3 = tr(uri("v", rng.Intn(10)), uri("p", rng.Intn(4)), uri("v", rng.Intn(10)))
				}
				if rng.Intn(2) == 0 {
					adds = append(adds, tr3)
				} else {
					dels = append(dels, tr3)
				}
			}
			if v, err = v.Apply(adds, dels); err != nil {
				t.Fatal(err)
			}
			for _, d := range dels {
				delete(merged, d.String())
			}
			for _, a := range adds {
				merged[a.String()] = a
			}
		}

		// The enumerated triple stream must equal the merged set.
		got := make(map[string]bool)
		v.Triples(func(tr3 rdf.Triple) bool {
			if got[tr3.String()] {
				t.Fatalf("trial %d: duplicate triple %v", trial, tr3)
			}
			got[tr3.String()] = true
			return true
		})
		if len(got) != len(merged) {
			t.Fatalf("trial %d: enumerated %d triples, want %d", trial, len(got), len(merged))
		}
		for k := range merged {
			if !got[k] {
				t.Fatalf("trial %d: missing triple %s", trial, k)
			}
		}
		if v.NumTriples() != len(merged) {
			t.Fatalf("trial %d: NumTriples = %d, want %d", trial, v.NumTriples(), len(merged))
		}

		// Rebuild from scratch and compare probes vertex by vertex.
		var rb []rdf.Triple
		for _, tr3 := range merged {
			rb = append(rb, tr3)
		}
		g2, err := multigraph.FromTriples(rb)
		if err != nil {
			t.Fatal(err)
		}
		ix2 := index.Build(g2)
		rd2 := index.NewReader(g2, ix2)
		for vi := 0; vi < g2.NumVertices(); vi++ {
			iriS := g2.Dicts.VertexIRI(dict.VertexID(vi))
			ov, ok := v.LookupVertex(iriS)
			if !ok {
				t.Fatalf("trial %d: overlay missing vertex %s", trial, iriS)
			}
			for ti := 0; ti < g2.NumEdgeTypes(); ti++ {
				pIRI := g2.Dicts.EdgeTypeIRI(dict.EdgeType(ti))
				ot, ok := v.LookupEdgeType(pIRI)
				if !ok {
					t.Fatalf("trial %d: overlay missing predicate %s", trial, pIRI)
				}
				for _, dir := range []index.Direction{index.Incoming, index.Outgoing} {
					// Identifier assignment differs between overlay and rebuild,
					// so compare the probe results as sorted IRI sets.
					var wantIRIs, gotIRIs []string
					for _, w := range rd2.Neighbors(dict.VertexID(vi), dir, []dict.EdgeType{dict.EdgeType(ti)}) {
						wantIRIs = append(wantIRIs, g2.Dicts.VertexIRI(w))
					}
					for _, w := range v.Neighbors(ov, dir, []dict.EdgeType{ot}) {
						gotIRIs = append(gotIRIs, v.VertexIRI(w))
					}
					sort.Strings(wantIRIs)
					sort.Strings(gotIRIs)
					if !reflect.DeepEqual(wantIRIs, gotIRIs) {
						t.Fatalf("trial %d: Neighbors(%s,%v,%s) = %v, want %v",
							trial, iriS, dir, pIRI, gotIRIs, wantIRIs)
					}
				}
			}
		}
		// Attribute lists agree.
		for ai := 0; ai < g2.NumAttrs(); ai++ {
			at := g2.Dicts.Attr(dict.AttrID(ai))
			oa, ok := v.LookupAttr(at.Predicate, at.Literal())
			if !ok {
				t.Fatalf("trial %d: overlay missing attr %v", trial, at)
			}
			want := ix2.A.Vertices(dict.AttrID(ai))
			gotA := v.AttrCandidates([]dict.AttrID{oa})
			if len(want) != len(gotA) {
				t.Fatalf("trial %d: attr %v lists differ: %d vs %d", trial, at, len(gotA), len(want))
			}
		}
	}
}

// TestCardinalitiesBlendOverlay: planner statistics over a view must
// reflect overlay additions (including edge types and vertices the base
// has never seen) and tombstones, without mutating the base statistics.
func TestCardinalitiesBlendOverlay(t *testing.T) {
	g, ix := buildBase(t, baseData)
	v := NewView(g, ix)
	if v.Cardinalities() != ix.Card {
		t.Fatal("empty view must expose the base statistics unchanged")
	}
	baseKnows, _ := v.LookupEdgeType("http://p/knows")
	baseEdges := ix.Card.Edges[baseKnows]
	baseOut := ix.Card.OutVertices[baseKnows]
	baseNumV := ix.Card.NumVertices

	// Add: a fan of 3 edges with a brand-new type from a brand-new hub,
	// plus one more `knows` edge out of a (a already has outgoing knows).
	// Delete: b's only outgoing knows edge (b→c).
	v2, err := v.Apply(
		[]rdf.Triple{
			tr("http://x/hub", "http://p/follows", "http://x/a"),
			tr("http://x/hub", "http://p/follows", "http://x/b"),
			tr("http://x/hub", "http://p/follows", "http://x/c"),
			tr("http://x/a", "http://p/knows", "http://x/hub"),
		},
		[]rdf.Triple{tr("http://x/b", "http://p/knows", "http://x/c")})
	if err != nil {
		t.Fatal(err)
	}
	card := v2.Cardinalities()
	if card == nil {
		t.Fatal("nil blended cardinalities")
	}
	if card == ix.Card {
		t.Fatal("overlay view returned the base statistics object")
	}
	follows, ok := v2.LookupEdgeType("http://p/follows")
	if !ok {
		t.Fatal("overlay edge type not resolvable")
	}
	if got := card.Edges[follows]; got != 3 {
		t.Errorf("Edges[follows] = %d, want 3", got)
	}
	if got := card.VerticesWith(index.Outgoing, follows); got != 1 {
		t.Errorf("OutVertices[follows] = %d, want 1 (the hub)", got)
	}
	if got := card.VerticesWith(index.Incoming, follows); got != 3 {
		t.Errorf("InVertices[follows] = %d, want 3", got)
	}
	// knows: +1 edge (a→hub), −1 edge (b→c tombstone). a already had
	// outgoing knows, so OutVertices must not double-count it.
	if got, want := card.Edges[baseKnows], baseEdges; got != want {
		t.Errorf("Edges[knows] = %d, want %d", got, want)
	}
	if got, want := card.OutVertices[baseKnows], baseOut; got != want {
		t.Errorf("OutVertices[knows] = %d, want %d", got, want)
	}
	// hub gained incoming knows (a→hub): one more incoming-knows vertex.
	if got, want := card.VerticesWith(index.Incoming, baseKnows), ix.Card.InVertices[baseKnows]+1; got != want {
		t.Errorf("InVertices[knows] = %d, want %d", got, want)
	}
	if got, want := card.NumVertices, baseNumV+1; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	// The base statistics stayed untouched, and the blend is cached.
	if ix.Card.Edges[baseKnows] != baseEdges || ix.Card.NumVertices != baseNumV {
		t.Error("base Cardinalities mutated by the blend")
	}
	if int(follows) < len(ix.Card.Edges) {
		t.Error("base Cardinalities grew an overlay edge type")
	}
	if v2.Cardinalities() != card {
		t.Error("blend not cached across calls")
	}
	// Fanout over the blend is usable by the planner: 3 follows edges
	// from one source vertex.
	if got := card.Fanout(index.Outgoing, follows); got != 3 {
		t.Errorf("Fanout(out, follows) = %v, want 3", got)
	}
}

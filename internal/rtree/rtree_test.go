package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randPoint(rng *rand.Rand) Point {
	var p Point
	for d := 0; d < Dims; d++ {
		p[d] = int32(rng.Intn(41) - 20)
	}
	return p
}

// linearDominating is the reference implementation: a full scan.
func linearDominating(points []Point, q Point) []uint32 {
	var out []uint32
	for i, p := range points {
		ok := true
		for d := 0; d < Dims; d++ {
			if p[d] < q[d] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, uint32(i))
		}
	}
	return out
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.CollectDominating(Point{}); got != nil {
		t.Errorf("search on empty tree = %v", got)
	}
	if d := tr.Depth(); d != 0 {
		t.Errorf("Depth = %d, want 0", d)
	}
	bt := BulkLoad(nil, nil)
	if bt.Len() != 0 || bt.CollectDominating(Point{}) != nil {
		t.Error("empty bulk-loaded tree misbehaves")
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New()
	p := Point{1, 2, 3, 4, 5, 6, 7, 8}
	tr.Insert(p, 42)
	if got := tr.CollectDominating(p); !equalIDs(got, []uint32{42}) {
		t.Errorf("exact query = %v", got)
	}
	if got := tr.CollectDominating(Point{0, 0, 0, 0, 0, 0, 0, 0}); !equalIDs(got, []uint32{42}) {
		t.Errorf("origin query = %v", got)
	}
	higher := p
	higher[3]++
	if got := tr.CollectDominating(higher); len(got) != 0 {
		t.Errorf("strictly-above query = %v, want empty", got)
	}
}

func TestInsertMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(800)
		points := make([]Point, n)
		tr := New()
		for i := range points {
			points[i] = randPoint(rng)
			tr.Insert(points[i], uint32(i))
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 50; q++ {
			query := randPoint(rng)
			want := sortedIDs(linearDominating(points, query))
			got := sortedIDs(tr.CollectDominating(query))
			if !equalIDs(got, want) {
				t.Fatalf("trial %d query %v: got %v, want %v", trial, query, got, want)
			}
		}
	}
}

func TestBulkLoadMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(2000)
		points := make([]Point, n)
		ids := make([]uint32, n)
		for i := range points {
			points[i] = randPoint(rng)
			ids[i] = uint32(i)
		}
		tr := BulkLoad(points, ids)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 50; q++ {
			query := randPoint(rng)
			want := sortedIDs(linearDominating(points, query))
			got := sortedIDs(tr.CollectDominating(query))
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BulkLoad with mismatched lengths did not panic")
		}
	}()
	BulkLoad(make([]Point, 2), make([]uint32, 3))
}

func TestEarlyTermination(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Point{}, uint32(i))
	}
	count := 0
	tr.SearchDominating(Point{}, func(id uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d entries, want early stop at 5", count)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New()
	p := Point{1, 1, 1, 1, 1, 1, 1, 1}
	for i := 0; i < 50; i++ {
		tr.Insert(p, uint32(i))
	}
	got := tr.CollectDominating(p)
	if len(got) != 50 {
		t.Errorf("got %d duplicates, want 50", len(got))
	}
}

func TestTreeGrowsInDepth(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.Insert(randPoint(rng), uint32(i))
	}
	if d := tr.Depth(); d < 3 {
		t.Errorf("Depth = %d after 5000 inserts, want ≥ 3", d)
	}
	// Every point remains findable via the origin-at-minimum query.
	minQ := Point{-20, -20, -20, -20, -20, -20, -20, -20}
	if got := tr.CollectDominating(minQ); len(got) != 5000 {
		t.Errorf("full-range query returned %d of 5000", len(got))
	}
}

// TestInsertEqualsBulkLoadProperty: both construction paths answer
// identically for arbitrary inputs.
func TestInsertEqualsBulkLoadProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		points := make([]Point, count)
		ids := make([]uint32, count)
		ins := New()
		for i := range points {
			points[i] = randPoint(rng)
			ids[i] = uint32(i)
			ins.Insert(points[i], ids[i])
		}
		bulk := BulkLoad(points, ids)
		for q := 0; q < 10; q++ {
			query := randPoint(rng)
			if !equalIDs(sortedIDs(ins.CollectDominating(query)), sortedIDs(bulk.CollectDominating(query))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package rtree implements an in-memory R-tree over fixed-dimension integer
// points, the storage structure the AMbER paper prescribes for the vertex
// signature index S (Section 4.2): every data-vertex synopsis spans an
// axes-parallel rectangle from the origin, and candidate retrieval is a
// containment (dominance) query.
//
// Two construction paths are provided: incremental insertion with Guttman's
// quadratic split, and a sort-tile-recursive (STR) bulk load used by the
// offline index build. Both produce trees answering the same queries; the
// benchmark harness uses the difference as an ablation.
package rtree

import "sort"

// Dims is the dimensionality of indexed points. The synopsis of the AMbER
// paper has eight fields (f1..f4 for incoming and outgoing edges).
const Dims = 8

// Point is one indexed point.
type Point [Dims]int32

// maxEntries and minEntries are the node capacity bounds (Guttman's M, m).
const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5
)

type entry struct {
	min, max Point // bounding box; for leaf entries min == max == the point
	child    *node // nil at leaves
	id       uint32
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree. The zero value is an empty tree ready for Insert.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len reports the number of stored points.
func (t *Tree) Len() int { return t.size }

// Insert adds point p with payload id.
func (t *Tree) Insert(p Point, id uint32) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	e := entry{min: p, max: p, id: id}
	if split := insert(t.root, e); split != nil {
		left := t.root
		le := boundingEntry(left)
		le.child = left
		se := boundingEntry(split)
		se.child = split
		t.root = &node{leaf: false, entries: []entry{le, se}}
	}
	t.size++
}

// insert places e below n, returning a new sibling when n overflowed and
// split.
func insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
	} else {
		idx := chooseSubtree(n, e)
		if split := insert(n.entries[idx].child, e); split != nil {
			se := boundingEntry(split)
			se.child = split
			n.entries = append(n.entries, se)
		}
		be := boundingEntry(n.entries[idx].child)
		n.entries[idx].min, n.entries[idx].max = be.min, be.max
	}
	if len(n.entries) > maxEntries {
		return splitNode(n)
	}
	return nil
}

// chooseSubtree picks the child whose box needs the least enlargement
// (ties: smallest area).
func chooseSubtree(n *node, e entry) int {
	best, bestIdx := -1.0, 0
	for i := range n.entries {
		enl := enlargement(n.entries[i].min, n.entries[i].max, e.min, e.max)
		if best < 0 || enl < best ||
			(enl == best && area(n.entries[i].min, n.entries[i].max) < area(n.entries[bestIdx].min, n.entries[bestIdx].max)) {
			best, bestIdx = enl, i
		}
	}
	return bestIdx
}

// boundingEntry computes the bounding box of all entries in n.
func boundingEntry(n *node) entry {
	e := entry{}
	e.min, e.max = n.entries[0].min, n.entries[0].max
	for _, c := range n.entries[1:] {
		for d := 0; d < Dims; d++ {
			if c.min[d] < e.min[d] {
				e.min[d] = c.min[d]
			}
			if c.max[d] > e.max[d] {
				e.max[d] = c.max[d]
			}
		}
	}
	return e
}

// splitNode performs Guttman's quadratic split in place, returning the new
// sibling node.
func splitNode(n *node) *node {
	ents := n.entries
	// Pick seeds: the pair wasting the most area if grouped together.
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			d := deadArea(ents[i], ents[j])
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := &node{leaf: n.leaf, entries: []entry{ents[s1]}}
	g2 := &node{leaf: n.leaf, entries: []entry{ents[s2]}}
	b1, b2 := ents[s1], ents[s2]
	rest := make([]entry, 0, len(ents)-2)
	for i, e := range ents {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining entries
		// to reach the minimum fill.
		if len(g1.entries)+len(rest) == minEntries {
			g1.entries = append(g1.entries, rest...)
			break
		}
		if len(g2.entries)+len(rest) == minEntries {
			g2.entries = append(g2.entries, rest...)
			break
		}
		// Otherwise assign the entry with the strongest group preference.
		bestIdx, bestDiff, toG1 := 0, -1.0, true
		for i, e := range rest {
			d1 := enlargement(b1.min, b1.max, e.min, e.max)
			d2 := enlargement(b2.min, b2.max, e.min, e.max)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, toG1 = diff, i, d1 < d2
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if toG1 {
			g1.entries = append(g1.entries, e)
			b1 = merge(b1, e)
		} else {
			g2.entries = append(g2.entries, e)
			b2 = merge(b2, e)
		}
	}
	n.entries = g1.entries
	return g2
}

func merge(a, b entry) entry {
	for d := 0; d < Dims; d++ {
		if b.min[d] < a.min[d] {
			a.min[d] = b.min[d]
		}
		if b.max[d] > a.max[d] {
			a.max[d] = b.max[d]
		}
	}
	return a
}

func area(min, max Point) float64 {
	a := 1.0
	for d := 0; d < Dims; d++ {
		a *= float64(max[d]-min[d]) + 1
	}
	return a
}

func enlargement(min, max, emin, emax Point) float64 {
	grown := merge(entry{min: min, max: max}, entry{min: emin, max: emax})
	return area(grown.min, grown.max) - area(min, max)
}

func deadArea(a, b entry) float64 {
	m := merge(a, b)
	return area(m.min, m.max) - area(a.min, a.max) - area(b.min, b.max)
}

// SearchDominating visits every stored point p with p[d] ≥ q[d] for all
// dimensions, i.e. all synopses whose rectangle contains the query
// rectangle. Iteration stops early if fn returns false.
func (t *Tree) SearchDominating(q Point, fn func(id uint32) bool) {
	if t.root != nil {
		searchDom(t.root, q, fn)
	}
}

func searchDom(n *node, q Point, fn func(id uint32) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		// Prune subtrees whose box cannot reach q in some dimension.
		ok := true
		for d := 0; d < Dims; d++ {
			if e.max[d] < q[d] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if n.leaf {
			if !fn(e.id) {
				return false
			}
			continue
		}
		if !searchDom(e.child, q, fn) {
			return false
		}
	}
	return true
}

// CollectDominating returns all payloads dominating q, in unspecified order.
func (t *Tree) CollectDominating(q Point) []uint32 {
	var out []uint32
	t.SearchDominating(q, func(id uint32) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Depth reports the height of the tree (0 for empty), for diagnostics and
// tests.
func (t *Tree) Depth() int {
	d, n := 0, t.root
	for n != nil {
		d++
		if n.leaf || len(n.entries) == 0 {
			break
		}
		n = n.entries[0].child
	}
	return d
}

// BulkLoad builds a tree from parallel slices of points and ids using a
// sort-tile-recursive packing. It panics if the slice lengths differ.
func BulkLoad(points []Point, ids []uint32) *Tree {
	if len(points) != len(ids) {
		panic("rtree: BulkLoad slice length mismatch")
	}
	t := &Tree{size: len(points)}
	if len(points) == 0 {
		return t
	}
	leaves := make([]entry, len(points))
	for i, p := range points {
		leaves[i] = entry{min: p, max: p, id: ids[i]}
	}
	t.root = packLevel(leaves, true)
	return t
}

// packLevel recursively packs entries into nodes.
func packLevel(ents []entry, leaf bool) *node {
	if len(ents) <= maxEntries {
		return &node{leaf: leaf, entries: ents}
	}
	sort.Slice(ents, func(i, j int) bool { return less(ents[i], ents[j]) })
	nNodes := (len(ents) + maxEntries - 1) / maxEntries
	nodes := make([]entry, 0, nNodes)
	for start := 0; start < len(ents); start += maxEntries {
		end := start + maxEntries
		if end > len(ents) {
			end = len(ents)
		}
		chunk := make([]entry, end-start)
		copy(chunk, ents[start:end])
		child := &node{leaf: leaf, entries: chunk}
		be := boundingEntry(child)
		be.child = child
		nodes = append(nodes, be)
	}
	return packLevel(nodes, false)
}

// less orders entries lexicographically by box centre, giving STR-like
// locality across dimensions.
func less(a, b entry) bool {
	for d := 0; d < Dims; d++ {
		ca := int64(a.min[d]) + int64(a.max[d])
		cb := int64(b.min[d]) + int64(b.max[d])
		if ca != cb {
			return ca < cb
		}
	}
	return a.id < b.id
}

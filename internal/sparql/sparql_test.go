package sparql

import (
	"strings"
	"testing"
)

// paperQuery is the SPARQL query of the paper's Figure 2a.
const paperQuery = `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:livedIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:isMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacity "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1934" .
  ?X3 y:livedIn x:United_States .
}`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Patterns) != 13 {
		t.Fatalf("patterns = %d, want 13", len(q.Patterns))
	}
	if len(q.Select) != 7 {
		t.Errorf("select = %v, want 7 vars", q.Select)
	}
	if q.Star {
		t.Error("Star should be false")
	}
	// Pattern 0: ?X0 livedIn ?X1.
	p0 := q.Patterns[0]
	if p0.S.Kind != Var || p0.S.Value != "X0" {
		t.Errorf("p0.S = %v", p0.S)
	}
	if p0.P.Kind != IRI || p0.P.Value != "http://dbpedia.org/ontology/livedIn" {
		t.Errorf("p0.P = %v", p0.P)
	}
	// Pattern 9 object is a literal.
	if o := q.Patterns[9].O; o.Kind != Literal || o.Value != "90000" {
		t.Errorf("p9.O = %v", o)
	}
	// Pattern 12 object is a constant IRI.
	if o := q.Patterns[12].O; o.Kind != IRI || o.Value != "http://dbpedia.org/resource/United_States" {
		t.Errorf("p12.O = %v", o)
	}
	// All 7 variables occur.
	if vars := q.Variables(); len(vars) != 7 {
		t.Errorf("Variables = %v", vars)
	}
}

func TestSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s <http://y/p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Error("Star not set")
	}
	proj := q.Projection()
	if len(proj) != 2 || proj[0] != "s" || proj[1] != "o" {
		t.Errorf("Projection = %v", proj)
	}
}

func TestWhereKeywordOptional(t *testing.T) {
	q, err := Parse(`SELECT ?s { ?s <http://y/p> ?o }`)
	if err != nil {
		t.Fatalf("Parse without WHERE: %v", err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestTrailingDotOptional(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o . ?o <http://y/q> ?z }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Errorf("patterns = %d, want 2", len(q.Patterns))
	}
}

func TestSemicolonAndCommaAbbreviations(t *testing.T) {
	q, err := Parse(`
PREFIX y: <http://y/>
SELECT * WHERE {
  ?s y:p ?a , ?b ; y:q ?c ; y:r "lit" .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 4 {
		t.Fatalf("patterns = %d, want 4: %v", len(q.Patterns), q.Patterns)
	}
	for i, want := range []string{"p", "p", "q", "r"} {
		if got := q.Patterns[i].P.Value; got != "http://y/"+want {
			t.Errorf("pattern %d predicate = %q, want %q", i, got, want)
		}
	}
	if q.Patterns[1].O.Value != "b" || q.Patterns[1].S.Value != "s" {
		t.Errorf("comma pattern = %v", q.Patterns[1])
	}
}

func TestDanglingSemicolon(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s <http://y/p> ?o ; . }`)
	if err != nil {
		t.Fatalf("dangling ';': %v", err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestRDFTypeAbbreviation(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s a <http://x/Person> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("'a' predicate = %q", q.Patterns[0].P.Value)
	}
}

func TestLimit(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o . } LIMIT 42`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 42 {
		t.Errorf("Limit = %d", q.Limit)
	}
}

func TestDollarVariables(t *testing.T) {
	q, err := Parse(`SELECT $s WHERE { $s <http://y/p> $o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0] != "s" {
		t.Errorf("Select = %v", q.Select)
	}
}

func TestLiteralEscapesAndSuffixes(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE {
		?s <http://y/p> "a\"b\nc" .
		?s <http://y/q> "42"^^<http://www.w3.org/2001/XMLSchema#int> .
		?s <http://y/r> "chat"@fr .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Patterns[0].O.Value; got != "a\"b\nc" {
		t.Errorf("escape literal = %q", got)
	}
	if o := q.Patterns[1].O; o.Value != "42" || o.Datatype != "http://www.w3.org/2001/XMLSchema#int" {
		t.Errorf("datatype literal = %+v", o)
	}
	if o := q.Patterns[2].O; o.Value != "chat" || o.Lang != "fr" {
		t.Errorf("lang literal = %+v", o)
	}
}

func TestComments(t *testing.T) {
	q, err := Parse(`# leading comment
SELECT ?s WHERE { # inline
  ?s <http://y/p> ?o . # trailing
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"no select", `DESCRIBE <http://x/a>`, "expected SELECT or ASK"},
		{"empty select", `SELECT WHERE { ?s <http://y/p> ?o }`, "SELECT needs"},
		{"no brace", `SELECT ?s ?s <http://y/p> ?o }`, "expected '{'"},
		{"variable predicate", `SELECT ?s WHERE { ?s ?p ?o }`, "variable predicates"},
		{"literal subject", `SELECT ?s WHERE { "x" <http://y/p> ?o }`, "object position"},
		{"literal predicate", `SELECT ?s WHERE { ?s "x" ?o }`, "object position"},
		{"unterminated where", `SELECT ?s WHERE { ?s <http://y/p> ?o .`, "unterminated WHERE"},
		{"empty where", `SELECT ?s WHERE { }`, "empty WHERE"},
		{"unbound prefix", `SELECT ?s WHERE { ?s q:p ?o }`, "unbound prefix"},
		{"projection not in pattern", `SELECT ?zzz WHERE { ?s <http://y/p> ?o }`, "does not occur"},
		{"bad limit", `SELECT ?s WHERE { ?s <http://y/p> ?o } LIMIT x`, "expected integer"},
		{"trailing garbage", `SELECT ?s WHERE { ?s <http://y/p> ?o } GARBAGE`, "trailing"},
		{"unterminated literal", `SELECT ?s WHERE { ?s <http://y/p> "x }`, "unterminated literal"},
		{"unterminated iri", `SELECT ?s WHERE { ?s <http://y/p ?o }`, "unterminated IRI"},
		{"empty variable", `SELECT ? WHERE { ?s <http://y/p> ?o }`, "empty variable"},
		{"bad prefix decl", `PREFIX <http://y/> SELECT ?s WHERE { ?s <http://y/p> ?o }`, "expected 'prefix:'"},
		{"bad escape", `SELECT ?s WHERE { ?s <http://y/p> "a\qb" }`, "unknown escape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("SELECT ?s WHERE {\n ?s ?p ?o }\n")
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v\n%s", err, q.String())
	}
	if len(q2.Patterns) != len(q.Patterns) {
		t.Errorf("round trip patterns = %d, want %d", len(q2.Patterns), len(q.Patterns))
	}
	for i := range q.Patterns {
		if q.Patterns[i] != q2.Patterns[i] {
			t.Errorf("pattern %d: %v != %v", i, q.Patterns[i], q2.Patterns[i])
		}
	}
}

func TestTermAndKindStrings(t *testing.T) {
	if got := (Term{Kind: Var, Value: "x"}).String(); got != "?x" {
		t.Errorf("var term = %q", got)
	}
	if got := (Term{Kind: Literal, Value: "v"}).String(); got != `"v"` {
		t.Errorf("literal term = %q", got)
	}
	if got := (Term{Kind: IRI, Value: "http://x/a"}).String(); got != "<http://x/a>" {
		t.Errorf("iri term = %q", got)
	}
	for k, want := range map[TermKind]string{Var: "Var", IRI: "IRI", Literal: "Literal", TermKind(7): "TermKind(7)"} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestPrefixedNameWithTrailingDot(t *testing.T) {
	q, err := Parse(`PREFIX y: <http://y/> SELECT * WHERE { ?s y:p y:o. }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O.Value != "http://y/o" {
		t.Errorf("object = %q, dot not separated", q.Patterns[0].O.Value)
	}
}

package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseInsertData(t *testing.T) {
	u, err := ParseUpdate(`PREFIX y: <http://y/>
		INSERT DATA {
			<http://x/a> y:knows <http://x/b> ;
			             y:name "Ada" .
			<http://x/b> a <http://x/Person> .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 1 || u.Ops[0].Kind != UpInsertData {
		t.Fatalf("ops = %+v", u.Ops)
	}
	ts := u.Ops[0].Triples
	if len(ts) != 3 {
		t.Fatalf("triples = %d, want 3: %v", len(ts), ts)
	}
	if ts[0].P.Value != "http://y/knows" || ts[0].O.Value != "http://x/b" {
		t.Errorf("triple 0 = %v", ts[0])
	}
	if !ts[1].O.IsLiteral() || ts[1].O.Value != "Ada" {
		t.Errorf("triple 1 = %v", ts[1])
	}
	if ts[2].P.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("triple 2 `a` not expanded: %v", ts[2])
	}
}

func TestParseUpdateSequence(t *testing.T) {
	u, err := ParseUpdate(`
		DELETE DATA { <http://s> <http://p> <http://o> . } ;
		INSERT DATA { <http://s> <http://p> <http://o2> . } ;
		CLEAR DEFAULT ;
		LOAD SILENT <file:///tmp/data.nt> ;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []UpdateKind{UpDeleteData, UpInsertData, UpClear, UpLoad}
	if len(u.Ops) != len(kinds) {
		t.Fatalf("ops = %d, want %d", len(u.Ops), len(kinds))
	}
	for i, k := range kinds {
		if u.Ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, u.Ops[i].Kind, k)
		}
	}
	if u.Ops[3].Source != "/tmp/data.nt" || !u.Ops[3].Silent {
		t.Errorf("LOAD op = %+v", u.Ops[3])
	}
}

func TestParseUpdatePrefixBetweenOps(t *testing.T) {
	u, err := ParseUpdate(`PREFIX a: <http://a/>
		INSERT DATA { a:x a:p a:y . } ;
		PREFIX b: <http://b/>
		INSERT DATA { b:x b:p b:y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 2 {
		t.Fatalf("ops = %d", len(u.Ops))
	}
	if got := u.Ops[1].Triples[0].S.Value; got != "http://b/x" {
		t.Errorf("second op subject = %q", got)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{``, "empty update"},
		{`INSERT DATA { ?x <http://p> <http://o> . }`, "variable"},
		{`INSERT DATA { <http://s> <http://p> <http://o> . `, "unterminated"},
		{`INSERT { <http://s> <http://p> <http://o> . } WHERE { }`, "DATA"},
		{`DELETE WHERE { ?s ?p ?o }`, "outside the supported update fragment"},
		{`CLEAR GRAPH <http://g>`, "named graphs"},
		{`LOAD`, "document IRI"},
		{`SELECT ?x WHERE { ?x <http://p> <http://o> . }`, "expected INSERT DATA"},
		{`INSERT DATA { <http://s> <http://p> <http://o> . } garbage`, "';'"},
		{`INSERT DATA { <http://s> <http://p> <http://o> . FILTER (?x = <http://y>) }`, "FILTER"},
	}
	for _, c := range cases {
		_, err := ParseUpdate(c.src)
		if err == nil {
			t.Errorf("ParseUpdate(%q): no error, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseUpdate(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParseUpdateWithBasePrefixes(t *testing.T) {
	base := &rdf.PrefixMap{}
	base.Set("y", "http://y/")
	u, err := ParseUpdateWith(`INSERT DATA { y:a y:p y:b . }`, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Ops[0].Triples[0].S.Value; got != "http://y/a" {
		t.Errorf("subject = %q, want base-prefixed expansion", got)
	}
}

func TestParseUpdateLiteralObjects(t *testing.T) {
	u, err := ParseUpdate(`INSERT DATA { <http://s> <http://p> "v1", "v2" . }`)
	if err != nil {
		t.Fatal(err)
	}
	ts := u.Ops[0].Triples
	if len(ts) != 2 || !ts[0].O.IsLiteral() || !ts[1].O.IsLiteral() {
		t.Fatalf("triples = %v", ts)
	}
}

package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL SELECT query.
func Parse(src string) (*Query, error) {
	return ParseWith(src, nil)
}

// ParseWith parses a query with pre-bound prefixes (copied, not mutated);
// PREFIX declarations in the text override them.
func ParseWith(src string, base *rdf.PrefixMap) (*Query, error) {
	prefixes := &rdf.PrefixMap{}
	if base != nil {
		prefixes = base.Clone()
	}
	p := &parser{lex: newLexer(src), q: &Query{Prefixes: prefixes}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.q, nil
}

type parser struct {
	lex    *lexer
	q      *Query
	tok    token
	peeked bool
}

func (p *parser) next() (token, error) {
	if p.peeked {
		p.peeked = false
		return p.tok, nil
	}
	var err error
	p.tok, err = p.lex.next()
	return p.tok, err
}

func (p *parser) peek() (token, error) {
	if !p.peeked {
		var err error
		p.tok, err = p.lex.next()
		if err != nil {
			return p.tok, err
		}
		p.peeked = true
	}
	return p.tok, nil
}

func (p *parser) errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) run() error {
	// Prologue: PREFIX declarations.
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if !keywordIs(t, "PREFIX") {
			break
		}
		p.peeked = false
		if err := p.parsePrefix(); err != nil {
			return err
		}
	}
	// SELECT or ASK clause.
	t, err := p.next()
	if err != nil {
		return err
	}
	switch {
	case keywordIs(t, "ASK"):
		p.q.Ask = true
	case keywordIs(t, "SELECT"):
		if t, err = p.peek(); err != nil {
			return err
		}
		if keywordIs(t, "DISTINCT") {
			p.peeked = false
			p.q.Distinct = true
		}
		if err := p.parseSelectList(); err != nil {
			return err
		}
	default:
		return p.errAt(t, "expected SELECT or ASK, found %s", describe(t))
	}
	// WHERE clause.
	t, err = p.next()
	if err != nil {
		return err
	}
	if keywordIs(t, "WHERE") {
		t, err = p.next()
		if err != nil {
			return err
		}
	}
	if t.kind != tokLBrace {
		return p.errAt(t, "expected '{', found %s", describe(t))
	}
	if err := p.parseWhereBody(); err != nil {
		return err
	}
	// Solution modifiers: LIMIT and OFFSET, in either order.
	for {
		t, err = p.next()
		if err != nil {
			return err
		}
		var dst *int
		switch {
		case keywordIs(t, "LIMIT"):
			dst = &p.q.Limit
		case keywordIs(t, "OFFSET"):
			dst = &p.q.Offset
		default:
			goto done
		}
		kw := t.text
		t, err = p.next()
		if err != nil {
			return err
		}
		if t.kind != tokInt {
			return p.errAt(t, "expected integer after %s, found %s", kw, describe(t))
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return p.errAt(t, "bad %s value %q", kw, t.text)
		}
		*dst = n
	}
done:
	if t.kind != tokEOF {
		return p.errAt(t, "unexpected trailing %s", describe(t))
	}
	if len(p.q.Patterns) == 0 && len(p.q.UnionBranches) == 0 {
		return p.errAt(t, "empty WHERE clause")
	}
	if err := p.checkProjection(); err != nil {
		return err
	}
	return p.checkFilters()
}

// parseWhereBody parses the group after WHERE's '{': either a plain BGP
// with optional FILTERs, or a `{ BGP } UNION { BGP } …` alternation
// (FILTERs may follow the alternation and apply to every branch).
func (p *parser) parseWhereBody() error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind != tokLBrace {
		return p.parsePatterns()
	}
	// UNION alternation.
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind != tokLBrace {
			return p.errAt(t, "expected '{' to open UNION branch, found %s", describe(t))
		}
		save := p.q.Patterns
		p.q.Patterns = nil
		if err := p.parsePatterns(); err != nil {
			return err
		}
		branch := p.q.Patterns
		p.q.Patterns = save
		if len(branch) == 0 {
			return p.errAt(t, "empty UNION branch")
		}
		p.q.UnionBranches = append(p.q.UnionBranches, branch)
		t, err = p.peek()
		if err != nil {
			return err
		}
		if keywordIs(t, "UNION") {
			p.peeked = false
			continue
		}
		break
	}
	// Trailing FILTERs, then the closing brace of the WHERE group.
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if keywordIs(t, "FILTER") {
			p.peeked = false
			if err := p.parseFilter(); err != nil {
				return err
			}
			continue
		}
		if t.kind == tokRBrace {
			p.peeked = false
			p.q.Patterns = p.q.UnionBranches[0]
			return nil
		}
		return p.errAt(t, "expected UNION, FILTER or '}', found %s", describe(t))
	}
}

func (p *parser) parsePrefix() error {
	name, err := p.next()
	if err != nil {
		return err
	}
	if name.kind != tokIdent || !strings.HasSuffix(name.text, ":") {
		return p.errAt(name, "expected 'prefix:' after PREFIX, found %s", describe(name))
	}
	iri, err := p.next()
	if err != nil {
		return err
	}
	if iri.kind != tokIRIRef {
		return p.errAt(iri, "expected IRI after prefix name, found %s", describe(iri))
	}
	p.q.Prefixes.Set(strings.TrimSuffix(name.text, ":"), iri.text)
	return nil
}

func (p *parser) parseSelectList() error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind == tokStar {
		p.peeked = false
		p.q.Star = true
		return nil
	}
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind != tokVar {
			break
		}
		p.peeked = false
		p.q.Select = append(p.q.Select, t.text)
	}
	if !p.q.Star && len(p.q.Select) == 0 {
		return p.errAt(t, "SELECT needs '*' or at least one variable")
	}
	return nil
}

// parsePatterns parses the basic graph pattern until '}'.
func (p *parser) parsePatterns() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == tokRBrace {
			p.peeked = false
			return nil
		}
		if t.kind == tokEOF {
			return p.errAt(t, "unterminated WHERE clause, expected '}'")
		}
		if keywordIs(t, "FILTER") {
			p.peeked = false
			if err := p.parseFilter(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTriplesSameSubject(); err != nil {
			return err
		}
	}
}

// parseFilter parses the supported FILTER forms:
//
//	FILTER ( ?x = term )   FILTER ( ?x != term )
//	FILTER regex( ?x, "substring" )
//	FILTER strstarts( str(?x), "prefix" )
func (p *parser) parseFilter() error {
	t, err := p.next()
	if err != nil {
		return err
	}
	switch {
	case t.kind == tokLParen:
		v, err := p.expect(tokVar, "variable on the left of a FILTER comparison")
		if err != nil {
			return err
		}
		opTok, err := p.next()
		if err != nil {
			return err
		}
		var op FilterOp
		switch opTok.kind {
		case tokEq:
			op = FilterEq
		case tokNe:
			op = FilterNe
		default:
			return p.errAt(opTok, "expected '=' or '!=', found %s", describe(opTok))
		}
		rhs, err := p.parseTerm(posObject)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		p.q.Filters = append(p.q.Filters, Filter{Op: op, LHS: v.text, RHS: rhs})
		return nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "regex"):
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return err
		}
		v, err := p.expect(tokVar, "variable as regex subject")
		if err != nil {
			return err
		}
		if tk, err := p.peek(); err != nil {
			return err
		} else if tk.kind == tokComma {
			p.peeked = false
		}
		pat, err := p.filterArg("pattern literal or variable")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		p.q.Filters = append(p.q.Filters, Filter{Op: FilterRegex, LHS: v.text, RHS: pat})
		return nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "strstarts"):
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return err
		}
		// Accept both strstarts(?x, …) and strstarts(str(?x), …).
		tk, err := p.peek()
		if err != nil {
			return err
		}
		var v token
		if tk.kind == tokIdent && strings.EqualFold(tk.text, "str") {
			p.peeked = false
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return err
			}
			if v, err = p.expect(tokVar, "variable inside str()"); err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return err
			}
		} else if v, err = p.expect(tokVar, "variable as strstarts subject"); err != nil {
			return err
		}
		if tk, err := p.peek(); err != nil {
			return err
		} else if tk.kind == tokComma {
			p.peeked = false
		}
		pre, err := p.filterArg("prefix literal or variable")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		p.q.Filters = append(p.q.Filters, Filter{Op: FilterStrStarts, LHS: v.text, RHS: pre})
		return nil
	default:
		return p.errAt(t, "unsupported FILTER form starting with %s", describe(t))
	}
}

// filterArg parses a literal or variable argument of a filter function.
func (p *parser) filterArg(what string) (Term, error) {
	t, err := p.next()
	if err != nil {
		return Term{}, err
	}
	switch t.kind {
	case tokLiteral:
		return p.literalTerm(t)
	case tokVar:
		return Term{Kind: Var, Value: t.text}, nil
	default:
		return Term{}, p.errAt(t, "expected %s, found %s", what, describe(t))
	}
}

// literalTerm builds a typed literal pattern term from a literal token,
// expanding a prefixed datatype name and normalizing explicit xsd:string
// to the plain form (per RDF 1.1 both denote the same term).
func (p *parser) literalTerm(t token) (Term, error) {
	term := Term{Kind: Literal, Value: t.text, Lang: t.lang}
	if t.dtRaw != "" {
		dt := t.dtRaw
		if t.dtPrefixed {
			var err error
			if dt, err = p.q.Prefixes.Expand(t.dtRaw); err != nil {
				return Term{}, p.errAt(t, "%v", err)
			}
		}
		if dt != rdf.XSDString {
			term.Datatype = dt
		}
	}
	return term, nil
}

// expect consumes the next token, requiring the given kind.
func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if t.kind != kind {
		return t, p.errAt(t, "expected %s, found %s", what, describe(t))
	}
	return t, nil
}

// checkFilters validates that filter variables occur in the patterns.
func (p *parser) checkFilters() error {
	have := make(map[string]bool)
	for _, v := range p.q.Variables() {
		have[v] = true
	}
	for _, f := range p.q.Filters {
		if !have[f.LHS] {
			return &Error{Line: 1, Col: 1, Msg: fmt.Sprintf("FILTER variable ?%s does not occur in WHERE clause", f.LHS)}
		}
		if f.RHS.Kind == Var && !have[f.RHS.Value] {
			return &Error{Line: 1, Col: 1, Msg: fmt.Sprintf("FILTER variable ?%s does not occur in WHERE clause", f.RHS.Value)}
		}
	}
	return nil
}

// parseTriplesSameSubject parses `subject predicate object (',' object)*
// (';' predicate object ...)* '.'?`.
func (p *parser) parseTriplesSameSubject() error {
	s, err := p.parseTerm(posSubject)
	if err != nil {
		return err
	}
	for {
		pr, err := p.parseTerm(posPredicate)
		if err != nil {
			return err
		}
		for {
			o, err := p.parseTerm(posObject)
			if err != nil {
				return err
			}
			p.q.Patterns = append(p.q.Patterns, TriplePattern{S: s, P: pr, O: o})
			t, err := p.peek()
			if err != nil {
				return err
			}
			if t.kind == tokComma {
				p.peeked = false
				continue
			}
			break
		}
		t, err := p.peek()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokSemi:
			p.peeked = false
			// Allow a dangling ';' before '.' or '}' as real SPARQL does.
			nt, err := p.peek()
			if err != nil {
				return err
			}
			if nt.kind == tokDot || nt.kind == tokRBrace {
				break
			}
			continue
		case tokDot:
		case tokRBrace:
			return nil
		default:
			return p.errAt(t, "expected '.', ';', ',' or '}', found %s", describe(t))
		}
		break
	}
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind == tokDot {
		p.peeked = false
	}
	return nil
}

type termPos uint8

const (
	posSubject termPos = iota
	posPredicate
	posObject
)

func (p *parser) parseTerm(pos termPos) (Term, error) {
	t, err := p.next()
	if err != nil {
		return Term{}, err
	}
	switch t.kind {
	case tokVar:
		if pos == posPredicate {
			// The paper's fragment instantiates every predicate.
			return Term{}, p.errAt(t, "variable predicates are outside the supported fragment")
		}
		return Term{Kind: Var, Value: t.text}, nil
	case tokIRIRef:
		return Term{Kind: IRI, Value: t.text}, nil
	case tokLiteral:
		if pos != posObject {
			return Term{}, p.errAt(t, "literals may only appear in object position")
		}
		return p.literalTerm(t)
	case tokIdent:
		if t.text == "a" && pos == posPredicate {
			return Term{Kind: IRI, Value: "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"}, nil
		}
		iri, err := p.q.Prefixes.Expand(t.text)
		if err != nil {
			return Term{}, p.errAt(t, "%v", err)
		}
		return Term{Kind: IRI, Value: iri}, nil
	default:
		return Term{}, p.errAt(t, "expected term, found %s", describe(t))
	}
}

// checkProjection validates that projected variables occur in the pattern.
func (p *parser) checkProjection() error {
	if p.q.Star {
		return nil
	}
	have := make(map[string]bool)
	for _, v := range p.q.Variables() {
		have[v] = true
	}
	for _, v := range p.q.Select {
		if !have[v] {
			return &Error{Line: 1, Col: 1, Msg: fmt.Sprintf("projected variable ?%s does not occur in WHERE clause", v)}
		}
	}
	return nil
}

func describe(t token) string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

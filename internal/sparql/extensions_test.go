package sparql

import (
	"strings"
	"testing"
)

func TestDistinct(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?s WHERE { ?s <http://y/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("Distinct not set")
	}
	q, err = Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Distinct {
		t.Error("Distinct wrongly set")
	}
}

func TestUnion(t *testing.T) {
	q, err := Parse(`
PREFIX y: <http://y/>
SELECT ?s WHERE {
  { ?s y:p ?o . ?o y:q ?z }
  UNION
  { ?s y:r ?o }
  UNION
  { ?s y:t ?o }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.UnionBranches) != 3 {
		t.Fatalf("branches = %d, want 3", len(q.UnionBranches))
	}
	if len(q.UnionBranches[0]) != 2 || len(q.UnionBranches[1]) != 1 {
		t.Errorf("branch sizes = %d, %d", len(q.UnionBranches[0]), len(q.UnionBranches[1]))
	}
	// Patterns mirrors the first branch.
	if len(q.Patterns) != 2 {
		t.Errorf("Patterns = %d, want first branch", len(q.Patterns))
	}
	if got := len(q.Branches()); got != 3 {
		t.Errorf("Branches() = %d", got)
	}
	// Variables span all branches.
	if vars := q.Variables(); len(vars) != 3 {
		t.Errorf("Variables = %v", vars)
	}
}

func TestUnionErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty branch", `SELECT ?s WHERE { { } UNION { ?s <http://y/p> ?o } }`},
		{"garbage between", `SELECT ?s WHERE { { ?s <http://y/p> ?o } BOGUS { ?s <http://y/q> ?o } }`},
		{"unclosed", `SELECT ?s WHERE { { ?s <http://y/p> ?o } UNION { ?s <http://y/q> ?o }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded", tc.src)
			}
		})
	}
}

func TestFilterForms(t *testing.T) {
	q, err := Parse(`
PREFIX y: <http://y/>
SELECT ?s WHERE {
  ?s y:p ?o .
  FILTER (?s = <http://x/a>)
  FILTER (?o != ?s)
  FILTER regex(?s, "needle")
  FILTER strstarts(str(?o), "http://x/")
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 4 {
		t.Fatalf("filters = %d, want 4", len(q.Filters))
	}
	f := q.Filters[0]
	if f.Op != FilterEq || f.LHS != "s" || f.RHS.Kind != IRI || f.RHS.Value != "http://x/a" {
		t.Errorf("filter 0 = %+v", f)
	}
	f = q.Filters[1]
	if f.Op != FilterNe || f.RHS.Kind != Var || f.RHS.Value != "s" {
		t.Errorf("filter 1 = %+v", f)
	}
	f = q.Filters[2]
	if f.Op != FilterRegex || f.RHS.Value != "needle" {
		t.Errorf("filter 2 = %+v", f)
	}
	f = q.Filters[3]
	if f.Op != FilterStrStarts || f.LHS != "o" {
		t.Errorf("filter 3 = %+v", f)
	}
}

func TestFilterStrStartsWithoutStr(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER strstarts(?s, "http://") }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != FilterStrStarts {
		t.Errorf("filters = %+v", q.Filters)
	}
}

func TestFilterAfterUnion(t *testing.T) {
	q, err := Parse(`
PREFIX y: <http://y/>
SELECT ?s WHERE {
  { ?s y:p ?o } UNION { ?s y:q ?o }
  FILTER (?s != ?o)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || len(q.UnionBranches) != 2 {
		t.Errorf("filters = %d, branches = %d", len(q.Filters), len(q.UnionBranches))
	}
}

func TestFilterErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown form", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER bound(?s) }`},
		{"missing paren", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER ?s = ?o }`},
		{"bad op", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?s < ?o) }`},
		{"unknown var", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?zzz = ?o) }`},
		{"unknown rhs var", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?s = ?zzz) }`},
		{"regex non term", `SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER regex(?s, <http://x/a>) }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded", tc.src)
			}
		})
	}
}

func TestOffsetAndLimitAnyOrder(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o } OFFSET 5 LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Offset != 5 || q.Limit != 3 {
		t.Errorf("offset/limit = %d/%d", q.Offset, q.Limit)
	}
	q, err = Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o } LIMIT 3 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Offset != 5 || q.Limit != 3 {
		t.Errorf("offset/limit = %d/%d", q.Offset, q.Limit)
	}
	if _, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o } OFFSET x`); err == nil {
		t.Error("bad OFFSET accepted")
	}
}

func TestExtensionsStringRoundTrip(t *testing.T) {
	src := `
PREFIX y: <http://y/>
SELECT DISTINCT ?s WHERE {
  { ?s y:p ?o } UNION { ?s y:q ?o }
  FILTER (?s != ?o)
  FILTER regex(?s, "x")
} LIMIT 7 OFFSET 2`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, q.String())
	}
	if !q2.Distinct || q2.Limit != 7 || q2.Offset != 2 ||
		len(q2.UnionBranches) != 2 || len(q2.Filters) != 2 {
		t.Errorf("round trip lost structure: %s", q2)
	}
}

func TestFilterOpString(t *testing.T) {
	for op, want := range map[FilterOp]string{
		FilterEq: "=", FilterNe: "!=", FilterRegex: "regex",
		FilterStrStarts: "strstarts", FilterOp(9): "FilterOp(9)",
	} {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", op, op.String(), want)
		}
	}
	f := Filter{Op: FilterEq, LHS: "x", RHS: Term{Kind: Var, Value: "y"}}
	if !strings.Contains(f.String(), "?x = ?y") {
		t.Errorf("Filter.String = %q", f.String())
	}
}

func TestBangWithoutEquals(t *testing.T) {
	if _, err := Parse(`SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?s ! ?o) }`); err == nil {
		t.Error("lone '!' accepted")
	}
}

package sparql

import "testing"

// FuzzParse feeds arbitrary text to the SPARQL parser; it must never panic,
// and any accepted query must re-render (String) to a query it accepts
// again with the same structure.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * WHERE { ?s <http://y/p> ?o }",
		"SELECT ?s ?o WHERE { ?s <http://y/p> ?o . ?o <http://y/q> \"lit\" . }",
		"PREFIX y: <http://y/> SELECT DISTINCT ?s WHERE { ?s y:p ?o ; y:q ?z , ?w . }",
		"SELECT ?s WHERE { { ?s <http://y/p> ?o } UNION { ?s <http://y/q> ?o } } LIMIT 5 OFFSET 2",
		"SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?s != ?o) FILTER regex(?s, \"x\") }",
		"SELECT ?s WHERE { ?s a <http://x/T> . }",
		"SELEKT nonsense",
		"SELECT ?s WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE {",
		"\x00\xff{}?",
		"SELECT ?s WHERE { ?s <http://y/p> \"esc\\\"q\\nuote\" . }",
		"SELECT?sWHERE{?s<http://y/p>?o}",
		"PREFIX : <http://y/> SELECT ?s WHERE { ?s :p ?o }",
		"SELECT ?s WHERE { ?s <http://y/p ?o }",
		"SELECT ?s WHERE { ?s <http://y/p> ?o } LIMIT 99999999999999999999",
		"SELECT ?s WHERE { ?s <http://y/p> ?o . } OFFSET -1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of String() failed: %v\n%q", err, rendered)
		}
		if len(q2.Patterns) != len(q.Patterns) ||
			len(q2.Branches()) != len(q.Branches()) ||
			len(q2.Filters) != len(q.Filters) ||
			q2.Distinct != q.Distinct || q2.Star != q.Star ||
			q2.Limit != q.Limit || q2.Offset != q.Offset {
			t.Fatalf("round trip changed structure:\n%s\nvs\n%s", q, q2)
		}
		if len(q2.Projection()) != len(q.Projection()) {
			t.Fatalf("round trip changed projection: %v vs %v", q2.Projection(), q.Projection())
		}
	})
}

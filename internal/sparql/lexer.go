package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar
	tokIRIRef
	tokLiteral
	tokLBrace
	tokRBrace
	tokDot
	tokSemi
	tokComma
	tokStar
	tokInt
	tokLParen
	tokRParen
	tokEq
	tokNe
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokIRIRef:
		return "IRI"
	case tokLiteral:
		return "literal"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokStar:
		return "'*'"
	case tokInt:
		return "integer"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
	// Literal annotations (tokLiteral only): the language tag, or the
	// datatype (raw IRI text, or a prefixed name the parser must expand
	// when dtPrefixed is set).
	lang       string
	dtRaw      string
	dtPrefixed bool
}

// Error is a SPARQL syntax error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("sparql: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// lexer converts the source text to tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance(1)
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
			continue
		}
		return
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	switch c := l.src[l.pos]; c {
	case '{':
		l.advance(1)
		tok.kind = tokLBrace
		return tok, nil
	case '}':
		l.advance(1)
		tok.kind = tokRBrace
		return tok, nil
	case ';':
		l.advance(1)
		tok.kind = tokSemi
		return tok, nil
	case ',':
		l.advance(1)
		tok.kind = tokComma
		return tok, nil
	case '*':
		l.advance(1)
		tok.kind = tokStar
		return tok, nil
	case '(':
		l.advance(1)
		tok.kind = tokLParen
		return tok, nil
	case ')':
		l.advance(1)
		tok.kind = tokRParen
		return tok, nil
	case '=':
		l.advance(1)
		tok.kind = tokEq
		return tok, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			tok.kind = tokNe
			return tok, nil
		}
		return tok, l.errf("unexpected '!'")
	case '?', '$':
		return l.lexVar()
	case '<':
		return l.lexIRIRef()
	case '"':
		return l.lexLiteral()
	case '.':
		l.advance(1)
		tok.kind = tokDot
		return tok, nil
	default:
		if c >= '0' && c <= '9' {
			return l.lexInt()
		}
		return l.lexIdent()
	}
}

func (l *lexer) lexVar() (token, error) {
	tok := token{kind: tokVar, line: l.line, col: l.col}
	l.advance(1) // sigil
	start := l.pos
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.advance(1)
	}
	if l.pos == start {
		return tok, l.errf("empty variable name")
	}
	tok.text = l.src[start:l.pos]
	return tok, nil
}

func (l *lexer) lexIRIRef() (token, error) {
	tok := token{kind: tokIRIRef, line: l.line, col: l.col}
	end := strings.IndexByte(l.src[l.pos:], '>')
	if end < 0 {
		return tok, l.errf("unterminated IRI")
	}
	tok.text = l.src[l.pos+1 : l.pos+end]
	l.advance(end + 1)
	if tok.text == "" {
		return tok, l.errf("empty IRI")
	}
	return tok, nil
}

func (l *lexer) lexLiteral() (token, error) {
	tok := token{kind: tokLiteral, line: l.line, col: l.col}
	l.advance(1) // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return tok, l.errf("unterminated literal")
		}
		c := l.src[l.pos]
		if c == '"' {
			l.advance(1)
			break
		}
		if c != '\\' {
			b.WriteByte(c)
			l.advance(1)
			continue
		}
		if l.pos+1 >= len(l.src) {
			return tok, l.errf("dangling escape")
		}
		l.advance(1)
		switch e := l.src[l.pos]; e {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			return tok, l.errf("unknown escape \\%c", e)
		}
		l.advance(1)
	}
	tok.text = b.String()
	// Optional datatype / language suffixes, carried as annotations so
	// the parser builds typed literal terms (mirroring the data-side
	// parser).
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.advance(1)
		start := l.pos
		for l.pos < len(l.src) && (isIdentByte(l.src[l.pos]) || l.src[l.pos] == '-') {
			l.advance(1)
		}
		if l.pos == start {
			return tok, l.errf("empty language tag")
		}
		tok.lang = l.src[start:l.pos]
	} else if strings.HasPrefix(l.src[l.pos:], "^^") {
		l.advance(2)
		dt, err := l.next()
		if err != nil {
			return tok, err
		}
		switch dt.kind {
		case tokIRIRef:
			tok.dtRaw = dt.text
		case tokIdent:
			tok.dtRaw, tok.dtPrefixed = dt.text, true
		default:
			return tok, l.errf("expected datatype IRI after ^^")
		}
	}
	return tok, nil
}

func (l *lexer) lexInt() (token, error) {
	tok := token{kind: tokInt, line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance(1)
	}
	tok.text = l.src[start:l.pos]
	return tok, nil
}

// lexIdent scans keywords and prefixed names (which may contain one colon).
func (l *lexer) lexIdent() (token, error) {
	tok := token{kind: tokIdent, line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isIdentByte(c) || c == ':' {
			l.advance(1)
			continue
		}
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if r != utf8.RuneError && unicode.IsLetter(r) {
			l.advance(utf8.RuneLen(r))
			continue
		}
		break
	}
	if l.pos == start {
		return tok, l.errf("unexpected character %q", l.src[l.pos])
	}
	// A trailing dot terminates the statement rather than belonging to the
	// name (`x:London.` ≡ `x:London .`). Dots never span lines, so the
	// rewind only adjusts the column.
	for l.pos > start+1 && l.src[l.pos-1] == '.' {
		l.pos--
		l.col--
	}
	tok.text = l.src[start:l.pos]
	return tok, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '%' || c == '/' || c == '#'
}

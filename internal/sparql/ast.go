// Package sparql parses the SPARQL fragment the AMbER paper addresses
// (Section 2.2): SELECT/WHERE (and ASK) queries whose WHERE clause is a
// basic graph pattern of triple patterns. Subjects and objects may be variables, IRIs
// or (for objects) literals; predicates are always instantiated IRIs.
//
// Supported surface syntax beyond the minimum: PREFIX declarations,
// `SELECT *`, Turtle-style `;` (same subject) and `,` (same subject and
// predicate) abbreviations, comments, and an optional LIMIT clause.
// FILTER, UNION, OPTIONAL and GROUP BY are out of scope, as in the paper.
package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// TermKind discriminates the three kinds of pattern terms.
type TermKind uint8

const (
	// Var is an unknown variable (?X or $X).
	Var TermKind = iota
	// IRI is a constant IRI.
	IRI
	// Literal is a constant literal.
	Literal
)

// String reports the kind name.
func (k TermKind) String() string {
	switch k {
	case Var:
		return "Var"
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is one position of a triple pattern. For Var terms Value holds the
// variable name without the leading sigil; for Literal terms Value is the
// lexical form and Datatype/Lang carry the optional type annotation
// (mirroring rdf.Term).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// RDF converts a constant term to its RDF form. Var terms have no RDF
// form; callers must not pass them.
func (t Term) RDF() rdf.Term {
	switch t.Kind {
	case Literal:
		return rdf.Term{Kind: rdf.Literal, Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	default:
		return rdf.NewResource(t.Value)
	}
}

// String renders the term in SPARQL syntax.
func (t Term) String() string {
	switch t.Kind {
	case Var:
		return "?" + t.Value
	case Literal:
		return t.RDF().String()
	default:
		return "<" + t.Value + ">"
	}
}

// TriplePattern is one pattern of the WHERE clause.
type TriplePattern struct {
	S, P, O Term
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// FilterOp enumerates the filter operators of the extension fragment
// (the paper leaves FILTER to future work; this implements a useful
// subset over IRI bindings).
type FilterOp uint8

const (
	// FilterEq is `FILTER (?x = term)`.
	FilterEq FilterOp = iota
	// FilterNe is `FILTER (?x != term)`.
	FilterNe
	// FilterRegex is `FILTER regex(?x, "substring")` — substring match on
	// the bound IRI text.
	FilterRegex
	// FilterStrStarts is `FILTER strstarts(str(?x), "prefix")`.
	FilterStrStarts
)

// String reports the operator in SPARQL-ish syntax.
func (op FilterOp) String() string {
	switch op {
	case FilterEq:
		return "="
	case FilterNe:
		return "!="
	case FilterRegex:
		return "regex"
	case FilterStrStarts:
		return "strstarts"
	default:
		return fmt.Sprintf("FilterOp(%d)", uint8(op))
	}
}

// Filter is one FILTER constraint. LHS is always a variable; RHS is a
// variable or a constant (IRI text or plain string, compared textually
// against the bound IRI).
type Filter struct {
	Op  FilterOp
	LHS string // variable name
	RHS Term   // Var, IRI or Literal
}

// String renders the filter.
func (f Filter) String() string {
	switch f.Op {
	case FilterRegex:
		return fmt.Sprintf("FILTER regex(?%s, %s)", f.LHS, f.RHS)
	case FilterStrStarts:
		return fmt.Sprintf("FILTER strstarts(str(?%s), %s)", f.LHS, f.RHS)
	default:
		return fmt.Sprintf("FILTER (?%s %s %s)", f.LHS, f.Op, f.RHS)
	}
}

// Query is a parsed SELECT or ASK query.
type Query struct {
	// Prefixes holds the PREFIX declarations.
	Prefixes *rdf.PrefixMap
	// Ask records an ASK query: no projection, the answer is whether any
	// solution exists.
	Ask bool
	// Select lists the projected variable names (without '?'); empty with
	// Star set means SELECT *.
	Select []string
	// Star records SELECT *.
	Star bool
	// Distinct requests duplicate-row elimination.
	Distinct bool
	// Patterns is the basic graph pattern (the first UNION branch when
	// UnionBranches is non-empty).
	Patterns []TriplePattern
	// UnionBranches holds the alternative basic graph patterns of a
	// `{ … } UNION { … }` body; empty for a plain BGP query.
	UnionBranches [][]TriplePattern
	// Filters are the FILTER constraints, applied to every branch.
	Filters []Filter
	// Limit bounds the number of results; 0 means unlimited.
	Limit int
	// Offset skips the first rows of the result.
	Offset int
}

// Branches returns the query's basic graph patterns: the UNION branches,
// or the single pattern list for a plain query.
func (q *Query) Branches() [][]TriplePattern {
	if len(q.UnionBranches) > 0 {
		return q.UnionBranches
	}
	return [][]TriplePattern{q.Patterns}
}

// Variables returns all distinct variable names appearing in the patterns
// (across all UNION branches), in first-appearance order.
func (q *Query) Variables() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.Kind == Var && !seen[t.Value] {
			seen[t.Value] = true
			out = append(out, t.Value)
		}
	}
	for _, branch := range q.Branches() {
		for _, p := range branch {
			add(p.S)
			add(p.P)
			add(p.O)
		}
	}
	return out
}

// Projection returns the variables the query projects: the SELECT list, or
// all pattern variables for SELECT *.
func (q *Query) Projection() []string {
	if q.Star {
		return q.Variables()
	}
	return q.Select
}

// String re-renders the query in canonical SPARQL syntax.
func (q *Query) String() string {
	var b strings.Builder
	if q.Prefixes != nil {
		for _, p := range q.Prefixes.Prefixes() {
			ns, _ := q.Prefixes.Lookup(p)
			fmt.Fprintf(&b, "PREFIX %s: <%s>\n", p, ns)
		}
	}
	if q.Ask {
		b.WriteString("ASK")
	} else {
		b.WriteString("SELECT")
		if q.Distinct {
			b.WriteString(" DISTINCT")
		}
		if q.Star {
			b.WriteString(" *")
		} else {
			for _, v := range q.Select {
				b.WriteString(" ?" + v)
			}
		}
	}
	b.WriteString(" WHERE {\n")
	branches := q.Branches()
	for bi, branch := range branches {
		if len(branches) > 1 {
			if bi > 0 {
				b.WriteString("  UNION\n")
			}
			b.WriteString("  {\n")
		}
		for _, p := range branch {
			b.WriteString("  " + p.String() + "\n")
		}
		if len(branches) > 1 {
			b.WriteString("  }\n")
		}
	}
	for _, f := range q.Filters {
		b.WriteString("  " + f.String() + "\n")
	}
	b.WriteString("}")
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

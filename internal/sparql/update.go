package sparql

import (
	"strings"

	"repro/internal/rdf"
)

// UpdateKind discriminates the supported SPARQL 1.1 Update operations.
type UpdateKind uint8

const (
	// UpInsertData is `INSERT DATA { triples }`.
	UpInsertData UpdateKind = iota
	// UpDeleteData is `DELETE DATA { triples }`.
	UpDeleteData
	// UpClear is `CLEAR [SILENT] [DEFAULT|ALL]` — the store holds a single
	// default graph, so both forms wipe it.
	UpClear
	// UpLoad is `LOAD [SILENT] <source>`: bulk-insert the triples of an
	// N-Triples / prefixed-Turtle document. The source IRI is resolved as
	// a local file path (a file:// prefix is stripped).
	UpLoad
)

// String reports the operation keyword.
func (k UpdateKind) String() string {
	switch k {
	case UpInsertData:
		return "INSERT DATA"
	case UpDeleteData:
		return "DELETE DATA"
	case UpClear:
		return "CLEAR"
	case UpLoad:
		return "LOAD"
	default:
		return "UpdateKind(?)"
	}
}

// UpdateOp is one operation of an update request.
type UpdateOp struct {
	Kind UpdateKind
	// Triples holds the ground data block of INSERT DATA / DELETE DATA.
	Triples []rdf.Triple
	// Source is the LOAD document reference.
	Source string
	// Silent records a SILENT modifier (failures are reported as success).
	Silent bool
}

// Update is a parsed SPARQL 1.1 Update request: a prologue plus one or
// more operations separated by ';', executed in order.
type Update struct {
	Prefixes *rdf.PrefixMap
	Ops      []UpdateOp
}

// ParseUpdate parses a SPARQL 1.1 Update request (the INSERT DATA /
// DELETE DATA / CLEAR / LOAD subset).
func ParseUpdate(src string) (*Update, error) {
	return ParseUpdateWith(src, nil)
}

// ParseUpdateWith parses an update with pre-bound prefixes (copied, not
// mutated); PREFIX declarations in the text override them.
func ParseUpdateWith(src string, base *rdf.PrefixMap) (*Update, error) {
	prefixes := &rdf.PrefixMap{}
	if base != nil {
		prefixes = base.Clone()
	}
	p := &parser{lex: newLexer(src), q: &Query{Prefixes: prefixes}}
	u := &Update{Prefixes: prefixes}
	if err := p.runUpdate(u); err != nil {
		return nil, err
	}
	return u, nil
}

// runUpdate parses `(PREFIX decl | operation) (';' ...)*`. SPARQL 1.1
// allows a prologue before every operation, and a trailing ';'.
func (p *parser) runUpdate(u *Update) error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		switch {
		case t.kind == tokEOF:
			if len(u.Ops) == 0 {
				return p.errAt(t, "empty update request")
			}
			return nil
		case keywordIs(t, "PREFIX"):
			p.peeked = false
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		op, err := p.parseUpdateOp()
		if err != nil {
			return err
		}
		u.Ops = append(u.Ops, op)
		t, err = p.peek()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokSemi:
			p.peeked = false
		case tokEOF:
		default:
			return p.errAt(t, "expected ';' or end of update, found %s", describe(t))
		}
	}
}

// parseUpdateOp parses one operation.
func (p *parser) parseUpdateOp() (UpdateOp, error) {
	t, err := p.next()
	if err != nil {
		return UpdateOp{}, err
	}
	switch {
	case keywordIs(t, "INSERT"):
		return p.parseDataBlockOp(UpInsertData)
	case keywordIs(t, "DELETE"):
		return p.parseDataBlockOp(UpDeleteData)
	case keywordIs(t, "CLEAR"):
		return p.parseClear()
	case keywordIs(t, "LOAD"):
		return p.parseLoad()
	default:
		return UpdateOp{}, p.errAt(t, "expected INSERT DATA, DELETE DATA, CLEAR or LOAD, found %s", describe(t))
	}
}

// parseDataBlockOp parses `DATA { ground-triples }` after INSERT/DELETE.
func (p *parser) parseDataBlockOp(kind UpdateKind) (UpdateOp, error) {
	t, err := p.next()
	if err != nil {
		return UpdateOp{}, err
	}
	if !keywordIs(t, "DATA") {
		if kind == UpDeleteData && keywordIs(t, "WHERE") {
			return UpdateOp{}, p.errAt(t, "DELETE WHERE is outside the supported update fragment")
		}
		return UpdateOp{}, p.errAt(t, "expected DATA after %s (pattern-based updates are unsupported), found %s",
			map[UpdateKind]string{UpInsertData: "INSERT", UpDeleteData: "DELETE"}[kind], describe(t))
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return UpdateOp{}, err
	}
	triples, err := p.parseGroundTriples()
	if err != nil {
		return UpdateOp{}, err
	}
	return UpdateOp{Kind: kind, Triples: triples}, nil
}

// parseGroundTriples parses the body of a data block up to '}' and
// converts it to ground RDF triples, rejecting variables and filters.
func (p *parser) parseGroundTriples() ([]rdf.Triple, error) {
	save := p.q.Patterns
	p.q.Patterns = nil
	defer func() { p.q.Patterns = save }()
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokRBrace {
			p.peeked = false
			break
		}
		if t.kind == tokEOF {
			return nil, p.errAt(t, "unterminated data block, expected '}'")
		}
		if keywordIs(t, "FILTER") {
			return nil, p.errAt(t, "FILTER is not allowed in a data block")
		}
		if err := p.parseTriplesSameSubject(); err != nil {
			return nil, err
		}
	}
	triples := make([]rdf.Triple, 0, len(p.q.Patterns))
	for _, tp := range p.q.Patterns {
		rt, err := groundTriple(tp)
		if err != nil {
			return nil, err
		}
		triples = append(triples, rt)
	}
	return triples, nil
}

// groundTriple converts a pattern to a concrete triple, rejecting
// variables (data blocks must be ground per SPARQL 1.1 Update).
func groundTriple(tp TriplePattern) (rdf.Triple, error) {
	conv := func(t Term, pos string) (rdf.Term, error) {
		switch t.Kind {
		case IRI, Literal:
			return t.RDF(), nil
		default:
			return rdf.Term{}, &Error{Line: 1, Col: 1,
				Msg: "variable ?" + t.Value + " not allowed as " + pos + " in a data block"}
		}
	}
	s, err := conv(tp.S, "subject")
	if err != nil {
		return rdf.Triple{}, err
	}
	pr, err := conv(tp.P, "predicate")
	if err != nil {
		return rdf.Triple{}, err
	}
	o, err := conv(tp.O, "object")
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{S: s, P: pr, O: o}, nil
}

// parseClear parses `CLEAR [SILENT] [DEFAULT|ALL]` (after CLEAR).
func (p *parser) parseClear() (UpdateOp, error) {
	op := UpdateOp{Kind: UpClear}
	t, err := p.peek()
	if err != nil {
		return op, err
	}
	if keywordIs(t, "SILENT") {
		p.peeked = false
		op.Silent = true
		if t, err = p.peek(); err != nil {
			return op, err
		}
	}
	switch {
	case keywordIs(t, "DEFAULT"), keywordIs(t, "ALL"):
		p.peeked = false
	case keywordIs(t, "NAMED"), keywordIs(t, "GRAPH"):
		return op, p.errAt(t, "named graphs are unsupported; use CLEAR DEFAULT or CLEAR ALL")
	}
	return op, nil
}

// parseLoad parses `LOAD [SILENT] <source>` (after LOAD).
func (p *parser) parseLoad() (UpdateOp, error) {
	op := UpdateOp{Kind: UpLoad}
	t, err := p.next()
	if err != nil {
		return op, err
	}
	if keywordIs(t, "SILENT") {
		op.Silent = true
		if t, err = p.next(); err != nil {
			return op, err
		}
	}
	switch t.kind {
	case tokIRIRef:
		op.Source = t.text
	case tokIdent:
		iri, err := p.q.Prefixes.Expand(t.text)
		if err != nil {
			return op, p.errAt(t, "%v", err)
		}
		op.Source = iri
	default:
		return op, p.errAt(t, "expected document IRI after LOAD, found %s", describe(t))
	}
	if strings.HasPrefix(op.Source, "file://") {
		op.Source = strings.TrimPrefix(op.Source, "file://")
	}
	return op, nil
}

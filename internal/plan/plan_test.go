package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

const figure2 = `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}`

type fixture struct {
	g  *multigraph.Graph
	ix *index.Index
}

// rd adapts the fixture to the planner's probe surface.
func (f *fixture) rd() index.Reader { return index.NewReader(f.g, f.ix) }

func load(t *testing.T, src string) *fixture {
	t.Helper()
	triples, err := rdf.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, ix: index.Build(g)}
}

func (f *fixture) query(t *testing.T, src string) *query.Graph {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := query.Build(pq, &f.g.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	return qg
}

func coreNames(qg *query.Graph, cp *ComponentPlan) []string {
	names := make([]string, len(cp.Core))
	for i, u := range cp.Core {
		names[i] = qg.Vars[u].Name
	}
	return names
}

// TestHeuristicFigure2Order pins the paper's Section 5.3 example: the
// VertexOrdering of Figure 2 is U_c^ord = (u1, u3, u5).
func TestHeuristicFigure2Order(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	p := Heuristic().Plan(qg, f.rd())
	if p.Planner != "heuristic" {
		t.Errorf("planner = %q", p.Planner)
	}
	if len(p.Components) != 1 {
		t.Fatalf("components = %d", len(p.Components))
	}
	got := coreNames(qg, &p.Components[0])
	if strings.Join(got, " ") != "X1 X3 X5" {
		t.Errorf("heuristic order = %v, want [X1 X3 X5]", got)
	}
}

// TestHeuristicRank2Priority pins the r2 tie-break: in a triangle with no
// satellites, the vertex with the extra IRI edge (highest r2) goes first.
func TestHeuristicRank2Priority(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, `
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT * WHERE {
  ?a y:wasBornIn ?b .
  ?b y:isPartOf ?c .
  ?c y:hasCapital ?a .
  ?a y:livedIn x:United_States .
}`)
	p := Heuristic().Plan(qg, f.rd())
	if got := coreNames(qg, &p.Components[0]); got[0] != "a" {
		t.Errorf("first core = %s, want a (highest r2 via IRI edge)", got[0])
	}
}

// TestHeuristicConnectedPrefix: every vertex after the first must share an
// edge with the already-ordered prefix (for both planners).
func TestConnectedPrefix(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	for _, pl := range []Planner{Heuristic(), CostBased()} {
		p := pl.Plan(qg, f.rd())
		comp := &p.Components[0]
		seen := map[query.VertexID]bool{comp.Core[0]: true}
		for _, u := range comp.Core[1:] {
			connected := false
			for _, w := range qg.VarNeighbors(u) {
				if seen[w] {
					connected = true
					break
				}
			}
			if !connected {
				t.Errorf("%s: vertex ?%s not connected to ordered prefix", pl.Name(), qg.Vars[u].Name)
			}
			seen[u] = true
		}
	}
}

// TestCostBasedPrefersRareStart: on data where one edge type is rare and
// another ubiquitous, the cost-based planner starts at the vertex
// constrained by the rare type, while the structure-only heuristic cannot
// tell them apart.
func TestCostBasedPrefersRareStart(t *testing.T) {
	var sb strings.Builder
	// 100 "common" edges, 2 "rare" edges, and a path query over them:
	// ?a -common-> ?b -rare-> ?c -after-> ?d.
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "<http://x/s%d> <http://y/common> <http://x/m%d> .\n", i, i%10)
	}
	fmt.Fprintf(&sb, "<http://x/m0> <http://y/rare> <http://x/t0> .\n")
	fmt.Fprintf(&sb, "<http://x/m1> <http://y/rare> <http://x/t1> .\n")
	fmt.Fprintf(&sb, "<http://x/t0> <http://y/after> <http://x/z0> .\n")
	fmt.Fprintf(&sb, "<http://x/t1> <http://y/after> <http://x/z1> .\n")
	f := load(t, sb.String())
	qg := f.query(t, `SELECT * WHERE {
  ?a <http://y/common> ?b .
  ?b <http://y/rare> ?c .
  ?c <http://y/after> ?d .
}`)
	p := CostBased().Plan(qg, f.rd())
	comp := &p.Components[0]
	first := qg.Vars[comp.Core[0]].Name
	if first != "b" && first != "c" {
		t.Errorf("cost-based start = ?%s, want ?b or ?c (rare-edge endpoints); estimates %v",
			first, comp.Estimates)
	}
	// Estimates must be populated and finite for every core vertex.
	for i, e := range comp.Estimates {
		if e < 0 || e != e || e > 1e12 {
			t.Errorf("estimate[%d] = %v", i, e)
		}
	}
}

// TestFixedCandidatesPrecomputed: plan-time Algorithm 1 must materialize
// attribute/IRI candidate lists, and mark impossible vertices Empty.
func TestFixedCandidatesPrecomputed(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	p := For(qg, f.rd())
	u5 := qg.VarIndex["X5"]
	if !p.IsFixed[u5] || len(p.Fixed[u5]) != 1 {
		t.Errorf("X5 fixed candidates = %v (isFixed=%v), want exactly Music_Band",
			p.Fixed[u5], p.IsFixed[u5])
	}
	u0 := qg.VarIndex["X0"]
	if p.IsFixed[u0] {
		t.Errorf("X0 has no attrs/IRIs but is marked fixed")
	}
	if p.Empty {
		t.Errorf("satisfiable plan marked empty: %s", p.EmptyReason)
	}
}

// TestEmptyVerdicts: unsat queries, failing ground checks and empty fixed
// sets must all mark the plan Empty with a reason.
func TestEmptyVerdicts(t *testing.T) {
	f := load(t, figure1)
	cases := []string{
		// Unsat at translation (unknown predicate).
		`PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:isMarriedTo ?b }`,
		// Ground edge with wrong type direction.
		`PREFIX y: <http://dbpedia.org/ontology/>
		 PREFIX x: <http://dbpedia.org/resource/>
		 SELECT ?a ?b WHERE { x:London y:hasCapital x:England . ?a y:livedIn ?b }`,
		// Attribute + IRI constraints that cannot intersect.
		`PREFIX y: <http://dbpedia.org/ontology/>
		 PREFIX x: <http://dbpedia.org/resource/>
		 SELECT ?a WHERE { ?a y:hasName "MCA_Band" . ?a y:livedIn x:United_States . ?a y:wasBornIn ?b . ?a y:diedIn ?c . }`,
	}
	for i, src := range cases {
		p := For(f.query(t, src), f.rd())
		if !p.Empty || p.EmptyReason == "" {
			t.Errorf("case %d: plan not marked empty (reason %q)", i, p.EmptyReason)
		}
	}
}

// TestByName covers the planner registry used by flags and the server.
func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "cost", "cost": "cost", "cost-based": "cost",
		"heuristic": "heuristic", "paper": "heuristic",
	} {
		pl, ok := ByName(name)
		if !ok || pl.Name() != want {
			t.Errorf("ByName(%q) = %v, %v; want %s", name, pl, ok, want)
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("ByName accepted nonsense")
	}
}

// TestSatelliteEnumerationOrder: AllSatellites follows the matching order.
func TestSatelliteEnumerationOrder(t *testing.T) {
	f := load(t, figure1)
	qg := f.query(t, figure2)
	p := Heuristic().Plan(qg, f.rd())
	sats := p.Components[0].AllSatellites()
	if len(sats) != 4 {
		t.Fatalf("satellites = %d, want 4", len(sats))
	}
	if qg.Vars[sats[3]].Name != "X6" {
		names := make([]string, len(sats))
		for i, u := range sats {
			names[i] = qg.Vars[u].Name
		}
		t.Errorf("satellite order = %v, want X6 (attached to X3) last", names)
	}
}

// Package plan turns a decomposed query multigraph (internal/query) into
// an executable matching plan: the core-vertex matching order per
// component, the precomputed per-vertex candidate constraints (Algorithm 1
// of the paper, hoisted out of the engine so prepared queries pay for it
// once), and the ground-constraint verdict. Ordering used to be a
// parse-time side effect inside the query layer; making it a first-class,
// swappable planning step lets the engine consume data-aware orders.
//
// Two planners are provided:
//
//   - Heuristic reproduces the paper's static Section 5.3 ordering: core
//     vertices maximize (r1, r2) — satellite count, then incident
//     edge-type count — extending a connected prefix. It is blind to the
//     data distribution.
//   - CostBased estimates every core vertex's candidate-set size from the
//     index ensemble (attribute inverted-list lengths, exact
//     neighbourhood-trie probes for constant-IRI constraints, and
//     per-edge-type cardinalities) and greedily picks the connected
//     vertex with the smallest estimated frontier. Ties and missing
//     statistics fall back to the paper heuristic, so the cost-based
//     order never degenerates below it.
//
// Both planners produce identical answer sets — order affects speed,
// never results — which the engine's equivalence tests assert.
package plan

import (
	"math"
	"sort"

	"repro/internal/dict"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/otil"
	"repro/internal/query"
)

// ComponentPlan is the executable form of one connected component: the
// matching order over its core vertices plus the satellite attachment.
type ComponentPlan struct {
	// Core is U_c^ord: the core vertices in matching order. Core[0] is the
	// initial vertex resolved through the signature index.
	Core []query.VertexID
	// Satellites is shared with the query component: core vertex → its
	// attached degree-1 satellite vertices, sorted.
	Satellites map[query.VertexID][]query.VertexID
	// Estimates is parallel to Core: the planner's estimated candidate-set
	// size for each core vertex at the point it is matched. The heuristic
	// planner records standalone estimates (it does not use them to
	// order); the cost-based planner records the frontier estimates that
	// drove its choices.
	Estimates []float64

	// allSats is the satellite enumeration order, precomputed once at
	// plan time because the engine asks for it per complete core match.
	allSats []query.VertexID
}

// AllSatellites returns the component's satellite vertices in matching
// order (each core's satellites are themselves sorted): the stable
// enumeration order for embedding generation. The returned slice is
// shared — callers must not modify it.
func (c *ComponentPlan) AllSatellites() []query.VertexID { return c.allSats }

// Plan is everything the matching engine needs beyond the data graph and
// index: the query multigraph, the per-component matching orders, and the
// precomputed per-vertex candidate constraints. A Plan is tied to the
// index it was built against and is immutable and safe for concurrent use.
type Plan struct {
	// Query is the underlying query multigraph.
	Query *query.Graph
	// Planner names the implementation that produced the plan.
	Planner string
	// Components holds one plan per connected component, aligned with
	// Query.Components.
	Components []ComponentPlan
	// Fixed[u] is the precomputed Algorithm 1 candidate list for query
	// vertex u (attribute-index candidates intersected with constant-IRI
	// neighbourhood probes); IsFixed[u] reports whether u carries such
	// constraints at all.
	Fixed   [][]dict.VertexID
	IsFixed []bool
	// Empty marks a plan that provably yields zero embeddings (an unsat
	// query, a failed ground check, or an empty fixed candidate set);
	// EmptyReason explains the first cause found.
	Empty       bool
	EmptyReason string
}

// Planner computes a matching plan for a query graph against an index.
type Planner interface {
	// Name identifies the planner in Explain output and benchmarks.
	Name() string
	// Plan orders every component and precomputes candidate constraints
	// against the given probe surface (a frozen ensemble or an overlay).
	Plan(q *query.Graph, r index.Reader) *Plan
}

// Default returns the planner used when no explicit choice is made: the
// cost-based one.
func Default() Planner { return CostBased() }

// For plans q with the default planner.
func For(q *query.Graph, r index.Reader) *Plan { return Default().Plan(q, r) }

// CostBased returns the statistics-driven planner.
func CostBased() Planner { return costBased{} }

// Heuristic returns the paper's static Section 5.3 planner.
func Heuristic() Planner { return heuristic{} }

// ByName resolves a planner from its flag name ("cost" or "heuristic").
func ByName(name string) (Planner, bool) {
	switch name {
	case "cost", "cost-based", "":
		return CostBased(), true
	case "heuristic", "paper":
		return Heuristic(), true
	}
	return nil, false
}

// ---- shared scaffolding ------------------------------------------------

// scaffold carries the state both planners share: fixed candidate sets and
// the tie-breaking heuristic ranks.
type scaffold struct {
	q *query.Graph
	r index.Reader
	p *Plan
}

// build runs the planner-independent part (ground checks, Algorithm 1
// candidate sets) and then orders each component with the given strategy.
func build(name string, q *query.Graph, r index.Reader,
	order func(*scaffold, *query.Component) ([]query.VertexID, []float64)) *Plan {
	p := &Plan{Query: q, Planner: name}
	s := &scaffold{q: q, r: r, p: p}
	if q.Unsat {
		p.Empty, p.EmptyReason = true, q.UnsatReason
	}
	s.checkGround()
	s.computeFixed()
	for ci := range q.Components {
		qc := &q.Components[ci]
		core, ests := order(s, qc)
		var allSats []query.VertexID
		for _, uc := range core {
			allSats = append(allSats, qc.Satellites[uc]...)
		}
		p.Components = append(p.Components, ComponentPlan{
			Core:       core,
			Satellites: qc.Satellites,
			Estimates:  ests,
			allSats:    allSats,
		})
	}
	return p
}

// markEmpty records the first zero-result cause.
func (p *Plan) markEmpty(reason string) {
	if !p.Empty {
		p.Empty, p.EmptyReason = true, reason
	}
}

// checkGround validates the variable-free constraints through the index:
// a ground edge holds iff the target appears in the source's outgoing
// neighbourhood probe; a ground attribute iff the vertex appears in every
// attribute's inverted list.
func (s *scaffold) checkGround() {
	for _, ge := range s.q.GroundEdges {
		if !otil.ContainsSorted(s.r.Neighbors(ge.From, index.Outgoing, ge.Types), ge.To) {
			s.p.markEmpty("ground edge not in data")
			return
		}
	}
	for _, ga := range s.q.GroundAttrs {
		if !s.r.HasAttrs(ga.V, ga.Attrs) {
			s.p.markEmpty("ground attribute not in data")
			return
		}
	}
}

// computeFixed is Algorithm 1 hoisted to plan time: the candidates implied
// by vertex attributes (index A) and constant-IRI neighbours (index N).
// The lists depend only on the query and the immutable index, so a cached
// plan amortizes them across executions.
func (s *scaffold) computeFixed() {
	n := len(s.q.Vars)
	s.p.Fixed = make([][]dict.VertexID, n)
	s.p.IsFixed = make([]bool, n)
	for u := range s.q.Vars {
		v := &s.q.Vars[u]
		if lit := v.Lit; lit != nil && lit.SubjectVar < 0 {
			// A literal satellite with a constant subject forms its own
			// single-vertex component; its exact candidate list — p-edge
			// neighbours plus encoded <p, ·> attributes of the constant —
			// is computable right here.
			s.p.IsFixed[u] = true
			s.p.Fixed[u] = litFixed(s.r, lit)
			if len(s.p.Fixed[u]) == 0 {
				s.p.markEmpty("empty candidate set for ?" + v.Name)
			}
			continue
		}
		cand, have := s.litSupport(v)
		if len(v.Attrs) == 0 && len(v.IRIs) == 0 && !have {
			continue
		}
		s.p.IsFixed[u] = true
		if len(v.Attrs) > 0 {
			ac := s.r.AttrCandidates(v.Attrs)
			if have {
				cand = otil.IntersectSorted(cand, ac)
			} else {
				cand, have = ac, true
			}
		}
		for _, c := range v.IRIs {
			nb := s.r.Neighbors(c.DataVertex, c.Dir, c.Types)
			if have {
				cand = otil.IntersectSorted(cand, nb)
			} else {
				cand, have = nb, true
			}
			if len(cand) == 0 {
				break
			}
		}
		s.p.Fixed[u] = cand
		if len(cand) == 0 {
			s.p.markEmpty("empty candidate set for ?" + v.Name)
		}
	}
}

// litFixed materializes the candidate list of a constant-subject literal
// satellite: the subject's p-neighbours followed by its matching
// attributes as encoded literal bindings (sorted by construction).
func litFixed(r index.Reader, lit *query.LitSat) []dict.VertexID {
	var verts []dict.VertexID
	if len(lit.Types) > 0 {
		verts = r.Neighbors(lit.SubjectVertex, index.Outgoing, lit.Types)
	}
	attrs := otil.IntersectSorted(r.VertexAttrs(lit.SubjectVertex), lit.Attrs)
	out := make([]dict.VertexID, 0, len(verts)+len(attrs))
	out = append(out, verts...)
	for _, a := range attrs {
		out = append(out, dict.EncodeAttrBinding(a))
	}
	return out
}

// litSupport bounds a vertex's candidates through its literal
// satellites: a match must satisfy every satellite, i.e. carry a <p, ·>
// attribute or (when p is also an edge type) an outgoing p-edge. The
// union of p's inverted attribute lists with the signature-index probe
// for a single outgoing p multi-edge is therefore a sound candidate
// superset (the signature probe over-approximates p-edge sources per
// Lemma 1). Without it, a subject whose only pattern is the literal one
// would degrade to a full vertex scan — its own synopsis is empty.
func (s *scaffold) litSupport(v *query.Vertex) (cand []dict.VertexID, have bool) {
	for _, uo := range v.LitSats {
		lit := s.q.Vars[uo].Lit
		var union []dict.VertexID
		for _, a := range lit.Attrs {
			union = append(union, s.r.AttrCandidates([]dict.AttrID{a})...)
		}
		if len(lit.Types) > 0 {
			syn := multigraph.SynopsisFromMultiEdges(nil, [][]dict.EdgeType{lit.Types}).AsQuery()
			union = append(union, s.r.SignatureCandidates(syn)...)
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		union = dedupVerts(union)
		if have {
			cand = otil.IntersectSorted(cand, union)
		} else {
			cand, have = union, true
		}
		if len(cand) == 0 {
			return cand, true
		}
	}
	return cand, have
}

// dedupVerts removes duplicates from a sorted list in place.
func dedupVerts(a []dict.VertexID) []dict.VertexID {
	if len(a) < 2 {
		return a
	}
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// rank1 is the paper's r1(u): the number of satellite vertices attached to
// u (each satellite has a unique core neighbour, so attachment count and
// satellite-neighbour count coincide).
func rank1(qc *query.Component, u query.VertexID) int { return len(qc.Satellites[u]) }

// better is the paper's Section 5.3 preference: maximize r1, then r2, then
// break ties on the smaller vertex id. Used directly by the heuristic
// planner and as the tie-breaker of the cost-based one.
func (s *scaffold) better(qc *query.Component, a, b query.VertexID) bool {
	ra1, rb1 := rank1(qc, a), rank1(qc, b)
	if ra1 != rb1 {
		return ra1 > rb1
	}
	ra2, rb2 := s.q.Rank2(a), s.q.Rank2(b)
	if ra2 != rb2 {
		return ra2 > rb2
	}
	return a < b
}

// orderGreedy runs the shared connected-prefix greedy loop: pick selects
// the preferred vertex among the admissible candidates (all core vertices
// for the first pick, prefix-connected ones afterwards). inPrefix is the
// membership set of the already-ordered prefix, maintained incrementally.
func (s *scaffold) orderGreedy(qc *query.Component,
	pick func(cands []query.VertexID, inPrefix map[query.VertexID]bool) (query.VertexID, float64)) ([]query.VertexID, []float64) {
	core := qc.Core
	ordered := make([]query.VertexID, 0, len(core))
	ests := make([]float64, 0, len(core))
	inPrefix := make(map[query.VertexID]bool, len(core))
	connected := make(map[query.VertexID]bool, len(core))
	for len(ordered) < len(core) {
		var cands []query.VertexID
		for _, u := range core {
			if inPrefix[u] {
				continue
			}
			if len(ordered) > 0 && !connected[u] {
				continue
			}
			cands = append(cands, u)
		}
		if len(cands) == 0 {
			// The core is disconnected through satellites only — cannot
			// happen for var-var components, but guard by relaxing
			// connectivity.
			for _, u := range core {
				if !inPrefix[u] {
					cands = append(cands, u)
				}
			}
		}
		best, est := pick(cands, inPrefix)
		ordered = append(ordered, best)
		ests = append(ests, est)
		inPrefix[best] = true
		for _, w := range s.q.VarNeighbors(best) {
			connected[w] = true
		}
	}
	return ordered, ests
}

// ---- heuristic planner -------------------------------------------------

type heuristic struct{}

func (heuristic) Name() string { return "heuristic" }

// Plan reproduces the paper's VertexOrdering exactly: the first vertex
// maximizes (r1, r2); each subsequent vertex is connected to the ordered
// prefix and maximizes (r1, r2) among the connected candidates.
func (h heuristic) Plan(q *query.Graph, r index.Reader) *Plan {
	return build(h.Name(), q, r, func(s *scaffold, qc *query.Component) ([]query.VertexID, []float64) {
		return s.orderGreedy(qc, func(cands []query.VertexID, _ map[query.VertexID]bool) (query.VertexID, float64) {
			best := cands[0]
			for _, u := range cands[1:] {
				if s.better(qc, u, best) {
					best = u
				}
			}
			return best, s.standalone(best)
		})
	})
}

// ---- cost-based planner ------------------------------------------------

type costBased struct{}

func (costBased) Name() string { return "cost" }

// Plan orders each component by greedy smallest-estimated-frontier: the
// initial vertex minimizes the standalone candidate estimate; every later
// vertex minimizes the estimated candidate count after the neighbourhood
// probes from its already-ordered neighbours. Exact ties (and absent
// statistics) defer to the paper heuristic.
func (c costBased) Plan(q *query.Graph, r index.Reader) *Plan {
	if r.Cardinalities() == nil {
		// No statistics: the estimates would all be +Inf and the order
		// pure tie-breaking — make the fallback explicit instead.
		p := heuristic{}.Plan(q, r)
		p.Planner = c.Name()
		return p
	}
	return build(c.Name(), q, r, func(s *scaffold, qc *query.Component) ([]query.VertexID, []float64) {
		return s.orderGreedy(qc, func(cands []query.VertexID, inPrefix map[query.VertexID]bool) (query.VertexID, float64) {
			// Find the minimum frontier estimate, then resolve near-ties
			// (within 10%) with the paper heuristic: when the statistics
			// cannot separate candidates, its satellite-first preference
			// prunes better than an arbitrary pick.
			ests := make([]float64, len(cands))
			minEst := math.Inf(1)
			for i, u := range cands {
				ests[i] = s.frontier(u, inPrefix)
				if ests[i] < minEst {
					minEst = ests[i]
				}
			}
			tie := minEst*1.1 + 0.5
			best, bestEst := query.VertexID(-1), 0.0
			for i, u := range cands {
				if ests[i] > tie {
					continue
				}
				if best < 0 || s.better(qc, u, best) {
					best, bestEst = u, ests[i]
				}
			}
			return best, bestEst
		})
	})
}

// standalone estimates u's candidate-set size in isolation: exact for
// vertices with fixed constraints (the list is already materialized),
// otherwise bounded by the rarest incident edge type's vertex count.
func (s *scaffold) standalone(u query.VertexID) float64 {
	if s.p.IsFixed[u] {
		return float64(len(s.p.Fixed[u]))
	}
	card := s.r.Cardinalities()
	if card == nil {
		return math.Inf(1)
	}
	est := float64(card.NumVertices)
	v := &s.q.Vars[u]
	bound := func(dir index.Direction, types []dict.EdgeType) {
		for _, t := range types {
			if n := float64(card.VerticesWith(dir, t)); n < est {
				est = n
			}
		}
	}
	for _, e := range v.Out {
		bound(index.Outgoing, e.Types)
	}
	for _, e := range v.In {
		bound(index.Incoming, e.Types)
	}
	if len(v.SelfTypes) > 0 {
		bound(index.Outgoing, v.SelfTypes)
		bound(index.Incoming, v.SelfTypes)
	}
	return est
}

// frontier estimates u's candidate-set size at match time: its standalone
// estimate, tightened by the cheapest neighbourhood probe from any
// already-ordered neighbour (a probe at a bound vertex returns on average
// the per-type fanout, and probes are intersected, so the minimum is the
// controlling bound). inPrefix is the ordered prefix's membership set.
func (s *scaffold) frontier(u query.VertexID, inPrefix map[query.VertexID]bool) float64 {
	est := s.standalone(u)
	card := s.r.Cardinalities()
	if card == nil || len(inPrefix) == 0 {
		return est
	}
	v := &s.q.Vars[u]
	tighten := func(dir index.Direction, types []dict.EdgeType) {
		for _, t := range types {
			if f := card.Fanout(dir, t); f < est {
				est = f
			}
		}
	}
	for _, e := range v.Out { // edge u → w: probe w's incoming side
		if inPrefix[e.To] {
			tighten(index.Incoming, e.Types)
		}
	}
	for _, e := range v.In { // edge w → u: probe w's outgoing side
		if inPrefix[e.To] {
			tighten(index.Outgoing, e.Types)
		}
	}
	return est
}

package plan_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// FuzzPlan drives the whole untrusted-input path the server exposes:
// parse → translate → plan (both planners) → count. It must never panic,
// both planners' orders must be permutations of the component core, and
// their counts must agree — the planner-equivalence property under
// adversarial queries rather than generated workloads.
func FuzzPlan(f *testing.F) {
	const data = `
<http://x/a> <http://y/p> <http://x/b> .
<http://x/b> <http://y/p> <http://x/c> .
<http://x/b> <http://y/q> <http://x/a> .
<http://x/a> <http://y/q> <http://x/a> .
<http://x/c> <http://y/name> "c" .
<http://x/a> <http://y/name> "a" .
`
	triples, err := rdf.ParseString(data)
	if err != nil {
		f.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		f.Fatal(err)
	}
	ix := index.Build(g)

	seeds := []string{
		"SELECT * WHERE { ?s <http://y/p> ?o }",
		"SELECT * WHERE { ?s <http://y/p> ?o . ?o <http://y/p> ?t . ?o <http://y/q> ?s . }",
		`SELECT ?s WHERE { ?s <http://y/name> "a" . ?s <http://y/q> ?s . }`,
		"SELECT * WHERE { <http://x/a> <http://y/p> <http://x/b> . }",
		"SELECT * WHERE { ?a <http://y/p> ?b . ?c <http://y/q> ?d . }",
		"SELECT * WHERE { ?a <http://y/nosuch> ?b . }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pq, err := sparql.Parse(src)
		if err != nil {
			return
		}
		qg, err := query.Build(pq, &g.Dicts)
		if err != nil {
			return
		}
		var counts [2]uint64
		for i, pl := range []plan.Planner{plan.CostBased(), plan.Heuristic()} {
			p := pl.Plan(qg, index.NewReader(g, ix))
			if len(p.Components) != len(qg.Components) {
				t.Fatalf("%s: %d component plans for %d components", pl.Name(), len(p.Components), len(qg.Components))
			}
			for ci := range p.Components {
				cp, qc := &p.Components[ci], &qg.Components[ci]
				if len(cp.Core) != len(qc.Core) || len(cp.Estimates) != len(cp.Core) {
					t.Fatalf("%s: component %d order/estimate size mismatch", pl.Name(), ci)
				}
				seen := map[query.VertexID]bool{}
				for _, u := range cp.Core {
					if seen[u] {
						t.Fatalf("%s: vertex repeated in order", pl.Name())
					}
					seen[u] = true
				}
				for _, u := range qc.Core {
					if !seen[u] {
						t.Fatalf("%s: core vertex missing from order", pl.Name())
					}
				}
			}
			n, err := engine.Count(index.NewReader(g, ix), p, engine.Options{Limit: 10000})
			if err != nil {
				t.Fatalf("%s: count: %v", pl.Name(), err)
			}
			counts[i] = n
		}
		if counts[0] != counts[1] {
			t.Fatalf("planner counts differ: cost=%d heuristic=%d\nquery: %s", counts[0], counts[1], src)
		}
	})
}

package results

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

var testVars = []string{"s", "o"}

var testRows = []map[string]string{
	{"s": "http://x/a", "o": "http://x/b"},
	{"s": "http://x/c"}, // o unbound
	{"s": "http://x/d", "o": `plain "text"` + "\twith\ttabs"},
}

func render(t *testing.T, name string) string {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%q) failed", name)
	}
	var sb strings.Builder
	if err := WriteAll(f, &sb, testVars, testRows); err != nil {
		t.Fatalf("WriteAll(%s): %v", name, err)
	}
	return sb.String()
}

func TestJSONFormat(t *testing.T) {
	out := render(t, "json")
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "s" {
		t.Errorf("head.vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("bindings = %d, want 3", len(doc.Results.Bindings))
	}
	b0 := doc.Results.Bindings[0]
	if b0["s"].Type != "uri" || b0["s"].Value != "http://x/a" {
		t.Errorf("binding 0 s = %+v", b0["s"])
	}
	if _, present := doc.Results.Bindings[1]["o"]; present {
		t.Error("unbound variable serialized in JSON binding")
	}
	if doc.Results.Bindings[2]["o"].Type != "literal" {
		t.Errorf("non-IRI value not typed literal: %+v", doc.Results.Bindings[2]["o"])
	}
}

func TestXMLFormat(t *testing.T) {
	out := render(t, "xml")
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Head    struct {
			Variables []struct {
				Name string `xml:"name,attr"`
			} `xml:"variable"`
		} `xml:"head"`
		Results struct {
			Results []struct {
				Bindings []struct {
					Name    string `xml:"name,attr"`
					URI     string `xml:"uri"`
					Literal string `xml:"literal"`
				} `xml:"binding"`
			} `xml:"result"`
		} `xml:"results"`
	}
	if err := xml.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid XML: %v\n%s", err, out)
	}
	if len(doc.Head.Variables) != 2 {
		t.Errorf("variables = %+v", doc.Head.Variables)
	}
	if len(doc.Results.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results.Results))
	}
	if got := doc.Results.Results[0].Bindings[0].URI; got != "http://x/a" {
		t.Errorf("result 0 uri = %q", got)
	}
	if n := len(doc.Results.Results[1].Bindings); n != 1 {
		t.Errorf("row with unbound var has %d bindings, want 1", n)
	}
	if got := doc.Results.Results[2].Bindings[1].Literal; !strings.Contains(got, "plain") {
		t.Errorf("literal binding = %q", got)
	}
}

func TestCSVFormat(t *testing.T) {
	out := render(t, "csv")
	lines := strings.Split(strings.TrimRight(out, "\r\n"), "\r\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header + 3 rows):\n%q", len(lines), out)
	}
	if lines[0] != "s,o" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "http://x/a,http://x/b" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "http://x/c," {
		t.Errorf("unbound row = %q", lines[2])
	}
	if !strings.Contains(lines[3], `"`) {
		t.Errorf("row with quotes not CSV-escaped: %q", lines[3])
	}
}

func TestTSVFormat(t *testing.T) {
	out := render(t, "tsv")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%q", len(lines), out)
	}
	if lines[0] != "?s\t?o" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "<http://x/a>\t<http://x/b>" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "<http://x/c>\t" {
		t.Errorf("unbound row = %q", lines[2])
	}
	if strings.Count(lines[3], "\t") != 1 {
		t.Errorf("literal tabs not escaped: %q", lines[3])
	}
	if !strings.Contains(lines[3], `\"`) {
		t.Errorf("literal quotes not escaped: %q", lines[3])
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
		ok     bool
	}{
		{"", "json", true},
		{"application/sparql-results+json", "json", true},
		{"application/sparql-results+xml", "xml", true},
		{"text/csv", "csv", true},
		{"text/tab-separated-values", "tsv", true},
		{"*/*", "json", true},
		{"text/*", "csv", true},
		{"text/html, application/xml;q=0.9, */*;q=0.1", "xml", true},
		{"text/csv;q=0.5, application/sparql-results+json;q=0.9", "json", true},
		{"application/json; q=0", "", false},
		{"image/png", "", false},
		{"image/png, */*;q=0.2", "json", true},
		// A wildcard must not resurrect a format excluded with q=0.
		{"application/sparql-results+json;q=0, */*", "xml", true},
		{"text/*;q=0, */*", "json", true},
		{"*/*;q=0", "", false},
	}
	for _, c := range cases {
		f, ok := Negotiate(c.accept)
		if ok != c.ok || (ok && f.Name != c.want) {
			t.Errorf("Negotiate(%q) = (%q, %v), want (%q, %v)", c.accept, f.Name, ok, c.want, c.ok)
		}
	}
}

func TestIsIRI(t *testing.T) {
	for _, v := range []string{"http://x/a", "urn:isbn:123", "mailto:a@b"} {
		if !isIRI(v) {
			t.Errorf("isIRI(%q) = false", v)
		}
	}
	for _, v := range []string{"", "plain text", "42", ":nope", "has space:x", "note: hello world", "a:b\tc"} {
		if isIRI(v) {
			t.Errorf("isIRI(%q) = true", v)
		}
	}
}

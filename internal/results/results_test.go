package results

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/rdf"
)

var testVars = []string{"s", "o"}

var testRows = []map[string]rdf.Term{
	{"s": rdf.NewIRI("http://x/a"), "o": rdf.NewIRI("http://x/b")},
	{"s": rdf.NewIRI("http://x/c")}, // o unbound
	{"s": rdf.NewIRI("http://x/d"), "o": rdf.NewLiteral(`plain "text"` + "\twith\ttabs")},
	{"s": rdf.NewBlank("b0"), "o": rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
	{"s": rdf.NewIRI("http://x/e"), "o": rdf.NewLangLiteral("bonjour", "fr")},
	{"s": rdf.NewIRI("http://x/f"), "o": rdf.NewLiteral("")}, // bound empty literal
}

func render(t *testing.T, name string) string {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%q) failed", name)
	}
	var sb strings.Builder
	if err := WriteAll(f, &sb, testVars, testRows); err != nil {
		t.Fatalf("WriteAll(%s): %v", name, err)
	}
	return sb.String()
}

func renderBool(t *testing.T, name string, v bool) string {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%q) failed", name)
	}
	var sb strings.Builder
	if err := WriteBool(f, &sb, v); err != nil {
		t.Fatalf("WriteBool(%s): %v", name, err)
	}
	return sb.String()
}

type jsonBinding struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype"`
	Lang     string `json:"xml:lang"`
}

func TestJSONFormat(t *testing.T) {
	out := render(t, "json")
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]jsonBinding `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "s" {
		t.Errorf("head.vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != len(testRows) {
		t.Fatalf("bindings = %d, want %d", len(doc.Results.Bindings), len(testRows))
	}
	b0 := doc.Results.Bindings[0]
	if b0["s"].Type != "uri" || b0["s"].Value != "http://x/a" {
		t.Errorf("binding 0 s = %+v", b0["s"])
	}
	if _, present := doc.Results.Bindings[1]["o"]; present {
		t.Error("unbound variable serialized in JSON binding")
	}
	if got := doc.Results.Bindings[2]["o"]; got.Type != "literal" || got.Datatype != "" || got.Lang != "" {
		t.Errorf("plain literal = %+v", got)
	}
	if got := doc.Results.Bindings[3]["s"]; got.Type != "bnode" || got.Value != "b0" {
		t.Errorf("bnode binding = %+v", got)
	}
	if got := doc.Results.Bindings[3]["o"]; got.Type != "literal" ||
		got.Datatype != "http://www.w3.org/2001/XMLSchema#integer" || got.Value != "42" {
		t.Errorf("typed literal = %+v", got)
	}
	if got := doc.Results.Bindings[4]["o"]; got.Type != "literal" || got.Lang != "fr" || got.Value != "bonjour" {
		t.Errorf("lang literal = %+v", got)
	}
	if got, present := doc.Results.Bindings[5]["o"]; !present || got.Value != "" {
		t.Errorf("bound empty literal must be present: %+v (present=%v)", got, present)
	}
}

// TestJSONGolden pins the exact serialization of the worked example from
// the SPARQL 1.1 Query Results JSON Format spec (typed literal, language
// tag, blank node, unbound variable).
func TestJSONGolden(t *testing.T) {
	f, _ := Lookup("json")
	var sb strings.Builder
	rows := []map[string]rdf.Term{
		{
			"book":  rdf.NewIRI("http://example.org/book/book6"),
			"title": rdf.NewLangLiteral("Harry Potter", "en"),
		},
		{
			"book":  rdf.NewBlank("r1"),
			"price": rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		},
	}
	if err := WriteAll(f, &sb, []string{"book", "title", "price"}, rows); err != nil {
		t.Fatal(err)
	}
	want := `{"head":{"vars":["book","title","price"]},"results":{"bindings":[` +
		`{"book":{"type":"uri","value":"http://example.org/book/book6"},` +
		`"title":{"type":"literal","xml:lang":"en","value":"Harry Potter"}},` +
		`{"book":{"type":"bnode","value":"r1"},` +
		`"price":{"type":"literal","datatype":"http://www.w3.org/2001/XMLSchema#integer","value":"42"}}` +
		"]}}\n"
	if got := sb.String(); got != want {
		t.Errorf("JSON golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestXMLFormat(t *testing.T) {
	out := render(t, "xml")
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Head    struct {
			Variables []struct {
				Name string `xml:"name,attr"`
			} `xml:"variable"`
		} `xml:"head"`
		Results struct {
			Results []struct {
				Bindings []struct {
					Name    string `xml:"name,attr"`
					URI     string `xml:"uri"`
					BNode   string `xml:"bnode"`
					Literal struct {
						Datatype string `xml:"datatype,attr"`
						Lang     string `xml:"lang,attr"`
						Value    string `xml:",chardata"`
					} `xml:"literal"`
				} `xml:"binding"`
			} `xml:"result"`
		} `xml:"results"`
	}
	if err := xml.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid XML: %v\n%s", err, out)
	}
	if len(doc.Head.Variables) != 2 {
		t.Errorf("variables = %+v", doc.Head.Variables)
	}
	if len(doc.Results.Results) != len(testRows) {
		t.Fatalf("results = %d, want %d", len(doc.Results.Results), len(testRows))
	}
	if got := doc.Results.Results[0].Bindings[0].URI; got != "http://x/a" {
		t.Errorf("result 0 uri = %q", got)
	}
	if n := len(doc.Results.Results[1].Bindings); n != 1 {
		t.Errorf("row with unbound var has %d bindings, want 1", n)
	}
	if got := doc.Results.Results[2].Bindings[1].Literal.Value; !strings.Contains(got, "plain") {
		t.Errorf("literal binding = %q", got)
	}
	if got := doc.Results.Results[3].Bindings[0].BNode; got != "b0" {
		t.Errorf("bnode = %q", got)
	}
	if got := doc.Results.Results[3].Bindings[1].Literal.Datatype; got != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("datatype attr = %q", got)
	}
	if got := doc.Results.Results[4].Bindings[1].Literal.Lang; got != "fr" {
		t.Errorf("xml:lang attr = %q", got)
	}
}

func TestCSVFormat(t *testing.T) {
	out := render(t, "csv")
	lines := strings.Split(strings.TrimRight(out, "\r\n"), "\r\n")
	if len(lines) != 1+len(testRows) {
		t.Fatalf("lines = %d, want %d (header + rows):\n%q", len(lines), 1+len(testRows), out)
	}
	if lines[0] != "s,o" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "http://x/a,http://x/b" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "http://x/c," {
		t.Errorf("unbound row = %q", lines[2])
	}
	if !strings.Contains(lines[3], `"`) {
		t.Errorf("row with quotes not CSV-escaped: %q", lines[3])
	}
	// CSV flattens typed literals to their lexical form and keeps blank
	// labels, per the SPARQL 1.1 CSV spec.
	if lines[4] != "_:b0,42" {
		t.Errorf("typed row = %q", lines[4])
	}
	if lines[5] != "http://x/e,bonjour" {
		t.Errorf("lang row = %q", lines[5])
	}
}

func TestTSVFormat(t *testing.T) {
	out := render(t, "tsv")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(testRows) {
		t.Fatalf("lines = %d, want %d:\n%q", len(lines), 1+len(testRows), out)
	}
	if lines[0] != "?s\t?o" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "<http://x/a>\t<http://x/b>" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "<http://x/c>\t" {
		t.Errorf("unbound row = %q", lines[2])
	}
	if strings.Count(lines[3], "\t") != 1 {
		t.Errorf("literal tabs not escaped: %q", lines[3])
	}
	if !strings.Contains(lines[3], `\"`) {
		t.Errorf("literal quotes not escaped: %q", lines[3])
	}
	// TSV carries full Turtle terms: typed and tagged literals keep their
	// annotations, blank nodes their labels.
	if lines[4] != "_:b0\t\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>" {
		t.Errorf("typed row = %q", lines[4])
	}
	if lines[5] != "<http://x/e>\t\"bonjour\"@fr" {
		t.Errorf("lang row = %q", lines[5])
	}
	if lines[6] != "<http://x/f>\t\"\"" {
		t.Errorf("bound empty literal row = %q", lines[6])
	}
}

func TestBooleanDocuments(t *testing.T) {
	if got := renderBool(t, "json", true); got != `{"head":{},"boolean":true}`+"\n" {
		t.Errorf("json bool = %q", got)
	}
	if got := renderBool(t, "json", false); got != `{"head":{},"boolean":false}`+"\n" {
		t.Errorf("json bool = %q", got)
	}
	xmlOut := renderBool(t, "xml", true)
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Boolean bool     `xml:"boolean"`
	}
	if err := xml.Unmarshal([]byte(xmlOut), &doc); err != nil {
		t.Fatalf("invalid boolean XML: %v\n%s", err, xmlOut)
	}
	if !doc.Boolean {
		t.Errorf("xml boolean = %v", doc.Boolean)
	}
	if got := renderBool(t, "csv", false); strings.TrimSpace(got) != "false" {
		t.Errorf("csv bool = %q", got)
	}
	if got := renderBool(t, "tsv", true); got != "true\n" {
		t.Errorf("tsv bool = %q", got)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
		ok     bool
	}{
		{"", "json", true},
		{"application/sparql-results+json", "json", true},
		{"application/sparql-results+xml", "xml", true},
		{"text/csv", "csv", true},
		{"text/tab-separated-values", "tsv", true},
		{"*/*", "json", true},
		{"text/*", "csv", true},
		{"text/html, application/xml;q=0.9, */*;q=0.1", "xml", true},
		{"text/csv;q=0.5, application/sparql-results+json;q=0.9", "json", true},
		{"application/json; q=0", "", false},
		{"image/png", "", false},
		{"image/png, */*;q=0.2", "json", true},
		// A wildcard must not resurrect a format excluded with q=0.
		{"application/sparql-results+json;q=0, */*", "xml", true},
		{"text/*;q=0, */*", "json", true},
		{"*/*;q=0", "", false},
	}
	for _, c := range cases {
		f, ok := Negotiate(c.accept)
		if ok != c.ok || (ok && f.Name != c.want) {
			t.Errorf("Negotiate(%q) = (%q, %v), want (%q, %v)", c.accept, f.Name, ok, c.want, c.ok)
		}
	}
}

package results

import (
	"sort"
	"strconv"
	"strings"
)

// mediaTypes maps concrete media types a client may request to format
// names. Wildcards (*/*, application/*, text/*) are handled separately.
var mediaTypes = map[string]string{
	"application/sparql-results+json": "json",
	"application/json":                "json",
	"application/sparql-results+xml":  "xml",
	"application/xml":                 "xml",
	"text/xml":                        "xml",
	"text/csv":                        "csv",
	"text/tab-separated-values":       "tsv",
}

// acceptClause is one parsed element of an Accept header.
type acceptClause struct {
	mediaType string
	q         float64
	order     int
}

// Negotiate selects a result format for an Accept header per RFC 9110
// semantics: clauses are ranked by q-value (then header order), and the
// best clause naming a supported type wins. Wildcards match the server
// preference order (JSON first). An empty header means no preference:
// JSON. ok is false when the client acceptably rules out every supported
// format — the caller should answer 406.
func Negotiate(accept string) (f Format, ok bool) {
	accept = strings.TrimSpace(accept)
	if accept == "" {
		return Formats[0], true
	}
	clauses := parseAccept(accept)
	if len(clauses) == 0 {
		return Formats[0], true
	}
	sort.SliceStable(clauses, func(i, j int) bool {
		if clauses[i].q != clauses[j].q {
			return clauses[i].q > clauses[j].q
		}
		return clauses[i].order < clauses[j].order
	})
	// q=0 marks a media range as explicitly not acceptable; a wildcard
	// clause must never resurrect a format excluded that way.
	excluded := make(map[string]bool)
	for _, c := range clauses {
		if c.q <= 0 {
			for _, name := range expandMediaType(c.mediaType) {
				excluded[name] = true
			}
		}
	}
	for _, c := range clauses {
		if c.q <= 0 {
			continue
		}
		for _, name := range expandMediaType(c.mediaType) {
			if !excluded[name] {
				f, _ := Lookup(name)
				return f, true
			}
		}
	}
	return Format{}, false
}

// expandMediaType resolves one media range to the format names it
// covers, in server preference order.
func expandMediaType(mt string) []string {
	if name, ok := mediaTypes[mt]; ok {
		return []string{name}
	}
	switch mt {
	case "*/*":
		return []string{"json", "xml", "csv", "tsv"}
	case "application/*":
		return []string{"json", "xml"}
	case "text/*":
		return []string{"csv", "tsv"}
	}
	return nil
}

// parseAccept splits an Accept header into clauses with q-values.
func parseAccept(header string) []acceptClause {
	var out []acceptClause
	for i, part := range strings.Split(header, ",") {
		fields := strings.Split(part, ";")
		mt := strings.ToLower(strings.TrimSpace(fields[0]))
		if mt == "" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			p = strings.TrimSpace(p)
			if v, found := strings.CutPrefix(p, "q="); found {
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					q = parsed
				}
			}
		}
		out = append(out, acceptClause{mediaType: mt, q: q, order: i})
	}
	return out
}

// Package results serializes SPARQL query solutions in the W3C SPARQL 1.1
// Query Results formats: JSON, XML, CSV and TSV — both the variable-
// binding documents of SELECT and the boolean documents of ASK.
//
// Serialization is term-driven: every binding is a typed rdf.Term, so the
// writers emit `"type":"uri"|"literal"|"bnode"`, `"datatype"` and
// `"xml:lang"` from the term itself instead of guessing from the value
// text, and an unbound variable (absent from the row) is omitted rather
// than rendered as an empty string.
//
// The writers are streaming: rows are encoded and flushed incrementally
// against the engine's row-callback API, so arbitrarily large result sets
// are served in constant memory. A Writer's lifecycle is
// Begin(vars) → Row(...)* → End().
package results

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"io"
	"strings"

	"repro/internal/rdf"
)

// Writer serializes one result set. Implementations are not safe for
// concurrent use; drive one writer per response.
type Writer interface {
	// Begin emits the header for the projected variable names (without '?').
	Begin(vars []string) error
	// Row emits one solution. A variable that is absent from the map is
	// unbound in this row; a present term is emitted typed, even when its
	// lexical form is empty.
	Row(row map[string]rdf.Term) error
	// End emits the trailer and flushes buffered output.
	End() error
}

// BoolWriter additionally serializes the boolean result document of an
// ASK query. All built-in formats implement it.
type BoolWriter interface {
	// Bool emits a complete boolean results document and flushes it. Use
	// instead of Begin/Row/End, not alongside.
	Bool(value bool) error
}

// Format identifies one supported serialization.
type Format struct {
	// Name is the short format name: "json", "xml", "csv" or "tsv".
	Name string
	// ContentType is the response media type, with charset where customary.
	ContentType string
	// New constructs a streaming Writer targeting w.
	New func(w io.Writer) Writer
}

// Formats lists the supported serializations, most preferred first. The
// first entry (JSON) is the default when a client states no preference.
var Formats = []Format{
	{Name: "json", ContentType: "application/sparql-results+json", New: func(w io.Writer) Writer { return newJSON(w) }},
	{Name: "xml", ContentType: "application/sparql-results+xml", New: func(w io.Writer) Writer { return newXML(w) }},
	{Name: "csv", ContentType: "text/csv; charset=utf-8", New: func(w io.Writer) Writer { return newCSV(w) }},
	{Name: "tsv", ContentType: "text/tab-separated-values; charset=utf-8", New: func(w io.Writer) Writer { return newTSV(w) }},
}

// Lookup resolves a short format name (case-insensitive) to its Format.
func Lookup(name string) (Format, bool) {
	for _, f := range Formats {
		if strings.EqualFold(name, f.Name) {
			return f, true
		}
	}
	return Format{}, false
}

// --- JSON (application/sparql-results+json) ---

type jsonWriter struct {
	w     *bufio.Writer
	vars  []string
	first bool
}

func newJSON(w io.Writer) *jsonWriter { return &jsonWriter{w: bufio.NewWriter(w)} }

func (j *jsonWriter) Begin(vars []string) error {
	j.vars = vars
	j.first = true
	j.w.WriteString(`{"head":{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			j.w.WriteByte(',')
		}
		writeJSONString(j.w, v)
	}
	_, err := j.w.WriteString(`]},"results":{"bindings":[`)
	return err
}

func (j *jsonWriter) Row(row map[string]rdf.Term) error {
	if j.first {
		j.first = false
	} else {
		j.w.WriteByte(',')
	}
	j.w.WriteByte('{')
	n := 0
	for _, v := range j.vars {
		t, ok := row[v]
		if !ok {
			continue // unbound: the binding is absent, not empty
		}
		if n > 0 {
			j.w.WriteByte(',')
		}
		n++
		writeJSONString(j.w, v)
		switch t.Kind {
		case rdf.Literal:
			j.w.WriteString(`:{"type":"literal"`)
			if t.Lang != "" {
				j.w.WriteString(`,"xml:lang":`)
				writeJSONString(j.w, t.Lang)
			} else if t.Datatype != "" {
				j.w.WriteString(`,"datatype":`)
				writeJSONString(j.w, t.Datatype)
			}
		case rdf.Blank:
			j.w.WriteString(`:{"type":"bnode"`)
		default:
			j.w.WriteString(`:{"type":"uri"`)
		}
		j.w.WriteString(`,"value":`)
		writeJSONString(j.w, bindingValue(t))
		j.w.WriteByte('}')
	}
	_, err := j.w.WriteString("}")
	return err
}

func (j *jsonWriter) End() error {
	j.w.WriteString("]}}\n")
	return j.w.Flush()
}

func (j *jsonWriter) Bool(value bool) error {
	j.w.WriteString(`{"head":{},"boolean":`)
	if value {
		j.w.WriteString("true}")
	} else {
		j.w.WriteString("false}")
	}
	j.w.WriteString("\n")
	return j.w.Flush()
}

func writeJSONString(w *bufio.Writer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b = []byte(`""`)
	}
	w.Write(b)
}

// bindingValue is a term's document value: the IRI, the blank label
// without its "_:" prefix (the JSON/XML formats carry the kind out of
// band), or the literal's lexical form.
func bindingValue(t rdf.Term) string {
	if t.Kind == rdf.Blank {
		return strings.TrimPrefix(t.Value, "_:")
	}
	return t.Value
}

// --- XML (application/sparql-results+xml) ---

type xmlWriter struct {
	w    *bufio.Writer
	vars []string
}

func newXML(w io.Writer) *xmlWriter { return &xmlWriter{w: bufio.NewWriter(w)} }

func (x *xmlWriter) Begin(vars []string) error {
	x.vars = vars
	x.w.WriteString(xml.Header)
	x.w.WriteString(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n<head>\n")
	for _, v := range vars {
		x.w.WriteString(`  <variable name="`)
		xmlEscape(x.w, v)
		x.w.WriteString("\"/>\n")
	}
	_, err := x.w.WriteString("</head>\n<results>\n")
	return err
}

func (x *xmlWriter) Row(row map[string]rdf.Term) error {
	x.w.WriteString("  <result>\n")
	for _, v := range x.vars {
		t, ok := row[v]
		if !ok {
			continue
		}
		x.w.WriteString(`    <binding name="`)
		xmlEscape(x.w, v)
		x.w.WriteString(`">`)
		switch t.Kind {
		case rdf.Literal:
			switch {
			case t.Lang != "":
				x.w.WriteString(`<literal xml:lang="`)
				xmlEscape(x.w, t.Lang)
				x.w.WriteString(`">`)
			case t.Datatype != "":
				x.w.WriteString(`<literal datatype="`)
				xmlEscape(x.w, t.Datatype)
				x.w.WriteString(`">`)
			default:
				x.w.WriteString("<literal>")
			}
			xmlEscape(x.w, t.Value)
			x.w.WriteString("</literal>")
		case rdf.Blank:
			x.w.WriteString("<bnode>")
			xmlEscape(x.w, bindingValue(t))
			x.w.WriteString("</bnode>")
		default:
			x.w.WriteString("<uri>")
			xmlEscape(x.w, t.Value)
			x.w.WriteString("</uri>")
		}
		x.w.WriteString("</binding>\n")
	}
	_, err := x.w.WriteString("  </result>\n")
	return err
}

func (x *xmlWriter) End() error {
	x.w.WriteString("</results>\n</sparql>\n")
	return x.w.Flush()
}

func (x *xmlWriter) Bool(value bool) error {
	x.w.WriteString(xml.Header)
	x.w.WriteString(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n<head/>\n")
	if value {
		x.w.WriteString("<boolean>true</boolean>\n")
	} else {
		x.w.WriteString("<boolean>false</boolean>\n")
	}
	x.w.WriteString("</sparql>\n")
	return x.w.Flush()
}

func xmlEscape(w *bufio.Writer, s string) {
	xml.EscapeText(w, []byte(s)) //nolint:errcheck — surfaces at Flush
}

// --- CSV (text/csv, RFC 4180) ---

type csvWriter struct {
	w    *csv.Writer
	vars []string
	rec  []string
}

func newCSV(w io.Writer) *csvWriter {
	cw := csv.NewWriter(w)
	cw.UseCRLF = true // RFC 4180 line endings, per the SPARQL CSV spec
	return &csvWriter{w: cw}
}

func (c *csvWriter) Begin(vars []string) error {
	c.vars = vars
	c.rec = make([]string, len(vars))
	return c.w.Write(vars)
}

// Row emits the SPARQL CSV form: IRIs bare, blank nodes with their _:
// label, literals as their lexical form (datatype and language are not
// representable in CSV, per the spec); unbound variables are empty
// fields. encoding/csv quotes fields containing separators, quotes or
// newlines, per RFC 4180.
func (c *csvWriter) Row(row map[string]rdf.Term) error {
	for i, v := range c.vars {
		t, ok := row[v]
		if !ok {
			c.rec[i] = ""
			continue
		}
		c.rec[i] = t.Value
	}
	return c.w.Write(c.rec)
}

func (c *csvWriter) End() error {
	c.w.Flush()
	return c.w.Error()
}

func (c *csvWriter) Bool(value bool) error {
	if err := c.w.Write([]string{boolLexical(value)}); err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

// --- TSV (text/tab-separated-values) ---

type tsvWriter struct {
	w    *bufio.Writer
	vars []string
}

func newTSV(w io.Writer) *tsvWriter { return &tsvWriter{w: bufio.NewWriter(w)} }

func (t *tsvWriter) Begin(vars []string) error {
	t.vars = vars
	for i, v := range vars {
		if i > 0 {
			t.w.WriteByte('\t')
		}
		t.w.WriteByte('?')
		t.w.WriteString(v)
	}
	_, err := t.w.WriteString("\n")
	return err
}

// Row emits the SPARQL TSV form: terms in full Turtle syntax — IRIs in
// angle brackets, blank nodes as _:labels, literals quoted with escapes
// and their @lang / ^^<datatype> suffix. Unbound variables are empty
// fields.
func (t *tsvWriter) Row(row map[string]rdf.Term) error {
	for i, v := range t.vars {
		if i > 0 {
			t.w.WriteByte('\t')
		}
		term, ok := row[v]
		if !ok {
			continue // unbound: empty field
		}
		switch term.Kind {
		case rdf.Literal:
			writeTSVLiteral(t.w, term.Value)
			if term.Lang != "" {
				t.w.WriteByte('@')
				t.w.WriteString(term.Lang)
			} else if term.Datatype != "" {
				t.w.WriteString("^^<")
				t.w.WriteString(term.Datatype)
				t.w.WriteByte('>')
			}
		case rdf.Blank:
			t.w.WriteString(term.Value)
		default:
			t.w.WriteByte('<')
			t.w.WriteString(term.Value)
			t.w.WriteByte('>')
		}
	}
	_, err := t.w.WriteString("\n")
	return err
}

func (t *tsvWriter) End() error { return t.w.Flush() }

func (t *tsvWriter) Bool(value bool) error {
	t.w.WriteString(boolLexical(value))
	t.w.WriteString("\n")
	return t.w.Flush()
}

func boolLexical(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// writeTSVLiteral writes a quoted Turtle-style literal with the escapes
// the SPARQL TSV spec requires (tab, newline, carriage return, quote,
// backslash).
func writeTSVLiteral(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\t':
			w.WriteString(`\t`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		default:
			w.WriteByte(c)
		}
	}
	w.WriteByte('"')
}

// WriteAll serializes a fully materialized result set — the cached-result
// fast path. vars is the projection; rows are the solutions in order.
func WriteAll(f Format, w io.Writer, vars []string, rows []map[string]rdf.Term) error {
	sw := f.New(w)
	if err := sw.Begin(vars); err != nil {
		return err
	}
	for _, r := range rows {
		if err := sw.Row(r); err != nil {
			return err
		}
	}
	return sw.End()
}

// WriteBool serializes a boolean (ASK) results document.
func WriteBool(f Format, w io.Writer, value bool) error {
	return f.New(w).(BoolWriter).Bool(value)
}

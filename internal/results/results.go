// Package results serializes SPARQL query solutions in the W3C SPARQL 1.1
// Query Results formats: JSON, XML, CSV and TSV.
//
// The writers are streaming: rows are encoded and flushed incrementally
// against the engine's row-callback API, so arbitrarily large result sets
// are served in constant memory. A Writer's lifecycle is
// Begin(vars) → Row(...)* → End().
package results

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"io"
	"strings"
)

// Writer serializes one result set. Implementations are not safe for
// concurrent use; drive one writer per response.
type Writer interface {
	// Begin emits the header for the projected variable names (without '?').
	Begin(vars []string) error
	// Row emits one solution. A variable that is absent from the map or
	// mapped to the empty string is unbound in this row.
	Row(row map[string]string) error
	// End emits the trailer and flushes buffered output.
	End() error
}

// Format identifies one supported serialization.
type Format struct {
	// Name is the short format name: "json", "xml", "csv" or "tsv".
	Name string
	// ContentType is the response media type, with charset where customary.
	ContentType string
	// New constructs a streaming Writer targeting w.
	New func(w io.Writer) Writer
}

// Formats lists the supported serializations, most preferred first. The
// first entry (JSON) is the default when a client states no preference.
var Formats = []Format{
	{Name: "json", ContentType: "application/sparql-results+json", New: func(w io.Writer) Writer { return newJSON(w) }},
	{Name: "xml", ContentType: "application/sparql-results+xml", New: func(w io.Writer) Writer { return newXML(w) }},
	{Name: "csv", ContentType: "text/csv; charset=utf-8", New: func(w io.Writer) Writer { return newCSV(w) }},
	{Name: "tsv", ContentType: "text/tab-separated-values; charset=utf-8", New: func(w io.Writer) Writer { return newTSV(w) }},
}

// Lookup resolves a short format name (case-insensitive) to its Format.
func Lookup(name string) (Format, bool) {
	for _, f := range Formats {
		if strings.EqualFold(name, f.Name) {
			return f, true
		}
	}
	return Format{}, false
}

// isIRI reports whether a bound value looks like an absolute IRI: an
// RFC 3986 scheme, a ':', and a remainder free of whitespace and the
// characters IRIs forbid. AMbER binds variables to multigraph vertices,
// which are IRIs, but values decoded from data may be plain strings;
// those serialize as literals.
func isIRI(v string) bool {
	colon := -1
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == ':' {
			colon = i
			break
		}
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case i > 0 && (c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'):
		default:
			return false
		}
	}
	if colon <= 0 {
		return false
	}
	for i := colon + 1; i < len(v); i++ {
		switch c := v[i]; {
		case c <= ' ', c == '<', c == '>', c == '"', c == '{', c == '}', c == '|', c == '\\', c == '^', c == '`':
			return false
		}
	}
	return true
}

// --- JSON (application/sparql-results+json) ---

type jsonWriter struct {
	w     *bufio.Writer
	vars  []string
	first bool
}

func newJSON(w io.Writer) *jsonWriter { return &jsonWriter{w: bufio.NewWriter(w)} }

func (j *jsonWriter) Begin(vars []string) error {
	j.vars = vars
	j.first = true
	j.w.WriteString(`{"head":{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			j.w.WriteByte(',')
		}
		writeJSONString(j.w, v)
	}
	_, err := j.w.WriteString(`]},"results":{"bindings":[`)
	return err
}

func (j *jsonWriter) Row(row map[string]string) error {
	if j.first {
		j.first = false
	} else {
		j.w.WriteByte(',')
	}
	j.w.WriteByte('{')
	n := 0
	for _, v := range j.vars {
		val := row[v]
		if val == "" {
			continue
		}
		if n > 0 {
			j.w.WriteByte(',')
		}
		n++
		writeJSONString(j.w, v)
		if isIRI(val) {
			j.w.WriteString(`:{"type":"uri","value":`)
		} else {
			j.w.WriteString(`:{"type":"literal","value":`)
		}
		writeJSONString(j.w, val)
		j.w.WriteByte('}')
	}
	_, err := j.w.WriteString("}")
	return err
}

func (j *jsonWriter) End() error {
	j.w.WriteString("]}}\n")
	return j.w.Flush()
}

func writeJSONString(w *bufio.Writer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b = []byte(`""`)
	}
	w.Write(b)
}

// --- XML (application/sparql-results+xml) ---

type xmlWriter struct {
	w    *bufio.Writer
	vars []string
}

func newXML(w io.Writer) *xmlWriter { return &xmlWriter{w: bufio.NewWriter(w)} }

func (x *xmlWriter) Begin(vars []string) error {
	x.vars = vars
	x.w.WriteString(xml.Header)
	x.w.WriteString(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n<head>\n")
	for _, v := range vars {
		x.w.WriteString(`  <variable name="`)
		xmlEscape(x.w, v)
		x.w.WriteString("\"/>\n")
	}
	_, err := x.w.WriteString("</head>\n<results>\n")
	return err
}

func (x *xmlWriter) Row(row map[string]string) error {
	x.w.WriteString("  <result>\n")
	for _, v := range x.vars {
		val := row[v]
		if val == "" {
			continue
		}
		x.w.WriteString(`    <binding name="`)
		xmlEscape(x.w, v)
		x.w.WriteString(`">`)
		if isIRI(val) {
			x.w.WriteString("<uri>")
			xmlEscape(x.w, val)
			x.w.WriteString("</uri>")
		} else {
			x.w.WriteString("<literal>")
			xmlEscape(x.w, val)
			x.w.WriteString("</literal>")
		}
		x.w.WriteString("</binding>\n")
	}
	_, err := x.w.WriteString("  </result>\n")
	return err
}

func (x *xmlWriter) End() error {
	x.w.WriteString("</results>\n</sparql>\n")
	return x.w.Flush()
}

func xmlEscape(w *bufio.Writer, s string) {
	xml.EscapeText(w, []byte(s)) //nolint:errcheck — surfaces at Flush
}

// --- CSV (text/csv, RFC 4180) ---

type csvWriter struct {
	w    *csv.Writer
	vars []string
	rec  []string
}

func newCSV(w io.Writer) *csvWriter {
	cw := csv.NewWriter(w)
	cw.UseCRLF = true // RFC 4180 line endings, per the SPARQL CSV spec
	return &csvWriter{w: cw}
}

func (c *csvWriter) Begin(vars []string) error {
	c.vars = vars
	c.rec = make([]string, len(vars))
	return c.w.Write(vars)
}

func (c *csvWriter) Row(row map[string]string) error {
	for i, v := range c.vars {
		c.rec[i] = row[v]
	}
	return c.w.Write(c.rec)
}

func (c *csvWriter) End() error {
	c.w.Flush()
	return c.w.Error()
}

// --- TSV (text/tab-separated-values) ---

type tsvWriter struct {
	w    *bufio.Writer
	vars []string
}

func newTSV(w io.Writer) *tsvWriter { return &tsvWriter{w: bufio.NewWriter(w)} }

func (t *tsvWriter) Begin(vars []string) error {
	t.vars = vars
	for i, v := range vars {
		if i > 0 {
			t.w.WriteByte('\t')
		}
		t.w.WriteByte('?')
		t.w.WriteString(v)
	}
	_, err := t.w.WriteString("\n")
	return err
}

func (t *tsvWriter) Row(row map[string]string) error {
	for i, v := range t.vars {
		if i > 0 {
			t.w.WriteByte('\t')
		}
		val := row[v]
		if val == "" {
			continue // unbound: empty field
		}
		if isIRI(val) {
			t.w.WriteByte('<')
			t.w.WriteString(val)
			t.w.WriteByte('>')
		} else {
			writeTSVLiteral(t.w, val)
		}
	}
	_, err := t.w.WriteString("\n")
	return err
}

func (t *tsvWriter) End() error { return t.w.Flush() }

// writeTSVLiteral writes a quoted Turtle-style literal with the escapes
// the SPARQL TSV spec requires (tab, newline, carriage return, quote,
// backslash).
func writeTSVLiteral(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\t':
			w.WriteString(`\t`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		default:
			w.WriteByte(c)
		}
	}
	w.WriteByte('"')
}

// WriteAll serializes a fully materialized result set — the cached-result
// fast path. vars is the projection; rows are the solutions in order.
func WriteAll(f Format, w io.Writer, vars []string, rows []map[string]string) error {
	sw := f.New(w)
	if err := sw.Begin(vars); err != nil {
		return err
	}
	for _, r := range rows {
		if err := sw.Row(r); err != nil {
			return err
		}
	}
	return sw.End()
}

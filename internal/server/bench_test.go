package server

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	amber "repro"
	"repro/internal/datagen"
)

// benchServer builds a Server over a deterministic LUBM-style graph.
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	triples := datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7, Compact: true})
	var sb strings.Builder
	for _, t := range triples {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	db, err := amber.OpenString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return New(db, cfg)
}

const benchQuery = `SELECT ?x ?y WHERE { ?x <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?y . }`

func benchRequest(query string) *http.Request {
	v := url.Values{"query": {query}, "format": {"json"}}
	return httptest.NewRequest(http.MethodGet, "/sparql?"+v.Encode(), nil)
}

// BenchmarkServerCached measures the full handler path for a repeat
// query served from the result cache.
func BenchmarkServerCached(b *testing.B) {
	s := benchServer(b, Config{})
	warm := httptest.NewRecorder()
	s.ServeHTTP(warm, benchRequest(benchQuery))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup: %d %s", warm.Code, warm.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, benchRequest(benchQuery))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// BenchmarkServerUncached measures the handler path with result caching
// disabled: every request goes through admission, the plan cache, and a
// full engine execution plus streaming serialization.
func BenchmarkServerUncached(b *testing.B) {
	s := benchServer(b, Config{CacheSize: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, benchRequest(benchQuery))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// BenchmarkServerColdPlan additionally defeats the plan cache, forcing a
// re-parse and query-multigraph build per request — the true cold path.
func BenchmarkServerColdPlan(b *testing.B) {
	s := benchServer(b, Config{CacheSize: -1, PlanCacheSize: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, benchRequest(benchQuery))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// typedData covers every term shape the SPARQL results formats
// distinguish: an IRI object, a typed literal, a language-tagged
// literal, and a plain literal.
const typedData = `
<http://x/a> <http://p/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/a> <http://p/greet> "hi"@en .
<http://x/a> <http://p/knows> <http://x/b> .
<http://x/b> <http://p/name> "Bea" .
`

// TestTypedJSONResults is the acceptance test for the typed-term result
// model: a store containing "42"^^xsd:integer, "hi"@en and an IRI must
// serialize with correct type/datatype/xml:lang, and a variable unbound
// in a UNION branch must be absent from the binding object rather than
// an empty-string literal.
func TestTypedJSONResults(t *testing.T) {
	_, ts := newTestServer(t, typedData, Config{})
	q := `SELECT ?s ?v ?w WHERE {
		{ ?s <http://p/age> ?v } UNION { ?s <http://p/greet> ?v } UNION { ?s <http://p/knows> ?w }
	}`
	resp, body := get(t, queryURL(ts.URL, q), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Datatype string `json:"datatype"`
				Lang     string `json:"xml:lang"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("bindings = %d, want 3:\n%s", len(doc.Results.Bindings), body)
	}
	var sawTyped, sawLang, sawIRI, sawUnbound bool
	for _, b := range doc.Results.Bindings {
		if v, ok := b["v"]; ok {
			switch {
			case v.Datatype == "http://www.w3.org/2001/XMLSchema#integer":
				sawTyped = v.Type == "literal" && v.Value == "42" && v.Lang == ""
			case v.Lang == "en":
				sawLang = v.Type == "literal" && v.Value == "hi" && v.Datatype == ""
			case v.Value == "":
				t.Errorf("empty-string binding for ?v must not appear: %+v", v)
			}
		}
		if w, ok := b["w"]; ok {
			if w.Type != "uri" || w.Value != "http://x/b" {
				t.Errorf("IRI binding = %+v", w)
			}
			sawIRI = true
			if _, vPresent := b["v"]; vPresent {
				t.Errorf("?v bound in the knows branch: %+v", b)
			}
			sawUnbound = true
		}
	}
	if !sawTyped || !sawLang || !sawIRI || !sawUnbound {
		t.Errorf("coverage: typed=%v lang=%v iri=%v unbound=%v\n%s",
			sawTyped, sawLang, sawIRI, sawUnbound, body)
	}
}

func TestAskOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, typedData, Config{})
	resp, body := get(t, queryURL(ts.URL, `ASK { ?s <http://p/greet> "hi"@en }`), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if strings.TrimSpace(body) != `{"head":{},"boolean":true}` {
		t.Errorf("boolean body = %q", body)
	}
	// Second request hits the result cache.
	resp, body = get(t, queryURL(ts.URL, `ASK { ?s <http://p/greet> "hi"@en }`), nil)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("second ASK not cached (X-Cache=%q)", resp.Header.Get("X-Cache"))
	}
	if strings.TrimSpace(body) != `{"head":{},"boolean":true}` {
		t.Errorf("cached boolean body = %q", body)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
	// Negative answer, XML form.
	resp, body = get(t, queryURL(ts.URL, `ASK { ?s <http://p/greet> "hi" }`, "format", "xml"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xml ask status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "<boolean>false</boolean>") {
		t.Errorf("xml boolean body = %q", body)
	}
}

// slowSearchData builds a graph whose 3-hop chain query explores tens of
// millions of recursion branches while yielding no solution rows: every
// vertex has out-degree deg over edge type t, and the final pattern uses
// a predicate that exists but never completes a chain, so the engine
// searches for a long time in silence. Used to verify cancellation.
func slowSearchData(n, deg int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		for j := 1; j <= deg; j++ {
			fmt.Fprintf(&sb, "<http://v/%d> <http://p/t> <http://v/%d> .\n", i, (i*7+j*13)%n)
		}
	}
	return sb.String()
}

// TestCancelledRequestReleasesSlot is the regression test for the
// admission-control bug: before context plumbing, a client that went
// away left its execution slot (and a would-be cache entry) held for the
// full query timeout. Now the engine observes r.Context() and aborts
// promptly.
func TestCancelledRequestReleasesSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("slow search fixture")
	}
	s, ts := newTestServer(t, slowSearchData(400, 40), Config{MaxConcurrent: 1})

	// The chain enumerates tens of millions of embeddings; the FILTER
	// rejects every one of them after enumeration (it cannot prune the
	// search), so the request produces no output while the engine works.
	q := `SELECT ?d WHERE {
		?a <http://p/t> ?b . ?b <http://p/t> ?c . ?c <http://p/t> ?d .
		FILTER (?d = <http://v/nomatch>)
	}`
	reqCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, queryURL(ts.URL, q, "timeout", "30s"), nil)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()

	// Wait until the query holds the only execution slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	cancel() // client goes away
	<-done

	// The slot must free long before the 30s timeout would.
	for s.Stats().InFlight != 0 {
		if time.Since(start) > 3*time.Second {
			t.Fatalf("slot still held %v after client cancellation", time.Since(start))
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.Stats()
	if st.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", st.Cancelled)
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts counter = %d, want 0", st.Timeouts)
	}
	if st.ResultCacheEntries != 0 {
		t.Errorf("abandoned run wrote %d cache entries", st.ResultCacheEntries)
	}

	// The freed slot accepts new work immediately.
	resp, body := get(t, queryURL(ts.URL, `SELECT ?x WHERE { <http://v/1> <http://p/t> ?x }`), nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("follow-up status %d: %s", resp.StatusCode, body)
	}
}

package server

import (
	"compress/gzip"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// SetReady flips the /readyz verdict. cmd/amber-serve drops readiness
// around SIGHUP reloads so a load balancer drains the instance while the
// replacement snapshot loads; liveness (/healthz) is unaffected.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current /readyz verdict.
func (s *Server) Ready() bool { return s.ready.Load() }

// handleReadyz is the readiness probe: 503 while a reload or replay is
// in progress, 200 otherwise. Liveness (/healthz) stays unconditionally
// 200 — a draining server is still alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "loading\n") //nolint:errcheck
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}

// handleDebugQueries serves the in-flight registry as JSON, oldest
// first: every request currently holding an execution slot, with its
// age, live resource counters, and plan-level progress.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	views := s.inflight.Snapshot()
	if views == nil {
		views = []obs.InflightView{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"queries": views, "count": len(views)}) //nolint:errcheck
}

// cancelInflight delivers an admin cancellation to one in-flight
// request. The query's context is cancelled with obs.ErrAdminCancelled:
// the engine aborts at its next poll, the handler's error path frees the
// admission slot, and the client receives an error response.
func (s *Server) cancelInflight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.inflight.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no in-flight request %q", id), "")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{"cancelled": id}) //nolint:errcheck
}

// adminAuthorized checks the public listener's token gate: an exact
// match of Config.AdminToken in X-Admin-Token or a bearer Authorization
// header. With no token configured the public surface is always denied
// (the private AdminHandler listener is the alternative).
func (s *Server) adminAuthorized(r *http.Request) bool {
	tok := s.cfg.AdminToken
	if tok == "" {
		return false
	}
	h := r.Header.Get("X-Admin-Token")
	if h == "" {
		h = strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	}
	return subtle.ConstantTimeCompare([]byte(h), []byte(tok)) == 1
}

// handleAdminCancel is the token-gated cancel endpoint on the public
// listener.
func (s *Server) handleAdminCancel(w http.ResponseWriter, r *http.Request) {
	if !s.adminAuthorized(r) {
		if s.cfg.AdminToken == "" {
			writeError(w, http.StatusForbidden,
				"admin cancellation disabled on this listener; set -admin-token or use -admin-addr", "")
		} else {
			writeError(w, http.StatusUnauthorized, "missing or invalid admin token", "")
		}
		return
	}
	s.cancelInflight(w, r)
}

// AdminHandler returns the governance surface without the token gate,
// for binding to a private -admin-addr listener: the in-flight registry,
// unauthenticated cancel, and the health and readiness probes.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("POST /admin/queries/{id}/cancel", s.cancelInflight)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// cancelOutcome classifies an execution aborted with context.Canceled by
// the context's cancellation cause, bumps the matching counter, and
// returns the trace status plus the HTTP error to send. A zero code
// means the client went away — no response is owed.
func (s *Server) cancelOutcome(ctx context.Context) (status string, code int, msg string) {
	switch cause := context.Cause(ctx); {
	case errors.Is(cause, obs.ErrAdminCancelled):
		s.met.cancelledAdmin.Add(1)
		return "killed", http.StatusInternalServerError, "query cancelled by administrator"
	case errors.Is(cause, obs.ErrResourceLimit):
		s.met.resourceLimited.Add(1)
		return "resource_limit", http.StatusUnprocessableEntity,
			fmt.Sprintf("query exceeded resource limit (%d vertices visited)", s.cfg.MaxQueryVisits)
	default:
		s.met.cancelled.Add(1)
		return "cancelled", 0, ""
	}
}

// withGzip compresses the wrapped handler's response when the client
// advertises gzip support. Used for /metrics and /stats, whose text
// payloads are multi-KB of highly repetitive content.
func withGzip(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close() //nolint:errcheck
		h(gzipResponseWriter{ResponseWriter: w, gz: gz}, r)
	}
}

// gzipResponseWriter routes the body through the gzip stream while
// headers and status go to the underlying writer.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g gzipResponseWriter) Write(p []byte) (int, error) { return g.gz.Write(p) }

package server

import (
	"testing"
	"time"
)

func TestLatencyRingPercentiles(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	seq := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = ms(i + 1)
		}
		return out
	}
	cases := []struct {
		name    string
		samples []time.Duration
		qs      []float64
		want    []time.Duration
	}{
		{"empty", nil, []float64{0.5, 0.99}, []time.Duration{0, 0}},
		{"single", []time.Duration{ms(7)}, []float64{0, 0.5, 0.99, 1}, []time.Duration{ms(7), ms(7), ms(7), ms(7)}},
		// Two samples: nearest-rank ceil(q·n)−1 puts p50 on the first and
		// p99 on the last.
		{"two samples", []time.Duration{ms(1), ms(10)}, []float64{0.5, 0.99}, []time.Duration{ms(1), ms(10)}},
		// frac(q·n) < 0.5 is where the old round-half-up formula dropped a
		// rank: q=0.92 over 10 samples needs the 10th smallest (ceil(9.2)),
		// not the 9th (int(9.7)); likewise p99 over 52 needs the maximum.
		{"rank not rounded down", seq(10), []float64{0.92}, []time.Duration{ms(10)}},
		{"p99 of 52", seq(52), []float64{0.99}, []time.Duration{ms(52)}},
		// Three samples: p50 is the middle, p99 the max.
		{"three samples", []time.Duration{ms(30), ms(10), ms(20)}, []float64{0.5, 0.99}, []time.Duration{ms(20), ms(30)}},
		// 100 samples 1..100ms: p50 = 50ms, p90 = 90ms, p99 = 99ms.
		{"hundred", seq(100), []float64{0.5, 0.9, 0.99}, []time.Duration{ms(50), ms(90), ms(99)}},
		// Quantile edges clamp to the extremes.
		{"edges", seq(10), []float64{0, 1}, []time.Duration{ms(1), ms(10)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var r latencyRing
			for _, d := range c.samples {
				r.record(d)
			}
			got := r.percentiles(c.qs...)
			for i := range c.qs {
				if got[i] != c.want[i] {
					t.Errorf("q=%v: got %v, want %v", c.qs[i], got[i], c.want[i])
				}
			}
		})
	}
}

func TestLatencyRingWraps(t *testing.T) {
	var r latencyRing
	// Overfill the ring: only the newest len(buf) samples should remain.
	for i := 0; i < len(r.buf)+100; i++ {
		r.record(time.Duration(i) * time.Microsecond)
	}
	got := r.percentiles(0)[0] // minimum of the window
	if want := 100 * time.Microsecond; got != want {
		t.Errorf("after wrap, min = %v, want %v (oldest samples evicted)", got, want)
	}
	if r.n != len(r.buf) {
		t.Errorf("n = %d, want %d", r.n, len(r.buf))
	}
}

// Package server exposes an AMbER database over HTTP, speaking the
// SPARQL 1.1 Protocol: query via GET (?query=), POST form-encoded, or
// POST with an application/sparql-query body; updates via POST with an
// update= form field or an application/sparql-update body; results are
// serialized in the format negotiated from the Accept header (see
// internal/results).
//
// The server is built for sustained concurrent traffic:
//
//   - a bounded LRU cache of materialized results, keyed on normalized
//     query text plus result-shaping options plus the database epoch (so
//     a live update can never serve stale rows), serves repeat queries
//     without touching the engine;
//   - a bounded LRU of prepared plans (amber.Prepared, which embeds the
//     per-branch plan.Plan matching orders and precomputed candidate
//     constraints) lets cache-missed repeats skip parsing, translation
//     and planning; the cache lives inside the per-generation dbState, so
//     plans never outlive the database they were planned against;
//   - ?explain=1 (optionally with planner=cost|heuristic) returns the
//     query's matching plan — estimated vs. actual candidate
//     cardinalities per core vertex — instead of executing it;
//   - a semaphore caps concurrent engine executions, shedding load with
//     503 + Retry-After once the cap and queue wait are exhausted;
//   - per-query timeouts map to 503, malformed queries to 400;
//   - Swap atomically replaces the underlying database for zero-downtime
//     snapshot reload — in-flight queries finish against the database
//     they started on, and both caches roll over with the swap.
//
// Endpoints: the SPARQL endpoint at "/" and "/sparql", liveness at
// "/healthz", readiness at "/readyz", live serving counters plus
// database statistics at "/stats", the in-flight query table at
// "/debug/queries", and token-gated admin cancellation at
// "/admin/queries/{id}/cancel" (see also AdminHandler for the ungated
// private-listener variant).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	amber "repro"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/results"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// CacheSize bounds the result cache, in entries. Default 256;
	// negative disables result caching.
	CacheSize int
	// MaxCacheRows caps how many rows a single cached result may hold;
	// larger results are served streaming and never cached. Default 10000.
	MaxCacheRows int
	// PlanCacheSize bounds the prepared-plan cache, in entries. Default
	// 1024; negative disables plan caching.
	PlanCacheSize int
	// MaxConcurrent caps concurrent engine executions. Default
	// 2×GOMAXPROCS.
	MaxConcurrent int
	// QueueWait is how long a request may wait for an execution slot
	// before being shed with 503. Default 100ms; negative means no wait
	// (immediate shed when saturated).
	QueueWait time.Duration
	// DefaultTimeout bounds each query's execution when the request
	// carries no timeout parameter. Default 60s (the paper's constraint).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default 5m.
	MaxTimeout time.Duration
	// MaxQueryLength bounds accepted query text, in bytes. Default 1MiB.
	MaxQueryLength int
	// AllowLoad permits LOAD operations in update requests. Off by
	// default: LOAD reads local files, which an unauthenticated client
	// must not be able to do.
	AllowLoad bool
	// SlowQuery enables the slow-query log: every query whose total
	// handling time meets this threshold is written as one JSON line
	// (request ID, truncated query text, plan summary, stage timings,
	// engine counters, epoch) to SlowQueryOut. Zero disables it.
	SlowQuery time.Duration
	// SlowQueryOut receives slow-query records. Defaults to os.Stderr
	// when SlowQuery is set.
	SlowQueryOut io.Writer
	// TraceBuffer bounds the /debug/traces ring of recent request traces.
	// Default 128; negative disables the ring (the endpoint serves an
	// empty list).
	TraceBuffer int
	// DisableHistograms turns off the bucketed latency histograms. /stats
	// percentiles then fall back to the 1024-entry sliding-window ring,
	// and /metrics omits the *_duration_seconds families.
	DisableHistograms bool
	// AdminToken, when set, enables POST /admin/queries/{id}/cancel on
	// the public listener for requests carrying the token (X-Admin-Token
	// or bearer Authorization header). Without it the public cancel
	// surface is disabled; AdminHandler on a private -admin-addr listener
	// is the ungated alternative.
	AdminToken string
	// MaxQueryVisits caps the vertices a single query's match loop may
	// visit. A query whose resource meter crosses the cap is cancelled
	// and answered with 422. Zero means unlimited.
	MaxQueryVisits uint64
	// Replication, when set, makes this server a replication primary: its
	// /repl/ endpoints are mounted, its follower registry joins /stats,
	// and its amber_repl_* series join /metrics.
	Replication ReplPrimary
	// Follower, when set, puts the server in read-only follower mode:
	// updates answer 421 Misdirected Request with the primary's endpoint
	// in Location, reads stamp X-Epoch with the follower's applied epoch,
	// and X-Min-Epoch requests wait (bounded by MinEpochWait) for the
	// follower to catch up before answering.
	Follower ReplFollower
	// MinEpochWait bounds how long an X-Min-Epoch read may wait for the
	// follower to reach the requested epoch before answering 503.
	// Default 2s.
	MinEpochWait time.Duration
}

// ReplPrimary is the replication-primary surface the server mounts; see
// internal/repl.Primary. Defined as an interface so the server package
// does not depend on the replication implementation.
type ReplPrimary interface {
	Handler() http.Handler
	StatsSection() map[string]any
	RegisterMetrics(*obs.Registry)
}

// ReplFollower is the follower surface a read-only serving layer needs;
// see internal/repl.Follower.
type ReplFollower interface {
	PrimaryURL() string
	AppliedEpoch() uint64
	WaitEpoch(ctx context.Context, epoch uint64, timeout time.Duration) bool
	StatsSection() map[string]any
	RegisterMetrics(*obs.Registry)
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&c.CacheSize, 256)
	def(&c.MaxCacheRows, 10000)
	def(&c.PlanCacheSize, 1024)
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxQueryLength <= 0 {
		c.MaxQueryLength = 1 << 20
	}
	def(&c.TraceBuffer, 128)
	if c.SlowQuery > 0 && c.SlowQueryOut == nil {
		c.SlowQueryOut = os.Stderr
	}
	if c.MinEpochWait == 0 {
		c.MinEpochWait = 2 * time.Second
	}
	return c
}

// cachedResult is one materialized result set: the typed rows of a
// SELECT, or the boolean verdict of an ASK.
type cachedResult struct {
	vars    []string
	rows    []map[string]amber.Term
	isBool  bool
	boolVal bool
}

// dbState bundles a database generation with its caches. Swapping the
// database swaps the whole state, so cached plans and results can never
// outlive the dictionaries they were built against, and in-flight
// requests keep a consistent view.
type dbState struct {
	db      *amber.DB
	gen     uint64
	plans   *lruCache[*amber.Prepared]
	results *lruCache[*cachedResult]
}

func newDBState(db *amber.DB, cfg Config, gen uint64) *dbState {
	return &dbState{
		db:      db,
		gen:     gen,
		plans:   newLRU[*amber.Prepared](cfg.PlanCacheSize),
		results: newLRU[*cachedResult](cfg.CacheSize),
	}
}

// prepare resolves a plan through the plan cache. key is the normalized
// query text.
func (st *dbState) prepare(key, query string) (*amber.Prepared, error) {
	if p, ok := st.plans.Get(key); ok {
		return p, nil
	}
	p, err := st.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	st.plans.Put(key, p)
	return p, nil
}

// testHookExecute, when non-nil, is invoked with the raw query text
// after admission control and plan preparation, immediately before
// engine execution. Tests use it to hold queries in flight.
var testHookExecute func(query string)

// Server is the SPARQL-protocol HTTP handler. Construct with New; safe
// for concurrent use.
type Server struct {
	cfg   Config
	state atomic.Pointer[dbState]
	gen   atomic.Uint64
	sem   chan struct{}
	met   metrics
	start time.Time
	mux   *http.ServeMux
	ready atomic.Bool

	// inflight is the live query-governance table: every admitted
	// query/update registers with its resource meter, GET /debug/queries
	// lists it, and POST /admin/queries/{id}/cancel reaches its context.
	inflight *obs.Inflight

	// Observability (see internal/obs): the Prometheus registry behind
	// /metrics, the recent-trace ring behind /debug/traces, the slow-query
	// log, and the per-generation planner-accuracy accumulator. The
	// histograms are nil when Config.DisableHistograms is set (the
	// latencyRing then carries /stats percentiles).
	reg        *obs.Registry
	queryHist  *obs.Histogram
	updateHist *obs.Histogram
	stageHist  *obs.HistogramVec
	engRecur   *obs.CounterVec
	engInit    *obs.CounterVec
	engSat     *obs.CounterVec
	engEmb     *obs.CounterVec
	traces     *obs.TraceRing
	slowLog    *obs.SlowLog
	planQual   obs.PlanQuality
}

// New builds a Server serving db with the given configuration.
func New(db *amber.DB, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		start: time.Now(),
	}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.state.Store(newDBState(db, s.cfg, 0))
	s.traces = obs.NewTraceRing(s.cfg.TraceBuffer)
	s.slowLog = obs.NewSlowLog(s.cfg.SlowQueryOut, s.cfg.SlowQuery)
	s.inflight = obs.NewInflight()
	s.ready.Store(true)
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", withGzip(s.handleStats))
	s.mux.HandleFunc("/metrics", withGzip(s.handleMetrics))
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("POST /admin/queries/{id}/cancel", s.handleAdminCancel)
	if s.cfg.Replication != nil {
		s.mux.Handle("/repl/", s.cfg.Replication.Handler())
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s.handleQuery(w, r)
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// DB returns the currently served database.
func (s *Server) DB() *amber.DB { return s.state.Load().db }

// Swap atomically replaces the served database and rolls both caches
// over to the new generation. In-flight queries finish against the
// database they started on. It returns the new generation number.
func (s *Server) Swap(db *amber.DB) uint64 {
	gen := s.gen.Add(1)
	s.state.Store(newDBState(db, s.cfg, gen))
	return gen
}

// httpError is a request-processing failure with a protocol status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// writeError emits a JSON error body carrying the request ID (also
// echoed in the X-Request-Id header), so a client-side error report can
// be matched against the slow-query log and /debug/traces. Call only
// before any result bytes have been written. reqID may be empty.
func writeError(w http.ResponseWriter, status int, msg, reqID string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	body := map[string]any{"error": msg, "status": status}
	if reqID != "" {
		body["request_id"] = reqID
	}
	json.NewEncoder(w).Encode(body) //nolint:errcheck
}

// readQuery extracts the SPARQL query or update text per the SPARQL 1.1
// Protocol. isUpdate reports an update request (update= form field or an
// application/sparql-update body); the protocol forbids updates via GET.
func (s *Server) readQuery(r *http.Request) (text string, isUpdate bool, err error) {
	switch r.Method {
	case http.MethodGet:
		if r.URL.Query().Get("update") != "" {
			return "", true, errorf(http.StatusBadRequest, "updates require POST")
		}
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", false, errorf(http.StatusBadRequest, "missing query parameter")
		}
		return q, false, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ct)
		if ct != "" && err != nil {
			return "", false, errorf(http.StatusBadRequest, "malformed Content-Type: %v", err)
		}
		switch mt {
		case "", "application/x-www-form-urlencoded":
			r.Body = http.MaxBytesReader(nil, r.Body, int64(s.cfg.MaxQueryLength)+4096)
			if err := r.ParseForm(); err != nil {
				return "", false, errorf(http.StatusBadRequest, "malformed form body: %v", err)
			}
			if u := r.PostForm.Get("update"); u != "" {
				return u, true, nil
			}
			q := r.PostForm.Get("query")
			if q == "" {
				return "", false, errorf(http.StatusBadRequest, "missing query or update form field")
			}
			return q, false, nil
		case "application/sparql-query", "application/sparql-update":
			body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.cfg.MaxQueryLength)+1))
			if err != nil {
				return "", false, errorf(http.StatusBadRequest, "reading body: %v", err)
			}
			if len(body) == 0 {
				return "", false, errorf(http.StatusBadRequest, "empty request body")
			}
			return string(body), mt == "application/sparql-update", nil
		default:
			return "", false, errorf(http.StatusUnsupportedMediaType, "unsupported Content-Type %q", mt)
		}
	default:
		return "", false, errorf(http.StatusMethodNotAllowed, "method %s not allowed; use GET or POST", r.Method)
	}
}

// queryParams are the per-request execution knobs.
type queryParams struct {
	opts    amber.QueryOptions
	format  results.Format
	explain bool // render the plan instead of (or in addition to) executing
	analyze bool // explain=analyze: execute and report actual frontiers
	planner string
}

func (s *Server) readParams(r *http.Request) (queryParams, error) {
	var p queryParams
	p.opts.Timeout = s.cfg.DefaultTimeout

	get := func(name string) string {
		if r.Form != nil { // populated for form POSTs by readQuery
			if v := r.Form.Get(name); v != "" {
				return v
			}
		}
		return r.URL.Query().Get(name)
	}

	if v := get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, errorf(http.StatusBadRequest, "invalid limit %q", v)
		}
		p.opts.Limit = n
	}
	if v := get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			if ms, merr := strconv.Atoi(v); merr == nil {
				d = time.Duration(ms) * time.Millisecond
			} else {
				return p, errorf(http.StatusBadRequest, "invalid timeout %q", v)
			}
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		if d == 0 {
			// timeout=0 ("no timeout") would let a query hold an execution
			// slot forever; the server always bounds execution.
			d = s.cfg.DefaultTimeout
		}
		p.opts.Timeout = d
	}

	switch v := get("explain"); v {
	case "", "0", "false":
	case "1", "true", "yes", "plan":
		p.explain = true
	case "analyze", "analyse":
		p.explain, p.analyze = true, true
	default:
		return p, errorf(http.StatusBadRequest, "invalid explain %q; use 1, plan, or analyze", v)
	}
	if p.explain {
		p.planner = get("planner")
		if _, ok := plan.ByName(p.planner); !ok {
			return p, errorf(http.StatusBadRequest, "unknown planner %q; use cost or heuristic", p.planner)
		}
	}

	if v := get("format"); v != "" {
		f, ok := results.Lookup(v)
		if !ok {
			return p, errorf(http.StatusBadRequest, "unknown format %q", v)
		}
		p.format = f
		return p, nil
	}
	f, ok := results.Negotiate(r.Header.Get("Accept"))
	if !ok {
		return p, errorf(http.StatusNotAcceptable,
			"no acceptable result format; supported: sparql-results+json, sparql-results+xml, csv, tsv")
	}
	p.format = f
	return p, nil
}

// acquire claims an execution slot, waiting up to QueueWait.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return false
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// countingWriter tracks whether any response bytes reached the client,
// which decides whether an execution error can still become a clean
// HTTP error response. It also feeds the query's resource meter, so
// /debug/queries shows bytes serialized while the response streams.
type countingWriter struct {
	dst   io.Writer
	meter *obs.ResourceMeter
	n     int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.dst.Write(p)
	c.n += int64(n)
	c.meter.AddBytes(uint64(n))
	return n, err
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()

	// Every request gets an ID up front, echoed in the X-Request-Id
	// header and any error body, so a client report can be matched to a
	// slow-query record or a /debug/traces entry.
	reqID := obs.NewRequestID()
	w.Header().Set("X-Request-Id", reqID)

	query, isUpdate, err := s.readQuery(r)
	if err == nil {
		if len(query) > s.cfg.MaxQueryLength {
			err = errorf(http.StatusRequestEntityTooLarge,
				"query exceeds %d bytes", s.cfg.MaxQueryLength)
		}
	}
	if err == nil && isUpdate {
		s.handleUpdate(w, r, st, query, reqID)
		return
	}
	var params queryParams
	if err == nil {
		params, err = s.readParams(r)
	}
	if err != nil {
		he := err.(*httpError)
		if he.status == http.StatusMethodNotAllowed {
			w.Header().Set("Allow", "GET, POST")
		}
		writeError(w, he.status, he.msg, reqID)
		return
	}

	// Every read advertises the data version it serves, so a client can
	// observe follower staleness; X-Min-Epoch lets a client that just
	// wrote (and captured the update's X-Epoch) demand at-least-that-fresh
	// reads — read-your-writes across the replication fleet, with a
	// bounded wait on a lagging follower.
	st, err = s.gateMinEpoch(r, st)
	if err != nil {
		he := err.(*httpError)
		writeError(w, he.status, he.msg, reqID)
		return
	}
	w.Header().Set("X-Epoch", strconv.FormatUint(s.servedEpoch(st), 10))

	// Explain renders the matching plan; explain=analyze additionally
	// executes the query and reports actual per-level frontiers. Both run
	// real index work, so they claim an execution slot like any query;
	// they skip the result cache (plans are cheap relative to cache
	// bookkeeping and the output embeds live cardinalities).
	if params.explain {
		if !s.acquire(r.Context()) {
			s.met.rejected.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server saturated (%d executions in flight)", s.cfg.MaxConcurrent), reqID)
			return
		}
		defer func() { <-s.sem }()
		s.met.queries.Add(1)
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		var out string
		var eerr error
		ectx := r.Context()
		if params.analyze {
			// explain=analyze executes the query, so it is governed like
			// one: registered in the in-flight table, admin-cancellable,
			// and subject to the visit guard.
			var cancelCause context.CancelCauseFunc
			ectx, cancelCause = context.WithCancelCause(ectx)
			defer cancelCause(nil)
			meter := obs.NewResourceMeter()
			if s.cfg.MaxQueryVisits > 0 {
				meter.SetVisitLimit(s.cfg.MaxQueryVisits, cancelCause)
			}
			s.inflight.Register(reqID, query, "explain", r.RemoteAddr, st.db.Epoch(), meter, nil, cancelCause)
			defer s.inflight.Remove(reqID)
			out, eerr = st.db.ExplainAnalyzeContext(ectx, query, params.planner, &params.opts)
		} else {
			out, eerr = st.db.ExplainPlanner(query, params.planner)
		}
		switch {
		case eerr == amber.ErrTimeout:
			s.met.timeouts.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("query timed out after %s", params.opts.Timeout), reqID)
			return
		case errors.Is(eerr, context.Canceled):
			if _, code, msg := s.cancelOutcome(ectx); code != 0 {
				writeError(w, code, msg, reqID)
			}
			return
		case eerr != nil:
			s.met.parseErrors.Add(1)
			writeError(w, http.StatusBadRequest, "invalid query: "+eerr.Error(), reqID)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, out) //nolint:errcheck
		return
	}

	norm := normalizeQuery(query)
	key := cacheKey(norm, &params.opts, st.db.Epoch())

	// Cached results are served without touching the engine, so they
	// bypass admission control entirely.
	if cr, ok := st.results.Get(key); ok {
		s.met.queries.Add(1)
		s.met.cacheHits.Add(1)
		tr := obs.NewTraceID(reqID, query)
		start := time.Now()
		w.Header().Set("Content-Type", params.format.ContentType)
		w.Header().Set("X-Cache", "hit")
		var werr error
		if cr.isBool {
			werr = results.WriteBool(params.format, w, cr.boolVal)
		} else {
			werr = results.WriteAll(params.format, w, cr.vars, cr.rows)
		}
		if werr == nil {
			d := time.Since(start)
			tr.AddSpan("serialize", d)
			s.finishTrace(st, tr, "hit", uint64(len(cr.rows)))
			s.recordLatency(d)
		}
		return
	}
	if !s.acquire(r.Context()) {
		s.met.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("server saturated (%d executions in flight)", s.cfg.MaxConcurrent), reqID)
		return
	}
	defer func() { <-s.sem }()

	s.met.queries.Add(1)
	s.met.cacheMisses.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	tr := obs.NewTraceID(reqID, query)
	start := time.Now()

	endParse := tr.Span("parse_plan")
	prep, perr := st.prepare(norm, query)
	endParse()
	if perr != nil {
		s.met.parseErrors.Add(1)
		s.finishTrace(st, tr, "parse_error", 0)
		writeError(w, http.StatusBadRequest, "invalid query: "+perr.Error(), reqID)
		return
	}

	// Execution runs under a cancellable-with-cause context derived from
	// the request's: a client disconnect, an admin cancel
	// (POST /admin/queries/{id}/cancel), and the -max-query-visits guard
	// all reach the engine through the same ctx.Done() poll, and the
	// cause distinguishes them afterwards. The meter rides the trace into
	// the engine and is readable live through GET /debug/queries.
	ctx, cancelCause := context.WithCancelCause(r.Context())
	defer cancelCause(nil)
	meter := obs.NewResourceMeter()
	if s.cfg.MaxQueryVisits > 0 {
		meter.SetVisitLimit(s.cfg.MaxQueryVisits, cancelCause)
	}
	tr.SetMeter(meter)
	s.inflight.Register(reqID, query, "query", r.RemoteAddr, st.db.Epoch(), meter, prep.Shape, cancelCause)
	defer s.inflight.Remove(reqID)

	// pprof goroutine labels: CPU samples of this query's handler — and
	// of any parallel workers it spawns, which inherit the labels — carry
	// its request id and shape, so a -debug-addr profile attributes time
	// to specific queries.
	defer pprof.SetGoroutineLabels(r.Context())
	ctx = pprof.WithLabels(obs.ContextWithTrace(ctx, tr),
		pprof.Labels("request_id", reqID, "shape", prep.Shape()))
	pprof.SetGoroutineLabels(ctx)

	if testHookExecute != nil {
		testHookExecute(query)
	}

	if prep.IsAsk() {
		endExec := tr.Span("execute")
		val, aerr := prep.AskContext(ctx, &params.opts)
		endExec()
		switch {
		case aerr == amber.ErrTimeout:
			s.met.timeouts.Add(1)
			s.finishTrace(st, tr, "timeout", 0)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("query timed out after %s", params.opts.Timeout), reqID)
			return
		case errors.Is(aerr, context.Canceled):
			status, code, msg := s.cancelOutcome(ctx)
			s.finishTrace(st, tr, status, 0)
			if code != 0 {
				writeError(w, code, msg, reqID)
			}
			return
		case aerr != nil:
			s.finishTrace(st, tr, "error", 0)
			writeError(w, http.StatusInternalServerError, aerr.Error(), reqID)
			return
		}
		w.Header().Set("Content-Type", params.format.ContentType)
		w.Header().Set("X-Cache", "miss")
		if results.WriteBool(params.format, w, val) == nil {
			st.results.Put(key, &cachedResult{isBool: true, boolVal: val})
			s.finishTrace(st, tr, "ok", 0)
			s.recordLatency(time.Since(start))
		}
		return
	}

	cw := &countingWriter{dst: w, meter: meter}
	sw := params.format.New(cw)
	w.Header().Set("Content-Type", params.format.ContentType)
	w.Header().Set("X-Cache", "miss")

	// The result header is written lazily — at the first row, or at
	// successful end for empty results — so a query that fails before
	// producing output (timeout, admin cancel, visit guard) can still be
	// answered with a clean HTTP error instead of a truncated 200.
	vars := prep.Projection()
	began := false
	begin := func() error {
		if began {
			return nil
		}
		began = true
		return sw.Begin(vars)
	}
	collected := make([]map[string]amber.Term, 0, 64)
	collecting := s.cfg.MaxCacheRows > 0
	var writeErr error
	var rows uint64
	var serialize time.Duration
	loopStart := time.Now()
	qerr := prep.QueryIterContext(ctx, &params.opts, func(b amber.Binding) bool {
		m := b.Map()
		if collecting {
			if len(collected) < s.cfg.MaxCacheRows {
				collected = append(collected, m)
			} else {
				collecting, collected = false, nil
			}
		}
		rowStart := time.Now()
		if werr := begin(); werr != nil {
			writeErr = werr
			return false
		}
		if werr := sw.Row(m); werr != nil {
			writeErr = werr
			return false
		}
		serialize += time.Since(rowStart)
		rows++
		meter.AddRows(1)
		return true
	})
	// The loop interleaves engine work and row writes; attribute the
	// write share to "serialize" and the rest to "execute".
	tr.AddSpan("execute", time.Since(loopStart)-serialize)

	switch {
	case qerr == amber.ErrTimeout:
		s.met.timeouts.Add(1)
		tr.AddSpan("serialize", serialize)
		s.finishTrace(st, tr, "timeout", rows)
		if cw.n == 0 {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("query timed out after %s", params.opts.Timeout), reqID)
		}
		return
	case errors.Is(qerr, context.Canceled):
		status, code, msg := s.cancelOutcome(ctx)
		tr.AddSpan("serialize", serialize)
		s.finishTrace(st, tr, status, rows)
		if code != 0 && cw.n == 0 {
			writeError(w, code, msg, reqID)
		}
		return
	case qerr != nil:
		tr.AddSpan("serialize", serialize)
		s.finishTrace(st, tr, "error", rows)
		if cw.n == 0 {
			writeError(w, http.StatusInternalServerError, qerr.Error(), reqID)
		}
		return
	case writeErr != nil:
		tr.AddSpan("serialize", serialize)
		s.finishTrace(st, tr, "client_gone", rows)
		return // client went away mid-stream; nothing useful to do
	}
	endStart := time.Now()
	swErr := begin()
	if swErr == nil {
		swErr = sw.End()
	}
	serialize += time.Since(endStart)
	tr.AddSpan("serialize", serialize)
	if swErr != nil {
		s.finishTrace(st, tr, "client_gone", rows)
		return
	}
	if collecting {
		st.results.Put(key, &cachedResult{vars: vars, rows: collected})
	}
	s.finishTrace(st, tr, "ok", rows)
	s.recordLatency(time.Since(start))
}

// servedEpoch is the data version a read response advertises: the
// follower's applied (primary-comparable) epoch in follower mode, the
// served database's epoch otherwise.
func (s *Server) servedEpoch(st *dbState) uint64 {
	if f := s.cfg.Follower; f != nil {
		return f.AppliedEpoch()
	}
	return st.db.Epoch()
}

// gateMinEpoch enforces the X-Min-Epoch request header: on a follower it
// waits (bounded by MinEpochWait) for replication to reach the epoch and
// reloads the served state afterwards — a resync may have swapped the
// database object under us — answering 503 (with Retry-After) when the
// wait expires. A primary is never stale, so it only sanity-checks.
func (s *Server) gateMinEpoch(r *http.Request, st *dbState) (*dbState, error) {
	h := r.Header.Get("X-Min-Epoch")
	if h == "" {
		return st, nil
	}
	min, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return st, errorf(http.StatusBadRequest, "malformed X-Min-Epoch %q", h)
	}
	if f := s.cfg.Follower; f != nil {
		if !f.WaitEpoch(r.Context(), min, s.cfg.MinEpochWait) {
			return st, errorf(http.StatusServiceUnavailable,
				"follower at epoch %d has not reached %d within %s",
				f.AppliedEpoch(), min, s.cfg.MinEpochWait)
		}
		return s.state.Load(), nil
	}
	if cur := st.db.Epoch(); cur < min {
		return st, errorf(http.StatusServiceUnavailable,
			"server at epoch %d, below requested %d", cur, min)
	}
	return st, nil
}

// handleUpdate executes a SPARQL 1.1 Update request. Updates claim an
// execution slot like queries — applying a batch and the compaction it
// may trigger are real work — and respond 204 No Content on success.
// The database epoch moves with the update, so every result-cache entry
// of the previous state becomes unreachable at once.
//
// A follower never applies client updates: its state is defined entirely
// by the primary's WAL, so it answers 421 Misdirected Request pointing
// at the primary's endpoint instead.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, st *dbState, update, reqID string) {
	if f := s.cfg.Follower; f != nil {
		w.Header().Set("Location", f.PrimaryURL()+"/sparql")
		writeError(w, http.StatusMisdirectedRequest,
			"read-only replication follower; send updates to the primary at "+f.PrimaryURL(), reqID)
		return
	}
	if !s.acquire(r.Context()) {
		s.met.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("server saturated (%d executions in flight)", s.cfg.MaxConcurrent), reqID)
		return
	}
	defer func() { <-s.sem }()
	s.met.updates.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	// Updates register for visibility — GET /debug/queries lists them
	// with their age — though the apply path runs to completion: an admin
	// cancel marks the entry but cannot abort a mutation batch
	// mid-commit.
	_, cancelCause := context.WithCancelCause(r.Context())
	defer cancelCause(nil)
	s.inflight.Register(reqID, update, "update", r.RemoteAddr, st.db.Epoch(),
		obs.NewResourceMeter(), nil, cancelCause)
	defer s.inflight.Remove(reqID)
	start := time.Now()
	if err := st.db.UpdateOpts(update, &amber.UpdateOptions{AllowLoad: s.cfg.AllowLoad}); err != nil {
		s.met.updateErrors.Add(1)
		if errors.Is(err, amber.ErrDurability) {
			// The request was fine; the write-ahead log failed (disk full,
			// fsync error, or closed mid-reload). 503 tells the client to
			// retry instead of dropping the write as malformed.
			writeError(w, http.StatusServiceUnavailable, "update not durable: "+err.Error(), reqID)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid update: "+err.Error(), reqID)
		return
	}
	d := time.Since(start)
	if s.updateHist != nil {
		s.updateHist.Observe(d.Seconds())
	} else {
		s.met.updateLat.record(d)
	}
	w.Header().Set("X-Epoch", strconv.FormatUint(st.db.Epoch(), 10))
	w.WriteHeader(http.StatusNoContent)
}

// cacheKey builds the result-cache key from the normalized query text
// plus every option that shapes the rows, plus the database epoch — a
// live update bumps the epoch, so stale cached rows become unreachable
// instead of being served. The timeout is deliberately excluded — it
// bounds execution, not the result. The plan cache is keyed on the
// normalized text alone: a cached amber.Prepared revalidates its plan
// against the current epoch internally, so plans survive updates while
// results do not.
func cacheKey(normalizedQuery string, opts *amber.QueryOptions, epoch uint64) string {
	return normalizedQuery + "\x00limit=" + strconv.Itoa(opts.Limit) +
		"\x00epoch=" + strconv.FormatUint(epoch, 10)
}

// normalizeQuery collapses insignificant whitespace so trivially
// reformatted queries share one cache entry. Whitespace inside string
// literals and IRI references is preserved.
func normalizeQuery(q string) string {
	var sb strings.Builder
	sb.Grow(len(q))
	var quote byte // expected closing delimiter; 0 = outside
	space := false
	for i := 0; i < len(q); i++ {
		c := q[i]
		if quote != 0 {
			sb.WriteByte(c)
			if quote != '>' && c == '\\' && i+1 < len(q) {
				i++
				sb.WriteByte(q[i])
				continue
			}
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			space = true
			continue
		case '"', '\'':
			quote = c
		case '<':
			quote = '>'
		}
		if space && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		space = false
		sb.WriteByte(c)
	}
	return sb.String()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //nolint:errcheck
}

// StatsResponse is the /stats document: live serving counters plus the
// underlying database's statistics.
type StatsResponse struct {
	Uptime string `json:"uptime"`
	// Generation counts hot swaps of the whole database (SIGHUP reload);
	// the live-update state of the served database is under "generation".
	Generation uint64 `json:"swap_generation"`

	Queries      uint64 `json:"queries"`
	Updates      uint64 `json:"updates"`
	UpdateErrors uint64 `json:"update_errors"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Rejected     uint64 `json:"rejected"`
	Timeouts     uint64 `json:"timeouts"`
	Cancelled    uint64 `json:"cancelled"`
	// CancelledAdmin counts queries killed through the admin cancel
	// surface; ResourceLimited those cancelled by the visit guard.
	CancelledAdmin  uint64 `json:"cancelled_admin"`
	ResourceLimited uint64 `json:"resource_limited"`
	ParseErrors     uint64 `json:"parse_errors"`
	InFlight        int64  `json:"in_flight"`

	ResultCacheEntries int `json:"result_cache_entries"`
	PlanCacheEntries   int `json:"plan_cache_entries"`

	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`

	// Live describes the served database's update/compaction state.
	Live GenerationSection `json:"generation"`

	// Durability describes the write-ahead log state (enabled=false and
	// zeroes when the server runs without -wal-dir).
	Durability DurabilitySection `json:"durability"`

	// WritePath describes the group-commit and overlay copy-on-write
	// behaviour of the served database's write path.
	WritePath WritePathSection `json:"write_path"`

	// Runtime describes the Go runtime hosting the server.
	Runtime RuntimeSection `json:"runtime"`

	// PlanQuality summarizes planner estimate accuracy on live traffic
	// since the last compaction (see PlanQualitySection).
	PlanQuality PlanQualitySection `json:"plan_quality"`

	// Replication is the primary's follower/ack registry or the
	// follower's lag state (absent when replication is not configured).
	Replication map[string]any `json:"replication,omitempty"`

	DB amber.Stats `json:"db"`
}

// RuntimeSection is the /stats "runtime" document.
type RuntimeSection struct {
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`
	HeapObjects   uint64  `json:"heap_objects"`
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseTotal  float64 `json:"gc_pause_total_seconds"`
	GCPauseLast   float64 `json:"gc_pause_last_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// PlanQualitySection is the /stats "plan_quality" document: the mean
// est/actual candidate-frontier ratio over traced queries, windowed per
// database generation (the window resets when a compaction rebuilds the
// base the planner estimates from). A ratio near 1 means the cost-based
// planner's synopsis is tracking the data; drifting far above or below
// 1 flags stale statistics.
type PlanQualitySection struct {
	Generation         uint64  `json:"generation"`
	Samples            uint64  `json:"samples"`
	MeanEstActualRatio float64 `json:"mean_est_actual_ratio"`
}

// DurabilitySection is the /stats "durability" document: the served
// database's write-ahead log state.
type DurabilitySection struct {
	Enabled bool   `json:"enabled"`
	Policy  string `json:"policy,omitempty"`
	// WALBytes and Segments size the live log.
	WALBytes int64 `json:"wal_bytes"`
	Segments int   `json:"segments"`
	// LastSeq is the newest logged record; CheckpointSeq the sequence
	// through which the log has been truncated.
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Appends and Fsyncs count log operations since the database opened;
	// Replayed is how many records were replayed at open.
	Appends  uint64 `json:"appends"`
	Fsyncs   uint64 `json:"fsyncs"`
	Replayed int    `json:"replayed"`
	// Checkpoints counts checkpoints; LastCheckpoint is the RFC 3339
	// time of the most recent one (empty if none ran).
	Checkpoints    uint64 `json:"checkpoints"`
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
	// LastCheckpointError is the most recent automatic checkpoint
	// failure, empty when none (or once one succeeds again).
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
}

// WritePathSection is the /stats "write_path" document: group-commit and
// overlay copy-on-write statistics for the served database.
type WritePathSection struct {
	// Batches counts committed mutation batches; Groups counts commit
	// groups (one WAL append span + one fsync per group under
	// fsync=always). MeanGroupSize is Batches/Groups.
	Batches       uint64  `json:"batches"`
	Groups        uint64  `json:"groups"`
	MeanGroupSize float64 `json:"mean_group_size"`
	MaxGroupSize  uint64  `json:"max_group_size"`
	// GroupSizeBounds and GroupSizeBuckets form the commit-group-size
	// histogram: bucket i counts groups of ≤ bounds[i] batches, the final
	// bucket is the overflow.
	GroupSizeBounds  []uint64 `json:"group_size_bounds"`
	GroupSizeBuckets []uint64 `json:"group_size_buckets"`
	// FsyncsPerBatch is durability.fsyncs / batches — below 1.0 means
	// group commit is amortizing fsyncs (0 when not durable or no writes).
	FsyncsPerBatch float64 `json:"fsyncs_per_batch"`
	// OverlayEntriesCopied / OverlayBytesCopied are the overlay's
	// cumulative copy-on-write effort (O(batch) per commit);
	// OverlayVersions counts the live overlay's retained bucket versions.
	OverlayEntriesCopied uint64 `json:"overlay_entries_copied"`
	OverlayBytesCopied   uint64 `json:"overlay_bytes_copied"`
	OverlayVersions      uint64 `json:"overlay_versions"`
}

// GenerationSection is the /stats "generation" document: the live-update
// state of the served database.
type GenerationSection struct {
	// Epoch is the data version; it moves on every update.
	Epoch uint64 `json:"epoch"`
	// Generation counts base rebuilds (compactions and clears).
	Generation uint64 `json:"generation"`
	// DeltaAdds and DeltaTombstones size the uncompacted overlay.
	DeltaAdds       int `json:"delta_adds"`
	DeltaTombstones int `json:"delta_tombstones"`
	// Updates counts mutation batches applied to this database;
	// UpdatesPerSecond is that same counter averaged over server uptime
	// (it resets with the database on a hot swap), and UpdateP99Millis
	// the p99 update latency over the recent window.
	Updates          uint64  `json:"updates"`
	UpdatesPerSecond float64 `json:"updates_per_second"`
	UpdateP99Millis  float64 `json:"update_p99_ms"`
	// Compactions counts completed compactions; LastCompactionMillis is
	// the duration of the most recent one.
	Compactions          uint64  `json:"compactions"`
	LastCompactionMillis float64 `json:"last_compaction_ms"`
}

// Stats snapshots the serving counters. Latency percentiles come from
// the bucketed histograms (interpolated) or, with histograms disabled,
// the sliding-window latencyRing.
func (s *Server) Stats() StatsResponse {
	st := s.state.Load()
	var p50, p99, up99 time.Duration
	if s.queryHist != nil {
		p50 = time.Duration(s.queryHist.Quantile(0.50) * float64(time.Second))
		p99 = time.Duration(s.queryHist.Quantile(0.99) * float64(time.Second))
		up99 = time.Duration(s.updateHist.Quantile(0.99) * float64(time.Second))
	} else {
		pcts := s.met.lat.percentiles(0.50, 0.99)
		p50, p99 = pcts[0], pcts[1]
		up99 = s.met.updateLat.percentiles(0.99)[0]
	}
	gen := st.db.Generation()
	uptime := time.Since(s.start)
	// Rate derives from the store's applied-batch counter (the same
	// quantity as generation.updates), not the HTTP request counter —
	// rejected updates must not raise the rate.
	ups := 0.0
	if secs := uptime.Seconds(); secs > 0 {
		ups = float64(gen.Updates) / secs
	}
	return StatsResponse{
		Uptime:             uptime.Round(time.Millisecond).String(),
		Generation:         st.gen,
		Queries:            s.met.queries.Load(),
		Updates:            s.met.updates.Load(),
		UpdateErrors:       s.met.updateErrors.Load(),
		CacheHits:          s.met.cacheHits.Load(),
		CacheMisses:        s.met.cacheMisses.Load(),
		Rejected:           s.met.rejected.Load(),
		Timeouts:           s.met.timeouts.Load(),
		Cancelled:          s.met.cancelled.Load(),
		CancelledAdmin:     s.met.cancelledAdmin.Load(),
		ResourceLimited:    s.met.resourceLimited.Load(),
		ParseErrors:        s.met.parseErrors.Load(),
		InFlight:           s.met.inFlight.Load(),
		ResultCacheEntries: st.results.Len(),
		PlanCacheEntries:   st.plans.Len(),
		P50Millis:          float64(p50) / float64(time.Millisecond),
		P99Millis:          float64(p99) / float64(time.Millisecond),
		Durability:         durabilitySection(st.db),
		WritePath:          writePathSection(st.db),
		Live: GenerationSection{
			Epoch:                gen.Epoch,
			Generation:           gen.Generation,
			DeltaAdds:            gen.DeltaAdds,
			DeltaTombstones:      gen.DeltaTombstones,
			Updates:              gen.Updates,
			UpdatesPerSecond:     ups,
			UpdateP99Millis:      float64(up99) / float64(time.Millisecond),
			Compactions:          gen.Compactions,
			LastCompactionMillis: float64(gen.LastCompaction) / float64(time.Millisecond),
		},
		Runtime:     s.runtimeSection(uptime),
		PlanQuality: s.planQualitySection(),
		Replication: s.replicationSection(),
		DB:          st.db.Stats(),
	}
}

// replicationSection renders the /stats "replication" document from
// whichever replication role is configured (nil when neither is).
func (s *Server) replicationSection() map[string]any {
	switch {
	case s.cfg.Replication != nil:
		return s.cfg.Replication.StatsSection()
	case s.cfg.Follower != nil:
		return s.cfg.Follower.StatsSection()
	default:
		return nil
	}
}

// runtimeSection samples the Go runtime for /stats.
func (s *Server) runtimeSection(uptime time.Duration) RuntimeSection {
	rs := obs.ReadRuntimeStats()
	return RuntimeSection{
		Goroutines:    rs.Goroutines,
		HeapBytes:     rs.HeapAlloc,
		HeapObjects:   rs.HeapObjects,
		GCCycles:      rs.NumGC,
		GCPauseTotal:  rs.GCPauseTotal,
		GCPauseLast:   rs.GCPauseLast,
		UptimeSeconds: uptime.Seconds(),
	}
}

func (s *Server) planQualitySection() PlanQualitySection {
	gen, n, mean := s.planQual.Summary()
	return PlanQualitySection{Generation: gen, Samples: n, MeanEstActualRatio: mean}
}

// writePathSection renders the served database's group-commit and
// overlay copy-on-write statistics.
func writePathSection(db *amber.DB) WritePathSection {
	ws := db.WriteStats()
	sec := WritePathSection{
		Batches:              ws.Batches,
		Groups:               ws.Groups,
		MaxGroupSize:         ws.MaxGroupSize,
		GroupSizeBounds:      ws.GroupSizeBounds,
		GroupSizeBuckets:     ws.GroupSizeBuckets,
		OverlayEntriesCopied: ws.OverlayEntriesCopied,
		OverlayBytesCopied:   ws.OverlayBytesCopied,
		OverlayVersions:      ws.OverlayVersions,
	}
	if ws.Groups > 0 {
		sec.MeanGroupSize = float64(ws.Batches) / float64(ws.Groups)
	}
	if d := db.Durability(); d.Enabled && ws.Batches > 0 {
		sec.FsyncsPerBatch = float64(d.Fsyncs) / float64(ws.Batches)
	}
	return sec
}

// durabilitySection renders the served database's WAL state.
func durabilitySection(db *amber.DB) DurabilitySection {
	d := db.Durability()
	sec := DurabilitySection{
		Enabled:             d.Enabled,
		Policy:              d.Policy,
		WALBytes:            d.WALBytes,
		Segments:            d.Segments,
		LastSeq:             d.LastSeq,
		CheckpointSeq:       d.CheckpointSeq,
		Appends:             d.Appends,
		Fsyncs:              d.Fsyncs,
		Replayed:            d.Replayed,
		Checkpoints:         d.Checkpoints,
		LastCheckpointError: d.LastCheckpointError,
	}
	if !d.LastCheckpoint.IsZero() {
		sec.LastCheckpoint = d.LastCheckpoint.Format(time.RFC3339)
	}
	return sec
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats()) //nolint:errcheck
}

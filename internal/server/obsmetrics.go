package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	amber "repro"
	"repro/internal/obs"
)

// initMetrics builds the /metrics registry. Serving counters are exposed
// through scrape-time closures over the same atomics /stats reads, so
// the two endpoints can never disagree; database and WAL gauges read the
// currently-served dbState at scrape time, so they follow hot swaps.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r

	cf := func(name, help string, v *atomic.Uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	cf("amber_queries_total", "Query requests accepted for processing.", &s.met.queries)
	cf("amber_query_cache_hits_total", "Queries answered from the result cache.", &s.met.cacheHits)
	cf("amber_query_cache_misses_total", "Queries that reached the engine.", &s.met.cacheMisses)
	cf("amber_rejected_total", "Requests shed by admission control (503).", &s.met.rejected)
	cf("amber_timeouts_total", "Queries aborted by the per-query timeout.", &s.met.timeouts)
	cf("amber_cancelled_total", "Queries aborted by client disconnect.", &s.met.cancelled)
	cf("amber_query_cancelled_admin_total", "Queries killed through the admin cancel surface.", &s.met.cancelledAdmin)
	cf("amber_query_resource_limited_total", "Queries cancelled by the max-query-visits guard.", &s.met.resourceLimited)
	cf("amber_parse_errors_total", "Requests rejected as malformed SPARQL.", &s.met.parseErrors)
	cf("amber_updates_total", "Update requests accepted for processing.", &s.met.updates)
	cf("amber_update_errors_total", "Updates that failed to parse or apply.", &s.met.updateErrors)
	r.GaugeFunc("amber_in_flight", "Engine executions currently running.",
		func() float64 { return float64(s.met.inFlight.Load()) })
	r.GaugeFunc("amber_inflight_queries", "Requests currently registered in the in-flight governance table.",
		func() float64 { return float64(s.inflight.Len()) })
	r.GaugeFunc("amber_ready", "1 when /readyz reports ready, 0 while draining for a reload.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("amber_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	if !s.cfg.DisableHistograms {
		s.queryHist = r.Histogram("amber_query_duration_seconds",
			"End-to-end latency of successfully answered queries.", obs.LatencyBuckets)
		s.updateHist = r.Histogram("amber_update_duration_seconds",
			"Latency of successfully applied updates.", obs.LatencyBuckets)
		s.stageHist = r.HistogramVec("amber_stage_duration_seconds",
			"Per-stage latency of query handling (parse_plan, execute, serialize).",
			"stage", obs.LatencyBuckets)
	}

	s.engRecur = r.CounterVec("amber_engine_recursions_total",
		"HomomorphicMatch invocations, by query shape.", "shape")
	s.engInit = r.CounterVec("amber_engine_init_candidates_total",
		"Initial candidate-set sizes (|CandInit|), by query shape.", "shape")
	s.engSat = r.CounterVec("amber_engine_sat_probes_total",
		"Satellite candidate-set computations, by query shape.", "shape")
	s.engEmb = r.CounterVec("amber_engine_embeddings_total",
		"Embeddings enumerated, by query shape.", "shape")

	r.GaugeFunc("amber_swap_generation", "Hot swaps of the whole database (SIGHUP reload).",
		func() float64 { return float64(s.state.Load().gen) })
	r.GaugeFunc("amber_result_cache_entries", "Materialized result sets currently cached.",
		func() float64 { return float64(s.state.Load().results.Len()) })
	r.GaugeFunc("amber_plan_cache_entries", "Prepared plans currently cached.",
		func() float64 { return float64(s.state.Load().plans.Len()) })

	genF := func(f func(amber.GenerationStats) float64) func() float64 {
		return func() float64 { return f(s.state.Load().db.Generation()) }
	}
	r.GaugeFunc("amber_epoch", "Data version; moves on every update, compaction and clear.",
		genF(func(g amber.GenerationStats) float64 { return float64(g.Epoch) }))
	r.GaugeFunc("amber_generation", "Base-generation rebuilds (compactions and clears).",
		genF(func(g amber.GenerationStats) float64 { return float64(g.Generation) }))
	r.GaugeFunc("amber_delta_adds", "Added triples in the uncompacted overlay.",
		genF(func(g amber.GenerationStats) float64 { return float64(g.DeltaAdds) }))
	r.GaugeFunc("amber_delta_tombstones", "Tombstones in the uncompacted overlay.",
		genF(func(g amber.GenerationStats) float64 { return float64(g.DeltaTombstones) }))
	r.CounterFunc("amber_db_updates_total", "Mutation batches applied to the served database.",
		genF(func(g amber.GenerationStats) float64 { return float64(g.Updates) }))
	r.CounterFunc("amber_compactions_total", "Completed background compactions.",
		genF(func(g amber.GenerationStats) float64 { return float64(g.Compactions) }))
	r.GaugeFunc("amber_last_compaction_seconds", "Duration of the most recent compaction.",
		genF(func(g amber.GenerationStats) float64 { return g.LastCompaction.Seconds() }))

	durF := func(f func(amber.DurabilityStats) float64) func() float64 {
		return func() float64 { return f(s.state.Load().db.Durability()) }
	}
	r.GaugeFunc("amber_wal_enabled", "1 when the database was opened durably, 0 otherwise.",
		durF(func(d amber.DurabilityStats) float64 {
			if d.Enabled {
				return 1
			}
			return 0
		}))
	r.GaugeFunc("amber_wal_bytes", "Total size of live write-ahead log segments.",
		durF(func(d amber.DurabilityStats) float64 { return float64(d.WALBytes) }))
	r.GaugeFunc("amber_wal_segments", "Live write-ahead log segments.",
		durF(func(d amber.DurabilityStats) float64 { return float64(d.Segments) }))
	r.CounterFunc("amber_wal_appends_total", "Records appended to the write-ahead log.",
		durF(func(d amber.DurabilityStats) float64 { return float64(d.Appends) }))
	r.CounterFunc("amber_wal_fsyncs_total", "Fsyncs issued by the write-ahead log.",
		durF(func(d amber.DurabilityStats) float64 { return float64(d.Fsyncs) }))
	r.CounterFunc("amber_wal_checkpoints_total", "Checkpoints completed since open.",
		durF(func(d amber.DurabilityStats) float64 { return float64(d.Checkpoints) }))

	wsF := func(f func(amber.WriteStats) float64) func() float64 {
		return func() float64 { return f(s.state.Load().db.WriteStats()) }
	}
	r.CounterFunc("amber_commit_batches_total", "Mutation batches committed through the write path.",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.Batches) }))
	r.CounterFunc("amber_commit_groups_total",
		"Commit groups: one WAL append span (one fsync under fsync=always) per group.",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.Groups) }))
	r.GaugeFunc("amber_commit_group_max_size", "Largest commit group since the database opened.",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.MaxGroupSize) }))
	r.CounterFunc("amber_overlay_copied_entries_total",
		"Entries copied into fresh overlay bucket versions (copy-on-write effort; O(batch) per commit).",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.OverlayEntriesCopied) }))
	r.CounterFunc("amber_overlay_copied_bytes_total",
		"Estimated bytes retained by overlay copy-on-write bucket versions.",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.OverlayBytesCopied) }))
	r.GaugeFunc("amber_overlay_versions", "Retained bucket versions in the live overlay.",
		wsF(func(ws amber.WriteStats) float64 { return float64(ws.OverlayVersions) }))

	// Commit-group-size histogram, refreshed at scrape time from the
	// store's cumulative buckets. The collector adds per-scrape deltas so
	// the exposed counters stay monotone; a database hot swap resets the
	// source counters, detected by a shrinking total, and restarts the
	// deltas from zero (the pre-swap groups remain counted).
	groupSizes := r.CounterVec("amber_commit_group_size_total",
		"Commit groups by size bucket; le is the bucket's upper bound in batches.", "le")
	var gsMu sync.Mutex
	var gsPrev []uint64
	r.AddCollector(func() {
		ws := s.state.Load().db.WriteStats()
		labels := make([]string, len(ws.GroupSizeBuckets))
		for i := range labels {
			if i < len(ws.GroupSizeBounds) {
				labels[i] = strconv.FormatUint(ws.GroupSizeBounds[i], 10)
			} else {
				labels[i] = "+Inf"
			}
		}
		gsMu.Lock()
		defer gsMu.Unlock()
		if len(gsPrev) != len(ws.GroupSizeBuckets) {
			gsPrev = make([]uint64, len(ws.GroupSizeBuckets))
		}
		var newTotal, prevTotal uint64
		for i, v := range ws.GroupSizeBuckets {
			newTotal += v
			prevTotal += gsPrev[i]
		}
		if newTotal < prevTotal { // hot swap reset the source
			for i := range gsPrev {
				gsPrev[i] = 0
			}
		}
		for i, v := range ws.GroupSizeBuckets {
			if v > gsPrev[i] {
				groupSizes.With(labels[i]).Add(v - gsPrev[i])
			}
			gsPrev[i] = v
		}
	})

	dbF := func(f func(amber.Stats) float64) func() float64 {
		return func() float64 { return f(s.state.Load().db.Stats()) }
	}
	r.GaugeFunc("amber_db_triples", "RDF statements in the merged live view.",
		dbF(func(st amber.Stats) float64 { return float64(st.Triples) }))
	r.GaugeFunc("amber_db_vertices", "Distinct subject/object IRIs (|V|).",
		dbF(func(st amber.Stats) float64 { return float64(st.Vertices) }))
	r.GaugeFunc("amber_db_edges", "Distinct directed vertex pairs with at least one predicate.",
		dbF(func(st amber.Stats) float64 { return float64(st.Edges) }))

	r.GaugeFunc("amber_plan_quality_ratio",
		"Mean est/actual candidate-frontier ratio over traced queries this generation.",
		func() float64 { _, _, mean := s.planQual.Summary(); return mean })
	r.GaugeFunc("amber_plan_quality_samples",
		"Traced queries contributing to amber_plan_quality_ratio.",
		func() float64 { _, n, _ := s.planQual.Summary(); return float64(n) })

	if s.cfg.Replication != nil {
		s.cfg.Replication.RegisterMetrics(r)
	}
	if s.cfg.Follower != nil {
		s.cfg.Follower.RegisterMetrics(r)
	}

	obs.RegisterRuntimeMetrics(r)
}

// recordLatency records one successfully answered query's end-to-end
// latency: into the bucketed histogram, or — with histograms disabled —
// the sliding-window ring that /stats percentiles then fall back to.
func (s *Server) recordLatency(d time.Duration) {
	if s.queryHist != nil {
		s.queryHist.Observe(d.Seconds())
	} else {
		s.met.lat.record(d)
	}
}

// finishTrace seals a request trace and fans it out: stage-timing
// histograms, per-shape engine effort counters, the plan-quality
// accumulator, the recent-trace ring, and the slow-query log.
func (s *Server) finishTrace(st *dbState, tr *obs.Trace, status string, rows uint64) {
	tr.Finish(status, rows)
	v := tr.View()
	if s.stageHist != nil {
		for _, sp := range v.Spans {
			s.stageHist.With(sp.Name).Observe(sp.Duration.Seconds())
		}
	}
	if v.Shape != "" {
		s.engRecur.With(v.Shape).Add(uint64(v.Engine.Recursions))
		s.engInit.With(v.Shape).Add(uint64(v.Engine.InitCandidates))
		s.engSat.With(v.Shape).Add(uint64(v.Engine.SatProbes))
		s.engEmb.With(v.Shape).Add(v.Engine.Embeddings)
	}
	if ratio, ok := tr.EstActualRatio(); ok {
		s.planQual.Observe(st.db.Generation().Generation, ratio)
	}
	s.traces.Add(tr)
	s.slowLog.Observe(tr)
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck
}

// handleTraces serves the recent-trace ring as JSON, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	views := s.traces.Snapshot()
	if views == nil {
		views = []obs.TraceView{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"traces": views}) //nolint:errcheck
}

package server

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the live serving counters exposed by /stats.
type metrics struct {
	queries     atomic.Uint64 // query requests accepted for processing
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	rejected    atomic.Uint64 // 503s from admission control
	timeouts    atomic.Uint64
	cancelled   atomic.Uint64 // client disconnects
	parseErrors atomic.Uint64
	inFlight    atomic.Int64 // engine executions currently running

	cancelledAdmin  atomic.Uint64 // queries killed via the admin surface
	resourceLimited atomic.Uint64 // queries cancelled by the visit guard

	updates      atomic.Uint64 // update requests accepted for processing
	updateErrors atomic.Uint64 // update parse/apply failures

	lat       latencyRing
	updateLat latencyRing
}

// latencyRing keeps the most recent query latencies for percentile
// estimation. A fixed ring bounds memory and keeps the percentiles
// reflecting current behaviour rather than all-time history.
type latencyRing struct {
	mu   sync.Mutex
	buf  [1024]time.Duration
	next int
	n    int // filled entries, ≤ len(buf)
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// percentiles returns the given quantiles (0..1) over the recorded
// window, nearest-rank: the smallest sample such that at least q·n
// samples are ≤ it, i.e. sorted index ceil(q·n)−1. The previous
// round-half-up formula (int(q·n+0.5)−1) under-reported whenever
// frac(q·n) fell below 0.5 — e.g. p99 over 52 samples returned the
// 51st smallest instead of the 52nd. With no samples it returns zeros.
func (r *latencyRing) percentiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	samples := make([]time.Duration, r.n)
	copy(samples, r.buf[:r.n])
	r.mu.Unlock()

	out := make([]time.Duration, len(qs))
	if len(samples) == 0 {
		return out
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		out[i] = samples[idx]
	}
	return out
}

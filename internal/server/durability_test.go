package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	amber "repro"
)

// TestStatsDurabilitySection: a server over a durable database reports
// its WAL state under /stats "durability"; an in-memory one reports it
// disabled.
func TestStatsDurabilitySection(t *testing.T) {
	db, err := amber.OpenDurable(t.TempDir(), &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(`INSERT DATA { <http://town/alice> <http://town/knows> <http://town/bob> . }`); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, _ = postUpdate(t, ts.URL,
		`INSERT DATA { <http://town/bob> <http://town/knows> <http://town/carol> . }`)

	resp, body := get(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decoding /stats: %v\n%s", err, body)
	}
	d := st.Durability
	if !d.Enabled {
		t.Fatalf("durability disabled in /stats: %+v", d)
	}
	if d.Policy != "always" {
		t.Errorf("policy = %q, want always", d.Policy)
	}
	if d.Appends < 2 || d.LastSeq < 2 {
		t.Errorf("appends=%d last_seq=%d, want >= 2 (pre-serve + HTTP update)", d.Appends, d.LastSeq)
	}
	if d.Fsyncs < 2 {
		t.Errorf("fsyncs=%d, want >= 2 under fsync=always", d.Fsyncs)
	}
	if d.WALBytes <= 0 || d.Segments < 1 {
		t.Errorf("wal_bytes=%d segments=%d", d.WALBytes, d.Segments)
	}

	// In-memory server: section present but disabled.
	_, ts2 := newTestServer(t, townData, Config{})
	_, body = get(t, ts2.URL+"/stats", nil)
	var st2 StatsResponse
	if err := json.Unmarshal([]byte(body), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Durability.Enabled {
		t.Fatalf("in-memory server reports durability enabled: %+v", st2.Durability)
	}
}

// TestUpdateWALClosed503: once the WAL is closed (the reload window), a
// well-formed update must shed with 503 — retryable — not 400.
func TestUpdateWALClosed503(t *testing.T) {
	db, err := amber.OpenDurable(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	resp, body := postUpdate(t, ts.URL,
		`INSERT DATA { <http://town/a> <http://town/p> <http://town/b> . }`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// Reads keep working against the closed-WAL store.
	resp, _ = get(t, ts.URL+"/sparql?format=csv&query=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Ftown%2Fp%3E%20%3Fo%20.%20%7D", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after WAL close: status %d", resp.StatusCode)
	}
}

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// parsePrometheus parses text exposition format into value-by-series,
// failing the test on any line that doesn't scan.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestMetricsEndpointFormat(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	get(t, queryURL(ts.URL, knowsQuery), nil)

	resp, body := get(t, ts.URL+"/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	m := parsePrometheus(t, body)
	for _, name := range []string{
		"amber_queries_total", "amber_db_triples", "amber_epoch",
		"amber_in_flight", "go_goroutines",
		"amber_query_duration_seconds_count", "amber_query_duration_seconds_sum",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if m["amber_queries_total"] != 1 || m["amber_db_triples"] != 7 {
		t.Errorf("queries=%v triples=%v, want 1 and 7",
			m["amber_queries_total"], m["amber_db_triples"])
	}
	// Every HELP line has a TYPE line and vice versa.
	if h, ty := strings.Count(body, "# HELP"), strings.Count(body, "# TYPE"); h != ty || h == 0 {
		t.Errorf("HELP lines %d != TYPE lines %d", h, ty)
	}
}

func TestMetricsAgreeWithStatsUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch i % 3 {
				case 0: // repeat query: cache hits after the first
					get(t, queryURL(ts.URL, knowsQuery), nil)
				case 1: // distinct query per worker: misses
					q := fmt.Sprintf(`SELECT ?x%d WHERE { ?x%d <http://town/livesIn> ?t . }`, g, g)
					get(t, queryURL(ts.URL, q), nil)
				case 2: // parse error
					get(t, queryURL(ts.URL, "SELEKT nonsense"), nil)
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	_, body := get(t, ts.URL+"/metrics", nil)
	m := parsePrometheus(t, body)

	for name, want := range map[string]uint64{
		"amber_queries_total":            st.Queries,
		"amber_query_cache_hits_total":   st.CacheHits,
		"amber_query_cache_misses_total": st.CacheMisses,
		"amber_parse_errors_total":       st.ParseErrors,
		"amber_timeouts_total":           st.Timeouts,
	} {
		if got := m[name]; got != float64(want) {
			t.Errorf("%s = %v, /stats says %d", name, got, want)
		}
	}
	if m["amber_parse_errors_total"] == 0 || m["amber_query_cache_hits_total"] == 0 {
		t.Error("load generated no parse errors or no cache hits; test is vacuous")
	}
}

func TestMetricsBucketsMonotonic(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	for i := 0; i < 5; i++ {
		get(t, queryURL(ts.URL, knowsQuery, "limit", strconv.Itoa(i+1)), nil)
	}
	_, body := get(t, ts.URL+"/metrics", nil)
	m := parsePrometheus(t, body)

	type bkt struct {
		le float64
		n  float64
	}
	var buckets []bkt
	var inf float64
	for series, v := range m {
		if !strings.HasPrefix(series, `amber_query_duration_seconds_bucket{le="`) {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(series, `amber_query_duration_seconds_bucket{le="`), `"}`)
		if le == "+Inf" {
			inf = v
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", le, err)
		}
		buckets = append(buckets, bkt{f, v})
	}
	if len(buckets) == 0 {
		t.Fatal("no finite buckets found")
	}
	for i := 1; i < len(buckets); i++ {
		for j := 0; j < i; j++ { // unsorted map iteration: compare all pairs
			lo, hi := buckets[j], buckets[i]
			if lo.le > hi.le {
				lo, hi = hi, lo
			}
			if lo.n > hi.n {
				t.Errorf("bucket le=%v count %v > le=%v count %v (not cumulative)",
					lo.le, lo.n, hi.le, hi.n)
			}
		}
	}
	if count := m["amber_query_duration_seconds_count"]; inf != count || count != 5 {
		t.Errorf("+Inf bucket %v, _count %v, want both 5", inf, count)
	}
}

func TestHistogramsDisabledFallsBackToRing(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{DisableHistograms: true})
	get(t, queryURL(ts.URL, knowsQuery), nil)

	_, body := get(t, ts.URL+"/metrics", nil)
	if strings.Contains(body, "amber_query_duration_seconds") {
		t.Error("histograms exposed despite DisableHistograms")
	}
	// Percentiles still come from the ring.
	if st := s.Stats(); st.Queries != 1 || st.P99Millis < st.P50Millis {
		t.Errorf("ring fallback stats: %+v", st)
	}
}

func TestRequestIDOnResponsesAndErrors(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})

	// Success carries the ID as a header.
	resp, _ := get(t, queryURL(ts.URL, knowsQuery), nil)
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("success response missing X-Request-Id")
	}

	// Errors carry the same ID in header and JSON body.
	resp, body := get(t, queryURL(ts.URL, "SELEKT nonsense"), nil)
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("error response missing X-Request-Id")
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, body)
	}
	if e.RequestID != id {
		t.Errorf("body request_id %q != header %q", e.RequestID, id)
	}
}

// syncBuffer is an io.Writer safe for the handler goroutine to write
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowQueryLogCarriesRequestID(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, townData, Config{SlowQuery: time.Nanosecond, SlowQueryOut: &buf})

	resp, _ := get(t, queryURL(ts.URL, knowsQuery), nil)
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("missing X-Request-Id")
	}

	// finishTrace runs before the handler returns, but give the goroutine
	// a moment in case the response flushed first.
	deadline := time.Now().Add(5 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		if s := buf.String(); strings.Contains(s, "\n") {
			line = s[:strings.IndexByte(s, '\n')]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line == "" {
		t.Fatal("slow-query log empty")
	}
	var rec obs.TraceView
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log line not JSON: %v\n%s", err, line)
	}
	if rec.ID != id {
		t.Errorf("slow log id %q != response X-Request-Id %q", rec.ID, id)
	}
	if rec.Status != "ok" || !strings.Contains(rec.Query, "knows") {
		t.Errorf("slow log record: %+v", rec)
	}
	if rec.Shape == "" || rec.PlanSummary == "" {
		t.Errorf("slow log record missing plan info: shape=%q plan=%q", rec.Shape, rec.PlanSummary)
	}
	var names []string
	for _, sp := range rec.Spans {
		names = append(names, sp.Name)
	}
	for _, want := range []string{"parse_plan", "execute", "serialize"} {
		if !strings.Contains(strings.Join(names, ","), want) {
			t.Errorf("slow log spans %v missing %q", names, want)
		}
	}
}

func TestDebugTraces(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	get(t, queryURL(ts.URL, knowsQuery), nil)
	get(t, queryURL(ts.URL, knowsQuery), nil) // cache hit: also traced

	resp, body := get(t, ts.URL+"/debug/traces", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(out.Traces))
	}
	// Newest first: the second request was the cache hit.
	if out.Traces[0].Status != "hit" || out.Traces[1].Status != "ok" {
		t.Errorf("trace order/status: [0]=%s [1]=%s, want hit then ok",
			out.Traces[0].Status, out.Traces[1].Status)
	}
	for _, tr := range out.Traces {
		if tr.ID == "" || tr.DurationMS < 0 {
			t.Errorf("malformed trace %+v", tr)
		}
	}
}

func TestTraceBufferDisabled(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{TraceBuffer: -1})
	get(t, queryURL(ts.URL, knowsQuery), nil)
	_, body := get(t, ts.URL+"/debug/traces", nil)
	var out struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if len(out.Traces) != 0 {
		t.Errorf("disabled buffer returned %d traces", len(out.Traces))
	}
}

func TestExplainAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})

	u := ts.URL + "/sparql?explain=analyze&query=" + url.QueryEscape(knowsQuery)
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{"planner: cost", "core[0]", "est=", "actual=", "visits=", "engine:", "rows: 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain=analyze missing %q:\n%s", want, body)
		}
	}

	// British spelling is accepted too.
	u = ts.URL + "/sparql?explain=analyse&query=" + url.QueryEscape(knowsQuery)
	if resp, _ := get(t, u, nil); resp.StatusCode != 200 {
		t.Errorf("explain=analyse status %d", resp.StatusCode)
	}

	// A malformed query under analyze maps to 400 like plain explain.
	u = ts.URL + "/sparql?explain=analyze&query=" + url.QueryEscape("SELEKT nonsense")
	if resp, _ := get(t, u, nil); resp.StatusCode != 400 {
		t.Errorf("malformed analyze status %d, want 400", resp.StatusCode)
	}
}

package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// post issues a POST with the given content type and body.
func post(t testing.TB, rawURL, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(rawURL, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// postUpdate sends an update via the form-encoded protocol binding.
func postUpdate(t testing.TB, base, update string) (*http.Response, string) {
	t.Helper()
	return post(t, base+"/sparql", "application/x-www-form-urlencoded",
		url.Values{"update": {update}}.Encode())
}

func TestUpdateEndpointForm(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := postUpdate(t, ts.URL,
		`INSERT DATA { <http://town/dave> <http://town/knows> <http://town/alice> . }`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Epoch") == "" || resp.Header.Get("X-Epoch") == "0" {
		t.Errorf("X-Epoch = %q, want advanced epoch", resp.Header.Get("X-Epoch"))
	}
	resp, body = get(t, queryURL(ts.URL, knowsQuery, "format", "csv"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "http://town/dave") {
		t.Errorf("inserted triple not visible:\n%s", body)
	}
}

func TestUpdateEndpointRawBody(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := post(t, ts.URL+"/sparql", "application/sparql-update",
		`DELETE DATA { <http://town/alice> <http://town/knows> <http://town/bob> . }`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update status = %d, body %s", resp.StatusCode, body)
	}
	_, body = get(t, queryURL(ts.URL, knowsQuery, "format", "csv"), nil)
	if strings.Contains(body, "alice,http://town/bob") {
		t.Errorf("deleted triple still visible:\n%s", body)
	}
}

func TestUpdateRejectedOnGET(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, _ := get(t, ts.URL+"/sparql?update="+url.QueryEscape("CLEAR ALL"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET update status = %d, want 400", resp.StatusCode)
	}
}

func TestUpdateParseErrorIs400(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})
	resp, body := postUpdate(t, ts.URL, `INSERT GARBAGE`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, body %s", resp.StatusCode, body)
	}
	if st := s.Stats(); st.UpdateErrors != 1 || st.Updates != 1 {
		t.Errorf("update counters = %d/%d, want 1/1", st.Updates, st.UpdateErrors)
	}
}

// TestUpdateInvalidatesResultCache is the satellite regression test:
// query (cached), update, re-query — the second read must not be served
// from the pre-update cache entry.
func TestUpdateInvalidatesResultCache(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	u := queryURL(ts.URL, knowsQuery, "format", "csv")

	// Prime the cache and verify a hit.
	resp, first := get(t, u, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("prime: status=%d cache=%s", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, _ = get(t, u, nil)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second read not cached: %s", resp.Header.Get("X-Cache"))
	}

	resp, body := postUpdate(t, ts.URL,
		`INSERT DATA { <http://town/erin> <http://town/knows> <http://town/alice> . }`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update failed: %d %s", resp.StatusCode, body)
	}

	resp, after := get(t, u, nil)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("post-update read served from stale cache (X-Cache=%s)", resp.Header.Get("X-Cache"))
	}
	if !strings.Contains(after, "http://town/erin") {
		t.Errorf("post-update rows stale:\n%s", after)
	}
	if strings.Count(after, "\n") <= strings.Count(first, "\n") {
		t.Errorf("row count did not grow: before\n%s\nafter\n%s", first, after)
	}

	// The new state is itself cacheable again.
	resp, _ = get(t, u, nil)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("new epoch not cached: %s", resp.Header.Get("X-Cache"))
	}
}

func TestStatsGenerationSection(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})
	if resp, body := postUpdate(t, ts.URL,
		`INSERT DATA { <http://town/x> <http://town/knows> <http://town/y> . } ;
		 DELETE DATA { <http://town/bob> <http://town/knows> <http://town/carol> . }`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var doc struct {
		Updates uint64 `json:"updates"`
		Live    struct {
			Epoch            uint64  `json:"epoch"`
			DeltaAdds        int     `json:"delta_adds"`
			DeltaTombstones  int     `json:"delta_tombstones"`
			Updates          uint64  `json:"updates"`
			UpdatesPerSecond float64 `json:"updates_per_second"`
		} `json:"generation"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, body)
	}
	if doc.Updates != 1 {
		t.Errorf("server updates = %d, want 1", doc.Updates)
	}
	if doc.Live.Epoch == 0 || doc.Live.DeltaAdds != 1 || doc.Live.DeltaTombstones != 1 {
		t.Errorf("generation section = %+v", doc.Live)
	}
	if doc.Live.Updates != 2 || doc.Live.UpdatesPerSecond <= 0 {
		t.Errorf("update counters = %+v", doc.Live)
	}
	_ = s
}

func TestLoadGatedByConfig(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := postUpdate(t, ts.URL, `LOAD <file:///etc/hostname>`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "LOAD is disabled") {
		t.Errorf("LOAD without AllowLoad: %d %s", resp.StatusCode, body)
	}
	_, ts2 := newTestServer(t, townData, Config{AllowLoad: true})
	resp, body = postUpdate(t, ts2.URL, `LOAD SILENT <file:///no/such/file.nt>`)
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("LOAD SILENT with AllowLoad: %d %s", resp.StatusCode, body)
	}
}

func TestClearViaEndpoint(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	if resp, body := postUpdate(t, ts.URL, `CLEAR ALL`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("clear: %d %s", resp.StatusCode, body)
	}
	_, body := get(t, queryURL(ts.URL, knowsQuery, "format", "csv"), nil)
	if strings.Contains(body, "http://town") {
		t.Errorf("rows after CLEAR:\n%s", body)
	}
}

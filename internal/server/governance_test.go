package server

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowQueryText is a triple chain whose FILTER rejects every embedding
// after enumeration, so the engine works for a long time producing no
// output (see slowSearchData).
const slowQueryText = `SELECT ?d WHERE {
	?a <http://p/t> ?b . ?b <http://p/t> ?c . ?c <http://p/t> ?d .
	FILTER (?d = <http://v/nomatch>)
}`

// debugQueries fetches and decodes GET /debug/queries.
func debugQueries(t testing.TB, base string) []obs.InflightView {
	t.Helper()
	resp, body := get(t, base+"/debug/queries", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Queries []obs.InflightView `json:"queries"`
		Count   int                `json:"count"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("decoding /debug/queries: %v", err)
	}
	if doc.Count != len(doc.Queries) {
		t.Fatalf("count %d != %d queries", doc.Count, len(doc.Queries))
	}
	return doc.Queries
}

func postCancel(t testing.TB, base, id, token string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/admin/queries/"+id+"/cancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// TestAdminCancelTerminatesQuery is the tentpole's acceptance test:
// a long-running query is visible in GET /debug/queries with live
// resource counters and progress, POST /admin/queries/{id}/cancel
// terminates it, the client receives an error response, the admission
// slot frees, and the kill is visible in /metrics, /stats, and the
// trace ring.
func TestAdminCancelTerminatesQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("slow search fixture")
	}
	s, ts := newTestServer(t, slowSearchData(400, 40),
		Config{MaxConcurrent: 2, AdminToken: "sesame"})

	done := make(chan struct{})
	var status int
	var body string
	go func() {
		defer close(done)
		resp, err := http.Get(queryURL(ts.URL, slowQueryText, "timeout", "30s"))
		if err != nil {
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status, body = resp.StatusCode, string(b)
	}()

	// Wait until the query is registered and its meter shows live engine
	// progress.
	var entry obs.InflightView
	deadline := time.Now().Add(5 * time.Second)
	for {
		if qs := debugQueries(t, ts.URL); len(qs) == 1 && qs[0].Resources.VerticesVisited > 0 {
			entry = qs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in /debug/queries with live counters")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if entry.Kind != "query" || entry.Shape == "" || entry.Client == "" {
		t.Errorf("inflight entry = %+v", entry)
	}
	if entry.Resources.TotalLevels == 0 {
		t.Errorf("no plan progress: %+v", entry.Resources)
	}
	if !strings.Contains(entry.Query, "FILTER") {
		t.Errorf("entry query text = %q", entry.Query)
	}

	resp, cbody := postCancel(t, ts.URL, entry.ID, "sesame")
	if resp.StatusCode != http.StatusOK || !strings.Contains(cbody, entry.ID) {
		t.Fatalf("cancel status %d: %s", resp.StatusCode, cbody)
	}

	<-done
	if status != http.StatusInternalServerError || !strings.Contains(body, "administrator") {
		t.Errorf("client got %d %q, want 500 mentioning administrator", status, body)
	}

	// Slot freed, registry empty.
	deadline = time.Now().Add(3 * time.Second)
	for s.Stats().InFlight != 0 || s.inflight.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slot/registry still held: inFlight=%d registry=%d",
				s.Stats().InFlight, s.inflight.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.CancelledAdmin != 1 || st.Cancelled != 0 {
		t.Errorf("cancelled_admin=%d cancelled=%d, want 1/0", st.CancelledAdmin, st.Cancelled)
	}

	// Visible in /metrics…
	if _, metrics := get(t, ts.URL+"/metrics", nil); !strings.Contains(metrics, "amber_query_cancelled_admin_total 1") {
		t.Error("admin cancel not visible in /metrics")
	}
	// …and in the trace ring, with the finished meter attached.
	_, traces := get(t, ts.URL+"/debug/traces", nil)
	if !strings.Contains(traces, `"killed"`) {
		t.Errorf("no killed trace in ring: %s", traces)
	}
	if !strings.Contains(traces, `"vertices_visited"`) {
		t.Error("trace record carries no resource meter")
	}

	// Cancelling the now-finished id is a 404.
	if resp, _ := postCancel(t, ts.URL, entry.ID, "sesame"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("stale cancel status = %d, want 404", resp.StatusCode)
	}
}

func TestAdminCancelAuth(t *testing.T) {
	// Without a token the public surface is disabled entirely.
	_, ts := newTestServer(t, townData, Config{})
	if resp, _ := postCancel(t, ts.URL, "x", ""); resp.StatusCode != http.StatusForbidden {
		t.Errorf("ungated cancel status = %d, want 403", resp.StatusCode)
	}

	s2, ts2 := newTestServer(t, townData, Config{AdminToken: "sesame"})
	if resp, _ := postCancel(t, ts2.URL, "x", "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad-token cancel status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := postCancel(t, ts2.URL, "x", "sesame"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("good-token unknown-id status = %d, want 404", resp.StatusCode)
	}

	// Bearer authorization works too.
	req, _ := http.NewRequest(http.MethodPost, ts2.URL+"/admin/queries/x/cancel", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bearer status = %d, want 404", resp.StatusCode)
	}

	// The private AdminHandler listener is ungated.
	adm := httptest.NewServer(s2.AdminHandler())
	defer adm.Close()
	if resp, _ := postCancel(t, adm.URL, "x", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("admin-listener status = %d, want 404", resp.StatusCode)
	}
	if qs := debugQueries(t, adm.URL); len(qs) != 0 {
		t.Errorf("admin-listener /debug/queries = %+v", qs)
	}
}

// TestMaxQueryVisitsGuard verifies the resource guard: a query whose
// live meter crosses the visit cap is cancelled by its own accounting
// and answered with 422.
func TestMaxQueryVisitsGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("slow search fixture")
	}
	s, ts := newTestServer(t, slowSearchData(200, 30),
		Config{MaxQueryVisits: 10_000})
	resp, body := get(t, queryURL(ts.URL, slowQueryText, "timeout", "30s"), nil)
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(body, "resource limit") {
		t.Fatalf("status %d body %q, want 422 resource limit", resp.StatusCode, body)
	}
	if st := s.Stats(); st.ResourceLimited != 1 {
		t.Errorf("resource_limited = %d, want 1", st.ResourceLimited)
	}
	if _, metrics := get(t, ts.URL+"/metrics", nil); !strings.Contains(metrics, "amber_query_resource_limited_total 1") {
		t.Error("guard trip not visible in /metrics")
	}
}

// TestInflightTorture hammers the registry from every side at once:
// concurrent queries, admin cancels, database hot-swaps, and
// /debug/queries + /metrics scrapes. Run under -race in CI. The
// registry must end empty — no leaked entries.
func TestInflightTorture(t *testing.T) {
	s, ts := newTestServer(t, townData,
		Config{CacheSize: -1, AdminToken: "sesame", MaxConcurrent: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Query workers: distinct texts defeat nothing (result cache is off),
	// so every request registers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("SELECT ?a ?b WHERE { ?a <http://town/knows> ?b . } LIMIT %d", 1+(w+i)%5)
				resp, err := http.Get(queryURL(ts.URL, q))
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(w)
	}
	// Update worker: updates register too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := fmt.Sprintf("INSERT DATA { <http://town/n%d> <http://town/knows> <http://town/alice> . }", i)
			resp, err := http.PostForm(ts.URL+"/sparql", map[string][]string{"update": {u}})
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()
	// Canceller: scrape ids and kill whatever is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, v := range s.inflight.Snapshot() {
				resp, err := http.DefaultClient.Do(func() *http.Request {
					req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/queries/"+v.ID+"/cancel", nil)
					req.Header.Set("X-Admin-Token", "sesame")
					return req
				}())
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}
	}()
	// Swapper: hot-swap the database underneath everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Swap(openDB(t, townData))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Scraper: observability surfaces under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range []string{"/debug/queries", "/metrics", "/stats", "/readyz"} {
				resp, err := http.Get(ts.URL + p)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	deadline := time.Now().Add(3 * time.Second)
	for s.inflight.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry leaked %d entries", s.inflight.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Stats().InFlight != 0 {
		t.Errorf("in_flight = %d after drain", s.Stats().InFlight)
	}
}

func TestReadyzTracksReadiness(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})
	if resp, body := get(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("ready /readyz = %d %q", resp.StatusCode, body)
	}
	s.SetReady(false)
	if resp, body := get(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Errorf("draining /readyz = %d %q", resp.StatusCode, body)
	}
	// Liveness is unaffected by draining.
	if resp, _ := get(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200", resp.StatusCode)
	}
	if _, metrics := get(t, ts.URL+"/metrics", nil); !strings.Contains(metrics, "amber_ready 0") {
		t.Error("amber_ready gauge did not drop")
	}
	s.SetReady(true)
	if resp, _ := get(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("restored /readyz = %d, want 200", resp.StatusCode)
	}
}

func TestGzipScrapeEndpoints(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	for _, path := range []string{"/metrics", "/stats"} {
		// Explicit Accept-Encoding disables the transport's transparent
		// decompression, so the raw gzip stream is observable.
		resp, body := get(t, ts.URL+path, http.Header{"Accept-Encoding": {"gzip"}})
		if resp.Header.Get("Content-Encoding") != "gzip" {
			t.Errorf("%s: Content-Encoding = %q, want gzip", path, resp.Header.Get("Content-Encoding"))
			continue
		}
		zr, err := gzip.NewReader(strings.NewReader(body))
		if err != nil {
			t.Errorf("%s: not gzip: %v", path, err)
			continue
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Errorf("%s: decompressing: %v", path, err)
		}
		want := "amber_queries_total"
		if path == "/stats" {
			want = `"uptime"`
		}
		if !strings.Contains(string(plain), want) {
			t.Errorf("%s: decompressed body missing %q", path, want)
		}

		// Clients that do not accept gzip get identity.
		resp, body = get(t, ts.URL+path, http.Header{"Accept-Encoding": {"identity"}})
		if resp.Header.Get("Content-Encoding") == "gzip" || !strings.Contains(body, want) {
			t.Errorf("%s: identity request got encoded response", path)
		}
	}
}
